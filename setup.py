"""Legacy setup shim.

The environment has setuptools but no ``wheel`` package, so PEP-517 editable
installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` take the classic ``setup.py develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
