"""Metrics under concurrency: totals equal the serial ground truth."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import runtime
from repro.obs import metrics as obs
from repro.obs import trace as obs_trace


@settings(max_examples=25, deadline=None)
@given(
    amounts=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=64),
    threads=st.integers(min_value=2, max_value=8),
)
def test_threaded_counter_total_equals_serial(amounts, threads):
    registry = obs.MetricsRegistry()
    c = registry.counter("t.c")

    def work():
        for amount in amounts:
            c.inc(amount)

    pool = [threading.Thread(target=work) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert c.value == sum(amounts) * threads


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=64,
    ),
    threads=st.integers(min_value=2, max_value=8),
)
def test_threaded_histogram_matches_serial_ground_truth(values, threads):
    concurrent = obs.MetricsRegistry()
    serial = obs.MetricsRegistry()
    h = concurrent.histogram("t.h")

    def work():
        for v in values:
            h.observe(v)

    pool = [threading.Thread(target=work) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()

    ground = serial.histogram("t.h")
    for _ in range(threads):
        for v in values:
            ground.observe(v)

    got, want = h.to_dict(), ground.to_dict()
    assert got["count"] == want["count"]
    assert got["sum"] == pytest.approx(want["sum"])
    assert got["min"] == want["min"] and got["max"] == want["max"]
    assert got["buckets"] == want["buckets"]


def _isolated_snapshot(item):
    """Worker task: record the item in a private registry and ship it back."""
    from repro.obs import metrics as worker_metrics

    reg = worker_metrics.MetricsRegistry()
    reg.counter("t.worker_events").inc(item)
    reg.histogram("t.worker_vals").observe(float(item))
    return reg.snapshot()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_backend_snapshots_merge_to_serial_ground_truth(backend):
    """Snapshots shipped back from pool tasks merge to the exact serial total."""
    runtime.configure(workers=2, backend=backend, min_parallel_work=1)
    amounts = [1, 2, 3, 4, 5]
    snapshots = runtime.parallel_map(_isolated_snapshot, amounts)
    for snap in snapshots:
        obs.merge_snapshot(snap)

    ground = obs.MetricsRegistry()
    for amount in amounts:
        ground.counter("t.worker_events").inc(amount)
        ground.histogram("t.worker_vals").observe(float(amount))

    assert obs.counter("t.worker_events").value == ground.counter("t.worker_events").value
    got = obs.histogram("t.worker_vals").to_dict()
    want = ground.histogram("t.worker_vals").to_dict()
    assert got["count"] == want["count"]
    assert got["sum"] == pytest.approx(want["sum"])
    assert got["buckets"] == want["buckets"]


def test_noop_tracer_allocates_no_spans_across_threads():
    assert obs_trace.get_tracer() is obs_trace.NULL_TRACER
    seen = []

    def work():
        for _ in range(100):
            seen.append(obs_trace.get_tracer().span("x"))

    pool = [threading.Thread(target=work) for _ in range(4)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert all(s is obs_trace.NULL_SPAN for s in seen)
    assert len(obs_trace.NULL_TRACER) == 0
