"""Unit coverage for the always-on metrics half of repro.obs."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import metrics as obs


class TestCounter:
    def test_inc_accumulates(self):
        c = obs.counter("t.counter")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        with pytest.raises(ObservabilityError):
            obs.counter("t.counter").inc(-1)

    def test_same_name_same_object(self):
        assert obs.counter("t.same") is obs.counter("t.same")


class TestGauge:
    def test_set_inc_dec(self):
        g = obs.gauge("t.gauge")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == pytest.approx(11.5)


class TestHistogram:
    def test_scalars_are_exact(self):
        h = obs.histogram("t.hist")
        for v in (0.25, 1.0, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(104.25)
        assert h.mean == pytest.approx(104.25 / 4)
        d = h.to_dict()
        assert d["min"] == 0.25 and d["max"] == 100.0

    def test_bucket_exponents(self):
        # bucket e covers (2^(e-1), 2^e]: exact powers land in their own bucket
        assert obs.bucket_exponent(1.0) == 0
        assert obs.bucket_exponent(2.0) == 1
        assert obs.bucket_exponent(2.0001) == 2
        assert obs.bucket_exponent(0.5) == -1
        assert obs.bucket_exponent(3.0) == 2
        # clamps at both ends, and non-positive folds to the lowest bucket
        assert obs.bucket_exponent(0.0) == -20
        assert obs.bucket_exponent(1e-30) == -20
        assert obs.bucket_exponent(1e30) == 40

    def test_bucket_counts(self):
        h = obs.histogram("t.buckets")
        for v in (1.0, 1.5, 2.0, 3.0):
            h.observe(v)
        buckets = h.to_dict()["buckets"]
        assert buckets == {"le_2^0": 1, "le_2^1": 2, "le_2^2": 1}

    def test_empty_histogram_has_null_extrema(self):
        d = obs.histogram("t.empty").to_dict()
        assert d["count"] == 0 and d["min"] is None and d["max"] is None


class TestRegistry:
    def test_kind_mismatch_raises(self):
        obs.counter("t.kind")
        with pytest.raises(ObservabilityError):
            obs.gauge("t.kind")
        with pytest.raises(ObservabilityError):
            obs.histogram("t.kind")

    def test_bad_names_rejected(self):
        with pytest.raises(ObservabilityError):
            obs.counter("")
        with pytest.raises(ObservabilityError):
            obs.counter(None)  # type: ignore[arg-type]

    def test_snapshot_groups_and_is_json_able(self):
        obs.counter("t.c").inc(3)
        obs.gauge("t.g").set(1.5)
        obs.histogram("t.h").observe(2.0)
        snap = obs.snapshot()
        assert snap["counters"]["t.c"] == 3
        assert snap["gauges"]["t.g"] == 1.5
        assert snap["histograms"]["t.h"]["count"] == 1
        json.dumps(snap)  # must be serialisable as-is

    def test_merge_snapshot_is_additive_for_counters_and_histograms(self):
        obs.counter("t.c").inc(2)
        obs.gauge("t.g").set(1.0)
        obs.histogram("t.h").observe(1.0)
        remote = obs.MetricsRegistry()
        remote.counter("t.c").inc(5)
        remote.gauge("t.g").set(9.0)
        remote.histogram("t.h").observe(4.0)
        remote.histogram("t.h").observe(0.25)
        obs.merge_snapshot(remote.snapshot())
        assert obs.counter("t.c").value == 7
        assert obs.gauge("t.g").value == 9.0  # gauges: last write wins
        h = obs.histogram("t.h").to_dict()
        assert h["count"] == 3
        assert h["sum"] == pytest.approx(5.25)
        assert h["min"] == 0.25 and h["max"] == 4.0

    def test_reset_clears_everything(self):
        obs.counter("t.c").inc()
        obs.reset_metrics()
        snap = obs.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_private_registries_are_independent(self):
        private = obs.MetricsRegistry()
        private.counter("t.c").inc(100)
        assert obs.counter("t.c").value == 0
