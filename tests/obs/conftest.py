"""Shared fixtures for the observability suite: pristine obs + runtime state."""

from __future__ import annotations

import pytest

from repro import runtime
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Every test starts from a clean registry, a no-op tracer, serial runtime."""
    runtime.reset()
    obs_trace.disable(flush=False)
    obs_trace._sink = None
    obs_metrics.reset_metrics()
    yield
    runtime.reset()
    runtime.shutdown_executors()
    obs_trace.disable(flush=False)
    obs_trace._sink = None
    obs_metrics.reset_metrics()
