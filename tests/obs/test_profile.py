"""Plan.execute() profiling: step alignment, measured costs, explain rendering."""

import numpy as np
import pytest

from repro import runtime
from repro.assoc import expr as E
from repro.assoc.planner import evaluate, evaluate_vec
from repro.assoc.semiring import PLUS_MONOID
from repro.assoc.sparse import CSRMatrix
from repro.errors import ExpressionError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def _random_csr(n_rows, n_cols, density, seed):
    rng = np.random.default_rng(seed)
    dense = np.zeros((n_rows, n_cols), dtype=np.int64)
    nnz = max(1, int(n_rows * n_cols * density))
    dense[rng.integers(0, n_rows, nnz), rng.integers(0, n_cols, nnz)] = rng.integers(1, 9, nnz)
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def a():
    return _random_csr(20, 20, 0.15, seed=1)


@pytest.fixture
def b():
    return _random_csr(20, 20, 0.15, seed=2)


@pytest.fixture
def mask():
    rng = np.random.default_rng(3)
    return CSRMatrix.from_dense(rng.random((20, 20)) < 0.2)


def _assert_profiled(plan):
    """The invariant: profile aligns 1:1 with steps, costs are sane."""
    assert plan.profile is not None
    assert len(plan.profile) == len(plan.steps)
    for step, prof in zip(plan.steps, plan.profile):
        assert step.kernel == prof.kernel
        assert prof.wall_ns >= 0
        assert prof.nnz is None or prof.nnz >= 0
        assert prof.wall_ms == prof.wall_ns / 1e6


class TestStepAlignment:
    """Every plan shape executes with a profile aligned to its steps,
    bit-identical to the plain evaluate() walk."""

    def _check_mat(self, expr, mask=None, complement=False):
        plan = expr.plan(mask=mask, complement=complement)
        result = plan.execute()
        _assert_profiled(plan)
        assert result == expr.new(mask=mask, complement=complement)
        return plan

    def test_mxm(self, a, b):
        plan = self._check_mat(E.lazy(a).mxm(b))
        assert plan.kernels == ("leaf", "leaf", "mxm")

    def test_masked_mxm(self, a, b, mask):
        plan = self._check_mat(E.lazy(a).mxm(b), mask=mask)
        assert plan.kernels[-1] == "masked_mxm"

    def test_complement_mxm_profiles_the_filter_step(self, a, b, mask):
        plan = self._check_mat(E.lazy(a).mxm(b), mask=mask, complement=True)
        assert plan.kernels == ("leaf", "leaf", "mxm", "mask_filter")

    def test_union_chain_collapse(self, a, b):
        self._check_mat(E.union_all([a, b, a]))

    def test_pairwise_union(self, a, b):
        plan = self._check_mat(E.lazy(a) + b)
        assert plan.kernels[-1] == "ewise_union"

    def test_masked_union(self, a, b, mask):
        self._check_mat(E.union_all([a, b, a]), mask=mask)

    def test_ewise_intersect(self, a, b):
        plan = self._check_mat(E.lazy(a) * b)
        assert plan.kernels[-1] == "ewise_intersect"

    def test_masked_intersect(self, a, b, mask):
        self._check_mat(E.lazy(a) * b, mask=mask)

    def test_transpose_above_compound(self, a, b):
        plan = self._check_mat(E.lazy(a).mxm(b).transpose())
        assert "transpose" in plan.kernels

    def test_single_part_union_all_direct_node(self, a):
        # the builder collapses 1-item unions; only direct construction
        # exercises the pass-through and masked_select single-part paths
        u = E.UnionAll(parts=(E.as_expr(a),), add=PLUS_MONOID)
        plan = self._check_mat(u)
        assert plan.kernels == ("leaf", "union_all")

    def test_single_part_union_all_masked(self, a, mask):
        u = E.UnionAll(parts=(E.as_expr(a),), add=PLUS_MONOID)
        plan = self._check_mat(u, mask=mask)
        assert plan.kernels == ("leaf", "masked_union")

    def test_mxv(self, a):
        x = np.arange(20, dtype=np.float64)
        expr = E.lazy(a).mxv(x)
        plan = expr.plan()
        result = plan.execute()
        _assert_profiled(plan)
        assert plan.kernels == ("leaf", "mxv")
        assert np.array_equal(result, expr.new())
        # ndarray results report nnz as the nonzero count
        assert plan.profile[-1].nnz == int(np.count_nonzero(result))

    def test_masked_mxv(self, a):
        x = np.arange(20, dtype=np.float64)
        allow = np.zeros(20, dtype=bool)
        allow[::2] = True
        expr = E.lazy(a).mxv(x)
        plan = expr.plan(mask=allow)
        result = plan.execute()
        _assert_profiled(plan)
        assert plan.kernels == ("leaf", "masked_mxv")
        assert np.array_equal(result, expr.new(mask=allow))

    def test_reduce_rows(self, a):
        expr = E.lazy(a).reduce_rows()
        plan = expr.plan()
        result = plan.execute()
        _assert_profiled(plan)
        assert plan.kernels == ("leaf", "reduce_rows")
        assert np.array_equal(result, expr.new())


class TestProfileSemantics:
    def test_execute_matches_plain_evaluate_bit_identically(self, a, b, mask):
        expr = E.lazy(a).mxm(b).ewise(a)
        plan = expr.plan(mask=mask)
        assert plan.execute() == evaluate(plan.expr, mask=plan.mask)

    def test_execute_increments_planner_counter(self, a, b):
        before = obs_metrics.counter("planner.executions").value
        E.lazy(a).mxm(b).plan().execute()
        assert obs_metrics.counter("planner.executions").value == before + 1

    def test_profile_records_result_nnz(self, a, b):
        plan = E.lazy(a).mxm(b).plan()
        result = plan.execute()
        assert plan.profile[-1].nnz == result.nnz
        leaf_nnzs = [p.nnz for p in plan.profile[:2]]
        assert leaf_nnzs == [a.nnz, b.nnz]

    def test_reexecute_replaces_the_profile(self, a, b):
        plan = E.lazy(a).mxm(b).plan()
        plan.execute()
        first = plan.profile
        plan.execute()
        assert plan.profile is not first
        assert len(plan.profile) == len(first)

    def test_evaluate_alone_records_nothing(self, a, b):
        plan = E.lazy(a).mxm(b).plan()
        evaluate(plan.expr)
        assert plan.profile is None

    def test_evaluate_vec_rec_threading(self, a):
        rec = []
        evaluate_vec(E.lazy(a).mxv(np.ones(20)), _rec=rec)
        assert [p.kernel for p in rec] == ["leaf", "mxv"]

    def test_traced_execute_opens_plan_spans(self, a, b):
        runtime.configure(tracing=True)
        E.lazy(a).mxm(b).plan().execute()
        names = [r.name for r in obs_trace.get_tracer().spans()]
        assert "plan.mxm" in names and names.count("plan.leaf") == 2


class TestExplainProfile:
    def test_explain_before_execute_raises(self, a, b):
        plan = E.lazy(a).mxm(b).plan()
        with pytest.raises(ExpressionError, match="no recorded profile"):
            plan.explain(profile=True)

    def test_explain_renders_wall_time_and_nnz(self, a, b, mask):
        plan = E.lazy(a).mxm(b).plan(mask=mask)
        result = plan.execute()
        text = plan.explain(profile=True)
        lines = text.splitlines()
        assert lines[0].startswith("plan: ")
        assert "profile:" in lines
        assert any("masked_mxm" in ln and "ms" in ln for ln in lines)
        assert f"nnz={result.nnz}" in text
        assert any("total" in ln for ln in lines)

    def test_plain_explain_is_unchanged_by_profiling(self, a, b):
        plan = E.lazy(a).mxm(b).plan()
        before = plan.explain()
        plan.execute()
        assert plan.explain() == before
