"""Unit coverage for the span tracer: spans, ring, exports, CLI."""

import json

import pytest

from repro import runtime
from repro.errors import ObservabilityError
from repro.obs import __main__ as obs_cli
from repro.obs import trace


def _record(name="x", start=0, dur=10, span_id=1, parent=None, **attrs):
    return trace.SpanRecord(
        name=name,
        start_ns=start,
        dur_ns=dur,
        span_id=span_id,
        parent_id=parent,
        pid=1,
        tid=1,
        attrs=tuple(sorted(attrs.items())),
    )


class TestSpans:
    def test_nesting_links_parents(self):
        tracer = trace.Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {r.name: r for r in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id

    def test_attrs_are_recorded_sorted(self):
        tracer = trace.Tracer()
        with tracer.span("k", zeta=1) as sp:
            sp.set(alpha=2)
        (rec,) = tracer.spans()
        assert rec.attrs == (("alpha", 2), ("zeta", 1))

    def test_record_survives_exceptions(self):
        tracer = trace.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert len(tracer) == 1
        assert tracer.current_span_id() is None

    def test_span_ids_are_unique_and_pid_salted(self):
        import os

        tracer = trace.Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [r.span_id for r in tracer.spans()]
        assert len(set(ids)) == 2
        assert all(sid >> 40 == os.getpid() for sid in ids)

    def test_ring_capacity_drops_oldest(self):
        tracer = trace.Tracer(capacity=3)
        for k in range(5):
            with tracer.span(f"s{k}"):
                pass
        assert [r.name for r in tracer.spans()] == ["s2", "s3", "s4"]

    def test_drain_empties_the_ring(self):
        tracer = trace.Tracer()
        with tracer.span("a"):
            pass
        records = tracer.drain()
        assert len(records) == 1 and len(tracer) == 0

    def test_adopt_reparents_root_records(self):
        tracer = trace.Tracer()
        tracer.adopt([_record(span_id=7, parent=None), _record(span_id=8, parent=7)], parent_id=99)
        by_id = {r.span_id: r for r in tracer.spans()}
        assert by_id[7].parent_id == 99  # root re-parented under the dispatch span
        assert by_id[8].parent_id == 7  # internal links untouched

    def test_bad_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            trace.Tracer(capacity=0)


class TestNullPath:
    def test_null_tracer_allocates_no_spans(self):
        assert trace.get_tracer() is trace.NULL_TRACER
        s1 = trace.NULL_TRACER.span("a", x=1)
        s2 = trace.NULL_TRACER.span("b")
        assert s1 is s2 is trace.NULL_SPAN  # identity: zero per-call allocation

    def test_null_span_is_a_working_context_manager(self):
        with trace.NULL_SPAN as sp:
            assert sp.set(anything=1) is trace.NULL_SPAN
        assert len(trace.NULL_TRACER) == 0
        assert trace.NULL_TRACER.spans() == [] and trace.NULL_TRACER.drain() == []


class TestEnableDisable:
    def test_runtime_configured_scopes_tracing(self):
        assert not trace.is_enabled()
        with runtime.configured(tracing=True):
            assert trace.is_enabled()
            with trace.get_tracer().span("scoped"):
                pass
        assert not trace.is_enabled()
        assert trace.get_tracer() is trace.NULL_TRACER

    def test_enable_is_idempotent_at_same_capacity(self):
        t1 = trace.enable()
        t2 = trace.enable()
        assert t1 is t2
        t3 = trace.enable(capacity=16)
        assert t3 is not t1 and t3.capacity == 16

    def test_disable_flushes_to_sink(self, tmp_path):
        sink = tmp_path / "flush.json"
        tracer = trace.enable(sink=sink)
        with tracer.span("flushed"):
            pass
        trace.disable(flush=True)
        doc = json.loads(sink.read_text())
        assert [ev["name"] for ev in doc["traceEvents"]] == ["flushed"]

    def test_flush_without_sink_is_a_noop(self):
        tracer = trace.enable()
        with tracer.span("kept"):
            pass
        assert trace.flush_active() is None
        assert len(tracer) == 1  # ring left intact

    def test_collecting_overrides_thread_locally(self):
        tracer = trace.enable()
        with trace.collecting() as collector:
            assert trace.get_tracer() is collector
            with trace.get_tracer().span("worker.side"):
                pass
        assert trace.get_tracer() is tracer
        assert len(tracer) == 0 and len(collector) == 1


class TestExports:
    def test_trace_events_schema(self):
        records = [
            _record(name="a", start=1_000_000, dur=5_000, span_id=1),
            _record(name="b", start=2_000_000, dur=1_000, span_id=2, parent=1, blocks=4),
        ]
        events = trace.to_trace_events(records)
        assert len(events) == 2
        for ev in events:
            assert set(ev) == {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
            assert ev["ph"] == "X" and ev["cat"] == "repro"
        assert events[0]["ts"] == 0.0  # normalised to the earliest start
        assert events[1]["ts"] == 1000.0 and events[1]["args"] == {"blocks": 4}

    def test_write_trace_json_is_loadable(self, tmp_path):
        path = trace.write_trace_json([_record()], tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 1

    def test_dump_load_roundtrip(self, tmp_path):
        records = [_record(name="a", span_id=1), _record(name="b", span_id=2, parent=1, nnz=3)]
        path = trace.dump_spans(records, tmp_path / "spans.json")
        assert trace.load_spans(path) == records

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"span_version": 999, "spans": []}))
        with pytest.raises(ObservabilityError):
            trace.load_spans(path)

    def test_malformed_record_rejected(self):
        with pytest.raises(ObservabilityError):
            trace.SpanRecord.from_dict({"name": "x"})

    def test_flame_summary(self):
        records = [
            _record(name="kernel.mxm", dur=3_000_000, span_id=1),
            _record(name="kernel.mxm", dur=1_000_000, span_id=2),
            _record(name="runtime.map", dur=2_000_000, span_id=3),
        ]
        text = trace.flame_summary(records)
        lines = text.splitlines()
        assert "span" in lines[0] and "count" in lines[0]
        assert lines[1].startswith("kernel.mxm")  # heaviest first
        assert "2" in lines[1] and "4.000" in lines[1]
        assert trace.flame_summary([]) == "(no spans recorded)"


class TestCli:
    def test_metrics_subcommand_prints_snapshot(self, capsys):
        from repro.obs import metrics as obs_metrics

        obs_metrics.counter("cli.probe").inc(2)
        assert obs_cli.main(["metrics"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["cli.probe"] == 2

    def test_convert_subcommand(self, tmp_path, capsys):
        spans = tmp_path / "spans.json"
        trace.dump_spans([_record()], spans)
        assert obs_cli.main(["convert", str(spans)]) == 0
        out = spans.with_suffix(".perfetto.json")
        assert out.exists()
        assert len(json.loads(out.read_text())["traceEvents"]) == 1

    def test_flame_subcommand(self, tmp_path, capsys):
        spans = tmp_path / "spans.json"
        trace.dump_spans([_record(name="kernel.mxm")], spans)
        assert obs_cli.main(["flame", str(spans)]) == 0
        assert "kernel.mxm" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert obs_cli.main(["convert", str(tmp_path / "nope.json")]) == 2
