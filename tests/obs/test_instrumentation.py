"""End-to-end instrumentation: kernels, shm, service, verify, Perfetto export."""

import asyncio
import json
import os

import numpy as np
import pytest

from repro import runtime
from repro.assoc.semiring import PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.scenarios import ScenarioCache, ScenarioService, ScenarioSpec, generate_batch
from repro.verify import KernelEqualityOracle, run_corpus
from tests.verify.fault_fixtures import PERTURBED_SEMIRING


def _rand_csr(rng, n, nnz):
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    return CSRMatrix.from_triples(rows, cols, vals, (n, n))


def _validate_trace_events(events):
    """Schema check for Chrome/Perfetto ``trace_event`` complete events."""
    assert events, "empty traceEvents"
    for ev in events:
        assert set(ev) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
        assert ev["ph"] == "X"
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
        assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        assert isinstance(ev["args"], dict)


class TestKernelSpans:
    def test_traced_parallel_mxm_records_kernel_span(self):
        runtime.configure(
            workers=2, backend="thread", min_parallel_work=1, block_rows=32,
            tracing=True,
        )
        rng = np.random.default_rng(5)
        a, b = _rand_csr(rng, 120, 2000), _rand_csr(rng, 120, 2000)
        out = a.mxm(b, PLUS_TIMES)
        tracer = obs_trace.get_tracer()
        by_name = {}
        for rec in tracer.spans():
            by_name.setdefault(rec.name, rec)
        assert "kernel.parallel_mxm" in by_name
        attrs = dict(by_name["kernel.parallel_mxm"].attrs)
        assert attrs["backend"] == "thread"
        assert attrs["nnz_in"] == a.nnz + b.nnz
        assert attrs["nnz_out"] == out.nnz
        assert attrs["blocks"] >= 2
        # the kernel counter and wall-time histogram moved too
        assert obs_metrics.counter("kernels.parallel_mxm").value >= 1
        assert obs_metrics.histogram("kernels.wall_ms").count >= 1

    def test_untraced_kernels_still_count(self):
        runtime.configure(workers=2, backend="thread", min_parallel_work=1, block_rows=32)
        rng = np.random.default_rng(6)
        a, b = _rand_csr(rng, 100, 1500), _rand_csr(rng, 100, 1500)
        a.mxm(b, PLUS_TIMES)
        assert obs_metrics.counter("kernels.parallel_mxm").value >= 1
        assert obs_trace.get_tracer() is obs_trace.NULL_TRACER


class TestWorkerSpanStitching:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_task_spans_parent_under_the_map_span(self, backend):
        runtime.configure(workers=2, backend=backend, min_parallel_work=1, tracing=True)
        runtime.parallel_map(len, [[1], [2, 2], [3, 3, 3]], label="stitch probe")
        tracer = obs_trace.get_tracer()
        maps = [r for r in tracer.spans() if r.name == "runtime.map"]
        tasks = [r for r in tracer.spans() if r.name == "runtime.task"]
        assert len(maps) == 1 and len(tasks) == 3
        map_span = maps[0]
        assert all(t.parent_id == map_span.span_id for t in tasks)
        assert sorted(dict(t.attrs)["index"] for t in tasks) == [0, 1, 2]
        if backend == "process":
            assert all(t.pid != os.getpid() for t in tasks), (
                "process-backend task spans must come from worker processes"
            )


class TestShmGauges:
    def test_segment_lifecycle_metrics_and_zero_leak_gauge(self):
        cfg = runtime.configure(
            workers=2, backend="process", min_parallel_work=1,
            shm_min_bytes=0, block_rows=32,
        )
        from repro.assoc import blocked

        rng = np.random.default_rng(7)
        a, b = _rand_csr(rng, 100, 1500), _rand_csr(rng, 100, 1500)
        blocked.parallel_mxm(a, b, PLUS_TIMES, cfg)
        created = obs_metrics.counter("shm.segments_created").value
        unlinked = obs_metrics.counter("shm.segments_unlinked").value
        assert created >= 6  # two CSR operands x three arrays each
        assert unlinked == created
        assert obs_metrics.gauge("shm.live_segments").value == 0.0
        assert obs_metrics.counter("shm.bytes_exported").value > 0
        assert obs_metrics.histogram("shm.lease_ms").count >= 1

    def test_attach_cache_hit_and_miss_counters(self):
        # attach counters move in the attaching process; probe them in-process
        from repro.runtime import shm

        arr = np.arange(16, dtype=np.float64)
        with shm.OperandLease() as lease:
            ref = lease.export_array(arr)
            misses0 = obs_metrics.counter("shm.attach_misses").value
            hits0 = obs_metrics.counter("shm.attach_hits").value
            shm.attach_array(ref)  # first attach: miss
            shm.attach_array(ref)  # cached: hit
            assert obs_metrics.counter("shm.attach_misses").value == misses0 + 1
            assert obs_metrics.counter("shm.attach_hits").value == hits0 + 1
            shm.detach_all()


class TestServiceMetrics:
    def _specs(self, count, base="ring", n=12):
        return [ScenarioSpec(base=base, n=n, seed=k) for k in range(count)]

    def test_service_folds_into_the_registry(self):
        async def main():
            async with ScenarioService(concurrency=2, max_entries=16) as service:
                handle = await service.submit(self._specs(4))
                await handle.results()
                # resubmit: pure cache hits
                await (await service.submit(self._specs(4))).results()

        asyncio.run(main())
        assert obs_metrics.counter("scenario.batches_submitted").value == 2
        assert obs_metrics.counter("scenario.specs_submitted").value == 8
        assert obs_metrics.counter("scenario.specs_completed").value == 8
        assert obs_metrics.histogram("scenario.queue_wait_ms").count == 8
        assert obs_metrics.histogram("scenario.build_ms").count == 4
        assert obs_metrics.counter("scenario.cache.misses").value == 4
        assert obs_metrics.counter("scenario.cache.hits").value == 4
        assert obs_metrics.counter("scenario.cache.puts").value == 4
        assert obs_metrics.gauge("scenario.queue_depth").value == 0.0

    def test_cache_family_counters_and_residency_gauges(self):
        cache = ScenarioCache(max_entries=2)
        specs = self._specs(3)
        generate_batch(specs, cache=cache)
        assert obs_metrics.counter("scenario.batches").value == 1
        family_misses = obs_metrics.counter("scenario.cache.misses.pattern").value
        assert family_misses == 3
        assert obs_metrics.counter("scenario.cache.evictions").value == 1  # LRU bound
        assert obs_metrics.gauge("scenario.cache.entries").value == 2.0
        assert obs_metrics.gauge("scenario.cache.bytes").value == cache.resident_bytes
        cache.clear()
        assert obs_metrics.gauge("scenario.cache.entries").value == 0.0
        assert obs_metrics.gauge("scenario.cache.bytes").value == 0.0


class TestVerifyTraceArtifact:
    def test_failing_traced_corpus_leaves_a_perfetto_file(self, tmp_path):
        runtime.configure(tracing=True)
        report = run_corpus(
            [ScenarioSpec(base="clique", n=16, seed=77)],
            oracles=(KernelEqualityOracle(semiring=PERTURBED_SEMIRING),),
            repro_dir=tmp_path,
        )
        assert not report.ok
        assert report.trace_path is not None and report.trace_path.exists()
        assert report.trace_path.name == "trace_run_corpus.json"
        document = json.loads(report.trace_path.read_text())
        _validate_trace_events(document["traceEvents"])
        assert any(ev["name"] == "verify.run_corpus" for ev in document["traceEvents"])
        assert str(report.trace_path) in report.summary()

    def test_passing_or_untraced_runs_leave_no_artifact(self, tmp_path):
        report = run_corpus(
            [ScenarioSpec(base="ring", n=10, seed=1)],
            oracles=(KernelEqualityOracle(),),
            repro_dir=tmp_path,
        )
        assert report.ok and report.trace_path is None


class TestPerfettoExportOfServiceBatch:
    def test_real_service_batch_export_is_schema_valid(self, tmp_path):
        """Acceptance criterion: a traced service batch exports loadable JSON."""
        runtime.configure(tracing=True)

        async def main():
            async with ScenarioService(concurrency=2) as service:
                await (await service.submit(
                    [ScenarioSpec(base="ring", n=12, seed=k) for k in range(3)]
                )).results()

        asyncio.run(main())
        tracer = obs_trace.get_tracer()
        assert len(tracer) > 0
        path = obs_trace.write_trace_json(tracer.spans(), tmp_path / "service.json")
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        _validate_trace_events(document["traceEvents"])
        names = {ev["name"] for ev in document["traceEvents"]}
        assert "runtime.async_submit" in names
