"""Curriculum play-through: gating, retries, autoplay."""

import pytest

from repro.errors import GameError
from repro.game.curriculum_session import CurriculumSession
from repro.game.players import PerfectPlayer, RandomPlayer
from repro.modules.curriculum import Curriculum, Unit
from repro.modules.library import builtin_catalog, family_modules


def course() -> Curriculum:
    cat = builtin_catalog()
    return Curriculum(
        Unit(
            "Course",
            children=(
                Unit("Basics", modules=(cat["training/training"],)),
                Unit(
                    "Topologies",
                    modules=tuple(family_modules("topologies")),
                    requires=("Basics",),
                    pass_score=0.75,
                ),
            ),
        )
    )


class TestGating:
    def test_locked_unit_rejected(self):
        cs = CurriculumSession(course())
        with pytest.raises(GameError, match="missing prerequisites"):
            cs.start_unit("Topologies")

    def test_grouping_unit_auto_passes(self):
        cs = CurriculumSession(course())
        assert cs.start_unit("Course") is None
        assert "Course" in cs.passed_units

    def test_pass_unlocks_dependents(self):
        cs = CurriculumSession(course())
        cs.start_unit("Course")
        session = cs.start_unit("Basics")
        session.answer(session.presentation().correct_index)
        result = cs.finish_unit()
        assert result.passed
        assert any(u.title == "Topologies" for u in cs.available())

    def test_already_passed_rejected(self):
        cs = CurriculumSession(course())
        cs.start_unit("Course")
        with pytest.raises(GameError, match="already passed"):
            cs.start_unit("Course")

    def test_one_unit_at_a_time(self):
        cs = CurriculumSession(course())
        cs.start_unit("Course")
        cs.start_unit("Basics")
        with pytest.raises(GameError, match="in progress"):
            cs.start_unit("Basics")

    def test_finish_without_start(self):
        cs = CurriculumSession(course())
        with pytest.raises(GameError, match="no unit"):
            cs.finish_unit()

    def test_abandon_records_nothing(self):
        cs = CurriculumSession(course())
        cs.start_unit("Course")
        cs.start_unit("Basics")
        cs.abandon_unit()
        assert cs.attempts == (cs.attempts[0],)  # only the grouping auto-pass


class TestRetries:
    def test_failed_unit_can_retry_with_fresh_shuffle(self):
        cs = CurriculumSession(course(), seed=1)
        cs.start_unit("Course")
        session = cs.start_unit("Basics")
        pres1 = session.presentation()
        wrong = (pres1.correct_index + 1) % 3
        session.answer(wrong)
        result = cs.finish_unit()
        assert not result.passed
        session2 = cs.start_unit("Basics")
        assert session2 is not session


class TestAutoplay:
    def test_perfect_player_completes(self):
        cs = CurriculumSession(course(), seed=2)
        results = cs.autoplay(PerfectPlayer())
        assert cs.is_complete()
        assert all(r.passed for r in results)
        assert set(cs.passed_units) == {"Course", "Basics", "Topologies"}

    def test_random_player_may_stall_at_pass_bar(self):
        cs = CurriculumSession(course(), seed=3)
        results = cs.autoplay(RandomPlayer(seed=3), max_attempts_per_unit=2)
        # either it got lucky and finished, or it stopped after repeated fails
        if not cs.is_complete():
            failed = [r for r in results if not r.passed]
            assert len(failed) >= 2
