"""Quiz flow, sessions, and the simulated players."""

import pytest

from repro.errors import GameError, QuizError
from repro.game.players import AnalystPlayer, PerfectPlayer, RandomPlayer
from repro.game.quiz import judge_answer, present_question
from repro.game.session import GameSession
from repro.modules.obfuscate import obfuscate_module


class TestPresentQuestion:
    def test_shuffled_options_track_correct(self, tpl10):
        pres = present_question(tpl10, seed=5)
        assert sorted(pres.options) == ["0", "1", "2"]
        assert pres.options[pres.correct_index] == "2"

    def test_hint_carried(self, catalog):
        pres = present_question(catalog["topologies/isolated_links"], seed=1)
        assert "HPEC" in pres.hint

    def test_question_toggled_off_raises(self, tpl10):
        with pytest.raises(QuizError, match="toggled off"):
            present_question(tpl10.without_question())

    def test_option_lines_numbered(self, tpl10):
        pres = present_question(tpl10, seed=5)
        lines = pres.option_lines()
        assert lines[0].startswith("  1)") and len(lines) == 3


class TestJudgeAnswer:
    def test_correct_and_wrong(self, tpl10):
        pres = present_question(tpl10, seed=5)
        good = judge_answer(tpl10.question, pres, pres.correct_index)
        assert good.correct and good.chosen == "2"
        wrong = judge_answer(tpl10.question, pres, (pres.correct_index + 1) % 3)
        assert not wrong.correct and wrong.correct_answer == "2"

    def test_out_of_range_choice(self, tpl10):
        pres = present_question(tpl10, seed=5)
        with pytest.raises(QuizError, match="out of range"):
            judge_answer(tpl10.question, pres, 3)

    def test_obfuscated_judging(self, tpl10):
        ob = obfuscate_module(tpl10)
        pres = present_question(ob, seed=5)
        assert pres.correct_index is None
        options = list(pres.options)
        result = judge_answer(ob.question, pres, options.index("2"))
        assert result.correct


class TestGameSession:
    def make(self, catalog, n=4, seed=3):
        return GameSession(list(catalog.values())[:n], seed=seed)

    def test_sequential_navigation(self, catalog):
        s = self.make(catalog)
        first = s.current
        s.next_module()
        assert s.current is not first
        s.prev_module()
        assert s.current is first

    def test_navigation_clamps_at_ends(self, catalog):
        s = self.make(catalog, n=2)
        s.prev_module()
        assert s.index == 0
        s.next_module()
        s.next_module()
        assert s.index == 1 and s.is_last()

    def test_presentation_stable_within_session(self, catalog):
        s = self.make(catalog)
        p1 = s.presentation()
        s.next_module()
        s.prev_module()
        assert s.presentation().options == p1.options

    def test_answer_scoring(self, catalog):
        s = self.make(catalog, n=3)
        pres = s.presentation()
        result = s.answer(pres.correct_index)
        assert result.correct and s.score == 1

    def test_single_attempt_per_module(self, catalog):
        s = self.make(catalog)
        s.answer(s.presentation().correct_index)
        with pytest.raises(QuizError, match="already answered"):
            s.answer(0)

    def test_report(self, catalog):
        s = self.make(catalog, n=3)
        s.answer(s.presentation().correct_index)
        s.next_module()
        pres = s.presentation()
        s.answer((pres.correct_index + 1) % 3)
        rep = s.report()
        assert rep.questions_asked == 2 and rep.correct == 1
        assert rep.score_fraction == 0.5
        assert "1/2" in rep.summary()

    def test_empty_session_rejected(self):
        with pytest.raises(GameError):
            GameSession([])

    def test_seeded_sessions_reproducible(self, catalog):
        mods = list(catalog.values())[:5]
        s1, s2 = GameSession(mods, seed=9), GameSession(mods, seed=9)
        for _ in range(5):
            assert s1.presentation().options == s2.presentation().options
            if not s1.is_last():
                s1.next_module()
                s2.next_module()
            else:
                break


class TestPlayers:
    def test_perfect_player_aces_catalog(self):
        from repro.game.app import TrafficWarehouse

        game = TrafficWarehouse(seed=1)
        rep = game.autoplay(PerfectPlayer())
        assert rep.correct == rep.questions_asked

    def test_perfect_player_rejects_obfuscated(self, tpl10):
        ob = obfuscate_module(tpl10)
        pres = present_question(ob, seed=1)
        with pytest.raises(ValueError):
            PerfectPlayer().choose(ob, pres)

    def test_random_player_near_third(self):
        from repro.game.app import TrafficWarehouse

        totals = []
        for seed in range(5):
            game = TrafficWarehouse(seed=seed)
            rep = game.autoplay(RandomPlayer(seed=seed))
            totals.append(rep.score_fraction)
        mean = sum(totals) / len(totals)
        assert 0.15 < mean < 0.55  # ~1/3 with small-sample slack

    def test_analyst_beats_random_substantially(self):
        from repro.game.app import TrafficWarehouse

        analyst = TrafficWarehouse(seed=2).autoplay(AnalystPlayer(seed=2))
        rand = TrafficWarehouse(seed=2).autoplay(RandomPlayer(seed=2))
        assert analyst.score_fraction > rand.score_fraction + 0.25

    def test_analyst_answers_counting_questions(self, tpl10):
        pres = present_question(tpl10, seed=4)
        choice = AnalystPlayer().choose(tpl10, pres)
        assert pres.options[choice] == "2"

    def test_analyst_classifies_patterns(self, catalog):
        module = catalog["graph_theory/ring"]
        pres = present_question(module, seed=4)
        choice = AnalystPlayer().choose(module, pres)
        assert pres.options[choice] == "Ring"

    def test_analyst_deterministic_for_seed(self, catalog):
        module = catalog["challenge/supernode_in_noise"]
        pres = present_question(module, seed=4)
        a, b = AnalystPlayer(seed=7), AnalystPlayer(seed=7)
        assert a.choose(module, pres) == b.choose(module, pres)
