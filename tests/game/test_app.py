"""The TrafficWarehouse application: actions, screens, CLI, bundles."""

import io

import pytest

from repro.engine.input import Key
from repro.errors import GameError
from repro.game.app import TrafficWarehouse, main
from repro.modules.library import builtin_catalog
from repro.modules.loader import save_bundle, save_module
from repro.modules.templates import template_6x6, template_10x10
from repro.render.ansi import strip_ansi
from repro.render.camera import ViewMode


class TestActions:
    def game(self, n=3):
        return TrafficWarehouse(list(builtin_catalog().values())[:n], seed=1)

    def test_toggle_view(self):
        g = self.game()
        status = g.handle_action("toggle_view")
        assert "3D" in status
        assert g.level.camera.mode is ViewMode.ISOMETRIC_3D

    def test_rotation(self):
        g = self.game()
        g.handle_action("toggle_view")
        assert "1/8" in g.handle_action("rotate_right")
        assert "0/8" in g.handle_action("rotate_left")

    def test_answer_actions(self):
        g = self.game()
        pres = g.session.presentation()
        status = g.handle_action(f"answer_{pres.correct_index + 1}")
        assert "correct!" in status

    def test_wrong_answer_reports_truth(self):
        g = self.game()
        pres = g.session.presentation()
        wrong = (pres.correct_index + 1) % 3
        status = g.handle_action(f"answer_{wrong + 1}")
        assert "wrong" in status and "the answer was" in status

    def test_navigation_builds_new_level(self):
        g = self.game()
        level_before = g.level
        status = g.handle_action("next_module")
        assert "module 2/3" in status
        assert g.level is not level_before
        assert g.level.x_labels() == list(g.current.matrix.labels)

    def test_hint_action(self):
        g = TrafficWarehouse([builtin_catalog()["topologies/isolated_links"]], seed=1)
        assert "HPEC" in g.handle_action("hint")

    def test_hint_without_question(self):
        g = TrafficWarehouse([template_10x10().without_question()], seed=1)
        assert "no question" in g.handle_action("hint")

    def test_unknown_action(self):
        with pytest.raises(GameError, match="unknown action"):
            self.game().handle_action("fly")

    def test_handle_key_translates(self):
        g = self.game()
        assert "3D" in g.handle_key(Key.SPACE)

    def test_quit_action(self):
        assert self.game().handle_action("quit") == "quit"


class TestScreen:
    def test_2d_screen_shows_matrix_and_question(self):
        g = TrafficWarehouse([template_10x10()], seed=1)
        screen = strip_ansi(g.render_screen(ansi=False))
        assert "Traffic Warehouse" in screen
        assert "WS1" in screen
        assert "How many packets did WS1 send to ADV4?" in screen
        assert "1)" in screen

    def test_3d_screen_renders_scene(self):
        g = TrafficWarehouse([template_6x6()], seed=1)
        g.handle_action("toggle_view")
        screen = g.render_screen(ansi=False, width=70, height=24)
        assert "█" in screen

    def test_answered_state_shown(self):
        g = TrafficWarehouse([template_10x10()], seed=1)
        pres = g.session.presentation()
        g.handle_action(f"answer_{pres.correct_index + 1}")
        assert "answered: correct!" in g.render_screen(ansi=False)


class TestLoading:
    def test_from_json_path(self, tmp_path):
        path = save_module(template_6x6(), tmp_path / "m.json")
        g = TrafficWarehouse.from_path(path)
        assert g.current.size == "6x6"

    def test_from_bundle_path(self, tmp_path):
        path = tmp_path / "b.zip"
        save_bundle([template_6x6(), template_10x10()], path)
        g = TrafficWarehouse.from_path(path)
        assert len(g.session.modules) == 2

    def test_default_is_full_catalog(self):
        g = TrafficWarehouse(seed=1)
        assert len(g.session.modules) == len(builtin_catalog())


class TestCLI:
    def run_cli(self, commands, argv=None):
        stdin = io.StringIO("\n".join(commands) + "\n")
        stdout = io.StringIO()
        code = main(argv or [], stdin=stdin, stdout=stdout)
        return code, stdout.getvalue()

    def test_quit_immediately(self):
        code, out = self.run_cli(["quit"])
        assert code == 0 and "Traffic Warehouse" in out

    def test_space_toggles_view(self):
        code, out = self.run_cli([" ", "quit"])
        assert "3D warehouse" in out

    def test_answer_and_score_summary(self, tmp_path):
        path = save_module(template_10x10(), tmp_path / "m.json")
        # find which option is correct under the app's seed by simulating
        g = TrafficWarehouse.from_path(path)
        pres = g.session.presentation()
        code, out = self.run_cli([str(pres.correct_index + 1), "quit"], argv=[str(path)])
        assert "correct!" in out
        assert "1/1 questions correct" in out

    def test_unknown_key_help(self):
        code, out = self.run_cli(["z", "quit"])
        assert "unknown key" in out

    def test_double_answer_reports_quiz_error(self, tmp_path):
        path = save_module(template_10x10(), tmp_path / "m.json")
        code, out = self.run_cli(["1", "2", "quit"], argv=[str(path)])
        assert "already answered" in out

    def test_bad_path_is_reported(self):
        code, out = self.run_cli([], argv=["/nonexistent/file.json"])
        assert code == 2 and "error:" in out

    def test_escape_quits(self):
        code, out = self.run_cli(["escape"])
        assert code == 0


class TestAutoplay:
    def test_runs_every_question(self):
        from repro.game.players import PerfectPlayer

        g = TrafficWarehouse(seed=4)
        rep = g.autoplay(PerfectPlayer())
        with_q = sum(1 for m in g.session.modules if m.has_question)
        assert rep.questions_asked == with_q
        assert rep.total_modules == len(g.session.modules)


class TestCurriculumBundleLoading:
    def test_from_path_plays_curriculum_in_prereq_order(self, tmp_path):
        from repro.modules.curriculum import Curriculum, Unit, save_curriculum_bundle

        late = Unit("Late", modules=(template_6x6(),), requires=("Early",))
        early = Unit("Early", modules=(template_10x10(),))
        course = Curriculum(Unit("Root", children=(late, early)))
        path = save_curriculum_bundle(course, tmp_path / "course.zip")
        g = TrafficWarehouse.from_path(path)
        # prerequisite order puts the 10x10 (Early) before the 6x6 (Late),
        # even though sorted member names would do the opposite
        assert [m.size for m in g.session.modules] == ["10x10", "6x6"]

    def test_plain_bundle_unaffected(self, tmp_path):
        path = tmp_path / "plain.zip"
        save_bundle([template_6x6(), template_10x10()], path)
        g = TrafficWarehouse.from_path(path)
        assert [m.size for m in g.session.modules] == ["6x6", "10x10"]
