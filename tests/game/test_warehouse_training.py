"""Warehouse levels and the built-in training walkthrough."""

import pytest

from repro.errors import GameError
from repro.game.training import TRAINING_STEPS, TrainingLevel, training_module
from repro.game.warehouse import PALLET_SPACING, WarehouseLevel, build_level
from repro.render.camera import ViewMode


class TestBuildLevel:
    def test_scene_shape_matches_fig2(self, tpl10):
        root = build_level(tpl10)
        assert root.has_node("Data")
        assert root.has_node("Floor")
        ctrl = root.get_node("PalletAndLabelController")
        assert ctrl.has_node("X") and ctrl.has_node("Y") and ctrl.has_node("Pallets")

    def test_pallet_count(self, tpl10):
        root = build_level(tpl10)
        pallets = root.get_node("PalletAndLabelController/Pallets")
        assert pallets.get_child_count() == 100

    def test_pallet_children_order_for_script(self, tpl10):
        root = build_level(tpl10)
        pallet = root.get_node("PalletAndLabelController/Pallets/Pallet0")
        # the paper's script colours get_child(0); boxes live at index 1
        assert pallet.get_child(0).name == "Mesh"
        assert pallet.get_child(1).name == "Boxes"

    def test_pallet_positions_row_major(self, tpl10):
        root = build_level(tpl10)
        p27 = root.get_node("PalletAndLabelController/Pallets/Pallet27")
        assert p27.position.x == pytest.approx(7 * PALLET_SPACING)
        assert p27.position.z == pytest.approx(2 * PALLET_SPACING)

    def test_data_node_carries_module_json(self, tpl10):
        root = build_level(tpl10)
        data = root.get_node("Data")
        assert data.data["name"] == tpl10.name
        assert data.data["axis_labels"][0] == "WS1"

    def test_label_rows_have_stand_and_text(self, tpl10):
        root = build_level(tpl10)
        holder = root.get_node("PalletAndLabelController/X").get_child(0)
        assert holder.get_child(0).mesh == "label_stand"
        assert holder.get_child(1).text == ""  # script fills at _ready


class TestWarehouseLevel:
    def test_labels_set_on_ready(self, tpl6):
        level = WarehouseLevel(tpl6)
        assert level.x_labels() == list(tpl6.matrix.labels)

    def test_pallet_bounds_checked(self, tpl6):
        level = WarehouseLevel(tpl6)
        with pytest.raises(GameError):
            level.pallet(6, 0)

    def test_place_all_packets(self, tpl10):
        level = WarehouseLevel(tpl10)
        placed = level.place_all_packets()
        assert placed == tpl10.matrix.total_packets()
        assert level.all_packets_placed()

    def test_box_counts_match_cells(self, tpl10):
        level = WarehouseLevel(tpl10)
        level.place_all_packets()
        boxes = level.pallet(0, 9).get_node("Boxes")
        assert boxes.get_child_count() == 2  # WS1 -> ADV4 holds 2 packets
        assert level.pallet(0, 0).get_node("Boxes").get_child_count() == 1

    def test_incremental_placement(self, tpl10):
        level = WarehouseLevel(tpl10)
        level.place_packets(5)
        assert level.packets_placed == 5
        level.place_packets(1000)
        assert level.all_packets_placed()

    def test_boxes_stack_upward(self):
        from repro.modules.builder import ModuleBuilder
        from repro.core.traffic_matrix import TrafficMatrix

        m = TrafficMatrix([[6, 0], [0, 0]], labels=["A", "B"])
        module = ModuleBuilder("Stacks").matrix(m).build()
        level = WarehouseLevel(module)
        level.place_all_packets()
        boxes = level.pallet(0, 0).get_node("Boxes").get_children()
        heights = {b.position.y for b in boxes}
        assert len(heights) == 2  # 6 boxes = one full 2x2 layer + part of the next

    def test_view_controls(self, tpl6):
        level = WarehouseLevel(tpl6)
        assert level.camera.mode is ViewMode.TOP_DOWN_2D
        assert level.toggle_view() is ViewMode.ISOMETRIC_3D
        assert level.rotate_right() == 1
        assert level.rotate_left() == 0

    def test_render_both_views(self, tpl6):
        level = WarehouseLevel(tpl6)
        level.place_all_packets()
        two_d = level.render_ascii(width=60, height=24).to_plain()
        level.toggle_view()
        three_d = level.render_ascii(width=60, height=24).to_plain()
        assert "█" in two_d and "█" in three_d
        assert two_d != three_d

    def test_render_pixels(self, tpl6):
        frame = WarehouseLevel(tpl6).render_pixels(width=80, height=60)
        assert frame.shape == (60, 80, 3)


class TestTraining:
    def test_module_is_template(self, tpl10):
        assert training_module().matrix == tpl10.matrix

    def test_steps_cover_controls(self):
        actions = {s.requires_action for s in TRAINING_STEPS if s.requires_action}
        assert "toggle_view" in actions and "rotate_left" in actions

    def test_walkthrough_happy_path(self):
        t = TrainingLevel()
        advanced = 0
        while not t.completed:
            step = t.current_step
            assert t.advance(step.requires_action or None)
            advanced += 1
        assert advanced == len(TRAINING_STEPS)
        assert t.progress() == (len(TRAINING_STEPS), len(TRAINING_STEPS))

    def test_action_gate_blocks_wrong_input(self):
        t = TrainingLevel()
        # advance to the SPACE-gated step
        while t.current_step.requires_action is None:
            t.advance()
        assert not t.advance(None)
        assert not t.advance("rotate_left")
        assert t.advance("toggle_view")

    def test_gated_action_applies_to_level(self):
        t = TrainingLevel()
        while t.current_step.requires_action != "toggle_view":
            t.advance(t.current_step.requires_action)
        t.advance("toggle_view")
        assert t.level.camera.mode is ViewMode.ISOMETRIC_3D

    def test_rotate_gate_accepts_either_direction(self):
        t = TrainingLevel()
        while t.current_step.requires_action != "rotate_left":
            t.advance(t.current_step.requires_action)
        assert t.advance("rotate_right")

    def test_advance_after_completion(self):
        t = TrainingLevel()
        while not t.completed:
            t.advance(t.current_step.requires_action)
        assert not t.advance()
        with pytest.raises(GameError):
            _ = t.current_step
