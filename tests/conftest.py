"""Shared fixtures for the Traffic Warehouse test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.resources import reset_registry
from repro.modules.library import builtin_catalog
from repro.modules.templates import template_6x6, template_10x10


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def tpl10():
    return template_10x10()


@pytest.fixture()
def tpl6():
    return template_6x6()


@pytest.fixture(scope="session")
def catalog():
    return builtin_catalog()


@pytest.fixture(autouse=True)
def _clean_resource_registry():
    """Each test sees the pristine material registry."""
    reset_registry()
    yield
    reset_registry()
