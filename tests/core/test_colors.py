"""Colour-code semantics: palette, materials, grid validation."""

import numpy as np
import pytest

from repro.core.colors import (
    COLOR_CODES,
    DEFAULT_MATERIAL,
    FALLBACK_MATERIAL,
    PalletColor,
    ansi_for_code,
    color_name,
    material_for_code,
    validate_color_grid,
)
from repro.errors import ColorError


class TestPalletColor:
    def test_codes_match_json_encoding(self):
        assert PalletColor.GREY == 0
        assert PalletColor.BLUE == 1
        assert PalletColor.RED == 2

    def test_color_codes_tuple(self):
        assert COLOR_CODES == (0, 1, 2)

    def test_material_paths_are_distinct(self):
        mats = {c.material for c in PalletColor}
        assert len(mats) == 3
        assert all(m.startswith("res://") for m in mats)

    def test_from_int_round_trip(self):
        for code in COLOR_CODES:
            assert int(PalletColor(code)) == code

    def test_invalid_code_raises(self):
        with pytest.raises(ValueError):
            PalletColor(3)


class TestColorName:
    @pytest.mark.parametrize("code,name", [(0, "grey"), (1, "blue"), (2, "red")])
    def test_known_codes(self, code, name):
        assert color_name(code) == name

    @pytest.mark.parametrize("code,name", [(3, "yellow"), (4, "green")])
    def test_extended_codes_named(self, code, name):
        assert color_name(code) == name

    @pytest.mark.parametrize("code", [-1, 5, 99])
    def test_unknown_codes_are_black(self, code):
        assert color_name(code) == "black"


class TestMaterialForCode:
    def test_known_codes(self):
        assert material_for_code(2) == PalletColor.RED.material

    def test_fallback_matches_gdscript_wildcard_arm(self):
        assert material_for_code(7) == FALLBACK_MATERIAL

    def test_default_material_distinct_from_colors(self):
        assert DEFAULT_MATERIAL not in {material_for_code(c) for c in COLOR_CODES}


class TestAnsiForCode:
    def test_distinct_escapes(self):
        assert len({ansi_for_code(c) for c in (0, 1, 2, 9)}) == 4


class TestValidateColorGrid:
    def test_valid_grid_passes(self):
        grid = validate_color_grid(np.asarray([[0, 1], [2, 0]]))
        assert grid.dtype == np.int8
        assert grid.tolist() == [[0, 1], [2, 0]]

    def test_contiguous_output(self):
        grid = validate_color_grid(np.asarray([[0, 1], [2, 0]])[::-1])
        assert grid.flags["C_CONTIGUOUS"]

    def test_bad_code_raises_with_position(self):
        with pytest.raises(ColorError, match=r"\(1, 0\)"):
            validate_color_grid(np.asarray([[0, 0], [5, 0]]))

    def test_non_2d_rejected(self):
        with pytest.raises(ColorError, match="2-D"):
            validate_color_grid(np.asarray([0, 1, 2]))

    def test_non_strict_keeps_unknown_codes(self):
        grid = validate_color_grid(np.asarray([[9]]), strict=False)
        assert grid[0, 0] == 9
