"""TrafficMatrix: construction, access, algebra, conversions, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import TEMPLATE_LABELS_10
from repro.core.spaces import NetworkSpace
from repro.core.traffic_matrix import MAX_DISPLAY_PACKETS, TrafficMatrix
from repro.errors import ColorError, LabelError, ShapeError, TrafficMatrixError


def small_matrices():
    """Hypothesis strategy: small random traffic matrices."""
    return st.integers(2, 8).flatmap(
        lambda n: st.lists(
            st.lists(st.integers(0, 14), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        ).map(lambda rows: TrafficMatrix(np.asarray(rows)))
    )


class TestConstruction:
    def test_zeros(self):
        tm = TrafficMatrix.zeros(10)
        assert tm.n == 10 and tm.nnz() == 0
        assert tm.labels == TEMPLATE_LABELS_10

    def test_identity(self):
        tm = TrafficMatrix.identity(4, packets=3)
        assert tm.total_packets() == 12
        assert tm[0, 0] == 3 and tm[0, 1] == 0

    def test_rejects_non_square(self):
        with pytest.raises(ShapeError):
            TrafficMatrix(np.zeros((2, 3), dtype=int))

    def test_rejects_negative(self):
        with pytest.raises(TrafficMatrixError, match="negative"):
            TrafficMatrix([[0, -1], [0, 0]])

    def test_rejects_fractional(self):
        with pytest.raises(TrafficMatrixError, match="integer"):
            TrafficMatrix([[0.5, 0], [0, 0]])

    def test_accepts_integral_floats(self):
        tm = TrafficMatrix([[1.0, 0.0], [0.0, 2.0]])
        assert tm[1, 1] == 2

    def test_rejects_wrong_label_count(self):
        with pytest.raises(LabelError):
            TrafficMatrix(np.zeros((3, 3), dtype=int), labels=["A", "B"])

    def test_rejects_wrong_color_shape(self):
        with pytest.raises(ShapeError):
            TrafficMatrix(np.zeros((3, 3), dtype=int), colors=np.zeros((2, 2), dtype=int))

    def test_from_edges_accumulates(self):
        tm = TrafficMatrix.from_edges(
            [("WS1", "ADV1", 1), ("WS1", "ADV1", 2), (1, 0, 5)],
            labels=["WS1", "ADV1"],
        )
        assert tm["WS1", "ADV1"] == 3  # repeated edges accumulate
        assert tm["ADV1", "WS1"] == 5  # integer indexing addresses the same axes

    def test_from_edges_out_of_range(self):
        with pytest.raises(ShapeError):
            TrafficMatrix.from_edges([(0, 5, 1)], labels=["A", "B"])

    def test_input_not_aliased(self):
        arr = np.zeros((2, 2), dtype=np.int64)
        tm = TrafficMatrix(arr)
        arr[0, 0] = 99
        assert tm[0, 0] == 0


class TestAccess:
    def test_get_set_by_label(self, tpl10):
        m = tpl10.matrix
        assert m["WS1", "ADV4"] == 2
        assert m["WS1", "WS1"] == 1

    def test_get_by_mixed_index(self, tpl10):
        assert tpl10.matrix[0, "ADV4"] == 2

    def test_negative_index_wraps(self, tpl10):
        assert tpl10.matrix[-10, -1] == 2  # WS1 -> ADV4

    def test_out_of_range_raises(self, tpl10):
        with pytest.raises(ShapeError):
            tpl10.matrix[11, 0]

    def test_unknown_label_raises(self, tpl10):
        with pytest.raises(LabelError):
            tpl10.matrix["NOPE", 0]

    def test_set_negative_rejected(self):
        tm = TrafficMatrix.zeros(3)
        with pytest.raises(TrafficMatrixError):
            tm[0, 1] = -1

    def test_add_packets(self):
        tm = TrafficMatrix.zeros(3)
        tm.add_packets(0, 1, 4)
        tm.add_packets(0, 1, -1)
        assert tm[0, 1] == 3

    def test_add_packets_underflow(self):
        tm = TrafficMatrix.zeros(3)
        with pytest.raises(TrafficMatrixError):
            tm.add_packets(0, 1, -1)

    def test_color_get_set(self):
        tm = TrafficMatrix.zeros(3)
        tm.set_color(0, 1, 2)
        assert int(tm.color_of(0, 1)) == 2

    def test_bad_color_rejected(self):
        tm = TrafficMatrix.zeros(3)
        with pytest.raises(ColorError):
            tm.set_color(0, 0, 5)

    def test_views_are_read_only(self, tpl10):
        with pytest.raises(ValueError):
            tpl10.matrix.packets[0, 0] = 9


class TestStats:
    def test_template_stats(self, tpl10):
        m = tpl10.matrix
        assert m.nnz() == 20
        assert m.total_packets() == 30
        assert m.density() == pytest.approx(0.2)
        assert m.max_packets() == 2

    def test_degrees(self, tpl10):
        m = tpl10.matrix
        assert m.out_degrees().tolist() == [3] * 10
        assert m.in_degrees().tolist() == [3] * 10
        assert m.out_fan().tolist() == [2] * 10

    def test_display_limit_reporting(self):
        tm = TrafficMatrix.zeros(3)
        tm[0, 1] = MAX_DISPLAY_PACKETS
        tm[1, 2] = MAX_DISPLAY_PACKETS - 1
        over = tm.cells_over_display_limit()
        assert over == [("N1", "N2", MAX_DISPLAY_PACKETS)]

    def test_iter_edges_labels(self, tpl6):
        edges = list(tpl6.matrix.iter_edges())
        assert ("WS1", "ADV2", 2) in edges
        assert all(w > 0 for *_e, w in edges)

    def test_space_traffic_blocks(self, tpl10):
        blocks = tpl10.matrix.space_traffic()
        # template: blue diag(4×1) + blue->red antidiag(4×2)
        assert blocks[(NetworkSpace.BLUE, NetworkSpace.BLUE)] == 4
        assert blocks[(NetworkSpace.BLUE, NetworkSpace.RED)] == 8
        assert sum(blocks.values()) == tpl10.matrix.total_packets()


class TestAlgebra:
    def test_add_overlays_packets_and_colors(self):
        a = TrafficMatrix([[1, 0], [0, 0]], colors=[[1, 0], [0, 0]])
        b = TrafficMatrix([[2, 1], [0, 0]], colors=[[0, 2], [0, 0]])
        c = a + b
        assert c[0, 0] == 3 and c[0, 1] == 1
        assert int(c.color_of(0, 0)) == 1  # blue survives grey
        assert int(c.color_of(0, 1)) == 2  # red wins

    def test_add_requires_same_labels(self):
        a = TrafficMatrix.zeros(2, labels=["A", "B"])
        b = TrafficMatrix.zeros(2, labels=["A", "C"])
        with pytest.raises(LabelError):
            a + b

    def test_add_requires_same_size(self):
        with pytest.raises(ShapeError):
            TrafficMatrix.zeros(2) + TrafficMatrix.zeros(3)

    def test_scalar_multiply(self):
        tm = TrafficMatrix([[1, 2], [0, 3]])
        assert (2 * tm).total_packets() == 12

    def test_scalar_multiply_negative_rejected(self):
        with pytest.raises(TrafficMatrixError):
            TrafficMatrix.zeros(2) * -1

    def test_transpose_reverses_flows(self, tpl10):
        t = tpl10.matrix.T
        assert t["ADV4", "WS1"] == 2
        assert t.T == tpl10.matrix

    def test_submatrix_by_labels(self, tpl10):
        sub = tpl10.matrix.submatrix(["WS1", "ADV4"])
        assert sub.labels == ("WS1", "ADV4")
        assert sub["WS1", "ADV4"] == 2
        assert sub.n == 2

    def test_with_space_colors(self):
        tm = TrafficMatrix.zeros(10)
        colored = tm.with_space_colors()
        assert int(colored.color_of("WS1", "WS2")) == 1
        assert int(colored.color_of("ADV1", "WS1")) == 2

    def test_copy_is_independent(self, tpl10):
        c = tpl10.matrix.copy()
        c[0, 0] = 9
        assert tpl10.matrix[0, 0] == 1


class TestConversions:
    def test_json_fields_round_trip(self, tpl10):
        fields = tpl10.matrix.to_json_fields()
        back = TrafficMatrix.from_json_fields(
            fields["traffic_matrix"], fields["axis_labels"], fields["traffic_matrix_colors"]
        )
        assert back == tpl10.matrix

    def test_to_assoc_preserves_totals(self, tpl10):
        a = tpl10.matrix.to_assoc()
        assert a.sum() == tpl10.matrix.total_packets()
        assert a["WS1", "ADV4"] == 2

    def test_to_networkx(self, tpl10):
        g = tpl10.matrix.to_networkx()
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == tpl10.matrix.nnz()
        assert g["WS1"]["ADV4"]["weight"] == 2

    def test_to_text_contains_labels(self, tpl10):
        text = tpl10.matrix.to_text()
        assert "WS1" in text and "ADV4" in text

    def test_to_text_color_suffixes(self, tpl10):
        text = tpl10.matrix.to_text(show_colors=True)
        assert "2r" in text  # red-annotated anti-diagonal entries


class TestEquality:
    def test_equal_matrices(self, tpl10):
        assert tpl10.matrix == tpl10.matrix.copy()

    def test_different_colors_not_equal(self, tpl10):
        other = tpl10.matrix.copy()
        other.set_color(0, 0, 2)
        assert tpl10.matrix != other

    def test_not_equal_to_other_types(self, tpl10):
        assert tpl10.matrix != "matrix"


class TestProperties:
    @given(small_matrices())
    @settings(max_examples=50, deadline=None)
    def test_transpose_involution(self, tm):
        assert tm.T.T == tm

    @given(small_matrices())
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, tm):
        other = tm.copy()
        assert (tm + other) == (other + tm)

    @given(small_matrices())
    @settings(max_examples=50, deadline=None)
    def test_total_equals_degree_sums(self, tm):
        assert tm.total_packets() == int(tm.out_degrees().sum())
        assert tm.total_packets() == int(tm.in_degrees().sum())

    @given(small_matrices())
    @settings(max_examples=50, deadline=None)
    def test_assoc_round_trip_total(self, tm):
        assert tm.to_assoc().sum() == tm.total_packets()

    @given(small_matrices())
    @settings(max_examples=50, deadline=None)
    def test_space_traffic_partitions_total(self, tm):
        assert sum(tm.space_traffic().values()) == tm.total_packets()
