"""The extended colour palette (paper future work) end to end."""

import numpy as np
import pytest

from repro.core.colors import EXTENDED_COLOR_CODES, validate_color_grid
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ColorError, ModuleSchemaError
from repro.modules.loader import loads_module
from repro.modules.schema import validate_module_dict
from repro.modules.templates import template_10x10_dict


def extended_matrix() -> TrafficMatrix:
    packets = np.zeros((4, 4), dtype=np.int64)
    packets[0, 1] = 2
    packets[1, 2] = 1
    colors = np.asarray([[0, 3, 0, 0], [0, 0, 4, 0], [1, 0, 0, 2], [0, 0, 0, 0]])
    return TrafficMatrix(packets, ["A", "B", "C", "D"], colors, extended_colors=True)


class TestValidation:
    def test_standard_rejects_extended_codes(self):
        with pytest.raises(ColorError, match="invalid code 3"):
            validate_color_grid(np.asarray([[3]]))

    def test_extended_accepts_new_codes(self):
        grid = validate_color_grid(np.asarray([[3, 4]]), extended=True)
        assert grid.tolist() == [[3, 4]]

    def test_extended_still_bounds_codes(self):
        with pytest.raises(ColorError, match="invalid code 5"):
            validate_color_grid(np.asarray([[5]]), extended=True)

    def test_codes_superset(self):
        assert set(EXTENDED_COLOR_CODES) == {0, 1, 2, 3, 4}


class TestTrafficMatrix:
    def test_constructor_gate(self):
        colors = [[3, 0], [0, 0]]
        with pytest.raises(ColorError):
            TrafficMatrix([[0, 0], [0, 0]], ["A", "B"], colors)
        m = TrafficMatrix([[0, 0], [0, 0]], ["A", "B"], colors, extended_colors=True)
        assert m.extended_colors

    def test_set_color_gate(self):
        m = extended_matrix()
        m.set_color("A", "B", 4)
        assert int(m.colors[0, 1]) == 4
        standard = TrafficMatrix.zeros(2, labels=["A", "B"])
        with pytest.raises(ColorError):
            standard.set_color("A", "B", 3)

    def test_flag_propagates_through_algebra(self):
        m = extended_matrix()
        assert (m + m).extended_colors
        assert (m * 2).extended_colors
        assert m.T.extended_colors
        assert m.copy().extended_colors
        assert m.submatrix(["A", "B"]).extended_colors

    def test_to_text_suffixes(self):
        text = extended_matrix().to_text(show_colors=True)
        assert "2y" in text and "1n" in text


class TestSchema:
    def doc(self):
        doc = template_10x10_dict()
        doc["color_mode"] = "extended"
        doc["traffic_matrix_colors"][4][4] = 3
        doc["traffic_matrix_colors"][5][5] = 4
        return doc

    def test_extended_mode_accepted(self):
        module = validate_module_dict(self.doc())
        assert module.matrix.extended_colors
        assert int(module.matrix.colors[4, 4]) == 3

    def test_standard_mode_rejects_with_hint(self):
        doc = self.doc()
        del doc["color_mode"]
        with pytest.raises(ModuleSchemaError, match="color_mode"):
            validate_module_dict(doc)

    def test_bad_mode_string(self):
        doc = self.doc()
        doc["color_mode"] = "rainbow"
        with pytest.raises(ModuleSchemaError, match="rainbow"):
            validate_module_dict(doc)

    def test_round_trip_preserves_mode(self):
        module = validate_module_dict(self.doc())
        back = loads_module(module.to_json())
        assert back.matrix.extended_colors
        assert np.array_equal(back.matrix.colors, module.matrix.colors)

    def test_standard_module_emits_no_mode_field(self, tpl10):
        assert "color_mode" not in tpl10.to_json_dict()


class TestGameDegradation:
    def test_paper_script_renders_extended_codes_black(self):
        """The original GDScript matches only 0/1/2; extended codes must fall
        through to the ``_:`` black-material arm — graceful degradation."""
        from repro.game.warehouse import WarehouseLevel
        from repro.modules.builder import ModuleBuilder

        n = 6
        packets = np.zeros((n, n), dtype=np.int64)
        colors = np.zeros((n, n), dtype=np.int64)
        colors[0, 0] = 3  # yellow — unknown to the classic script
        colors[0, 1] = 1
        matrix = TrafficMatrix(packets, colors=colors, extended_colors=True)
        module = ModuleBuilder("Extended").matrix(matrix).build()
        level = WarehouseLevel(module)
        level.toggle_pallet_colors()
        assert level.pallet(0, 0).get_child(0).material_override.albedo == "black"
        assert level.pallet(0, 1).get_child(0).material_override.albedo == "blue"

    def test_renderer_understands_extended_codes(self):
        from repro.render.ascii2d import CELL_RGB, render_matrix_2d

        assert 3 in CELL_RGB and 4 in CELL_RGB
        out = render_matrix_2d(extended_matrix(), ansi=True, show_zeros=True)
        # the yellow cell's background escape appears
        r, g, b = CELL_RGB[3]
        assert f"\x1b[48;2;{r};{g};{b}m" in out

    def test_extended_materials_preloadable(self):
        from repro.engine.resources import preload

        assert preload("res://Assets/Objects/pallet_material_yellow.tres").albedo == "yellow"
        assert preload("res://Assets/Objects/pallet_material_green.tres").albedo == "green"
