"""Axis-label validation and the shipped template label sets."""

import pytest

from repro.core.labels import (
    MAX_LABEL_LENGTH,
    TEMPLATE_LABELS_6,
    TEMPLATE_LABELS_10,
    default_labels,
    label_indices,
    normalize_label,
    validate_labels,
)
from repro.errors import LabelError


class TestNormalize:
    def test_uppercases_and_strips(self):
        assert normalize_label("  ws1 ") == "WS1"

    def test_empty_raises(self):
        with pytest.raises(LabelError):
            normalize_label("   ")


class TestValidateLabels:
    def test_template_labels_pass(self):
        assert validate_labels(TEMPLATE_LABELS_10) == TEMPLATE_LABELS_10

    def test_lowercase_normalised(self):
        assert validate_labels(["ws1", "adv1"]) == ("WS1", "ADV1")

    def test_duplicate_rejected(self):
        with pytest.raises(LabelError, match="duplicate"):
            validate_labels(["WS1", "ws1"])

    def test_size_mismatch_uses_game_error_text(self):
        with pytest.raises(LabelError, match="does not match number of labels"):
            validate_labels(["WS1", "WS2"], size=3)

    def test_too_long_rejected(self):
        with pytest.raises(LabelError, match=str(MAX_LABEL_LENGTH)):
            validate_labels(["WORKSTATION1"])

    def test_bad_characters_rejected(self):
        with pytest.raises(LabelError, match="invalid"):
            validate_labels(["WS 1"])

    def test_leading_digit_rejected(self):
        with pytest.raises(LabelError, match="invalid"):
            validate_labels(["1WS"])

    def test_underscore_and_dash_allowed(self):
        assert validate_labels(["A_B", "A-B"]) == ("A_B", "A-B")


class TestDefaultLabels:
    def test_size_6_is_template(self):
        assert default_labels(6) == TEMPLATE_LABELS_6

    def test_size_10_is_paper_template(self):
        assert default_labels(10) == TEMPLATE_LABELS_10
        assert default_labels(10)[0] == "WS1"
        assert default_labels(10)[-1] == "ADV4"

    def test_other_sizes_generic(self):
        assert default_labels(3) == ("N1", "N2", "N3")

    def test_generic_labels_unique(self):
        labels = default_labels(40)
        assert len(set(labels)) == 40

    def test_nonpositive_raises(self):
        with pytest.raises(LabelError):
            default_labels(0)


class TestLabelIndices:
    def test_maps_by_name(self):
        assert label_indices(TEMPLATE_LABELS_10, ["WS1", "ADV4"]) == [0, 9]

    def test_normalises_lookups(self):
        assert label_indices(TEMPLATE_LABELS_10, ["ws1"]) == [0]

    def test_unknown_raises(self):
        with pytest.raises(LabelError, match="NOPE"):
            label_indices(TEMPLATE_LABELS_10, ["NOPE"])
