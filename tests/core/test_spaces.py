"""Blue/grey/red space model: prefix inference, index queries, colour grids."""

import numpy as np
import pytest

from repro.core.labels import TEMPLATE_LABELS_10
from repro.core.spaces import (
    NetworkSpace,
    SpaceMap,
    iter_space_blocks,
    space_of_label,
    spaces_from_counts,
)
from repro.errors import LabelError


class TestSpaceOfLabel:
    @pytest.mark.parametrize(
        "label,space",
        [
            ("WS1", NetworkSpace.BLUE),
            ("SRV1", NetworkSpace.BLUE),
            ("EXT2", NetworkSpace.GREY),
            ("ADV4", NetworkSpace.RED),
        ],
    )
    def test_template_prefixes(self, label, space):
        assert space_of_label(label) is space

    def test_case_insensitive(self):
        assert space_of_label("adv1") is NetworkSpace.RED

    def test_unknown_prefix_defaults_grey(self):
        assert space_of_label("XYZ9") is NetworkSpace.GREY

    def test_longest_prefix_wins(self):
        prefixes = {"S": NetworkSpace.GREY, "SRV": NetworkSpace.BLUE}
        assert space_of_label("SRV1", prefixes) is NetworkSpace.BLUE
        assert space_of_label("S1", prefixes) is NetworkSpace.GREY


class TestSpaceMap:
    def test_infer_template(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        assert sm.indices(NetworkSpace.BLUE).tolist() == [0, 1, 2, 3]
        assert sm.indices(NetworkSpace.GREY).tolist() == [4, 5]
        assert sm.indices(NetworkSpace.RED).tolist() == [6, 7, 8, 9]

    def test_space_of_by_label_and_index(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        assert sm.space_of("SRV1") is NetworkSpace.BLUE
        assert sm.space_of(9) is NetworkSpace.RED

    def test_unknown_label_raises(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        with pytest.raises(LabelError):
            sm.space_of("NOPE")

    def test_mismatched_lengths_raise(self):
        with pytest.raises(LabelError):
            SpaceMap(("A", "B"), (NetworkSpace.BLUE,))

    def test_duplicate_labels_raise(self):
        with pytest.raises(LabelError, match="duplicate"):
            SpaceMap(("A", "A"), (NetworkSpace.BLUE, NetworkSpace.RED))

    def test_labels_in(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        assert sm.labels_in(NetworkSpace.GREY) == ("EXT1", "EXT2")

    def test_pair_space(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        assert sm.pair_space(0, 9) == (NetworkSpace.BLUE, NetworkSpace.RED)


class TestColorGrid:
    def test_blue_block_blue(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        grid = sm.color_grid()
        assert (grid[np.ix_(range(4), range(4))] == 1).all()

    def test_red_rows_and_cols_red(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        grid = sm.color_grid()
        assert (grid[6:, :] == 2).all()
        assert (grid[:, 6:] == 2).all()

    def test_grey_cross_block(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        grid = sm.color_grid()
        assert grid[4, 4] == 0  # grey-grey
        assert grid[0, 4] == 0  # blue->grey stays grey


class TestSpacesFromCounts:
    def test_reproduces_template(self):
        sm = spaces_from_counts(3, 2, 4, blue_servers=1)
        assert sm.labels == TEMPLATE_LABELS_10

    def test_no_servers(self):
        sm = spaces_from_counts(2, 1, 1)
        assert sm.labels == ("WS1", "WS2", "EXT1", "ADV1")


class TestIterSpaceBlocks:
    def test_covers_all_nonempty_blocks(self):
        sm = SpaceMap.infer(TEMPLATE_LABELS_10)
        blocks = list(iter_space_blocks(sm))
        assert len(blocks) == 9  # all three spaces populated
        total = sum(rows.size * cols.size for *_s, rows, cols in blocks)
        assert total == 100

    def test_skips_empty_spaces(self):
        sm = SpaceMap.infer(("WS1", "WS2"))
        blocks = list(iter_space_blocks(sm))
        assert len(blocks) == 1
