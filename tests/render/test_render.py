"""Rendering: 2-D spreadsheet view, camera, rasteriser, scene, PPM."""

import math

import numpy as np
import pytest

from repro.engine.math3d import Vector3
from repro.engine.node import MeshInstance3D, Node3D
from repro.errors import RenderError
from repro.render.ansi import colorize, strip_ansi
from repro.render.ascii2d import render_matrix_2d, render_matrix_compact
from repro.render.camera import ISO_PITCH, OrthoCamera, ViewMode
from repro.render.ppm import read_ppm, write_ppm
from repro.render.raster import CharBuffer, rasterize_points
from repro.render.scene import collect_voxels, render_scene_ascii, render_scene_pixels


class TestAnsi:
    def test_colorize_and_strip(self):
        text = colorize("X", fg=(255, 0, 0), bg=(0, 0, 255))
        assert "X" in text and text != "X"
        assert strip_ansi(text) == "X"

    def test_colorize_noop(self):
        assert colorize("X") == "X"


class TestAscii2D:
    def test_labels_on_both_axes(self, tpl10):
        plain = strip_ansi(render_matrix_2d(tpl10.matrix, ansi=False))
        lines = plain.splitlines()
        assert "WS1" in lines[0] and "ADV4" in lines[0]  # header
        assert any(line.lstrip().startswith("ADV4") for line in lines)

    def test_counts_shown(self, tpl10):
        plain = render_matrix_2d(tpl10.matrix, ansi=False)
        assert "2r" in plain  # count + colour suffix in plain mode
        assert "1g" in plain

    def test_zeros_blank_by_default(self, tpl10):
        plain = render_matrix_2d(tpl10.matrix, ansi=False)
        assert "0g" not in plain

    def test_show_zeros(self, tpl10):
        plain = render_matrix_2d(tpl10.matrix, ansi=False, show_zeros=True)
        assert "0g" in plain

    def test_ansi_mode_contains_escapes(self, tpl10):
        out = render_matrix_2d(tpl10.matrix, ansi=True)
        assert "\x1b[48;2;" in out
        assert strip_ansi(out).count("│") > 0

    def test_grid_is_rectangular(self, tpl10):
        plain = strip_ansi(render_matrix_2d(tpl10.matrix, ansi=False))
        widths = {len(line) for line in plain.splitlines()[1:]}
        assert len(widths) <= 2  # header row + body rows align

    def test_compact_view(self, tpl10):
        out = render_matrix_compact(tpl10.matrix)
        assert out.count("·") == 80
        assert out.count("2") == 10 and out.count("1") == 10

    def test_compact_hash_for_big_counts(self):
        from repro.core.traffic_matrix import TrafficMatrix

        m = TrafficMatrix([[12]], labels=["A"])
        assert render_matrix_compact(m) == "#"


class TestCamera:
    def test_default_2d(self):
        assert OrthoCamera().mode is ViewMode.TOP_DOWN_2D

    def test_toggle(self):
        cam = OrthoCamera()
        assert cam.toggle_mode() is ViewMode.ISOMETRIC_3D
        assert cam.toggle_mode() is ViewMode.TOP_DOWN_2D

    def test_rotation_steps_wrap(self):
        cam = OrthoCamera(mode=ViewMode.ISOMETRIC_3D)
        for _ in range(8):
            cam.rotate_right()
        assert cam.yaw_steps == 0
        cam.rotate_left()
        assert cam.yaw_steps == 7

    def test_2d_projection_is_floor_plan(self):
        cam = OrthoCamera()
        u, v, depth = cam.project(np.asarray([[3.0, 0.0, 2.0]]))
        assert u[0] == pytest.approx(3.0)
        assert v[0] == pytest.approx(2.0)

    def test_2d_height_is_depth(self):
        cam = OrthoCamera()
        _u, _v, depth = cam.project(np.asarray([[0.0, 5.0, 0.0], [0.0, 1.0, 0.0]]))
        assert depth[0] > depth[1]  # higher point is nearer the top-down eye

    def test_3d_yaw_changes_projection(self):
        cam = OrthoCamera(mode=ViewMode.ISOMETRIC_3D)
        pts = np.asarray([[1.0, 0.0, 0.0]])
        u0, *_ = cam.project(pts)
        cam.rotate_right()
        u1, *_ = cam.project(pts)
        assert u0[0] != pytest.approx(u1[0])

    def test_full_turn_returns_same_projection(self):
        cam = OrthoCamera(mode=ViewMode.ISOMETRIC_3D)
        pts = np.asarray([[1.0, 2.0, 3.0]])
        before = cam.project(pts)
        for _ in range(8):
            cam.rotate_right()
        after = cam.project(pts)
        for b, a in zip(before, after):
            assert b[0] == pytest.approx(a[0])

    def test_iso_pitch_constant(self):
        assert ISO_PITCH == pytest.approx(math.atan(1 / math.sqrt(2)))

    def test_bad_points_shape(self):
        with pytest.raises(ValueError):
            OrthoCamera().project(np.zeros((3,)))


class TestCharBuffer:
    def test_put_and_text(self):
        buf = CharBuffer(10, 3)
        buf.text(1, 1, "hi")
        assert buf.to_plain().splitlines()[1][1:3] == "hi"

    def test_clipping(self):
        buf = CharBuffer(4, 2)
        buf.text(2, 0, "long-string")
        buf.put(-1, 5, "x")
        assert len(buf.to_plain().splitlines()[0]) == 4

    def test_bad_size(self):
        with pytest.raises(RenderError):
            CharBuffer(0, 5)

    def test_ansi_only_for_painted(self):
        buf = CharBuffer(3, 1)
        buf.put(0, 0, "#", (255, 0, 0))
        out = buf.to_ansi()
        assert "\x1b[38;2;255;0;0m" in out


class TestRasterize:
    def test_empty_points(self):
        buf = rasterize_points(
            np.asarray([]), np.asarray([]), np.asarray([]),
            np.empty((0, 3), dtype=np.uint8), width=10, height=5,
        )
        assert buf.to_plain().strip() == ""

    def test_single_point_centred(self):
        buf = rasterize_points(
            np.asarray([0.0]), np.asarray([0.0]), np.asarray([0.0]),
            np.asarray([[255, 255, 255]], dtype=np.uint8), width=11, height=5,
        )
        plain = buf.to_plain().splitlines()
        assert plain[2][5] == "█"

    def test_nearest_depth_wins(self):
        # two coincident points, different depths and colours
        buf = rasterize_points(
            np.asarray([0.0, 0.0]), np.asarray([0.0, 0.0]), np.asarray([0.0, 1.0]),
            np.asarray([[10, 10, 10], [200, 200, 200]], dtype=np.uint8),
            width=5, height=5,
        )
        ys, xs = np.nonzero(buf.painted)
        assert buf.colors[ys[0], xs[0]].tolist() == [200, 200, 200]


class TestSceneRender:
    def scene(self):
        root = Node3D("Root")
        m = MeshInstance3D("P", mesh="pallet")
        m.position = Vector3(0, 0, 0)
        root.add_child(m)
        return root

    def test_collect_voxels(self):
        pts, rgb = collect_voxels(self.scene())
        assert pts.shape[0] == rgb.shape[0] > 0

    def test_hidden_subtree_excluded(self):
        root = self.scene()
        root.get_child(0).visible = False
        pts, _ = collect_voxels(root)
        assert pts.shape[0] == 0

    def test_unknown_mesh_ignored(self):
        root = Node3D("Root")
        root.add_child(MeshInstance3D("X", mesh="teapot"))
        pts, _ = collect_voxels(root)
        assert pts.shape[0] == 0

    def test_material_override_recolours(self):
        from repro.engine.resources import preload

        root = self.scene()
        root.get_child(0).material_override = preload(
            "res://Assets/Objects/pallet_material_r.tres"
        )
        _pts, rgb = collect_voxels(root)
        assert (rgb == np.asarray([224, 64, 56], dtype=np.uint8)).all(axis=1).any()

    def test_ascii_render_nonempty(self):
        buf = render_scene_ascii(self.scene(), OrthoCamera(), width=40, height=16)
        assert "█" in buf.to_plain()

    def test_empty_scene_renders_blank(self):
        buf = render_scene_ascii(Node3D("Empty"), OrthoCamera(), width=10, height=4)
        assert buf.to_plain().strip() == ""

    def test_pixel_render_shape_and_content(self):
        frame = render_scene_pixels(self.scene(), OrthoCamera(), width=64, height=48)
        assert frame.shape == (48, 64, 3)
        background = np.asarray([18, 18, 22], dtype=np.uint8)
        assert not (frame == background).all()

    def test_rotation_changes_frame(self):
        cam = OrthoCamera(mode=ViewMode.ISOMETRIC_3D)
        root = self.scene()
        # add a box so rotation visibly changes the silhouette
        box = MeshInstance3D("B", mesh="packet_box")
        box.position = Vector3(2.0, 0.0, 0.0)
        root.add_child(box)
        f0 = render_scene_pixels(root, cam, width=64, height=48)
        cam.rotate_right()
        f1 = render_scene_pixels(root, cam, width=64, height=48)
        assert not np.array_equal(f0, f1)


class TestPPM:
    def test_round_trip(self, tmp_path):
        frame = (np.arange(2 * 3 * 3) % 256).reshape(2, 3, 3).astype(np.uint8)
        path = write_ppm(frame, tmp_path / "f.ppm")
        assert np.array_equal(read_ppm(path), frame)

    def test_header(self, tmp_path):
        frame = np.zeros((4, 7, 3), dtype=np.uint8)
        path = write_ppm(frame, tmp_path / "f.ppm")
        assert path.read_bytes().startswith(b"P6\n7 4\n255\n")

    def test_bad_shape(self, tmp_path):
        with pytest.raises(RenderError):
            write_ppm(np.zeros((4, 4)), tmp_path / "f.ppm")

    def test_read_rejects_non_ppm(self, tmp_path):
        bad = tmp_path / "x.ppm"
        bad.write_bytes(b"JUNK")
        with pytest.raises(RenderError):
            read_ppm(bad)

    def test_read_truncated(self, tmp_path):
        bad = tmp_path / "x.ppm"
        bad.write_bytes(b"P6\n10 10\n255\nxx")
        with pytest.raises(RenderError, match="truncated"):
            read_ppm(bad)
