"""Coverage for corners the thematic suites leave: signals, screens, misc."""

import numpy as np
import pytest

from repro.engine.node import Node, Node3D
from repro.engine.signals import Signal
from repro.errors import SignalError


class TestSignalOneShot:
    def test_one_shot_disconnects_after_first_emit(self):
        sig = Signal("s")
        hits = []
        sig.connect(lambda: hits.append(1), one_shot=True)
        sig.emit()
        sig.emit()
        assert hits == [1]
        assert sig.connection_count() == 0

    def test_double_connect_rejected(self):
        sig = Signal("s")
        cb = lambda: None  # noqa: E731
        sig.connect(cb)
        with pytest.raises(SignalError, match="already connected"):
            sig.connect(cb)

    def test_disconnect_unknown(self):
        with pytest.raises(SignalError, match="not connected"):
            Signal("s").disconnect(lambda: None)

    def test_emit_order_is_connection_order(self):
        sig = Signal("s")
        order = []
        sig.connect(lambda: order.append("a"))
        sig.connect(lambda: order.append("b"))
        sig.emit()
        assert order == ["a", "b"]


class TestAppScreens:
    def test_screen_without_question_shows_controls(self):
        from repro.game.app import TrafficWarehouse
        from repro.modules.templates import template_6x6

        game = TrafficWarehouse([template_6x6().without_question()], seed=1)
        screen = game.render_screen(ansi=False)
        assert "[SPACE]" in screen
        assert "answer with 1-3" not in screen

    def test_obfuscated_module_plays_through_app(self):
        from repro.game.app import TrafficWarehouse
        from repro.modules.obfuscate import obfuscate_module
        from repro.modules.templates import template_10x10

        game = TrafficWarehouse([obfuscate_module(template_10x10())], seed=1)
        pres = game.session.presentation()
        correct_pos = list(pres.options).index("2")
        status = game.handle_action(f"answer_{correct_pos + 1}")
        assert "correct!" in status

    def test_wrong_obfuscated_answer_has_no_reveal(self):
        from repro.game.app import TrafficWarehouse
        from repro.modules.obfuscate import obfuscate_module
        from repro.modules.templates import template_10x10

        game = TrafficWarehouse([obfuscate_module(template_10x10())], seed=1)
        pres = game.session.presentation()
        wrong_pos = next(k for k, o in enumerate(pres.options) if o != "2")
        status = game.handle_action(f"answer_{wrong_pos + 1}")
        assert "wrong" in status and "the answer was" not in status


class TestVoxelRotationShapes:
    def test_non_cubic_rotation_swaps_axes(self):
        from repro.voxel.model import VoxelModel

        m = VoxelModel((2, 5, 7))
        m.set(1, 4, 6, 1)
        r = m.rotated_y90()
        assert r.size == (7, 5, 2)
        assert r.count() == 1


class TestNestedCurriculum:
    def test_deep_nesting_round_trips(self):
        from repro.modules.curriculum import Curriculum, Unit
        from repro.modules.templates import template_6x6

        deep = Curriculum(
            Unit(
                "Root",
                children=(
                    Unit(
                        "Mid",
                        modules=(template_6x6(),),
                        children=(Unit("Leaf", modules=(template_6x6(),)),),
                    ),
                ),
            )
        )
        back = Curriculum.from_json_dict(deep.to_json_dict())
        assert [u.title for u in back.root.iter_units()] == ["Root", "Mid", "Leaf"]
        assert len(back.flatten()) == 2


class TestScalingQuantities:
    def test_destination_scaling_also_sublinear(self):
        from repro.analysis.stats import scaling_relation, synthetic_traffic

        events = synthetic_traffic(n_events=4000, n_endpoints=150, heavy_tail=True, seed=5)
        fit = scaling_relation(
            events,
            lambda s: s.unique_destinations,
            quantity_name="destinations",
            window_sizes=(64, 128, 256, 512),
        )
        assert fit.slope < 1.0
        assert fit.points  # fitted point series exposed for plotting


class TestNodeReprAndTreeDump:
    def test_repr_contains_child_count(self):
        root = Node3D("R")
        root.add_child(Node3D("A"))
        assert "children=1" in repr(root)

    def test_print_tree_single_node(self):
        assert Node("Solo").print_tree() == "Solo (Node)"


class TestAssocArrayMxmSemirings:
    def test_min_plus_through_assoc_layer(self):
        from repro.assoc.array import AssociativeArray
        from repro.assoc.semiring import MIN_PLUS

        hops = AssociativeArray.from_triples(
            ["a", "b"], ["b", "c"], np.asarray([2.0, 3.0])
        )
        two_hop = hops.mxm(hops, MIN_PLUS)
        assert two_hop["a", "c"] == 5.0

    def test_lor_land_reachability_through_assoc_layer(self):
        from repro.assoc.array import AssociativeArray
        from repro.assoc.semiring import LOR_LAND

        edges = AssociativeArray.from_triples(
            ["a", "b"], ["b", "c"], np.asarray([True, True])
        )
        reach2 = edges.mxm(edges, LOR_LAND)
        assert reach2["a", "c"] is True
