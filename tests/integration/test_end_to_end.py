"""Cross-module integration: the full educator → student → analysis loop."""



from repro.analysis.anonymize import anonymize_matrix
from repro.game.app import TrafficWarehouse
from repro.game.players import AnalystPlayer, PerfectPlayer, RandomPlayer
from repro.game.warehouse import WarehouseLevel
from repro.graphs import attack, ddos
from repro.graphs.classify import classify_scenario
from repro.graphs.compose import challenge, overlay
from repro.modules.builder import ModuleBuilder
from repro.modules.library import builtin_catalog
from repro.modules.loader import load_bundle, save_bundle
from repro.modules.obfuscate import obfuscate_module


class TestEducatorWorkflow:
    """The paper's intended flow: author JSON → zip → game presents → student
    answers → educator reads the score."""

    def test_full_loop(self, tmp_path):
        # 1. educator authors a custom lesson from generators
        lesson = (
            ModuleBuilder("Spot the Flood")
            .author("Educator")
            .matrix(ddos.ddos_attack(10))
            .question(
                "Which choice is the displayed traffic pattern most relevant to?",
                answers=["DDoS attack", "Backscatter", "Planning"],
                correct=0,
            )
            .build()
        )
        # 2. bundle with obfuscated answers for distribution
        bundle_path = tmp_path / "lesson.zip"
        save_bundle([obfuscate_module(lesson)], bundle_path)
        # 3. the game loads the bundle and a student (analyst bot) plays
        game = TrafficWarehouse(load_bundle(bundle_path), seed=5)
        report = game.autoplay(AnalystPlayer(seed=5))
        # 4. the analyst reads the flood off the matrix despite obfuscation
        assert report.questions_asked == 1 and report.correct == 1

    def test_catalog_bundle_through_game(self, tmp_path):
        catalog = builtin_catalog()
        path = tmp_path / "all.zip"
        save_bundle(list(catalog.values()), path)
        game = TrafficWarehouse.from_path(path, seed=2)
        report = game.autoplay(PerfectPlayer())
        assert report.correct == report.questions_asked
        assert report.total_modules == len(catalog)


class TestCombinedScenarioAnalysis:
    def test_combined_attack_still_classifiable_by_stage(self):
        stages = [gen(10) for gen in attack.ATTACK_STAGES.values()]
        combined = overlay(stages)
        # combined traffic covers the union of all stage blocks
        blocks = {k for k, v in combined.space_traffic().items() if v > 0}
        assert len(blocks) == 5

    def test_challenge_module_plays_end_to_end(self):
        planted = challenge(attack.planning(10), noise_density=0.0, seed=0)
        assert classify_scenario(planted).best == "planning"

    def test_anonymized_module_still_renders_and_plays(self):
        module = builtin_catalog()["ddos/ddos_attack"]
        anon_matrix = anonymize_matrix(module.matrix)
        lesson = (
            ModuleBuilder("Anonymized Flood")
            .matrix(anon_matrix)
            .question(
                "Which choice is the displayed traffic pattern most relevant to?",
                answers=["DDoS attack", "Ring", "Security (walls-in)"],
                correct=0,
            )
            .build()
        )
        level = WarehouseLevel(lesson)
        assert level.x_labels() == list(anon_matrix.labels)


class TestScoreOrdering:
    def test_perfect_beats_analyst_beats_random(self):
        scores = {}
        for player in (PerfectPlayer(), AnalystPlayer(seed=0), RandomPlayer(seed=0)):
            game = TrafficWarehouse(seed=3)
            scores[player.name] = game.autoplay(player).score_fraction
        assert scores["perfect"] == 1.0
        assert scores["perfect"] >= scores["analyst"] > scores["random"]


class TestRenderedScreensDiffer:
    def test_every_catalog_module_renders_unique_2d(self):
        from repro.render.ascii2d import render_matrix_compact

        catalog = builtin_catalog()
        rendered = {}
        for key, module in catalog.items():
            rendered.setdefault(render_matrix_compact(module.matrix), []).append(key)
        # templates/training intentionally share a matrix; everything else is distinct
        duplicate_groups = [keys for keys in rendered.values() if len(keys) > 1]
        for group in duplicate_groups:
            families = {k.split("/")[0] for k in group}
            assert families <= {"training", "templates"}, group

    def test_3d_views_rotate_through_eight_distinct_frames(self, tpl6):
        level = WarehouseLevel(tpl6)
        level.place_all_packets()
        level.toggle_view()
        frames = []
        for _ in range(8):
            frames.append(level.render_pixels(width=96, height=72).tobytes())
            level.rotate_right()
        assert len(set(frames)) >= 4  # symmetric scenes may repeat across 180°
