"""Voxel models, assets, VOX IO, OBJ export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VoxelError
from repro.voxel.assets import (
    ASSET_BUILDERS,
    BLACK,
    CARDBOARD,
    WOOD,
    asset,
    make_floor_tile,
    make_label_stand,
    make_packet_box,
    make_pallet,
)
from repro.voxel.model import DEFAULT_PALETTE, VoxelModel
from repro.voxel.obj_export import to_obj, write_obj
from repro.voxel.vox_io import read_vox, write_vox


class TestVoxelModel:
    def test_set_get(self):
        m = VoxelModel((3, 3, 3))
        m.set(1, 2, 0, 4)
        assert m.get(1, 2, 0) == 4 and m.count() == 1

    def test_clear_with_zero(self):
        m = VoxelModel((2, 2, 2))
        m.set(0, 0, 0, 1)
        m.set(0, 0, 0, 0)
        assert m.is_empty()

    def test_color_out_of_palette(self):
        m = VoxelModel((2, 2, 2))
        with pytest.raises(VoxelError):
            m.set(0, 0, 0, 200)

    def test_bad_dimensions(self):
        with pytest.raises(VoxelError):
            VoxelModel((0, 2, 2))

    def test_fill_box_inclusive(self):
        m = VoxelModel((4, 4, 4))
        m.fill_box((1, 1, 1), (2, 2, 2), 3)
        assert m.count() == 8

    def test_fill_box_order_checked(self):
        m = VoxelModel((4, 4, 4))
        with pytest.raises(VoxelError, match="ordered"):
            m.fill_box((2, 0, 0), (1, 0, 0), 1)

    def test_hollow_box(self):
        m = VoxelModel((5, 5, 5))
        m.hollow_box((0, 0, 0), (4, 4, 4), 2)
        assert m.count() == 125 - 27
        assert m.get(2, 2, 2) == 0

    def test_bounds(self):
        m = VoxelModel((8, 8, 8))
        assert m.bounds() is None
        m.set(2, 3, 4, 1)
        m.set(5, 3, 4, 1)
        assert m.bounds() == ((2, 3, 4), (5, 3, 4))

    def test_filled_vectors_consistent(self):
        m = make_pallet()
        xs, ys, zs, cs = m.filled()
        assert xs.size == m.count()
        assert (cs > 0).all()

    def test_rgb_lookup(self):
        m = VoxelModel((1, 1, 1))
        assert m.rgb(1) == DEFAULT_PALETTE[0]
        with pytest.raises(VoxelError):
            m.rgb(0)

    def test_mirror_preserves_count(self):
        m = make_label_stand()
        assert m.mirrored_x().count() == m.count()

    def test_rotate_y90_four_times_identity(self):
        m = make_pallet()
        r = m.rotated_y90().rotated_y90().rotated_y90().rotated_y90()
        assert np.array_equal(r.grid, m.grid)

    def test_exposed_faces_full_cube(self):
        m = VoxelModel((3, 3, 3))
        m.fill_box((0, 0, 0), (2, 2, 2), 1)
        faces = m.exposed_faces()
        # each direction exposes exactly one 3x3 face sheet
        for mask in faces.values():
            assert int(mask.sum()) == 9

    def test_exposed_faces_interior_hidden(self):
        m = VoxelModel((3, 3, 3))
        m.fill_box((0, 0, 0), (2, 2, 2), 1)
        faces = m.exposed_faces()
        any_face = np.zeros((3, 3, 3), dtype=bool)
        for mask in faces.values():
            any_face |= mask
        assert not any_face[1, 1, 1]


class TestAssets:
    @pytest.mark.parametrize("name", list(ASSET_BUILDERS))
    def test_nonempty_and_cached(self, name):
        a1, a2 = asset(name), asset(name)
        assert not a1.is_empty()
        assert a1 is a2  # cache hit

    def test_unknown_asset(self):
        with pytest.raises(KeyError, match="available"):
            asset("teapot")

    def test_pallet_recolor(self):
        red = asset("pallet", color=4)
        assert (np.unique(red.grid)[1:] == [4]).all()

    def test_pallet_default_wood(self):
        assert WOOD in np.unique(make_pallet().grid)

    def test_packet_box_has_tape(self):
        box = make_packet_box()
        assert BLACK in np.unique(box.grid)
        assert CARDBOARD in np.unique(box.grid)

    def test_floor_tile_flat(self):
        tile = make_floor_tile()
        assert tile.size[1] == 1

    def test_builders_deterministic(self):
        assert np.array_equal(make_pallet().grid, make_pallet().grid)


class TestVoxIO:
    def test_round_trip_pallet(self, tmp_path):
        m = make_pallet()
        path = write_vox(m, tmp_path / "p.vox")
        back = read_vox(path)
        assert np.array_equal(back.grid, m.grid)
        assert back.palette[: len(m.palette)] == m.palette

    def test_round_trip_all_assets(self, tmp_path):
        for name in ASSET_BUILDERS:
            m = asset(name)
            back = read_vox(write_vox(m, tmp_path / f"{name}.vox"))
            assert np.array_equal(back.grid, m.grid), name

    def test_magic_enforced(self, tmp_path):
        bad = tmp_path / "bad.vox"
        bad.write_bytes(b"NOTVOX__")
        with pytest.raises(VoxelError, match="magic"):
            read_vox(bad)

    def test_size_limit(self, tmp_path):
        m = VoxelModel((257, 1, 1))
        with pytest.raises(VoxelError, match="256"):
            write_vox(m, tmp_path / "big.vox")

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)), max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_random_models(self, coords):
        import tempfile
        from pathlib import Path

        m = VoxelModel((6, 6, 6))
        for x, y, z in coords:
            m.set(x, y, z, 1 + (x + y + z) % 5)
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "m.vox"
            assert np.array_equal(read_vox(write_vox(m, path)).grid, m.grid)


class TestObjExport:
    def test_counts_and_materials(self):
        m = make_pallet()
        obj, mtl = to_obj(m)
        n_quads = obj.count("\nf ")
        faces = m.exposed_faces()
        visible = sum(int(mask.sum()) for mask in faces.values())
        assert n_quads == visible
        assert "usemtl color1" in obj and "newmtl color1" in mtl

    def test_vertex_dedup(self):
        m = VoxelModel((1, 1, 1))
        m.set(0, 0, 0, 1)
        obj, _ = to_obj(m)
        assert obj.count("\nv ") == 8  # a cube has 8 corners, not 24

    def test_face_indices_in_range(self):
        m = make_packet_box()
        obj, _ = to_obj(m)
        n_verts = obj.count("\nv ")
        for line in obj.splitlines():
            if line.startswith("f "):
                ids = [int(t) for t in line.split()[1:]]
                assert all(1 <= i <= n_verts for i in ids)

    def test_empty_model_exports_empty_geometry(self):
        obj, mtl = to_obj(VoxelModel((2, 2, 2)))
        assert "\nf " not in obj

    def test_write_obj_files(self, tmp_path):
        paths = write_obj(make_pallet(), tmp_path / "pallet.obj")
        assert paths[0].exists() and paths[1].exists()
        assert "mtllib pallet.mtl" in paths[0].read_text()

    def test_multi_material_grouping(self):
        box = make_packet_box()
        obj, mtl = to_obj(box)
        assert f"usemtl color{CARDBOARD}" in obj
        assert f"usemtl color{BLACK}" in obj
        assert mtl.count("newmtl") == 2
