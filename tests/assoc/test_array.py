"""Associative arrays: key alignment, D4M-style extraction, algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assoc.array import AssociativeArray
from repro.assoc.semiring import MAX_MONOID, MIN_PLUS
from repro.errors import AssocArrayError

KEYS = ["ADV1", "EXT1", "SRV1", "WS1", "WS2"]


def triples_strategy():
    entry = st.tuples(st.sampled_from(KEYS), st.sampled_from(KEYS), st.integers(1, 9))
    return st.lists(entry, min_size=0, max_size=12)


def build(triples):
    if not triples:
        return AssociativeArray.empty()
    rows, cols, vals = zip(*triples)
    return AssociativeArray.from_triples(list(rows), list(cols), np.asarray(vals))


class TestConstruction:
    def test_axes_are_sorted_distinct_keys(self):
        a = AssociativeArray.from_triples(["b", "a", "b"], ["x", "y", "x"], [1, 2, 3])
        assert a.row_labels == ("a", "b")
        assert a.col_labels == ("x", "y")

    def test_duplicates_sum(self):
        a = AssociativeArray.from_triples(["a", "a"], ["x", "x"], [1, 2])
        assert a["a", "x"] == 3

    def test_duplicates_other_monoid(self):
        a = AssociativeArray.from_triples(["a", "a"], ["x", "x"], [1, 5], add=MAX_MONOID)
        assert a["a", "x"] == 5

    def test_explicit_axes_must_cover_keys(self):
        with pytest.raises(AssocArrayError, match="not present"):
            AssociativeArray.from_triples(["a"], ["x"], [1], row_labels=["b"])

    def test_from_dict(self):
        a = AssociativeArray.from_dict({("a", "x"): 2, ("b", "y"): 3})
        assert a["b", "y"] == 3 and a.nnz == 2

    def test_from_dense_requires_sorted_axes(self):
        with pytest.raises(AssocArrayError):
            AssociativeArray.from_dense(np.zeros((2, 2)), ["b", "a"], ["x", "y"])

    def test_empty(self):
        a = AssociativeArray.empty(["a"], ["x"])
        assert a.shape == (1, 1) and a.nnz == 0

    def test_length_mismatch(self):
        with pytest.raises(AssocArrayError):
            AssociativeArray.from_triples(["a"], ["x", "y"], [1, 2])


class TestLookup:
    def test_scalar_hit_and_miss(self):
        a = AssociativeArray.from_triples(["a", "b"], ["x", "y"], [1, 2])
        assert a["a", "x"] == 1
        assert a["a", "y"] == 0  # sparse zero

    def test_unknown_key_raises(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [1])
        with pytest.raises(AssocArrayError, match="unknown row key"):
            a["zz", "x"]

    def test_triples_sorted(self):
        a = AssociativeArray.from_triples(["b", "a"], ["x", "x"], [2, 1])
        assert a.triples() == [("a", "x", 1), ("b", "x", 2)]

    def test_to_dict_round_trip(self):
        entries = {("a", "x"): 2, ("b", "y"): 3}
        assert AssociativeArray.from_dict(entries).to_dict() == entries


class TestExtract:
    def test_by_key_list(self):
        a = AssociativeArray.from_triples(["WS1", "WS2", "ADV1"], ["ADV1"] * 3, [1, 2, 3])
        sub = a.extract(["WS1", "WS2"], ":")
        assert sub.row_labels == ("WS1", "WS2") and sub.nnz == 2

    def test_prefix_star(self):
        a = AssociativeArray.from_triples(["WS1", "WS2", "ADV1"], ["ADV1"] * 3, [1, 2, 3])
        assert a.extract("WS*", ":").row_labels == ("WS1", "WS2")

    def test_single_key_string(self):
        a = AssociativeArray.from_triples(["WS1", "WS2"], ["ADV1", "ADV1"], [1, 2])
        sub = a.extract("WS2", ":")
        assert sub.shape == (1, 1) and sub["WS2", "ADV1"] == 2

    def test_full_slice_object(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [1])
        assert a[slice(None), slice(None)] == a

    def test_partial_slice_rejected(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [1])
        with pytest.raises(AssocArrayError):
            a.extract(slice(0, 1), ":")


class TestAlignment:
    def test_add_aligns_by_key_union(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [1])
        b = AssociativeArray.from_triples(["b"], ["y"], [2])
        s = a + b
        assert s.row_labels == ("a", "b") and s.col_labels == ("x", "y")
        assert s["a", "x"] == 1 and s["b", "y"] == 2

    def test_add_merges_shared_keys(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [1])
        b = AssociativeArray.from_triples(["a"], ["x"], [5])
        assert (a + b)["a", "x"] == 6

    def test_ewise_mult_intersects(self):
        a = AssociativeArray.from_triples(["a", "a"], ["x", "y"], [2, 3])
        b = AssociativeArray.from_triples(["a"], ["x"], [10])
        m = a * b
        assert m["a", "x"] == 20 and m.nnz == 1

    def test_scalar_multiply(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [3])
        assert (a * 4)["a", "x"] == 12
        assert (4 * a)["a", "x"] == 12

    def test_reindex_superset_only(self):
        a = AssociativeArray.from_triples(["b"], ["x"], [1])
        with pytest.raises(AssocArrayError):
            a.reindex(["c"], ["x"])

    def test_mxm_aligns_inner_axis(self):
        a = AssociativeArray.from_triples(["s"], ["mid1"], [2])
        b = AssociativeArray.from_triples(["mid1", "mid2"], ["t", "t"], [3, 7])
        p = a @ b
        assert p["s", "t"] == 6

    def test_mxm_min_plus(self):
        a = AssociativeArray.from_triples(["s", "s"], ["m1", "m2"], [1.0, 5.0])
        b = AssociativeArray.from_triples(["m1", "m2"], ["t", "t"], [10.0, 1.0])
        d = a.mxm(b, MIN_PLUS)
        assert d["s", "t"] == 6.0

    def test_transpose(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [1])
        assert a.T["x", "a"] == 1
        assert a.T.T == a


class TestReductions:
    def test_reduce_rows_cols(self):
        a = AssociativeArray.from_triples(["a", "a", "b"], ["x", "y", "x"], [1, 2, 3])
        assert a.reduce_rows() == {"a": 3, "b": 3}
        assert a.reduce_cols() == {"x": 4, "y": 2}

    def test_sum(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [7])
        assert a.sum() == 7

    def test_top_rows(self):
        a = AssociativeArray.from_triples(["hub", "leaf"], ["x", "x"], [10, 1])
        assert a.top_rows(1) == [("hub", 10)]

    def test_top_rows_ties_break_by_key(self):
        a = AssociativeArray.from_triples(["b", "a"], ["x", "x"], [5, 5])
        assert a.top_rows(2) == [("a", 5), ("b", 5)]

    def test_apply(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [3])
        assert a.apply(lambda v: v * 10)["a", "x"] == 30

    def test_apply_shape_change_rejected(self):
        a = AssociativeArray.from_triples(["a"], ["x"], [3])
        with pytest.raises(AssocArrayError):
            a.apply(lambda v: np.concatenate([v, v]))

    def test_relabel_merges_collisions(self):
        a = AssociativeArray.from_triples(["a1", "a2"], ["x", "x"], [1, 2])
        merged = a.relabel(row_map=lambda k: k[0].upper())
        assert merged["A", "x"] == 3


class TestProperties:
    @given(triples_strategy(), triples_strategy())
    @settings(max_examples=40, deadline=None)
    def test_add_commutes(self, t1, t2):
        a, b = build(t1), build(t2)
        assert a + b == b + a

    @given(triples_strategy())
    @settings(max_examples=40, deadline=None)
    def test_sum_preserved_by_transpose(self, t):
        a = build(t)
        assert a.sum() == a.T.sum()

    @given(triples_strategy())
    @settings(max_examples=40, deadline=None)
    def test_row_reduction_totals_sum(self, t):
        a = build(t)
        assert sum(a.reduce_rows().values()) == a.sum()

    @given(triples_strategy(), triples_strategy())
    @settings(max_examples=40, deadline=None)
    def test_add_total_is_sum_of_totals(self, t1, t2):
        a, b = build(t1), build(t2)
        assert (a + b).sum() == a.sum() + b.sum()
