"""BlockedCSR on corpus-shaped degenerate inputs: parallel ≡ serial for all.

The spec-space fuzzer routinely draws matrices that stress the tiling's edge
cases — empty matrices (an ``isolated_links`` spec at ``n=1``), rows of
zeros (any supernode pattern), sizes smaller than a block.  Each case here
asserts the blocked evaluation is *bit-identical* to the serial kernel, the
same property the kernel-equality oracle enforces on random corpora.
"""

import numpy as np
import pytest

from repro.assoc.blocked import (
    BlockedCSR,
    parallel_coalesce,
    parallel_ewise_union,
    parallel_mxm,
    parallel_mxv,
)
from repro.assoc.semiring import PLUS_MONOID, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix, _coalesce_core
from repro.runtime.config import RuntimeConfig

SERIAL_BLOCKED = RuntimeConfig(workers=1, backend="serial", block_rows=1)
THREAD_BLOCKED = RuntimeConfig(workers=2, backend="thread", block_rows=1)
CONFIGS = [SERIAL_BLOCKED, THREAD_BLOCKED]


def assert_identical(a: CSRMatrix, b: CSRMatrix) -> None:
    assert a.shape == b.shape
    assert a.dtype == b.dtype
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


def all_zero_row_matrix(n: int = 9) -> CSRMatrix:
    """Traffic only in rows 0 and n-1; everything between is an empty row."""
    dense = np.zeros((n, n), dtype=np.int64)
    dense[0, :] = 3
    dense[n - 1, 0] = 7
    return CSRMatrix.from_dense(dense)


class TestEmptyMatrix:
    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_mxm_on_empty(self, config):
        e = CSRMatrix.empty((6, 6))
        assert_identical(parallel_mxm(e, e, PLUS_TIMES, config), e._mxm_serial(e, PLUS_TIMES))

    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_mxv_on_empty(self, config):
        e = CSRMatrix.empty((6, 6))
        x = np.arange(6, dtype=np.int64)
        assert np.array_equal(
            parallel_mxv(e, x, PLUS_TIMES, config), e._mxv_serial(x, PLUS_TIMES)
        )

    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_union_of_empties(self, config):
        e = CSRMatrix.empty((5, 5))
        assert_identical(
            parallel_ewise_union(e, e, PLUS_MONOID, config),
            e._ewise_union_serial(e, PLUS_MONOID),
        )

    def test_zero_row_matrix_tiles(self):
        e = CSRMatrix.empty((0, 0))
        blocked = BlockedCSR.from_csr(e, 4)
        assert blocked.to_csr() == e

    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_coalesce_no_triples(self, config):
        empty = np.empty(0, dtype=np.int64)
        s = _coalesce_core(empty, empty, empty, (4, 4), PLUS_MONOID)
        p = parallel_coalesce(empty, empty, empty, (4, 4), PLUS_MONOID, config)
        for a, b in zip(s, p):
            assert np.array_equal(a, b)


class TestSingleRowBlocks:
    """block_rows=1: every row is its own block — the finest legal tiling."""

    def test_tiling_shape(self):
        m = all_zero_row_matrix(7)
        blocked = BlockedCSR.from_csr(m, 1)
        assert blocked.n_blocks == 7
        assert blocked.to_csr() == m

    def test_mxm_single_row_blocks(self):
        m = all_zero_row_matrix(8)
        assert_identical(
            parallel_mxm(m, m, PLUS_TIMES, SERIAL_BLOCKED),
            m._mxm_serial(m, PLUS_TIMES),
        )

    def test_mxv_single_row_blocks(self):
        m = all_zero_row_matrix(8)
        x = np.arange(8, dtype=np.int64)
        assert np.array_equal(
            parallel_mxv(m, x, PLUS_TIMES, SERIAL_BLOCKED),
            m._mxv_serial(x, PLUS_TIMES),
        )


class TestBlockRowsLargerThanMatrix:
    def test_single_degenerate_block(self):
        m = all_zero_row_matrix(5)
        blocked = BlockedCSR.from_csr(m, block_rows=500)
        assert blocked.n_blocks == 1
        assert blocked.to_csr() == m

    @pytest.mark.parametrize("backend_workers", [(1, "serial"), (3, "thread")])
    def test_kernels_with_oversized_blocks(self, backend_workers):
        workers, backend = backend_workers
        cfg = RuntimeConfig(workers=workers, backend=backend, block_rows=500)
        m = all_zero_row_matrix(6)
        assert_identical(parallel_mxm(m, m, PLUS_TIMES, cfg), m._mxm_serial(m, PLUS_TIMES))
        assert_identical(
            parallel_ewise_union(m, m.transpose(), PLUS_MONOID, cfg),
            m._ewise_union_serial(m.transpose(), PLUS_MONOID),
        )


class TestAllZeroRows:
    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_mxm_with_zero_rows(self, config):
        m = all_zero_row_matrix(9)
        assert_identical(parallel_mxm(m, m, PLUS_TIMES, config), m._mxm_serial(m, PLUS_TIMES))

    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_mxv_with_zero_rows(self, config):
        m = all_zero_row_matrix(9)
        x = np.ones(9, dtype=np.int64)
        assert np.array_equal(
            parallel_mxv(m, x, PLUS_TIMES, config), m._mxv_serial(x, PLUS_TIMES)
        )

    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_union_with_zero_rows(self, config):
        m = all_zero_row_matrix(9)
        t = m.transpose()
        assert_identical(
            parallel_ewise_union(m, t, PLUS_MONOID, config),
            m._ewise_union_serial(t, PLUS_MONOID),
        )

    @pytest.mark.parametrize("config", CONFIGS, ids=["serial", "thread"])
    def test_coalesce_rows_concentrated_in_one_block(self, config):
        """Duplicated triples that all live in the first row block."""
        rows = np.array([0, 0, 0, 8, 0], dtype=np.int64)
        cols = np.array([1, 1, 2, 0, 1], dtype=np.int64)
        vals = np.array([5, 2, 1, 9, 3], dtype=np.int64)
        s = _coalesce_core(rows, cols, vals, (9, 9), PLUS_MONOID)
        p = parallel_coalesce(rows, cols, vals, (9, 9), PLUS_MONOID, config)
        for a, b in zip(s, p):
            assert np.array_equal(a, b)
