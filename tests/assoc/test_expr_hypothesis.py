"""Property tests: mask edge cases and assignment semantics under hypothesis.

The model is dense: every lazy-masked evaluation must equal "materialise
eagerly, zero the disallowed cells", and every masked assignment must follow
the GraphBLAS ``C⟨M⟩ ⊕= Z`` rule replayed cell by cell on dense grids.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assoc.expr import Mask, Mat, apply_assign, lazy
from repro.assoc.semiring import PLUS, PLUS_MONOID, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix, masked_select

SIZES = st.integers(min_value=1, max_value=8)


@st.composite
def dense_matrix(draw, n=None, m=None, dtype=np.int64):
    rows = draw(SIZES) if n is None else n
    cols = draw(SIZES) if m is None else m
    cells = draw(
        st.lists(
            st.integers(min_value=0, max_value=6),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.asarray(cells, dtype=dtype).reshape(rows, cols)


@st.composite
def matrix_and_mask(draw):
    dense = draw(dense_matrix())
    n, m = dense.shape
    kind = draw(st.sampled_from(["random", "empty", "full"]))
    if kind == "empty":
        allow = np.zeros((n, m), dtype=bool)
    elif kind == "full":
        allow = np.ones((n, m), dtype=bool)
    else:
        bits = draw(
            st.lists(st.booleans(), min_size=n * m, max_size=n * m)
        )
        allow = np.asarray(bits, dtype=bool).reshape(n, m)
    complement = draw(st.booleans())
    return dense, allow, complement


class TestMaskedEvaluationProperties:
    @settings(max_examples=60, deadline=None)
    @given(matrix_and_mask())
    def test_masked_select_equals_dense_filter(self, case):
        dense, allow, complement = case
        a = CSRMatrix.from_dense(dense)
        mask = CSRMatrix.from_dense(allow)
        allowed = ~allow if complement else allow
        got = masked_select(a, mask, complement).to_dense(0)
        assert np.array_equal(got, np.where(allowed, dense, 0))

    @settings(max_examples=60, deadline=None)
    @given(matrix_and_mask(), dense_matrix())
    def test_masked_mxm_equals_filtered_product(self, case, other):
        dense, allow, complement = case
        n = dense.shape[0]
        b = np.resize(other, (dense.shape[1], n)).astype(np.int64)
        a_csr = CSRMatrix.from_dense(dense)
        b_csr = CSRMatrix.from_dense(b)
        mask = CSRMatrix.from_dense(np.resize(allow, (n, n)))
        allowed = np.resize(allow, (n, n))
        allowed = ~allowed if complement else allowed
        got = lazy(a_csr).mxm(b_csr).new(mask=mask, complement=complement)
        ref = np.where(allowed, dense @ b, 0)
        assert np.array_equal(got.to_dense(0), ref)

    @settings(max_examples=60, deadline=None)
    @given(matrix_and_mask(), st.integers(min_value=0, max_value=6))
    def test_masked_union_equals_filtered_sum(self, case, shift):
        dense, allow, complement = case
        other = np.roll(dense, shift, axis=1)
        a = CSRMatrix.from_dense(dense)
        b = CSRMatrix.from_dense(other)
        mask = CSRMatrix.from_dense(allow)
        allowed = ~allow if complement else allow
        got = lazy(a).ewise(b, PLUS_MONOID).new(mask=mask, complement=complement)
        assert np.array_equal(got.to_dense(0), np.where(allowed, dense + other, 0))

    @settings(max_examples=60, deadline=None)
    @given(matrix_and_mask())
    def test_masked_intersect_equals_filtered_product(self, case):
        dense, allow, complement = case
        other = dense.T.copy() if dense.shape[0] == dense.shape[1] else dense.copy()
        a = CSRMatrix.from_dense(dense)
        b = CSRMatrix.from_dense(other)
        mask = CSRMatrix.from_dense(allow)
        allowed = ~allow if complement else allow
        got = lazy(a).ewise(b, PLUS_TIMES.mult, how="intersect").new(
            mask=mask, complement=complement
        )
        assert np.array_equal(got.to_dense(0), np.where(allowed, dense * other, 0))


def dense_assign_model(old, res, allow, accum, replace):
    """Cell-by-cell model of the GraphBLAS masked-assignment rule."""
    out = old.copy()
    po, pr = old != 0, res != 0
    if accum is None:
        # allowed region takes the result pattern outright
        out = np.where(allow, res, out)
        if replace:
            out = np.where(~allow, 0, out)
    else:
        out = np.where(allow & po & pr, old + res, out)
        out = np.where(allow & ~po & pr, res, out)
        if replace:
            out = np.where(~allow & ~pr, 0, out)
    return out


class TestAssignmentProperties:
    @settings(max_examples=80, deadline=None)
    @given(matrix_and_mask(), st.booleans(), st.booleans())
    def test_assignment_matches_dense_model(self, case, use_accum, replace):
        old_dense, allow, complement = case
        allowed = ~allow if complement else allow
        rng = np.random.default_rng(int(old_dense.sum()) + 1)
        res_dense = np.where(allowed, rng.integers(0, 5, old_dense.shape), 0)
        old = CSRMatrix.from_dense(old_dense)
        res = CSRMatrix.from_dense(res_dense)
        mask = Mask(CSRMatrix.from_dense(allow), complement)
        accum = PLUS if use_accum else None
        got = apply_assign(old, res, mask, accum, replace)
        model = dense_assign_model(
            old_dense.astype(np.int64), res_dense.astype(np.int64), allowed,
            accum, replace,
        )
        assert np.array_equal(got.to_dense(0), model)

    @settings(max_examples=40, deadline=None)
    @given(dense_matrix(dtype=np.int32))
    def test_accum_dtype_promotion(self, old_dense):
        """int32 target ⊕= float64 result promotes with np.result_type."""
        old = CSRMatrix.from_dense(old_dense)
        res_dense = (old_dense * 0.5).astype(np.float64)
        res = CSRMatrix.from_dense(res_dense)
        got = apply_assign(old, res, None, PLUS, False)
        assert got.dtype == np.result_type(np.int32, np.float64)
        assert np.array_equal(
            got.to_dense(0),
            dense_assign_model(
                old_dense.astype(np.float64),
                res_dense,
                np.ones(old_dense.shape, dtype=bool),
                PLUS,
                False,
            ),
        )

    @settings(max_examples=40, deadline=None)
    @given(matrix_and_mask())
    def test_mat_surface_matches_apply_assign(self, case):
        old_dense, allow, complement = case
        old = CSRMatrix.from_dense(old_dense)
        res = CSRMatrix.from_dense(np.ones(old_dense.shape, dtype=np.int64))
        c = Mat.from_csr(old)
        c(mask=CSRMatrix.from_dense(allow), accum=PLUS, complement=complement) << res
        expected = apply_assign(
            old,
            masked_select(res, CSRMatrix.from_dense(allow), complement),
            Mask(CSRMatrix.from_dense(allow), complement),
            PLUS,
            False,
        )
        assert c.csr == expected
