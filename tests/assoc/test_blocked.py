"""BlockedCSR tiling: round trips, edge cases, and kernel equality."""

import numpy as np
import pytest

from repro.assoc.blocked import BlockedCSR
from repro.assoc.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.errors import SparseFormatError


def random_csr(n_rows: int, n_cols: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = np.zeros((n_rows, n_cols), dtype=np.int64)
    nnz = max(1, int(n_rows * n_cols * density))
    dense[rng.integers(0, n_rows, nnz), rng.integers(0, n_cols, nnz)] = rng.integers(1, 9, nnz)
    return CSRMatrix.from_dense(dense)


class TestTiling:
    @pytest.mark.parametrize("block_rows", [1, 2, 3, 7, 16, 100])
    def test_round_trip(self, block_rows):
        m = random_csr(16, 11, 0.2, seed=1)
        blocked = BlockedCSR.from_csr(m, block_rows)
        assert blocked.to_csr() == m
        assert blocked.nnz == m.nnz
        assert blocked.shape == m.shape

    def test_single_row_block(self):
        """block_rows >= n_rows degenerates to one block equal to the input."""
        m = random_csr(8, 8, 0.3, seed=2)
        blocked = BlockedCSR.from_csr(m, 8)
        assert blocked.n_blocks == 1
        assert blocked.block(0) == m

    def test_block_size_larger_than_matrix(self):
        m = random_csr(5, 5, 0.4, seed=3)
        blocked = BlockedCSR.from_csr(m, 1_000_000)
        assert blocked.n_blocks == 1
        assert blocked.to_csr() == m

    def test_empty_matrix_zero_rows(self):
        m = CSRMatrix.empty((0, 7))
        blocked = BlockedCSR.from_csr(m, 4)
        assert blocked.n_blocks == 1
        assert blocked.nnz == 0
        assert blocked.to_csr() == m

    def test_empty_matrix_no_entries(self):
        m = CSRMatrix.empty((9, 9))
        blocked = BlockedCSR.from_csr(m, 2)
        assert blocked.n_blocks == 5
        assert all(b.nnz == 0 for b in blocked.blocks)
        assert blocked.to_csr() == m

    def test_block_spans_cover_rows(self):
        m = random_csr(10, 4, 0.3, seed=4)
        blocked = BlockedCSR.from_csr(m, 3)
        spans = blocked.block_spans()
        assert spans[0][0] == 0 and spans[-1][1] == 10
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

    def test_heuristic_block_rows(self):
        """from_csr with no block_rows uses the config heuristic and still round-trips."""
        m = random_csr(40, 40, 0.1, seed=5)
        blocked = BlockedCSR.from_csr(m)
        assert blocked.to_csr() == m

    def test_invalid_block_rows_rejected(self):
        m = random_csr(4, 4, 0.5, seed=6)
        with pytest.raises(SparseFormatError):
            BlockedCSR.from_csr(m, 0)

    def test_mismatched_blocks_rejected(self):
        m = random_csr(4, 4, 0.5, seed=7)
        good = BlockedCSR.from_csr(m, 2)
        with pytest.raises(SparseFormatError):
            BlockedCSR(m.shape, good.row_starts[:-1], good.blocks)
        with pytest.raises(SparseFormatError):
            BlockedCSR((5, 4), good.row_starts, good.blocks)


class TestBlockedKernels:
    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS, LOR_LAND])
    @pytest.mark.parametrize("block_rows", [1, 4, 13, 64])
    def test_mxm_matches_serial(self, semiring, block_rows):
        a = random_csr(30, 24, 0.15, seed=8)
        b = random_csr(24, 19, 0.15, seed=9)
        serial = a.mxm(b, semiring)
        blocked = BlockedCSR.from_csr(a, block_rows).mxm(b, semiring).to_csr()
        assert blocked == serial
        assert blocked.dtype == serial.dtype

    def test_mxm_empty_operand(self):
        a = random_csr(6, 6, 0.4, seed=10)
        empty = CSRMatrix.empty((6, 6))
        blocked = BlockedCSR.from_csr(a, 2).mxm(empty).to_csr()
        assert blocked == a.mxm(empty)

    def test_mxm_shape_mismatch(self):
        a = random_csr(6, 6, 0.4, seed=11)
        with pytest.raises(SparseFormatError):
            BlockedCSR.from_csr(a, 2).mxm(random_csr(5, 5, 0.4, seed=12))

    @pytest.mark.parametrize("block_rows", [1, 5, 50])
    def test_mxv_matches_serial(self, block_rows):
        a = random_csr(25, 25, 0.2, seed=13)
        x = np.random.default_rng(14).random(25)
        serial = a.mxv(x, MIN_PLUS)
        blocked = BlockedCSR.from_csr(a, block_rows).mxv(x, MIN_PLUS)
        assert np.array_equal(serial, blocked)

    def test_mxv_length_mismatch(self):
        a = random_csr(6, 6, 0.4, seed=15)
        with pytest.raises(SparseFormatError):
            BlockedCSR.from_csr(a, 2).mxv(np.zeros(5))

    def test_repr_mentions_blocks(self):
        m = random_csr(10, 10, 0.2, seed=16)
        assert "n_blocks=5" in repr(BlockedCSR.from_csr(m, 2))
