"""Fused masked kernels: serial ≡ blocked ≡ eager-then-filter, bit for bit."""

import numpy as np
import pytest

from repro import runtime
from repro.assoc.blocked import (
    parallel_masked_intersect,
    parallel_masked_mxm,
    parallel_masked_mxv,
    parallel_union_all,
)
from repro.assoc.expr import lazy
from repro.assoc.semiring import (
    LOR_LAND,
    MIN_PLUS,
    PLUS_MONOID,
    PLUS_TIMES,
    MAX_MONOID,
)
from repro.assoc.sparse import (
    CSRMatrix,
    _masked_intersect_serial,
    _masked_mxm_serial,
    _masked_mxv_serial,
    _union_all_serial,
    masked_select,
)
from repro.runtime.config import RuntimeConfig

TINY_BLOCKS = RuntimeConfig(workers=1, backend="serial", block_rows=3)


def random_csr(n_rows, n_cols, density, seed, dtype=np.int64):
    rng = np.random.default_rng(seed)
    dense = np.zeros((n_rows, n_cols), dtype=dtype)
    nnz = max(1, int(n_rows * n_cols * density))
    dense[rng.integers(0, n_rows, nnz), rng.integers(0, n_cols, nnz)] = rng.integers(
        1, 9, nnz
    ).astype(dtype)
    return CSRMatrix.from_dense(dense)


def random_mask(n_rows, n_cols, density, seed):
    rng = np.random.default_rng(seed)
    return CSRMatrix.from_dense(rng.random((n_rows, n_cols)) < density)


def identical(x: CSRMatrix, y: CSRMatrix) -> bool:
    return (
        x.shape == y.shape
        and x.dtype == y.dtype
        and np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.indices, y.indices)
        and np.array_equal(x.data, y.data)
    )


class TestMaskedMxm:
    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS, LOR_LAND])
    @pytest.mark.parametrize("mask_density", [0.02, 0.2, 0.8])
    def test_serial_blocked_and_filter_agree(self, semiring, mask_density):
        dtype = np.float64 if semiring is MIN_PLUS else np.int64
        a = random_csr(30, 30, 0.15, seed=1, dtype=dtype)
        b = random_csr(30, 30, 0.15, seed=2, dtype=dtype)
        mask = random_mask(30, 30, mask_density, seed=3)
        ref = masked_select(a.mxm(b, semiring), mask)
        fused = _masked_mxm_serial(a, b, semiring, mask)
        blocked = parallel_masked_mxm(a, b, semiring, mask, TINY_BLOCKS)
        assert identical(fused, ref)
        assert identical(blocked, ref)

    def test_never_materializes_unmasked(self):
        a = random_csr(40, 40, 0.2, seed=4)
        mask = random_mask(40, 40, 0.01, seed=5)
        plan = lazy(a).mxm(a).plan(mask=mask)
        assert not plan.materializes_unmasked
        assert plan.uses_fused_mask

    def test_empty_mask_yields_empty_product(self):
        a = random_csr(12, 12, 0.3, seed=6)
        mask = CSRMatrix.empty((12, 12), np.bool_)
        out = _masked_mxm_serial(a, a, PLUS_TIMES, mask)
        assert out.nnz == 0
        assert out.dtype == a.mxm(a).dtype  # dtype matches eager-then-filter

    def test_full_mask_equals_unmasked(self):
        a = random_csr(12, 12, 0.3, seed=7)
        mask = CSRMatrix.from_dense(np.ones((12, 12), dtype=bool))
        assert identical(_masked_mxm_serial(a, a, PLUS_TIMES, mask), a.mxm(a))

    def test_rectangular_shapes(self):
        a = random_csr(9, 14, 0.3, seed=8)
        b = random_csr(14, 6, 0.3, seed=9)
        mask = random_mask(9, 6, 0.3, seed=10)
        ref = masked_select(a.mxm(b), mask)
        assert identical(_masked_mxm_serial(a, b, PLUS_TIMES, mask), ref)
        assert identical(parallel_masked_mxm(a, b, PLUS_TIMES, mask, TINY_BLOCKS), ref)

    def test_thread_runtime_matches_serial(self):
        a = random_csr(60, 60, 0.2, seed=11)
        mask = random_mask(60, 60, 0.1, seed=12)
        serial = lazy(a).mxm(a).new(mask=mask)
        with runtime.configured(workers=4, backend="thread", min_parallel_work=1):
            parallel = lazy(a).mxm(a).new(mask=mask)
        assert identical(serial, parallel)

    def test_complement_path_matches_filter(self):
        a = random_csr(20, 20, 0.2, seed=13)
        mask = random_mask(20, 20, 0.3, seed=14)
        ref = masked_select(a.mxm(a), mask, complement=True)
        assert identical(lazy(a).mxm(a).new(mask=mask, complement=True), ref)


class TestMaskedUnion:
    def test_nary_union_masked(self):
        parts = [random_csr(15, 15, 0.2, seed=s) for s in (20, 21, 22)]
        mask = random_mask(15, 15, 0.4, seed=23)
        eager = parts[0].ewise_union(parts[1]).ewise_union(parts[2])
        for complement in (False, True):
            ref = masked_select(eager, mask, complement)
            fused = _union_all_serial(parts, PLUS_MONOID, mask, complement)
            blocked = parallel_union_all(parts, PLUS_MONOID, mask, complement, TINY_BLOCKS)
            assert identical(fused, ref)
            assert identical(blocked, ref)

    def test_max_monoid_union(self):
        a = random_csr(10, 10, 0.3, seed=24)
        b = random_csr(10, 10, 0.3, seed=25)
        mask = random_mask(10, 10, 0.5, seed=26)
        ref = masked_select(a.ewise_union(b, MAX_MONOID), mask)
        assert identical(_union_all_serial([a, b], MAX_MONOID, mask, False), ref)


class TestMaskedIntersect:
    def test_serial_blocked_filter_agree(self):
        a = random_csr(18, 18, 0.3, seed=30)
        b = random_csr(18, 18, 0.3, seed=31)
        mask = random_mask(18, 18, 0.3, seed=32)
        mult = PLUS_TIMES.mult
        for complement in (False, True):
            ref = masked_select(a.ewise_intersect(b, mult), mask, complement)
            assert identical(_masked_intersect_serial(a, b, mult, mask, complement), ref)
            assert identical(
                parallel_masked_intersect(a, b, mult, mask, complement, TINY_BLOCKS), ref
            )


class TestMaskedSelect:
    def test_empty_and_full(self):
        a = random_csr(8, 8, 0.4, seed=40)
        empty = CSRMatrix.empty((8, 8), np.bool_)
        full = CSRMatrix.from_dense(np.ones((8, 8), dtype=bool))
        assert masked_select(a, empty).nnz == 0
        assert masked_select(a, empty, complement=True) == a
        assert masked_select(a, full) == a
        assert masked_select(a, full, complement=True).nnz == 0

    def test_shape_mismatch(self):
        from repro.errors import SparseFormatError

        with pytest.raises(SparseFormatError):
            masked_select(CSRMatrix.empty((3, 3)), CSRMatrix.empty((4, 4)))


class TestMaskedMxv:
    @pytest.mark.parametrize("semiring", [PLUS_TIMES, MIN_PLUS])
    def test_serial_blocked_filter_agree(self, semiring):
        dtype = np.float64 if semiring is MIN_PLUS else np.int64
        a = random_csr(25, 25, 0.2, seed=50, dtype=dtype)
        x = np.random.default_rng(51).integers(0, 5, 25).astype(dtype)
        allow = np.random.default_rng(52).random(25) < 0.4
        ref = a.mxv(x, semiring)
        ref = np.where(allow, ref, semiring.add.identity(ref.dtype))
        fused = _masked_mxv_serial(a, x, semiring, allow)
        blocked = parallel_masked_mxv(a, x, semiring, allow, TINY_BLOCKS)
        assert np.array_equal(ref, fused) and ref.dtype == fused.dtype
        assert np.array_equal(ref, blocked) and ref.dtype == blocked.dtype

    def test_all_rows_masked_out(self):
        a = random_csr(10, 10, 0.3, seed=53)
        x = np.ones(10, dtype=np.int64)
        out = _masked_mxv_serial(a, x, PLUS_TIMES, np.zeros(10, dtype=bool))
        assert not out.any()


class TestConsumerEquivalence:
    """The rewired consumers still compute exactly what they used to."""

    def test_firewall_split_matches_dense_reference(self):
        from repro.graphs import ddos
        from repro.graphs.compose import overlay
        from repro.graphs.firewall import (
            compliant_traffic,
            default_policy,
            violating_traffic,
            violations,
        )

        defense = __import__("repro.graphs.defense", fromlist=["security"])
        traffic = overlay([defense.security(10), ddos.ddos_attack(10)])
        policy = default_policy()
        bad_ref = (traffic.packets > 0) & ~policy.allowed
        good_ref = (traffic.packets > 0) & policy.allowed
        bad = violating_traffic(traffic, policy)
        good = compliant_traffic(traffic, policy)
        assert np.array_equal(bad.packets, np.where(bad_ref, traffic.packets, 0))
        assert np.array_equal(bad.colors, np.where(bad_ref, 2, 0))
        assert np.array_equal(good.packets, np.where(good_ref, traffic.packets, 0))
        assert np.array_equal(good.colors, np.where(good_ref, 1, 0))
        viols = violations(traffic, policy)
        rows, cols = np.nonzero(bad_ref)
        assert viols == [
            (traffic.labels[i], traffic.labels[j], int(traffic.packets[i, j]))
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    def test_metrics_match_dense_reference(self):
        from repro.graphs.metrics import reciprocity, supernodes

        rng = np.random.default_rng(60)
        from repro.core.traffic_matrix import TrafficMatrix

        packets = rng.integers(0, 3, (12, 12))
        m = TrafficMatrix(packets, [f"WS{i}" for i in range(1, 13)])
        p = m.packets > 0
        off = p.copy()
        np.fill_diagonal(off, False)
        links = int(off.sum())
        expected = (int((off & off.T).sum()) / links) if links else 0.0
        assert reciprocity(m) == expected
        peers = p | p.T
        np.fill_diagonal(peers, False)
        fan = peers.sum(axis=1)
        thr = max(2, 11 // 2)
        assert supernodes(m) == [m.labels[i] for i in np.flatnonzero(fan >= thr).tolist()]

    def test_masked_compose_never_builds_full_product(self):
        from repro.core.traffic_matrix import TrafficMatrix

        rng = np.random.default_rng(61)
        a = TrafficMatrix(rng.integers(0, 3, (10, 10)))
        b = TrafficMatrix(rng.integers(0, 3, (10, 10)))
        mask = np.zeros((10, 10), dtype=bool)
        mask[2, :] = True
        masked = a.compose(b, mask=mask)
        full = a.compose(b)
        assert np.array_equal(masked.packets, np.where(mask, full.packets, 0))

    def test_traffic_masked_where(self):
        from repro.core.traffic_matrix import TrafficMatrix

        rng = np.random.default_rng(62)
        m = TrafficMatrix(rng.integers(0, 4, (8, 8)))
        mask = rng.random((8, 8)) < 0.4
        kept = m.masked_where(mask)
        dropped = m.masked_where(mask, complement=True, color=2)
        assert np.array_equal(kept.packets, np.where(mask, m.packets, 0))
        assert np.array_equal(
            kept.packets + dropped.packets, m.packets
        )  # a mask and its complement partition the traffic
        assert (dropped.colors[dropped.packets > 0] == 2).all()

    def test_assoc_masked_ops(self):
        from repro.assoc.array import AssociativeArray

        a = AssociativeArray.from_dict({("a", "b"): 2, ("b", "c"): 3, ("c", "a"): 4})
        b = AssociativeArray.from_dict({("a", "b"): 5, ("c", "a"): 1, ("b", "b"): 7})
        mask = AssociativeArray.from_dict({("a", "b"): 1, ("b", "b"): 1})
        added = a.ewise_add(b, mask=mask)
        assert added.to_dict() == {("a", "b"): 7, ("b", "b"): 7}
        multed = a.ewise_mult(b, mask=mask)
        assert multed.to_dict() == {("a", "b"): 10}
        inv = a.select(mask, complement=True)
        assert inv.to_dict() == {("b", "c"): 3, ("c", "a"): 4}
        prod = a.mxm(b, mask=mask)
        ref = a.mxm(b)
        assert prod.to_dict() == {
            k: v for k, v in ref.to_dict().items() if k in {("a", "b"), ("b", "b")}
        }

    def test_merge_windows_totals_and_parallel(self):
        from repro.analysis.streaming import merge_windows, window_stream

        events = [(f"S{i % 11}", f"D{i % 5}", 1 + i % 4) for i in range(1500)]
        wins = [w for w, _ in window_stream(events, window_size=128)]
        total = merge_windows(wins)
        assert int(total.sum()) == sum(int(w.sum()) for w in wins)
        with runtime.configured(workers=4, backend="thread", min_parallel_work=1):
            parallel = merge_windows(wins)
        assert parallel == total
