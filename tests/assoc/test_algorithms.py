"""Semiring graph algorithms cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assoc.algorithms import (
    bfs_levels,
    connected_components,
    pagerank,
    reachability_matrix,
    shortest_path_lengths,
    triangle_count,
)
from repro.assoc.sparse import CSRMatrix
from repro.errors import SparseFormatError


def random_digraph(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density).astype(np.int64)
    np.fill_diagonal(dense, 0)
    return dense


def graphs():
    return st.tuples(st.integers(2, 12), st.integers(0, 2**31)).map(
        lambda t: random_digraph(t[0], 0.25, t[1])
    )


class TestBFS:
    def test_path_graph(self):
        dense = np.zeros((4, 4), dtype=np.int64)
        dense[0, 1] = dense[1, 2] = dense[2, 3] = 1
        levels = bfs_levels(CSRMatrix.from_dense(dense), 0)
        assert levels.tolist() == [0, 1, 2, 3]

    def test_unreachable(self):
        dense = np.zeros((3, 3), dtype=np.int64)
        dense[0, 1] = 1
        levels = bfs_levels(CSRMatrix.from_dense(dense), 0)
        assert levels.tolist() == [0, 1, -1]

    def test_bad_source(self):
        with pytest.raises(SparseFormatError):
            bfs_levels(CSRMatrix.empty((3, 3)), 5)

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, dense):
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)
        levels = bfs_levels(CSRMatrix.from_dense(dense), 0)
        nx_levels = nx.single_source_shortest_path_length(g, 0)
        for v in range(dense.shape[0]):
            expected = nx_levels.get(v, -1)
            assert levels[v] == expected


class TestShortestPaths:
    def test_weighted_chain(self):
        dense = np.zeros((3, 3))
        dense[0, 1] = 5
        dense[1, 2] = 7
        dist = shortest_path_lengths(CSRMatrix.from_dense(dense), 0)
        assert dist.tolist() == [0.0, 5.0, 12.0]

    def test_negative_weights_rejected(self):
        dense = np.zeros((2, 2))
        dense[0, 1] = -1
        with pytest.raises(SparseFormatError):
            shortest_path_lengths(CSRMatrix.from_dense(dense, zero=0), 0)

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_dijkstra(self, dense):
        weighted = dense * 3  # weight 3 per edge
        g = nx.from_numpy_array(weighted, create_using=nx.DiGraph)
        dist = shortest_path_lengths(CSRMatrix.from_dense(weighted), 0)
        nx_dist = nx.single_source_dijkstra_path_length(g, 0)
        for v in range(dense.shape[0]):
            expected = nx_dist.get(v, np.inf)
            assert dist[v] == expected


class TestComponents:
    def test_two_islands(self):
        dense = np.zeros((4, 4), dtype=np.int64)
        dense[0, 1] = 1
        dense[2, 3] = 1
        labels = connected_components(CSRMatrix.from_dense(dense))
        assert labels.tolist() == [0, 0, 2, 2]

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_weak_components(self, dense):
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)
        labels = connected_components(CSRMatrix.from_dense(dense))
        ours = {}
        for v, lb in enumerate(labels.tolist()):
            ours.setdefault(lb, set()).add(v)
        theirs = {frozenset(c) for c in nx.weakly_connected_components(g)}
        assert {frozenset(c) for c in ours.values()} == theirs


class TestTriangles:
    def test_single_triangle(self):
        from repro.graphs.patterns import triangle

        adj = CSRMatrix.from_dense(triangle(5).packets)
        assert triangle_count(adj) == 1

    def test_clique_formula(self):
        from repro.graphs.patterns import clique

        adj = CSRMatrix.from_dense(clique(6).packets)
        assert triangle_count(adj) == 20  # C(6,3)

    def test_self_loops_ignored(self):
        from repro.graphs.patterns import self_loops, triangle

        combined = triangle(5).packets + self_loops(5).packets
        assert triangle_count(CSRMatrix.from_dense(combined)) == 1

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, dense):
        sym = ((dense + dense.T) > 0).astype(np.int64)
        np.fill_diagonal(sym, 0)
        g = nx.from_numpy_array(sym)
        expected = sum(nx.triangles(g).values()) // 3
        assert triangle_count(CSRMatrix.from_dense(sym)) == expected


class TestPageRank:
    def test_uniform_on_cycle(self):
        from repro.graphs.patterns import ring

        adj = CSRMatrix.from_dense(ring(6, mutual=False).packets)
        ranks = pagerank(adj)
        assert ranks == pytest.approx(np.full(6, 1 / 6), abs=1e-8)

    def test_sums_to_one(self):
        dense = random_digraph(10, 0.3, 5)
        assert pagerank(CSRMatrix.from_dense(dense)).sum() == pytest.approx(1.0)

    @given(graphs())
    @settings(max_examples=15, deadline=None)
    def test_matches_networkx(self, dense):
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)
        ours = pagerank(CSRMatrix.from_dense(dense))
        theirs = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
        for v in range(dense.shape[0]):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-6)


class TestReachability:
    def test_chain_closure(self):
        dense = np.zeros((3, 3), dtype=np.int64)
        dense[0, 1] = dense[1, 2] = 1
        reach = reachability_matrix(CSRMatrix.from_dense(dense)).to_dense(False)
        assert reach[0, 2] and reach[0, 1] and not reach[2, 0]

    @given(graphs())
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx_descendants(self, dense):
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)
        reach = reachability_matrix(CSRMatrix.from_dense(dense)).to_dense(False)
        for v in range(dense.shape[0]):
            got = set(np.flatnonzero(reach[v]).tolist())
            expected = set(nx.descendants(g, v))
            # closure counts v→v when v lies on a cycle; descendants never
            # includes the start vertex, so compare modulo {v}
            assert got - {v} == expected - {v}
            if v in got:
                assert v in expected or nx.has_path(g, v, v) or dense[v, v]
