"""Semiring algebra: identities, reduceat segment handling, registry."""

import numpy as np
import pytest

from repro.assoc.semiring import (
    LOR_LAND,
    MAX_PLUS,
    MIN_MONOID,
    MIN_PLUS,
    PLUS_MONOID,
    PLUS_PAIR,
    PLUS_TIMES,
    SEMIRINGS,
    BinaryOp,
    Monoid,
    semiring_by_name,
)
from repro.errors import SemiringError


class TestBinaryOp:
    def test_ufunc_detection(self):
        assert BinaryOp("plus", np.add).is_ufunc
        assert not BinaryOp("first", lambda x, y: x).is_ufunc

    def test_callable(self):
        op = BinaryOp("plus", np.add)
        assert op(np.asarray([1, 2]), np.asarray([3, 4])).tolist() == [4, 6]


class TestMonoidIdentity:
    def test_plus_identity_zero(self):
        assert PLUS_MONOID.identity(np.int64) == 0
        assert PLUS_MONOID.identity(np.float64) == 0.0

    def test_min_identity_is_max_value(self):
        assert MIN_MONOID.identity(np.float64) == np.inf
        assert MIN_MONOID.identity(np.int64) == np.iinfo(np.int64).max

    def test_bool_identities(self):
        assert LOR_LAND.add.identity(np.bool_) is False


class TestReduceat:
    def test_simple_segments(self):
        data = np.asarray([1, 2, 3, 4, 5])
        indptr = np.asarray([0, 2, 5])
        assert PLUS_MONOID.reduceat(data, indptr).tolist() == [3, 12]

    def test_empty_middle_segment_gets_identity(self):
        data = np.asarray([1, 2, 3])
        indptr = np.asarray([0, 2, 2, 3])
        assert PLUS_MONOID.reduceat(data, indptr).tolist() == [3, 0, 3]

    def test_empty_trailing_segment_does_not_corrupt_previous(self):
        # regression: clipping trailing starts used to truncate segment extents
        data = np.asarray([1, 2, 3])
        indptr = np.asarray([0, 3, 3])
        assert PLUS_MONOID.reduceat(data, indptr).tolist() == [6, 0]

    def test_all_empty(self):
        out = PLUS_MONOID.reduceat(np.asarray([], dtype=np.int64), np.asarray([0, 0, 0]))
        assert out.tolist() == [0, 0]

    def test_min_monoid_segments(self):
        data = np.asarray([5.0, 1.0, 7.0])
        indptr = np.asarray([0, 1, 1, 3])
        out = MIN_MONOID.reduceat(data, indptr)
        assert out.tolist() == [5.0, np.inf, 1.0]

    def test_non_ufunc_monoid_rejected(self):
        bad = Monoid(BinaryOp("first", lambda x, y: x), lambda dt: 0)
        with pytest.raises(SemiringError):
            bad.reduceat(np.asarray([1]), np.asarray([0, 1]))

    def test_randomised_against_loop(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n_seg = int(rng.integers(1, 8))
            lengths = rng.integers(0, 4, size=n_seg)
            indptr = np.concatenate([[0], np.cumsum(lengths)])
            data = rng.integers(-5, 6, size=int(indptr[-1]))
            got = PLUS_MONOID.reduceat(data, indptr)
            want = [int(data[indptr[k]:indptr[k + 1]].sum()) for k in range(n_seg)]
            assert got.tolist() == want


class TestSemiring:
    def test_names(self):
        assert PLUS_TIMES.name == "plus.times"
        assert MIN_PLUS.name == "min.plus"

    def test_zero_per_dtype(self):
        assert PLUS_TIMES.zero(np.int64) == 0
        assert MIN_PLUS.zero(np.float64) == np.inf
        assert MAX_PLUS.zero(np.float64) == -np.inf

    def test_registry_lookup(self):
        assert semiring_by_name("lor.land") is LOR_LAND
        assert len(SEMIRINGS) >= 10

    def test_unknown_name(self):
        with pytest.raises(SemiringError, match="unknown semiring"):
            semiring_by_name("frob.nicate")

    def test_pair_op_returns_ones(self):
        out = PLUS_PAIR.mult(np.asarray([3, 4]), np.asarray([5, 6]))
        assert out.tolist() == [1, 1]
