"""The lazy expression layer: deferred surface, planner fusion, assignment."""

import numpy as np
import pytest

from repro.assoc.expr import (
    Mask,
    Mat,
    MatExpr,
    MatLeaf,
    UnionAll,
    Vec,
    VecExpr,
    apply_assign,
    as_expr,
    as_mask,
    lazy,
    union_all,
)
from repro.assoc.semiring import (
    MIN_PLUS,
    PAIR,
    PLUS,
    PLUS_MONOID,
    PLUS_TIMES,
)
from repro.assoc.sparse import CSRMatrix, masked_select
from repro.errors import ExpressionError, SparseFormatError


def random_csr(n_rows: int, n_cols: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = np.zeros((n_rows, n_cols), dtype=np.int64)
    nnz = max(1, int(n_rows * n_cols * density))
    dense[rng.integers(0, n_rows, nnz), rng.integers(0, n_cols, nnz)] = rng.integers(1, 9, nnz)
    return CSRMatrix.from_dense(dense)


def random_mask(n_rows: int, n_cols: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    return CSRMatrix.from_dense(rng.random((n_rows, n_cols)) < density)


@pytest.fixture
def a():
    return random_csr(20, 20, 0.15, seed=1)


@pytest.fixture
def b():
    return random_csr(20, 20, 0.15, seed=2)


@pytest.fixture
def mask():
    return random_mask(20, 20, 0.2, seed=3)


class TestLazySurface:
    def test_operations_return_expressions_not_results(self, a, b):
        expr = lazy(a).mxm(b)
        assert isinstance(expr, MatExpr)
        assert not isinstance(expr, CSRMatrix)
        assert expr.shape == (20, 20)

    def test_new_evaluates_like_eager(self, a, b):
        assert lazy(a).mxm(b).new() == a.mxm(b)
        assert lazy(a).ewise(b, PLUS_MONOID).new() == a.ewise_union(b)
        assert (
            lazy(a).ewise(b, PLUS_TIMES.mult, how="intersect").new()
            == a.ewise_intersect(b, PLUS_TIMES.mult)
        )

    def test_expressions_compose(self, a, b):
        expr = lazy(a).mxm(b).ewise(a, PLUS_MONOID)
        assert expr.new() == a.mxm(b).ewise_union(a)

    def test_semiring_threading(self, a, b):
        af = CSRMatrix(a.shape, a.indptr, a.indices, a.data.astype(float), _trusted=True)
        bf = CSRMatrix(b.shape, b.indptr, b.indices, b.data.astype(float), _trusted=True)
        assert lazy(af).mxm(bf, MIN_PLUS).new() == af.mxm(bf, MIN_PLUS)

    def test_mxv_and_reduce(self, a):
        x = np.arange(20, dtype=np.int64)
        assert isinstance(lazy(a).mxv(x), VecExpr)
        assert np.array_equal(lazy(a).mxv(x).new(), a.mxv(x))
        assert np.array_equal(lazy(a).reduce_rows().new(), a.reduce_rows())
        assert np.array_equal(lazy(a).reduce_cols().new(), a.reduce_cols())

    def test_shape_validation_matches_eager(self, a):
        with pytest.raises(SparseFormatError):
            lazy(a).mxm(CSRMatrix.empty((7, 7)))
        with pytest.raises(SparseFormatError):
            lazy(a).ewise(CSRMatrix.empty((7, 7)))

    def test_as_expr_rejects_junk(self):
        with pytest.raises(ExpressionError):
            as_expr("not a matrix")

    def test_dunders_build_expressions(self, a, b):
        assert (lazy(a) @ b).new() == a.mxm(b)
        assert (lazy(a) + b).new() == a.ewise_union(b)
        assert (lazy(a) * b).new() == a.ewise_intersect(b, PLUS_TIMES.mult)


class TestTransposeFolding:
    def test_leaf_transpose_folds_to_descriptor(self, a):
        expr = lazy(a).T
        assert isinstance(expr, MatLeaf)
        assert expr.transposed
        assert expr.new() == a.transpose()

    def test_double_transpose_cancels(self, a):
        expr = lazy(a).T.T
        assert isinstance(expr, MatLeaf)
        assert not expr.transposed

    def test_transpose_is_cached_on_the_operand(self, a):
        assert a.transpose() is a.transpose()
        assert a.T.T == a  # equal, not identical: the memo is one-way (no cycle)

    def test_vxm_uses_cached_transpose(self, a):
        x = np.arange(20, dtype=np.int64)
        y1 = a.vxm(x)
        assert a._t_cache is not None
        assert np.array_equal(y1, a.transpose().mxv(x))

    def test_transpose_of_compound_pushes_mask(self, a, b, mask):
        expr = lazy(a).mxm(b).T
        ref = masked_select(a.mxm(b).transpose(), mask)
        assert expr.new(mask=mask) == ref
        plan = expr.plan(mask=mask)
        assert not plan.materializes_unmasked
        assert "masked_mxm" in plan.kernels


class TestUnionChainFusion:
    def test_chain_collapses_to_union_all(self, a, b):
        expr = lazy(a) + b + a + b
        assert isinstance(expr, UnionAll)
        assert len(expr.parts) == 4

    def test_fused_union_matches_pairwise_left_fold(self, a, b):
        c = random_csr(20, 20, 0.1, seed=9)
        fused = (lazy(a) + b + c).new()
        assert fused == a.ewise_union(b).ewise_union(c)

    def test_fused_union_float_bit_identity(self):
        parts = []
        for seed in (4, 5, 6):
            m = random_csr(12, 12, 0.3, seed=seed)
            parts.append(
                CSRMatrix(m.shape, m.indptr, m.indices, m.data * 0.1, _trusted=True)
            )
        fused = union_all(parts).new()
        ref = parts[0].ewise_union(parts[1]).ewise_union(parts[2])
        assert fused == ref  # includes float rounding: same reduce order

    def test_union_all_single_item_passthrough(self, a):
        assert union_all([a]).new() == a

    def test_union_all_empty_rejected(self):
        with pytest.raises(ExpressionError):
            union_all([])

    def test_different_monoids_do_not_fuse(self, a, b):
        from repro.assoc.semiring import MAX_MONOID

        expr = lazy(a).ewise(b, PLUS_MONOID).ewise(a, MAX_MONOID)
        assert isinstance(expr, UnionAll)
        assert len(expr.parts) == 2  # outer pair, not a 3-way chain


class TestPlanIntrospection:
    def test_masked_mxm_plan_is_fused(self, a, b, mask):
        plan = lazy(a).mxm(b).plan(mask=mask)
        assert "masked_mxm" in plan.kernels
        assert plan.uses_fused_mask
        assert not plan.materializes_unmasked

    def test_complement_mxm_plan_materializes(self, a, b, mask):
        plan = lazy(a).mxm(b).plan(mask=mask, complement=True)
        assert plan.materializes_unmasked
        assert "mxm" in plan.kernels

    def test_unmasked_plans_name_eager_kernels(self, a, b):
        assert lazy(a).mxm(b).plan().kernels[-1] == "mxm"
        assert (lazy(a) + b).plan().kernels[-1] == "ewise_union"
        assert (lazy(a) + b + a).plan().kernels[-1] == "union_all"

    def test_describe_is_readable(self, a, b, mask):
        text = lazy(a).mxm(b).plan(mask=mask).describe()
        assert "masked_mxm" in text and "fused" in text

    def test_vector_plans(self, a):
        x = np.arange(20, dtype=np.int64)
        allow = np.zeros(20, dtype=bool)
        assert lazy(a).mxv(x).plan().kernels[-1] == "mxv"
        assert lazy(a).mxv(x).plan(mask=allow).kernels[-1] == "masked_mxv"
        assert lazy(a).reduce_rows().plan(mask=allow).kernels[-1] == "masked_reduce_rows"


class TestMaskCoercion:
    def test_none_with_complement_rejected(self):
        with pytest.raises(ExpressionError):
            as_mask(None, complement=True)

    def test_mask_object_complement_flips(self, mask):
        m = as_mask(Mask(mask, complement=True), complement=True)
        assert not m.complement

    def test_dense_bool_array(self, a):
        allow = np.zeros((20, 20), dtype=bool)
        allow[3, :] = True
        out = lazy(a).select(allow)
        assert out == masked_select(a, CSRMatrix.from_dense(allow))

    def test_mask_shape_mismatch_rejected(self, a):
        with pytest.raises(ExpressionError):
            lazy(a).mxm(a).new(mask=CSRMatrix.empty((3, 3)))


class TestMatAssignment:
    def test_plain_lshift_replaces(self, a, b):
        c = Mat.from_csr(a)
        c << lazy(a).mxm(b)
        assert c.csr == a.mxm(b)

    def test_masked_assignment_keeps_disallowed_old(self, a, b, mask):
        c = Mat.from_csr(a.copy())
        c(mask=mask) << lazy(b)
        # allowed region: b's masked entries; disallowed region: a untouched
        expected = apply_assign(a, masked_select(b, mask), Mask(mask), None, False)
        assert c.csr == expected
        old = a.to_dense(0)
        allow = mask.to_dense(False).astype(bool)
        got = c.csr.to_dense(0)
        assert np.array_equal(got[~allow], old[~allow])
        assert np.array_equal(got[allow], np.where(allow, b.to_dense(0), 0)[allow])

    def test_replace_clears_disallowed(self, a, b, mask):
        c = Mat.from_csr(a.copy())
        c(mask=mask, replace=True) << lazy(b)
        allow = mask.to_dense(False).astype(bool)
        got = c.csr.to_dense(0)
        assert not got[~allow].any()

    def test_accum_adds_into_allowed(self, a, b, mask):
        c = Mat.from_csr(a.copy())
        c(mask=mask, accum=PLUS) << lazy(b)
        allow = mask.to_dense(False).astype(bool)
        expected = a.to_dense(0) + np.where(allow, b.to_dense(0), 0)
        assert np.array_equal(c.csr.to_dense(0), expected)

    def test_issue_spelling_works(self, a, b, mask):
        """The headline API: C(mask=M, accum=PLUS, complement=True, replace=False) << expr."""
        c = Mat.from_csr(a.copy())
        c(mask=mask, accum=PLUS, complement=True, replace=False) << lazy(a).mxm(b)
        allow = ~mask.to_dense(False).astype(bool)
        expected = a.to_dense(0) + np.where(allow, a.mxm(b).to_dense(0), 0)
        assert np.array_equal(c.csr.to_dense(0), expected)

    def test_assignment_shape_mismatch(self, a):
        c = Mat.from_csr(a)
        with pytest.raises(ExpressionError):
            c << lazy(CSRMatrix.empty((3, 3)))

    def test_eager_operand_assignment(self, a, b):
        c = Mat.from_csr(a)
        c << b  # a bare CSR on the right-hand side coerces to a leaf
        assert c.csr == b

    def test_bad_accum_rejected(self, a, mask):
        c = Mat.from_csr(a)
        with pytest.raises(ExpressionError):
            c(mask=mask, accum="nope") << lazy(a)


class TestVecAssignment:
    def test_masked_vector_assignment(self, a):
        x = np.arange(20, dtype=np.int64)
        allow = np.zeros(20, dtype=bool)
        allow[::2] = True
        w = Vec(np.full(20, 100, dtype=np.int64))
        w(mask=allow) << lazy(a).mxv(x)
        ref = a.mxv(x)
        assert np.array_equal(w.values[allow], ref[allow])
        assert (w.values[~allow] == 100).all()

    def test_replace_writes_fill(self, a):
        x = np.arange(20, dtype=np.int64)
        allow = np.zeros(20, dtype=bool)
        allow[:5] = True
        w = Vec(np.full(20, 7, dtype=np.int64), fill=-1)
        w(mask=allow, replace=True) << lazy(a).mxv(x)
        assert (w.values[~allow] == -1).all()

    def test_accum(self, a):
        x = np.ones(20, dtype=np.int64)
        w = Vec(np.arange(20, dtype=np.int64))
        w(accum=PLUS) << lazy(a).mxv(x)
        assert np.array_equal(w.values, np.arange(20) + a.mxv(x))


class TestEagerCompatibility:
    """Eager methods are one-node expressions evaluated immediately."""

    def test_eager_mxm_is_expression_evaluation(self, a, b):
        assert as_expr(a).mxm(b).new() == a.mxm(b)

    def test_csr_dunders(self, a, b):
        assert (a @ b) == a.mxm(b)
        assert (a + b) == a.ewise_union(b)
        assert (a * b) == a.ewise_intersect(b, PLUS_TIMES.mult)
        scaled = a * 3
        assert np.array_equal(scaled.data, a.data * 3)
        assert (3 * a) == scaled
        assert a.__matmul__(42) is NotImplemented

    def test_pickle_drops_transpose_cache(self, a):
        import pickle

        _ = a.transpose()
        clone = pickle.loads(pickle.dumps(a))
        assert clone == a
        assert clone._t_cache is None

    def test_pair_intersection_counts(self, a):
        inter = lazy(a).ewise(a.transpose(), PAIR, how="intersect").new()
        assert inter == a.ewise_intersect(a.transpose(), PAIR)
