"""CSR kernels checked against dense NumPy and scipy.sparse references."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assoc.semiring import LOR_LAND, MAX_MONOID, MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix, coalesce
from repro.errors import SparseFormatError


def dense_strategy(max_n: int = 7, density_max: int = 3):
    return st.tuples(st.integers(1, max_n), st.integers(1, max_n), st.integers(0, 2**31)).map(
        lambda t: np.random.default_rng(t[2]).integers(0, density_max, size=(t[0], t[1]))
    )


class TestCoalesce:
    def test_sorts_row_major(self):
        r, c, v = coalesce(
            np.asarray([1, 0, 1]), np.asarray([0, 1, 2]), np.asarray([9, 8, 7]), (2, 3)
        )
        assert r.tolist() == [0, 1, 1]
        assert c.tolist() == [1, 0, 2]
        assert v.tolist() == [8, 9, 7]

    def test_merges_duplicates(self):
        r, c, v = coalesce(
            np.asarray([0, 0, 0]), np.asarray([1, 1, 1]), np.asarray([1, 2, 3]), (1, 2)
        )
        assert r.tolist() == [0] and c.tolist() == [1] and v.tolist() == [6]

    def test_merge_with_other_monoid(self):
        r, c, v = coalesce(
            np.asarray([0, 0]), np.asarray([0, 0]), np.asarray([5, 9]), (1, 1), MAX_MONOID
        )
        assert v.tolist() == [9]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(SparseFormatError):
            coalesce(np.asarray([2]), np.asarray([0]), np.asarray([1]), (2, 2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(SparseFormatError):
            coalesce(np.asarray([0]), np.asarray([0, 1]), np.asarray([1]), (2, 2))

    def test_empty_passthrough(self):
        r, c, v = coalesce(np.asarray([]), np.asarray([]), np.asarray([]), (3, 3))
        assert r.size == c.size == v.size == 0


class TestConstruction:
    def test_from_dense_round_trip(self, rng):
        dense = rng.integers(0, 3, size=(6, 5))
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_from_dense_custom_zero(self):
        dense = np.asarray([[np.inf, 1.0], [2.0, np.inf]])
        m = CSRMatrix.from_dense(dense, zero=np.inf)
        assert m.nnz == 2
        assert np.array_equal(m.to_dense(np.inf), dense)

    def test_empty(self):
        m = CSRMatrix.empty((3, 4))
        assert m.nnz == 0 and m.shape == (3, 4)
        assert m.to_dense().sum() == 0

    def test_identity(self):
        eye = CSRMatrix.identity(4)
        assert np.array_equal(eye.to_dense(), np.eye(4, dtype=np.int64))

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix((2, 2), np.asarray([0, 1]), np.asarray([0]), np.asarray([1]))

    def test_validation_rejects_unsorted_rows(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(
                (1, 3), np.asarray([0, 2]), np.asarray([2, 0]), np.asarray([1, 1])
            )

    def test_validation_rejects_duplicate_cols(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(
                (1, 3), np.asarray([0, 2]), np.asarray([1, 1]), np.asarray([1, 1])
            )

    def test_validation_single_entry_after_empty_rows(self):
        # nnz == 1 with leading empty rows: the row-start exemption used to
        # wrap index -1 into a size-0 gap array and crash.
        m = CSRMatrix(
            (3, 3), np.asarray([0, 0, 1, 1]), np.asarray([2]), np.asarray([7])
        )
        assert m.nnz == 1
        assert m.to_dense()[1, 2] == 7

    def test_validation_leading_empty_row_still_checks_last_gap(self):
        # A row starting at index 0 must not exempt the *last* adjacent pair
        # from the sorted-within-row check.
        with pytest.raises(SparseFormatError):
            CSRMatrix(
                (2, 3),
                np.asarray([0, 0, 3]),
                np.asarray([0, 2, 1]),
                np.asarray([1, 1, 1]),
            )

    def test_triples_canonical(self, rng):
        dense = rng.integers(0, 2, size=(5, 5))
        m = CSRMatrix.from_dense(dense)
        r, c, v = m.triples()
        keys = r * 5 + c
        assert np.all(np.diff(keys) > 0)


class TestStructuralOps:
    def test_transpose_matches_numpy(self, rng):
        dense = rng.integers(0, 3, size=(4, 6))
        assert np.array_equal(CSRMatrix.from_dense(dense).T.to_dense(), dense.T)

    def test_prune_drops_explicit_zeros(self):
        m = CSRMatrix((1, 2), np.asarray([0, 2]), np.asarray([0, 1]), np.asarray([0, 5]))
        assert m.nnz == 2
        assert m.prune().nnz == 1

    def test_extract_selects_and_reorders(self, rng):
        dense = rng.integers(0, 4, size=(6, 6))
        m = CSRMatrix.from_dense(dense)
        rows = np.asarray([4, 0, 2])
        cols = np.asarray([5, 1])
        assert np.array_equal(m.extract(rows, cols).to_dense(), dense[np.ix_(rows, cols)])

    def test_extract_with_repetition(self, rng):
        dense = rng.integers(0, 4, size=(3, 3))
        m = CSRMatrix.from_dense(dense)
        rows = np.asarray([1, 1])
        cols = np.asarray([0, 1, 2])
        assert np.array_equal(m.extract(rows, cols).to_dense(), dense[np.ix_(rows, cols)])

    def test_kron_matches_numpy(self, rng):
        a = rng.integers(0, 3, size=(2, 3))
        b = rng.integers(0, 3, size=(3, 2))
        got = CSRMatrix.from_dense(a).kron(CSRMatrix.from_dense(b)).to_dense()
        assert np.array_equal(got, np.kron(a, b))


class TestElementwise:
    def test_union_adds(self, rng):
        a = rng.integers(0, 3, size=(5, 5))
        b = rng.integers(0, 3, size=(5, 5))
        got = CSRMatrix.from_dense(a).ewise_union(CSRMatrix.from_dense(b)).to_dense()
        assert np.array_equal(got, a + b)

    def test_intersect_multiplies(self, rng):
        a = rng.integers(0, 3, size=(5, 5))
        b = rng.integers(0, 3, size=(5, 5))
        got = (
            CSRMatrix.from_dense(a)
            .ewise_intersect(CSRMatrix.from_dense(b), PLUS_TIMES.mult)
            .to_dense()
        )
        assert np.array_equal(got, a * b)

    def test_shape_mismatch(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix.empty((2, 2)).ewise_union(CSRMatrix.empty((3, 3)))


class TestSemiringKernels:
    def test_mxv_plus_times(self, rng):
        dense = rng.integers(0, 4, size=(6, 5))
        x = rng.integers(0, 4, size=5)
        assert np.array_equal(CSRMatrix.from_dense(dense).mxv(x), dense @ x)

    def test_mxv_empty_rows_get_identity(self):
        m = CSRMatrix.empty((3, 3))
        assert m.mxv(np.ones(3, dtype=np.int64)).tolist() == [0, 0, 0]

    def test_vxm(self, rng):
        dense = rng.integers(0, 4, size=(5, 6))
        x = rng.integers(0, 4, size=5)
        assert np.array_equal(CSRMatrix.from_dense(dense).vxm(x), x @ dense)

    def test_mxm_plus_times_matches_numpy(self, rng):
        a = rng.integers(0, 3, size=(5, 7))
        b = rng.integers(0, 3, size=(7, 4))
        got = CSRMatrix.from_dense(a).mxm(CSRMatrix.from_dense(b)).to_dense()
        assert np.array_equal(got, a @ b)

    def test_mxm_dimension_mismatch(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix.empty((2, 3)).mxm(CSRMatrix.empty((4, 2)))

    def test_mxm_min_plus_two_hop_distances(self):
        inf = np.inf
        w = np.asarray([[inf, 1.0, inf], [inf, inf, 2.0], [inf, inf, inf]])
        m = CSRMatrix.from_dense(w, zero=inf)
        d2 = m.mxm(m, MIN_PLUS).to_dense(inf)
        assert d2[0, 2] == 3.0
        assert np.isinf(d2[1, 0])

    def test_mxm_lor_land_reachability(self):
        adj = np.asarray([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=bool)
        m = CSRMatrix.from_dense(adj, zero=False)
        two = m.mxm(m, LOR_LAND).to_dense(False)
        assert two[0, 2] and not two[0, 1]

    def test_mxm_plus_pair_counts_common_neighbours(self):
        adj = np.asarray([[0, 1, 1], [1, 0, 1], [1, 1, 0]])
        m = CSRMatrix.from_dense(adj)
        counts = m.mxm(m.T, PLUS_PAIR).to_dense()
        # triangle graph: every pair of distinct vertices shares exactly 1 neighbour
        assert counts[0, 1] == 1 and counts[0, 0] == 2

    def test_mxm_prunes_semiring_zeros(self):
        a = CSRMatrix.from_dense(np.asarray([[1, -1]]))
        b = CSRMatrix.from_dense(np.asarray([[1], [1]]))
        out = a.mxm(b)
        assert out.nnz == 0  # 1 + (-1) == plus.times zero

    def test_reduce_rows_cols(self, rng):
        dense = rng.integers(0, 4, size=(4, 6))
        m = CSRMatrix.from_dense(dense)
        assert np.array_equal(m.reduce_rows(), dense.sum(axis=1))
        assert np.array_equal(m.reduce_cols(), dense.sum(axis=0))

    def test_reduce_scalar(self, rng):
        dense = rng.integers(0, 4, size=(4, 4))
        assert CSRMatrix.from_dense(dense).reduce_scalar() == dense.sum()

    def test_reduce_scalar_empty(self):
        assert CSRMatrix.empty((2, 2)).reduce_scalar() == 0


class TestScipyInterop:
    def test_round_trip(self, rng):
        dense = rng.integers(0, 3, size=(6, 6))
        ours = CSRMatrix.from_dense(dense)
        back = CSRMatrix.from_scipy(ours.to_scipy())
        assert back == ours

    def test_from_scipy_coo(self, rng):
        dense = rng.integers(0, 3, size=(5, 5))
        m = CSRMatrix.from_scipy(sp.coo_matrix(dense))
        assert np.array_equal(m.to_dense(), dense)


class TestMxmProperty:
    @given(dense_strategy(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_mxm_against_numpy(self, a, seed):
        k = a.shape[1]
        b = np.random.default_rng(seed).integers(0, 3, size=(k, 4))
        got = CSRMatrix.from_dense(a).mxm(CSRMatrix.from_dense(b)).to_dense()
        assert np.array_equal(got, a @ b)

    @given(dense_strategy())
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, a):
        m = CSRMatrix.from_dense(a)
        assert m.T.T == m

    @given(dense_strategy())
    @settings(max_examples=40, deadline=None)
    def test_union_with_empty_is_identity(self, a):
        m = CSRMatrix.from_dense(a)
        empty = CSRMatrix.empty(m.shape, dtype=m.dtype)
        assert np.array_equal(m.ewise_union(empty).to_dense(), m.to_dense())

    @given(dense_strategy())
    @settings(max_examples=40, deadline=None)
    def test_mxm_identity(self, a):
        m = CSRMatrix.from_dense(a)
        eye = CSRMatrix.identity(a.shape[1])
        assert np.array_equal(m.mxm(eye).to_dense(), m.prune().to_dense())
