"""Static shape/dtype inference and the ``Plan.typecheck`` hook.

Positive direction: inference agrees with actual evaluation, shape and
dtype, across the node types.  Negative direction: raw-constructed trees
that the builder methods never validated — and that previously failed only
inside a kernel — are rejected *statically*, with a path naming the
offending subtree.
"""

import numpy as np
import pytest

from repro.assoc import expr as E
from repro.assoc.planner import Plan
from repro.assoc.semiring import MIN_PLUS, PLUS_MONOID, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.errors import ExpressionError, ShapeInferenceError
from repro.staticcheck.shapes import ExprType, annotate, infer, infer_vec


def csr(dense, dtype=np.int64):
    return CSRMatrix.from_dense(np.asarray(dense, dtype=dtype))


@pytest.fixture
def a():
    return csr([[1, 0, 2], [0, 3, 0]])  # 2x3 int64


@pytest.fixture
def b():
    return csr([[1, 0], [0, 1], [2, 0]])  # 3x2 int64


class TestInferAgreesWithExecution:
    def test_leaf(self, a):
        t = infer(E.as_expr(a))
        assert t == ExprType((2, 3), np.dtype(np.int64))

    def test_mxm_shape_and_probe_dtype(self, a, b):
        tree = E.as_expr(a).mxm(b, PLUS_TIMES)
        t = infer(tree)
        observed = tree.new()
        assert t.shape == observed.shape == (2, 2)
        assert np.dtype(t.dtype) == observed.dtype == np.dtype(np.int64)

    def test_mxm_promotes_like_kernel(self, a):
        bf = csr([[1.5, 0], [0, 1.0], [2.0, 0]], dtype=np.float64)
        tree = E.as_expr(a).mxm(bf, PLUS_TIMES)
        assert np.dtype(infer(tree).dtype) == tree.new().dtype == np.float64

    def test_min_plus_dtype_probe(self, a, b):
        tree = E.as_expr(a).mxm(b, MIN_PLUS)
        assert np.dtype(infer(tree).dtype) == tree.new().dtype

    def test_union_promotes_by_result_type(self, a):
        af = csr([[0.5, 0, 0], [0, 0, 1.25]], dtype=np.float64)
        tree = E.as_expr(a) + a + af
        t = infer(tree)
        assert t.shape == (2, 3) and np.dtype(t.dtype) == np.float64
        assert tree.new().dtype == np.float64

    def test_transpose_swaps(self, a):
        assert infer(E.as_expr(a).transpose()).shape == (3, 2)

    def test_statically_empty_product_uses_result_type(self, a):
        empty = CSRMatrix.empty((3, 4), np.float64)
        tree = E.as_expr(a).mxm(empty, PLUS_TIMES)
        t = infer(tree)
        observed = tree.new()
        assert t.shape == observed.shape == (2, 4)
        assert np.dtype(t.dtype) == observed.dtype == np.float64

    def test_mxv_and_reduce(self, a):
        x = np.asarray([1.0, 2.0, 3.0])
        mxv = E.as_expr(a).mxv(x, PLUS_TIMES)
        t = infer_vec(mxv)
        assert t.shape == (2,) and np.dtype(t.dtype) == mxv.new().dtype
        red = E.as_expr(a).reduce_rows(PLUS_MONOID)
        t2 = infer_vec(red)
        assert t2.shape == (2,) and np.dtype(t2.dtype) == np.int64


class TestInferRejects:
    def test_inner_dim_mismatch_names_subtree(self, a):
        bad = E.MxM(E.MatLeaf(a), E.MatLeaf(a), PLUS_TIMES)  # staticcheck: ignore[SHP001]
        with pytest.raises(ShapeInferenceError) as exc:
            infer(bad)
        assert exc.value.path == "expr.mxm"
        assert "inner dimension mismatch" in exc.value.message

    def test_union_mismatch_names_operand_index(self, a):
        wrong = csr([[1]])
        bad = E.UnionAll((E.MatLeaf(a), E.MatLeaf(wrong)), PLUS_MONOID)  # staticcheck: ignore[SHP001]
        with pytest.raises(ShapeInferenceError) as exc:
            infer(bad)
        assert exc.value.path == "expr.union[1]"

    def test_nested_path_reaches_inner_node(self, a):
        inner = E.MxM(E.MatLeaf(a), E.MatLeaf(a), PLUS_TIMES)  # staticcheck: ignore[SHP001]
        outer = E.TransposeExpr(inner)  # staticcheck: ignore[SHP001]
        with pytest.raises(ShapeInferenceError) as exc:
            infer(outer)
        assert exc.value.path == "expr.transpose.mxm"

    def test_mask_shape_checked(self, a):
        mask = csr([[1]])
        with pytest.raises(ShapeInferenceError) as exc:
            infer(E.as_expr(a), mask)
        assert "mask shape" in exc.value.message

    def test_vector_length_checked(self, a):
        bad = E.MxV(E.MatLeaf(a), np.asarray([1.0, 2.0]), PLUS_TIMES)  # staticcheck: ignore[SHP001]
        with pytest.raises(ShapeInferenceError) as exc:
            infer_vec(bad)
        assert "vector length 2" in exc.value.message

    def test_vector_mask_length_checked(self, a):
        tree = E.as_expr(a).reduce_rows(PLUS_MONOID)
        with pytest.raises(ShapeInferenceError):
            infer_vec(tree, np.asarray([True, False, True]))


class TestPlanHook:
    def test_typecheck_matches_execution(self, a, b):
        tree = E.as_expr(a).mxm(b, PLUS_TIMES)
        plan = tree.plan()
        t = plan.typecheck()
        observed = tree.new()
        assert tuple(t.shape) == observed.shape
        assert np.dtype(t.dtype) == observed.dtype

    def test_typecheck_rejects_raw_tree_before_execution(self, a):
        bad = E.MxM(E.MatLeaf(a), E.MatLeaf(a), PLUS_TIMES)  # staticcheck: ignore[SHP001]
        plan = bad.plan()
        with pytest.raises(ShapeInferenceError):
            plan.typecheck()

    def test_typecheck_vec_plan(self, a):
        plan = E.as_expr(a).reduce_rows(PLUS_MONOID).plan()
        assert plan.typecheck().shape == (2,)

    def test_stepless_plan_has_nothing_to_typecheck(self):
        with pytest.raises(ExpressionError):
            Plan(()).typecheck()

    def test_plan_equality_ignores_carried_expr(self, a, b):
        p1 = E.as_expr(a).mxm(b, PLUS_TIMES).plan()
        p2 = E.as_expr(a).mxm(b, PLUS_TIMES).plan()
        assert p1 == p2

    def test_explain_marks_failing_subtree(self, a):
        bad = E.TransposeExpr(E.MxM(E.MatLeaf(a), E.MatLeaf(a), PLUS_TIMES))  # staticcheck: ignore[SHP001]
        text = bad.plan().explain()
        assert text.startswith("plan: ")
        assert "!!" in text and "inner dimension mismatch" in text

    def test_explain_types_valid_tree(self, a, b):
        text = E.as_expr(a).mxm(b, PLUS_TIMES).plan().explain()
        assert ":: (2, 2) int64" in text

    def test_expr_typecheck_method(self, a, b):
        t = E.as_expr(a).mxm(b, PLUS_TIMES).typecheck()
        assert t.shape == (2, 2)


class TestAnnotate:
    def test_renders_every_node_with_type(self, a, b):
        tree = (E.as_expr(a).mxm(b, PLUS_TIMES)).transpose()
        text = annotate(tree)
        lines = text.splitlines()
        assert lines[0].startswith("Transpose :: (2, 2)")
        assert any(line.lstrip().startswith("MxM[plus.times]") for line in lines)
        assert sum("MatLeaf" in line for line in lines) == 2
