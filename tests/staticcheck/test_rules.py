"""Golden-file diagnostics: each rule family detects its planted faults.

The fixtures under ``fixtures/`` plant one fault per rule code; the goldens
pin the exact rendered diagnostics (location, code, message, snippet), so a
rule that drifts — stops firing, fires twice, reorders, or rewords — fails
here with a readable diff.
"""

from pathlib import Path

import pytest

from repro.staticcheck import DeterminismRule, check_file, default_rules
from repro.staticcheck.core import FileContext
from repro.staticcheck.report import render_text

FIXTURES = Path(__file__).parent / "fixtures"

CASES = [
    ("det_faults.py", ["DET"], {"DET001", "DET002", "DET003", "DET004"}),
    ("exec_faults.py", ["EXEC"], {"EXEC001", "EXEC002", "EXEC003"}),
    ("obs_faults.py", ["OBS"], {"OBS001", "OBS002"}),
    (
        "reg_faults.py",
        ["REG"],
        {"REG001", "REG002", "REG003", "REG004", "REG005", "REG006"},
    ),
    ("shp_faults.py", ["SHP"], {"SHP001", "SHP002", "SHP003"}),
]


@pytest.mark.parametrize("fixture, select, codes", CASES, ids=[c[0] for c in CASES])
def test_family_matches_golden(fixture, select, codes):
    path = FIXTURES / fixture
    findings = check_file(path, default_rules(), select=select, display_path=fixture)
    assert {f.rule for f in findings} == codes
    rendered = render_text(findings, checked_files=1) + "\n"
    golden = (FIXTURES / (fixture.rsplit(".", 1)[0] + ".golden.txt")).read_text()
    assert rendered == golden


def test_every_declared_code_has_a_planted_fault():
    declared = {code for rule in default_rules() for code in rule.codes}
    planted = {code for _, _, codes in CASES for code in codes}
    assert declared == planted


def test_clean_source_yields_no_findings():
    src = (
        "import numpy as np\n"
        "\n"
        "def draw(seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return sorted(rng.integers(0, 9, size=4).tolist())\n"
    )
    ctx = FileContext.from_source(src, Path("clean_fixture.py"))
    findings = [f for rule in default_rules() for f in rule.check(ctx)]
    assert findings == []


def test_determinism_skips_non_contract_repro_modules():
    rule = DeterminismRule()
    contract = FileContext.from_source("x = 1\n", Path("src/repro/assoc/x.py"))
    contract.module = "repro.assoc.x"
    game = FileContext.from_source("x = 1\n", Path("src/repro/game/x.py"))
    game.module = "repro.game.x"
    script = FileContext.from_source("x = 1\n", Path("scratch.py"))
    script.module = None
    assert rule.applies(contract)
    assert not rule.applies(game)
    assert rule.applies(script)


_CLOCK_SRC = "import time\n\ndef stamp():\n    return time.time()\n"


def test_repro_obs_is_the_sole_clock_exemption():
    """repro.obs may read clocks (no DET002, no OBS002); nobody else may."""
    obs_ctx = FileContext.from_source(_CLOCK_SRC, Path("src/repro/obs/trace.py"))
    obs_ctx.module = "repro.obs.trace"
    codes = {f.rule for rule in default_rules() for f in rule.check(obs_ctx)}
    assert "DET002" not in codes and "OBS002" not in codes

    contract = FileContext.from_source(_CLOCK_SRC, Path("src/repro/runtime/x.py"))
    contract.module = "repro.runtime.x"
    codes = {f.rule for rule in default_rules() for f in rule.check(contract)}
    assert {"DET002", "OBS002"} <= codes


def test_obs_clock_ban_reaches_non_contract_modules():
    """OBS002 fires even where DET002 does not (non-contract repro code)."""
    game = FileContext.from_source(_CLOCK_SRC, Path("src/repro/game/x.py"))
    game.module = "repro.game.x"
    codes = {f.rule for rule in default_rules() for f in rule.check(game)}
    assert "OBS002" in codes and "DET002" not in codes


def test_obs_span_discipline():
    from repro.staticcheck import ObsRule

    bad = "def f(tracer):\n    s = tracer.span('x')\n    return s\n"
    good = (
        "def f(tracer, stack):\n"
        "    with tracer.span('x'):\n"
        "        pass\n"
        "    stack.enter_context(tracer.span('y'))\n"
    )
    rule = ObsRule()
    bad_ctx = FileContext.from_source(bad, Path("bad_span.py"))
    assert {f.rule for f in rule.check(bad_ctx)} == {"OBS001"}
    good_ctx = FileContext.from_source(good, Path("good_span.py"))
    assert list(rule.check(good_ctx)) == []
