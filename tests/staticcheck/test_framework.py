"""The lint framework itself: suppressions, baselines, walkers, resolution."""

import json
from pathlib import Path

import pytest

from repro.errors import StaticCheckError
from repro.staticcheck import check_file, check_paths, default_rules, parse_suppressions
from repro.staticcheck.core import (
    Baseline,
    FileContext,
    Finding,
    ImportResolver,
    iter_python_files,
    module_name_for,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _finding(rule="DET001", path="a.py", line=3, snippet="x = random.random()"):
    return Finding(rule=rule, path=path, line=line, col=5, message="m", snippet=snippet)


class TestSuppressions:
    def test_bare_ignore_silences_every_rule(self):
        table = parse_suppressions(["x = 1", "y = 2  # staticcheck: ignore"])
        assert table == {2: None}

    def test_coded_ignore_lists_codes(self):
        table = parse_suppressions(["z  # staticcheck: ignore[DET001, EXEC002]"])
        assert table == {1: frozenset({"DET001", "EXEC002"})}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions(["# staticcheck is great", "x = 1"]) == {}

    def test_suppressed_line_drops_only_named_codes(self, tmp_path):
        target = tmp_path / "sup.py"
        target.write_text(
            "import random\n"
            "a = random.random()  # staticcheck: ignore[DET001]\n"
            "b = random.random()\n"
        )
        findings = check_file(target, default_rules())
        assert [f.line for f in findings] == [3]

    def test_bare_suppression_drops_all_codes(self, tmp_path):
        target = tmp_path / "sup.py"
        target.write_text("import time\nt = time.time()  # staticcheck: ignore\n")
        assert check_file(target, default_rules()) == []


class TestBaseline:
    def test_filter_subtracts_per_key_counts(self):
        findings = [_finding(line=3), _finding(line=9), _finding(line=20)]
        baseline = Baseline.from_findings(findings[:2])
        fresh, accepted = baseline.filter(findings)
        assert accepted == 2
        assert [f.line for f in fresh] == [20]

    def test_empty_baseline_reports_everything(self):
        findings = [_finding()]
        fresh, accepted = Baseline().filter(findings)
        assert fresh == findings and accepted == 0

    def test_key_survives_line_drift(self):
        moved = _finding(line=77)
        baseline = Baseline.from_findings([_finding(line=3)])
        fresh, accepted = baseline.filter([moved])
        assert fresh == [] and accepted == 1

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline.from_findings([_finding(), _finding(rule="EXEC001")])
        original.save(path)
        assert Baseline.load(path).entries == original.entries

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"baseline_version": 99, "entries": []}))
        with pytest.raises(StaticCheckError):
            Baseline.load(path)


class TestWalkers:
    def test_iter_python_files_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "secret.py").write_text("x = 1\n")
        names = [p.name for p, _ in iter_python_files([tmp_path])]
        assert names == ["keep.py"]

    def test_missing_path_raises(self):
        with pytest.raises(StaticCheckError):
            list(iter_python_files(["no/such/dir"]))

    def test_unparseable_file_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(StaticCheckError):
            check_file(bad, default_rules())

    def test_findings_sorted_by_location(self):
        findings = check_file(FIXTURES / "det_faults.py", default_rules())
        keys = [(f.line, f.col, f.rule) for f in findings]
        assert keys == sorted(keys)

    def test_check_paths_covers_all_fixtures(self):
        findings = check_paths([FIXTURES], default_rules())
        assert {Path(f.path).name for f in findings} == {
            "det_faults.py",
            "exec_faults.py",
            "obs_faults.py",
            "reg_faults.py",
            "shp_faults.py",
        }

    def test_select_prefix_filters_codes(self):
        findings = check_paths([FIXTURES], default_rules(), select=["EXEC"])
        assert findings and all(f.rule.startswith("EXEC") for f in findings)


class TestResolution:
    def test_import_alias_canonicalised(self):
        ctx = FileContext.from_source(
            "import numpy as np\nnp.random.rand(3)\n", Path("x.py")
        )
        call = ctx.tree.body[1].value
        assert ctx.imports.resolve(call.func) == "numpy.random.rand"

    def test_from_import_alias(self):
        import ast

        tree = ast.parse("from numpy.random import default_rng as rng\nrng()\n")
        resolver = ImportResolver(tree)
        assert resolver.resolve(tree.body[1].value.func) == "numpy.random.default_rng"

    def test_module_name_for_package_file(self):
        root = Path(__file__).parents[2]
        assert module_name_for(root / "src/repro/assoc/expr.py") == "repro.assoc.expr"
        assert module_name_for(root / "src/repro/__init__.py") == "repro"

    def test_module_name_for_loose_script_is_none(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) is None
