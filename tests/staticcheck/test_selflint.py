"""The repository holds itself to its own checker, with an empty baseline."""

from pathlib import Path

from repro.scenarios.registry import SCENARIO_FAMILIES
from repro.staticcheck import check_paths, default_rules
from repro.staticcheck.core import Baseline
from repro.staticcheck.registry_schema import KNOWN_FAMILIES

REPO_ROOT = Path(__file__).parents[2]


def test_src_tree_lints_clean_against_empty_baseline():
    findings = check_paths([REPO_ROOT / "src"], default_rules())
    fresh, accepted = Baseline().filter(findings)
    assert accepted == 0
    assert fresh == [], "\n".join(str(f) for f in fresh)


def test_known_families_mirror_registry():
    # registry_schema hardcodes the family tuple so the checker can run
    # without importing the scenario layer; this pins the two in sync.
    assert KNOWN_FAMILIES == SCENARIO_FAMILIES


def test_rule_code_tables_are_disjoint():
    seen = {}
    for rule in default_rules():
        for code in rule.codes:
            assert code not in seen, f"{code} declared by {seen[code]} and {rule.name}"
            seen[code] = rule.name
