"""``python -m repro.staticcheck`` — exit codes, formats, baseline flow."""

import json
from pathlib import Path

from repro.staticcheck import main

FIXTURES = Path(__file__).parent / "fixtures"
DET = str(FIXTURES / "det_faults.py")


def test_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_text_report(capsys):
    assert main([DET]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "det_faults.py" in out


def test_json_format_is_parseable(capsys):
    assert main([DET, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["count"] == len(doc["findings"]) > 0
    assert {f["rule"] for f in doc["findings"]} >= {"DET001", "DET002"}


def test_select_excludes_other_families(capsys):
    assert main([DET, "--select", "EXEC"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_write_then_apply_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([DET, "--write-baseline", str(baseline)]) == 0
    assert baseline.exists()
    capsys.readouterr()
    assert main([DET, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out and "baselined" in out


def test_missing_baseline_is_usage_error(tmp_path, capsys):
    assert main([DET, "--baseline", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main(["no/such/tree"]) == 2
    assert "error:" in capsys.readouterr().err


def test_list_rules_prints_table(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "EXEC003", "REG006", "SHP003"):
        assert code in out
