"""Planted registry-schema faults — REG golden-file fixture (never imported)."""

from repro.scenarios.registry import register_scenario


@register_scenario(
    "bad_example",
    family="weather",
    display="Bad Example",
    bounds={"density": (0.0, 1.0), "ghost": (0, 5)},
)
def bad_example(n, density=1.5, packets=40, *, mode):
    return None
