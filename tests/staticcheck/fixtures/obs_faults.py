"""Planted observability faults — OBS golden-file fixture (never imported)."""

import time

from repro.obs import trace


def leaked_span(tracer):
    span = tracer.span("kernel.mxm", blocks=4)
    span.__enter__()
    return span


def ad_hoc_timing():
    t0 = time.perf_counter()
    return time.perf_counter() - t0


def sanctioned(tracer, stack):
    with tracer.span("runtime.map"):
        pass
    stack.enter_context(trace.get_tracer().span("kernel.mxv"))
