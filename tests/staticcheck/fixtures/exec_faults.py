"""Planted executor-safety faults — EXEC golden-file fixture (never imported)."""

from repro.runtime import parallel_map


def fan_out(items):
    return parallel_map(lambda x: x + 1, items)


def closure_worker(items):
    offset = 2

    def work(x):
        return x + offset

    return parallel_map(work, items)


def alias_lambda(items):
    work = lambda x: x * 2
    return parallel_map(work, items)


def nested_worker(chunk):
    return parallel_map(len, chunk)


def driver(batches):
    return parallel_map(nested_worker, batches)
