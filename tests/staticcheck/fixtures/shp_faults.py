"""Planted expression-site faults — SHP golden-file fixture (never imported)."""

from repro.assoc.expr import MxM, union_all
from repro.assoc.semiring import PLUS_TIMES


def raw_product(a, b):
    return MxM(a, b, PLUS_TIMES)


def empty_union():
    return union_all([])


def forgotten_eval(a, b):
    a.mxm(b, PLUS_TIMES)
    return a
