"""Planted determinism faults — DET golden-file fixture (never imported)."""

import random
import time

import numpy as np


def unseeded_draw():
    return random.random()


def legacy_numpy():
    return np.random.rand(3)


def seedless_generator():
    return np.random.default_rng()


def stamp():
    return time.time()


def address_order(items):
    return sorted(items, key=id)


def frozen_set_order(names):
    out = []
    for name in {n.strip() for n in names}:
        out.append(name)
    return out + list(set(names))
