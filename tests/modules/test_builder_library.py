"""ModuleBuilder and the built-in catalogue."""

import pytest

from repro.errors import ModuleSchemaError
from repro.graphs.patterns import star
from repro.modules.builder import ModuleBuilder, pattern_question
from repro.modules.library import (
    DISPLAY_NAMES,
    builtin_catalog,
    catalog_families,
    family_modules,
)
from repro.modules.module import STANDARD_QUESTION
from repro.modules.schema import validate_module_dict


class TestModuleBuilder:
    def test_minimal(self):
        m = ModuleBuilder("Lesson").matrix(star(10)).build()
        assert m.name == "Lesson" and not m.has_question

    def test_full(self):
        m = (
            ModuleBuilder("Star")
            .author("Ada")
            .matrix(star(10))
            .question("Which?", answers=["Star", "Ring", "Mesh"], correct=0)
            .hint("see refs")
            .build()
        )
        assert m.author == "Ada"
        assert m.question.hint == "see refs"
        assert m.question.correct_answer == "Star"

    def test_hint_before_question(self):
        m = (
            ModuleBuilder("Star")
            .matrix(star(10))
            .hint("h")
            .question("Which?", answers=["a", "b", "c"], correct=1)
            .build()
        )
        assert m.question.hint == "h"

    def test_grid_form(self):
        m = ModuleBuilder("Tiny").grid([[0, 1], [0, 0]], ["A", "B"]).build()
        assert m.matrix["A", "B"] == 1

    def test_no_matrix_rejected(self):
        with pytest.raises(ModuleSchemaError, match="matrix"):
            ModuleBuilder("Empty").build()

    def test_extra_fields(self):
        m = ModuleBuilder("X").matrix(star(10)).extra(difficulty="hard").build()
        assert m.to_json_dict()["difficulty"] == "hard"

    def test_built_module_validates(self):
        m = (
            ModuleBuilder("Star")
            .matrix(star(10))
            .question("Q?", answers=["a", "b", "c"], correct=2)
            .build()
        )
        validate_module_dict(m.to_json_dict())


class TestPatternQuestion:
    def test_correct_first_with_cyclic_distractors(self):
        family = ("a", "b", "c", "d")
        display = {k: k.upper() for k in family}
        q = pattern_question("c", family, display)
        assert q.answers == ("C", "D", "A")
        assert q.correct_answer == "C"

    def test_unknown_correct_rejected(self):
        with pytest.raises(ModuleSchemaError):
            pattern_question("z", ("a", "b"), {"a": "A", "b": "B"})

    def test_standard_text(self):
        q = pattern_question("a", ("a", "b", "c"), {k: k for k in "abc"})
        assert q.text == STANDARD_QUESTION


class TestCatalog:
    def test_families_and_counts(self, catalog):
        fams = {}
        for key in catalog:
            fams[key.split("/")[0]] = fams.get(key.split("/")[0], 0) + 1
        assert fams["graph_theory"] == 9     # Fig. 10
        assert fams["topologies"] == 4       # Fig. 6
        assert fams["attack"] == 4           # Fig. 7
        assert fams["defense"] == 3          # Fig. 8
        assert fams["ddos"] == 4             # Fig. 9
        assert fams["training"] == 1         # Fig. 5
        assert fams["templates"] == 2

    def test_catalog_families_order(self):
        fams = catalog_families()
        assert fams[0] == "training"
        assert fams.index("topologies") < fams.index("attack") < fams.index("ddos")

    def test_family_modules(self):
        mods = family_modules("defense")
        assert len(mods) == 3

    def test_every_module_serialises_and_validates(self, catalog):
        for key, module in catalog.items():
            validate_module_dict(module.to_json_dict())

    def test_every_question_has_three_answers(self, catalog):
        for key, module in catalog.items():
            if module.question:
                assert len(module.question.answers) == 3, key

    def test_answers_are_display_names(self, catalog):
        q = catalog["graph_theory/star"].question
        assert q.answers[0] == DISPLAY_NAMES["star"]

    def test_distractors_in_family(self, catalog):
        q = catalog["attack/planning"].question
        attack_names = {DISPLAY_NAMES[k] for k in ("planning", "staging", "infiltration", "lateral_movement")}
        assert set(q.answers) <= attack_names

    def test_hints_cite_references(self, catalog):
        assert "HPEC 2020" in catalog["topologies/isolated_links"].question.hint
        assert "Zero Botnets" in catalog["ddos/backscatter"].question.hint
        assert "TEDxBoston" in catalog["defense/security"].question.hint

    def test_training_is_template_matrix(self, catalog, tpl10):
        assert catalog["training/training"].matrix == tpl10.matrix

    def test_catalog_copies_are_independent(self):
        a = builtin_catalog()
        del a["training/training"]
        assert "training/training" in builtin_catalog()

    def test_all_matrices_render_within_display_limit(self, catalog):
        for key, module in catalog.items():
            assert module.matrix.cells_over_display_limit() == [], key

    def test_challenge_modules_present(self, catalog):
        assert "challenge/full_attack" in catalog
        assert "challenge/supernode_in_noise" in catalog
