"""Module files and zip bundles: save/load round trips and error paths."""

import io
import zipfile

import pytest

from repro.errors import ModuleLoadError, ModuleSchemaError
from repro.modules.loader import (
    bundle_names,
    load_bundle,
    load_module,
    loads_module,
    save_bundle,
    save_module,
)
from repro.modules.templates import template_6x6, template_10x10


class TestSingleFile:
    def test_save_load_round_trip(self, tmp_path, tpl10):
        path = save_module(tpl10, tmp_path / "m.json")
        back = load_module(path)
        assert back.matrix == tpl10.matrix
        assert back.name == tpl10.name

    def test_creates_parent_dirs(self, tmp_path, tpl10):
        path = save_module(tpl10, tmp_path / "a" / "b" / "m.json")
        assert path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModuleLoadError, match="cannot read"):
            load_module(tmp_path / "missing.json")

    def test_invalid_json_names_source(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ModuleLoadError, match="bad.json"):
            load_module(bad)

    def test_schema_error_names_source(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}', encoding="utf-8")
        with pytest.raises(ModuleSchemaError, match="bad.json"):
            load_module(bad)

    def test_loads_module_from_string(self, tpl6):
        assert loads_module(tpl6.to_json()).matrix == tpl6.matrix


class TestBundles:
    def test_round_trip_preserves_order(self, tmp_path):
        mods = [template_6x6(), template_10x10()]
        path = tmp_path / "bundle.zip"
        names = save_bundle(mods, path)
        assert names == ["01_6x6_template.json", "02_10x10_template.json"]
        back = load_bundle(path)
        assert [m.name for m in back] == [m.name for m in mods]

    def test_sequential_presentation_is_sorted_name_order(self, tmp_path):
        # build a zip by hand with names out of insertion order
        path = tmp_path / "bundle.zip"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("02_second.json", template_10x10().to_json())
            zf.writestr("01_first.json", template_6x6().to_json())
        back = load_bundle(path)
        assert back[0].size == "6x6"

    def test_non_json_members_ignored(self, tmp_path):
        path = tmp_path / "bundle.zip"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("README.txt", "hello")
            zf.writestr("01_m.json", template_6x6().to_json())
        assert len(load_bundle(path)) == 1

    def test_directory_prefixes_allowed(self, tmp_path):
        path = tmp_path / "bundle.zip"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("lesson/01_m.json", template_6x6().to_json())
        assert len(load_bundle(path)) == 1

    def test_empty_bundle_rejected(self, tmp_path):
        path = tmp_path / "bundle.zip"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("README.txt", "no modules here")
        with pytest.raises(ModuleLoadError, match="no .json"):
            load_bundle(path)

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "bundle.zip"
        path.write_text("definitely not a zip")
        with pytest.raises(ModuleLoadError, match="cannot open"):
            load_bundle(path)

    def test_broken_member_names_member(self, tmp_path):
        path = tmp_path / "bundle.zip"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("01_bad.json", '{"name": "x"}')
        with pytest.raises(ModuleSchemaError, match="01_bad.json"):
            load_bundle(path)

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(ModuleLoadError, match="empty"):
            save_bundle([], tmp_path / "b.zip")

    def test_bytesio_round_trip(self):
        buf = io.BytesIO()
        save_bundle([template_6x6()], buf)
        buf.seek(0)
        assert len(load_bundle(buf)) == 1

    def test_bundle_names(self, tmp_path):
        path = tmp_path / "bundle.zip"
        save_bundle([template_6x6(), template_10x10()], path)
        assert bundle_names(path) == ["01_6x6_template.json", "02_10x10_template.json"]

    def test_duplicate_module_names_disambiguated(self, tmp_path):
        mods = [template_6x6(), template_6x6()]
        names = save_bundle(mods, tmp_path / "b.zip")
        assert len(set(names)) == 2

    def test_catalog_bundle_round_trip(self, tmp_path, catalog):
        path = tmp_path / "full.zip"
        save_bundle(list(catalog.values()), path)
        back = load_bundle(path)
        assert len(back) == len(catalog)
