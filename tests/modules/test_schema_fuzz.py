"""Schema fuzzing: arbitrary JSON-shaped input never crashes the validator.

The paper's format is hand-edited plaintext; the validator's contract is that
*any* input produces either a module or a :class:`ModuleSchemaError` with a
JSON path — never a traceback from deep inside NumPy or a KeyError.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModuleLoadError, ModuleSchemaError
from repro.modules.loader import loads_module
from repro.modules.schema import validate_module_dict
from repro.modules.templates import template_10x10_dict

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-100, 100),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


class TestValidatorTotalness:
    @given(st.dictionaries(st.text(max_size=12), json_values, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_random_objects_never_crash(self, doc):
        try:
            validate_module_dict(doc)
        except ModuleSchemaError:
            pass  # the only acceptable failure mode

    @given(
        field=st.sampled_from(sorted(template_10x10_dict().keys())),
        value=json_values,
    )
    @settings(max_examples=200, deadline=None)
    def test_single_field_corruption_never_crashes(self, field, value):
        doc = template_10x10_dict()
        doc[field] = value
        try:
            module = validate_module_dict(doc)
        except ModuleSchemaError:
            return
        # if it validated, the replacement must have been equivalent data
        assert module.size in ("10x10",) or field == "size"

    @given(
        i=st.integers(0, 9), j=st.integers(0, 9), value=json_scalars,
    )
    @settings(max_examples=150, deadline=None)
    def test_single_cell_corruption(self, i, j, value):
        doc = template_10x10_dict()
        doc["traffic_matrix"][i][j] = value
        try:
            module = validate_module_dict(doc)
        except ModuleSchemaError as exc:
            assert "traffic_matrix" in str(exc)
            return
        assert module.matrix.packets[i, j] >= 0

    @given(st.text(max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_random_text_through_loader(self, text):
        try:
            loads_module(text)
        except (ModuleLoadError, ModuleSchemaError):
            pass

    @given(st.dictionaries(st.text(max_size=12), json_values, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_loader_and_validator_agree(self, doc):
        """Going through JSON text cannot change the verdict."""
        try:
            validate_module_dict(doc)
            direct_ok = True
        except ModuleSchemaError:
            direct_ok = False
        try:
            text_ok = loads_module(json.dumps(doc)) is not None
        except (ModuleLoadError, ModuleSchemaError):
            text_ok = False
        # floats like 1.0 survive JSON round trips; verdicts must match
        assert direct_ok == text_ok


class TestErrorPathsCarryLocation:
    @pytest.mark.parametrize(
        "mutate,expected_path",
        [
            (lambda d: d.__setitem__("size", "oops"), "$.size"),
            (lambda d: d["axis_labels"].__setitem__(0, ""), "$.axis_labels"),
            (lambda d: d["traffic_matrix"][5].__setitem__(5, "x"), "[5][5]"),
            (lambda d: d["traffic_matrix_colors"][1].__setitem__(2, 9), "[1][2]"),
            (lambda d: d.__setitem__("answers", ["a", "a", "b"]), "$.answers"),
        ],
    )
    def test_paths(self, mutate, expected_path):
        doc = template_10x10_dict()
        mutate(doc)
        with pytest.raises(ModuleSchemaError) as exc_info:
            validate_module_dict(doc)
        assert expected_path in str(exc_info.value)
