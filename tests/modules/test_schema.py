"""Schema validation: every educator mistake gets a pointable error."""

import pytest

from repro.errors import ModuleSchemaError
from repro.modules.schema import validate_module_dict
from repro.modules.templates import template_10x10_dict


def broken(**overrides):
    doc = template_10x10_dict()
    doc.update(overrides)
    return doc


class TestRequiredFields:
    @pytest.mark.parametrize("field", ["name", "size", "author", "axis_labels", "traffic_matrix"])
    def test_missing_field(self, field):
        doc = template_10x10_dict()
        del doc[field]
        with pytest.raises(ModuleSchemaError, match=field):
            validate_module_dict(doc)

    def test_non_object_rejected(self):
        with pytest.raises(ModuleSchemaError):
            validate_module_dict(["not", "an", "object"])  # type: ignore[arg-type]

    def test_empty_name(self):
        with pytest.raises(ModuleSchemaError, match=r"\$\.name"):
            validate_module_dict(broken(name="   "))

    def test_empty_author(self):
        with pytest.raises(ModuleSchemaError, match=r"\$\.author"):
            validate_module_dict(broken(author=""))


class TestSize:
    def test_bad_format(self):
        with pytest.raises(ModuleSchemaError, match="10x10"):
            validate_module_dict(broken(size="ten by ten"))

    def test_non_square(self):
        with pytest.raises(ModuleSchemaError, match="square"):
            validate_module_dict(broken(size="10x8"))

    def test_non_string(self):
        with pytest.raises(ModuleSchemaError, match=r"\$\.size"):
            validate_module_dict(broken(size=10))

    def test_zero_size(self):
        with pytest.raises(ModuleSchemaError, match="at least"):
            validate_module_dict(broken(size="0x0"))


class TestLabels:
    def test_wrong_count(self):
        doc = broken()
        doc["axis_labels"] = doc["axis_labels"][:-1]
        with pytest.raises(ModuleSchemaError, match="axis_labels"):
            validate_module_dict(doc)

    def test_duplicates(self):
        doc = broken()
        doc["axis_labels"][1] = "WS1"
        with pytest.raises(ModuleSchemaError, match="duplicate"):
            validate_module_dict(doc)

    def test_non_list(self):
        with pytest.raises(ModuleSchemaError, match="list"):
            validate_module_dict(broken(axis_labels="WS1,WS2"))


class TestMatrixGrid:
    def test_row_count_mismatch(self):
        doc = broken()
        doc["traffic_matrix"] = doc["traffic_matrix"][:-1]
        with pytest.raises(ModuleSchemaError, match="10 rows"):
            validate_module_dict(doc)

    def test_row_length_mismatch(self):
        doc = broken()
        doc["traffic_matrix"][3] = [0] * 9
        with pytest.raises(ModuleSchemaError, match=r"traffic_matrix\[3\]"):
            validate_module_dict(doc)

    def test_non_numeric_cell(self):
        doc = broken()
        doc["traffic_matrix"][2][5] = "two"
        with pytest.raises(ModuleSchemaError, match=r"\[2\]\[5\]"):
            validate_module_dict(doc)

    def test_boolean_cell_rejected(self):
        doc = broken()
        doc["traffic_matrix"][0][0] = True
        with pytest.raises(ModuleSchemaError, match=r"\[0\]\[0\]"):
            validate_module_dict(doc)

    def test_fractional_cell_rejected(self):
        doc = broken()
        doc["traffic_matrix"][0][0] = 1.5
        with pytest.raises(ModuleSchemaError, match="integer"):
            validate_module_dict(doc)

    def test_negative_cell(self):
        doc = broken()
        doc["traffic_matrix"][0][0] = -1
        with pytest.raises(ModuleSchemaError, match="non-negative"):
            validate_module_dict(doc)

    def test_integral_float_accepted(self):
        doc = broken()
        doc["traffic_matrix"][0][0] = 1.0
        assert validate_module_dict(doc).matrix[0, 0] == 1


class TestColorGrid:
    def test_bad_code_with_position(self):
        doc = broken()
        doc["traffic_matrix_colors"][4][7] = 3
        with pytest.raises(ModuleSchemaError, match=r"colors\[4\]\[7\]"):
            validate_module_dict(doc)

    def test_colors_optional(self):
        doc = broken()
        del doc["traffic_matrix_colors"]
        module = validate_module_dict(doc)
        assert module.matrix.colors.sum() == 0

    def test_null_colors_treated_as_absent(self):
        doc = broken(traffic_matrix_colors=None)
        assert validate_module_dict(doc).matrix.colors.sum() == 0


class TestQuestion:
    def test_question_missing_when_toggled_on(self):
        doc = broken()
        del doc["question"]
        with pytest.raises(ModuleSchemaError, match="'question' is missing"):
            validate_module_dict(doc)

    def test_answers_missing(self):
        doc = broken()
        del doc["answers"]
        with pytest.raises(ModuleSchemaError, match="'answers' is missing"):
            validate_module_dict(doc)

    def test_three_answer_policy(self):
        doc = broken(answers=["0", "1"], correct_answer_element=0)
        with pytest.raises(ModuleSchemaError, match="exactly 3"):
            validate_module_dict(doc)

    def test_three_answer_policy_relaxable(self):
        doc = broken(answers=["0", "1"], correct_answer_element=0)
        module = validate_module_dict(doc, require_three_answers=False)
        assert len(module.question.answers) == 2

    def test_duplicate_answers(self):
        doc = broken(answers=["2", "2", "1"])
        with pytest.raises(ModuleSchemaError, match="distinct"):
            validate_module_dict(doc)

    def test_correct_element_out_of_range(self):
        doc = broken(correct_answer_element=5)
        with pytest.raises(ModuleSchemaError, match="out of range"):
            validate_module_dict(doc)

    def test_correct_element_bool_rejected(self):
        doc = broken(correct_answer_element=True)
        with pytest.raises(ModuleSchemaError, match="integer"):
            validate_module_dict(doc)

    def test_both_element_and_hash_rejected(self):
        doc = broken(correct_answer_hash="a" * 64)
        with pytest.raises(ModuleSchemaError, match="exactly one"):
            validate_module_dict(doc)

    def test_hash_form_accepted(self):
        doc = broken()
        del doc["correct_answer_element"]
        doc["correct_answer_hash"] = "ab" * 32
        module = validate_module_dict(doc)
        assert module.question.is_obfuscated

    def test_malformed_hash_rejected(self):
        doc = broken()
        del doc["correct_answer_element"]
        doc["correct_answer_hash"] = "nothex"
        with pytest.raises(ModuleSchemaError, match="SHA-256"):
            validate_module_dict(doc)

    def test_question_toggled_off_ignores_question_fields(self):
        doc = broken(has_question=False)
        module = validate_module_dict(doc)
        assert module.question is None

    def test_has_question_must_be_bool(self):
        with pytest.raises(ModuleSchemaError, match="true or false"):
            validate_module_dict(broken(has_question="yes"))

    def test_hint_accepted(self):
        module = validate_module_dict(broken(hint="See HPEC 2020"))
        assert module.question.hint == "See HPEC 2020"

    def test_hint_type_checked(self):
        with pytest.raises(ModuleSchemaError, match=r"\$\.hint"):
            validate_module_dict(broken(hint=42))


class TestExtraFields:
    def test_unknown_fields_preserved(self):
        module = validate_module_dict(broken(difficulty="advanced"))
        assert module.extra["difficulty"] == "advanced"

    def test_extra_fields_round_trip(self):
        module = validate_module_dict(broken(difficulty="advanced"))
        assert module.to_json_dict()["difficulty"] == "advanced"


class TestHappyPath:
    def test_template_validates(self):
        module = validate_module_dict(template_10x10_dict())
        assert module.name == "10x10 Template"
        assert module.size == "10x10"
        assert module.question.correct_answer == "2"
        assert module.matrix["WS1", "ADV4"] == 2
