"""Hierarchical curricula (paper future-work feature)."""

import pytest

from repro.errors import ModuleLoadError, ModuleSchemaError
from repro.modules.curriculum import (
    Curriculum,
    Unit,
    load_curriculum_bundle,
    save_curriculum_bundle,
)
from repro.modules.library import builtin_catalog, family_modules
from repro.modules.loader import load_bundle


def sample_curriculum() -> Curriculum:
    cat = builtin_catalog()
    basics = Unit(
        "Basics",
        modules=(cat["training/training"], cat["templates/10x10"]),
        pass_score=0.5,
    )
    topo = Unit(
        "Topologies",
        modules=tuple(family_modules("topologies")),
        requires=("Basics",),
    )
    attack = Unit(
        "Attack Patterns",
        modules=tuple(family_modules("attack")),
        requires=("Topologies",),
        pass_score=0.75,
    )
    return Curriculum(Unit("Course", children=(basics, topo, attack)))


class TestUnit:
    def test_empty_title_rejected(self):
        with pytest.raises(ModuleSchemaError):
            Unit("  ")

    def test_pass_score_range(self):
        with pytest.raises(ModuleSchemaError):
            Unit("U", pass_score=1.5)

    def test_all_modules_depth_first(self):
        c = sample_curriculum()
        names = [m.name for m in c.root.all_modules()]
        assert names[0].startswith("Training")
        assert len(names) == 2 + 4 + 4

    def test_question_count(self):
        c = sample_curriculum()
        assert c.unit("Basics").question_count() == 2


class TestCurriculumStructure:
    def test_duplicate_titles_rejected(self):
        with pytest.raises(ModuleSchemaError, match="unique"):
            Curriculum(Unit("A", children=(Unit("B"), Unit("B"))))

    def test_unknown_prerequisite_rejected(self):
        with pytest.raises(ModuleSchemaError, match="unknown unit"):
            Curriculum(Unit("A", children=(Unit("B", requires=("Ghost",)),)))

    def test_self_requirement_rejected(self):
        with pytest.raises(ModuleSchemaError, match="require itself"):
            Curriculum(Unit("A", children=(Unit("B", requires=("B",)),)))

    def test_unit_lookup(self):
        c = sample_curriculum()
        assert c.unit("Topologies").requires == ("Basics",)
        with pytest.raises(ModuleSchemaError):
            c.unit("Nope")


class TestFlatten:
    def test_respects_prerequisites(self):
        c = sample_curriculum()
        names = [m.name for m in c.flatten()]
        basics_pos = names.index("Training: Reading a Traffic Matrix")
        attack_pos = names.index("Planning")
        assert basics_pos < attack_pos

    def test_deferred_unit_reordering(self):
        # a unit listed first but requiring a later sibling gets deferred
        late = Unit("Late", modules=(builtin_catalog()["templates/6x6"],), requires=("Early",))
        early = Unit("Early", modules=(builtin_catalog()["templates/10x10"],))
        c = Curriculum(Unit("Root", children=(late, early)))
        names = [m.name for m in c.flatten()]
        assert names.index("10x10 Template") < names.index("6x6 Template")

    def test_cycle_detected(self):
        a = Unit("A", requires=("B",), modules=(builtin_catalog()["templates/6x6"],))
        b = Unit("B", requires=("A",))
        c = Curriculum(Unit("Root", children=(a, b)))
        with pytest.raises(ModuleSchemaError, match="cycle"):
            c.flatten()


class TestProgressGating:
    def test_available_units_unlock_in_order(self):
        c = sample_curriculum()
        first = {u.title for u in c.available_units([])}
        assert "Basics" in first and "Attack Patterns" not in first
        after_basics = {u.title for u in c.available_units(["Course", "Basics"])}
        assert "Topologies" in after_basics and "Attack Patterns" not in after_basics

    def test_unit_passed_threshold(self):
        c = sample_curriculum()
        assert c.unit_passed("Basics", correct=1)       # 1/2 >= 0.5
        assert not c.unit_passed("Attack Patterns", 2)  # 2/4 < 0.75
        assert c.unit_passed("Attack Patterns", 3)

    def test_discussion_only_unit_passes(self):
        c = Curriculum(Unit("Root", children=(Unit("Talk"),)))
        assert c.unit_passed("Talk", correct=0)


class TestSerialisation:
    def test_json_round_trip(self):
        c = sample_curriculum()
        back = Curriculum.from_json_dict(c.to_json_dict())
        assert [u.title for u in back.root.iter_units()] == [
            u.title for u in c.root.iter_units()
        ]
        assert [m.name for m in back.flatten()] == [m.name for m in c.flatten()]
        assert back.unit("Attack Patterns").pass_score == 0.75

    def test_bundle_round_trip(self, tmp_path):
        c = sample_curriculum()
        path = save_curriculum_bundle(c, tmp_path / "course.zip")
        back = load_curriculum_bundle(path)
        assert [m.name for m in back.flatten()] == [m.name for m in c.flatten()]

    def test_bundle_degrades_to_playlist(self, tmp_path):
        # an old client can still load the same zip as a flat playlist
        c = sample_curriculum()
        path = save_curriculum_bundle(c, tmp_path / "course.zip")
        modules = load_bundle(path)
        assert [m.name for m in modules] == [m.name for m in c.flatten()]

    def test_missing_curriculum_json(self, tmp_path):
        import zipfile

        path = tmp_path / "plain.zip"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("01_m.json", builtin_catalog()["templates/6x6"].to_json())
        with pytest.raises(ModuleLoadError, match="curriculum.json"):
            load_curriculum_bundle(path)

    def test_root_required(self):
        with pytest.raises(ModuleSchemaError, match="root"):
            Curriculum.from_json_dict({"curriculum_version": 1})

    def test_empty_curriculum_bundle_rejected(self, tmp_path):
        c = Curriculum(Unit("Root"))
        with pytest.raises(ModuleLoadError, match="empty"):
            save_curriculum_bundle(c, tmp_path / "empty.zip")
