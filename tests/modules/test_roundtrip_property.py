"""Property: every constructible module survives JSON and bundle round trips.

Modules are generated randomly (size, labels, packets, colours, question
shape, colour mode) and pushed through the full serialise → parse → validate
pipeline; the result must be field-for-field identical.  This is the
guarantee the paper's hand-edit-and-retype workflow ("printed on paper ...
then simply hand typed back") depends on.
"""

from __future__ import annotations

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.traffic_matrix import TrafficMatrix
from repro.modules.builder import ModuleBuilder
from repro.modules.loader import load_bundle, loads_module, save_bundle
from repro.modules.module import LearningModule
from repro.modules.obfuscate import obfuscate_module


@st.composite
def modules(draw) -> LearningModule:
    n = draw(st.integers(2, 12))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    packets = rng.integers(0, 15, size=(n, n))
    extended = draw(st.booleans())
    max_code = 4 if extended else 2
    colors = rng.integers(0, max_code + 1, size=(n, n))
    matrix = TrafficMatrix(packets, colors=colors, extended_colors=extended)
    # the schema validator canonicalises name/author by stripping whitespace,
    # so generate already-canonical strings
    clean_text = lambda size: st.text(min_size=1, max_size=size).map(str.strip).filter(bool)  # noqa: E731
    builder = (
        ModuleBuilder(draw(clean_text(20)))
        .author(draw(clean_text(15)))
        .matrix(matrix)
    )
    if draw(st.booleans()):
        answers = draw(
            st.lists(
                st.text(min_size=1, max_size=10),
                min_size=3,
                max_size=3,
                unique=True,
            )
        )
        builder = builder.question(
            draw(st.text(min_size=1, max_size=30).filter(str.strip)),
            answers=answers,
            correct=draw(st.integers(0, 2)),
            hint=draw(st.one_of(st.none(), st.text(min_size=1, max_size=20))),
        )
    module = builder.build()
    if module.question is not None and draw(st.booleans()):
        module = obfuscate_module(module)
    return module


class TestRoundTrips:
    @given(modules())
    @settings(max_examples=60, deadline=None)
    def test_json_text_round_trip(self, module):
        back = loads_module(module.to_json())
        assert back.name == module.name
        assert back.author == module.author
        assert back.matrix == module.matrix
        assert back.matrix.extended_colors == module.matrix.extended_colors
        if module.question is None:
            assert back.question is None
        else:
            assert back.question == module.question

    @given(st.lists(modules(), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_bundle_round_trip(self, mods):
        buf = io.BytesIO()
        save_bundle(mods, buf)
        buf.seek(0)
        back = load_bundle(buf)
        assert [m.name for m in back] == [m.name for m in mods]
        for a, b in zip(mods, back):
            assert a.matrix == b.matrix

    @given(modules())
    @settings(max_examples=40, deadline=None)
    def test_double_serialisation_stable(self, module):
        once = module.to_json()
        twice = loads_module(once).to_json()
        assert once == twice
