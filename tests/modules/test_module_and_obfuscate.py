"""Question/module semantics: shuffling, JSON round trips, obfuscation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModuleSchemaError, QuizError
from repro.modules.module import Question, STANDARD_QUESTION
from repro.modules.obfuscate import (
    deobfuscate_module,
    hash_answer,
    obfuscate_module,
    obfuscate_question,
    verify_answer,
)
from repro.modules.schema import validate_module_dict


def q3(correct: int = 0) -> Question:
    return Question("Pick one", ("a", "b", "c"), correct_answer_element=correct)


class TestQuestion:
    def test_correct_answer_text(self):
        assert q3(1).correct_answer == "b"

    def test_needs_two_answers(self):
        with pytest.raises(ModuleSchemaError):
            Question("q", ("only",), correct_answer_element=0)

    def test_element_range_checked(self):
        with pytest.raises(ModuleSchemaError):
            Question("q", ("a", "b"), correct_answer_element=2)

    def test_element_or_hash_exclusive(self):
        with pytest.raises(ModuleSchemaError):
            Question("q", ("a", "b"), correct_answer_element=0, correct_answer_hash="x" * 64)
        with pytest.raises(ModuleSchemaError):
            Question("q", ("a", "b"))

    def test_is_correct_by_text(self):
        q = q3(2)
        assert q.is_correct("c") and not q.is_correct("a")

    @given(st.integers(0, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_shuffle_is_permutation_tracking_correct(self, seed):
        q = q3(1)
        options, idx = q.shuffled_answers(seed)
        assert sorted(options) == ["a", "b", "c"]
        assert options[idx] == "b"

    def test_shuffle_varies_with_seed(self):
        q = q3()
        orders = {tuple(q.shuffled_answers(s)[0]) for s in range(20)}
        assert len(orders) > 1  # "the first element will not always be the first option"


class TestModuleJson:
    def test_round_trip_all_fields(self, tpl10):
        doc = tpl10.to_json_dict()
        back = validate_module_dict(json.loads(json.dumps(doc)))
        assert back.matrix == tpl10.matrix
        assert back.question.answers == tpl10.question.answers
        assert back.author == tpl10.author

    def test_field_order_matches_paper(self, tpl10):
        keys = list(tpl10.to_json_dict())
        assert keys[:3] == ["name", "size", "author"]
        assert keys.index("axis_labels") < keys.index("traffic_matrix")

    def test_without_question(self, tpl10):
        silent = tpl10.without_question()
        assert not silent.has_question
        doc = silent.to_json_dict()
        assert doc["has_question"] is False
        assert "answers" not in doc

    def test_describe(self, tpl10):
        assert "10x10" in tpl10.describe()


class TestHashAnswer:
    def test_canonicalisation(self):
        assert hash_answer(" Star ") == hash_answer("star")
        assert hash_answer("STAR") == hash_answer("star")

    def test_distinct_answers_distinct_hashes(self):
        assert hash_answer("0") != hash_answer("1")

    def test_hex_shape(self):
        h = hash_answer("2")
        assert len(h) == 64 and int(h, 16) >= 0


class TestObfuscation:
    def test_obfuscate_question(self):
        ob = obfuscate_question(q3(2))
        assert ob.is_obfuscated
        assert ob.correct_answer_element is None
        assert ob.is_correct("c") and not ob.is_correct("a")

    def test_obfuscate_idempotent(self):
        ob = obfuscate_question(q3())
        assert obfuscate_question(ob) == ob

    def test_correct_answer_property_raises_when_obfuscated(self):
        ob = obfuscate_question(q3())
        with pytest.raises(QuizError):
            _ = ob.correct_answer

    def test_module_round_trip(self, tpl10):
        ob = obfuscate_module(tpl10)
        de = deobfuscate_module(ob)
        assert de.question.correct_answer == tpl10.question.correct_answer

    def test_module_without_question_noop(self, tpl10):
        silent = tpl10.without_question()
        assert obfuscate_module(silent) == silent

    def test_deobfuscate_detects_tampering(self, tpl10):
        ob = obfuscate_module(tpl10)
        from dataclasses import replace

        tampered = replace(
            ob, question=replace(ob.question, answers=("x", "y", "z"))
        )
        with pytest.raises(QuizError, match="edited"):
            deobfuscate_module(tampered)

    def test_obfuscated_json_hides_answer(self, tpl10):
        doc = obfuscate_module(tpl10).to_json_dict()
        assert "correct_answer_element" not in doc
        assert "correct_answer_hash" in doc

    def test_verify_answer_both_forms(self, tpl10):
        q = tpl10.question
        assert verify_answer(q, "2")
        assert verify_answer(obfuscate_question(q), "2")
        assert not verify_answer(obfuscate_question(q), "1")

    def test_shuffle_obfuscated_returns_none_index(self):
        ob = obfuscate_question(q3())
        options, idx = ob.shuffled_answers(seed=1)
        assert idx is None and len(options) == 3


class TestStandardQuestion:
    def test_text_matches_paper(self):
        assert STANDARD_QUESTION == (
            "Which choice is the displayed traffic pattern most relevant to?"
        )
