"""ScenarioStore end to end: round trips, restarts, gc, verify, stats."""

import pytest

from repro.errors import StoreError, StoreIntegrityError
from repro.scenarios import NoiseSpec, OverlaySpec, ScenarioSpec
from repro.store import ScenarioStore


@pytest.fixture
def root(tmp_path):
    return tmp_path / "store"


@pytest.fixture
def store(root):
    with ScenarioStore(root, fsync=False) as s:
        yield s


def _spec(seed=7, **kw):
    kw.setdefault("base", "ring")
    kw.setdefault("params", {})
    kw.setdefault("n", 10)
    return ScenarioSpec(seed=seed, **kw)


class TestRoundTrip:
    def test_put_get_bit_identical(self, store):
        spec = _spec()
        built = spec.build()
        key = store.put(spec, built)
        assert key == spec.cache_key()
        loaded = store.get(spec)
        assert loaded == built
        assert loaded.meta == built.meta

    def test_round_trip_survives_reopen(self, root):
        """A corpus built by one process is served bit-identically by the next."""
        specs = [
            _spec(seed=1),
            _spec(seed=2, base="star"),
            _spec(
                seed=3,
                base="ddos_attack",
                params={"packets": 20},
                noise=NoiseSpec(density=0.15),
            ),
            _spec(seed=4, overlays=(OverlaySpec("self_loops", {}),)),
        ]
        built = [spec.build() for spec in specs]
        with ScenarioStore(root, fsync=False) as writer:
            for spec, matrix in zip(specs, built):
                writer.put(spec, matrix)
        # fresh instance = fresh process as far as the store is concerned
        with ScenarioStore(root, fsync=False) as reader:
            for spec, matrix in zip(specs, built):
                loaded = reader.get(spec.cache_key())
                assert loaded == matrix
                assert loaded.meta == matrix.meta

    def test_get_miss_returns_none(self, store):
        assert store.get(_spec(seed=404)) is None
        assert not store.contains(_spec(seed=404))

    def test_contains_and_in(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        assert store.contains(spec)
        assert spec.cache_key() in store

    def test_spec_for_rehydrates(self, store):
        spec = _spec(seed=5, base="star")
        store.put(spec, spec.build())
        assert store.spec_for(spec.cache_key()) == spec
        with pytest.raises(StoreError, match="no entry"):
            store.spec_for("ff" * 32)

    def test_put_spec_indexes_without_payload(self, store):
        spec = _spec(seed=6)
        store.put_spec(spec, kind="repro", extra={"oracle": "x"})
        row = store.entry(spec)
        assert row is not None and not row.has_payload
        assert store.get(spec) is None  # spec-only rows are clean misses
        assert not store.contains(spec)

    def test_delete(self, store):
        spec = _spec(seed=8)
        store.put(spec, spec.build())
        assert store.delete(spec)
        assert store.get(spec) is None
        assert not store.blobs.exists(spec.cache_key())
        assert not store.delete(spec)

    def test_entries_filter_by_kind(self, store):
        a, b = _spec(seed=1), _spec(seed=2)
        store.put(a, a.build())
        store.put(b, b.build(), kind="repro", extra={"oracle": "o"})
        assert {r.kind for r in store.entries()} == {"scenario", "repro"}
        assert [r.key for r in store.entries(kind="repro")] == [b.cache_key()]

    def test_root_must_be_directory(self, tmp_path):
        clash = tmp_path / "not_a_dir"
        clash.write_text("file")
        with pytest.raises(StoreError, match="not a directory"):
            ScenarioStore(clash)


class TestIntegrity:
    def test_corrupt_blob_raises_on_get(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        path = store.blobs.path_for(spec.cache_key())
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StoreIntegrityError):
            store.get(spec)

    def test_missing_blob_raises_on_get(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        store.blobs.delete(spec.cache_key())
        with pytest.raises(StoreIntegrityError, match="missing"):
            store.get(spec)

    def test_verify_clean_store(self, store):
        for seed in range(3):
            spec = _spec(seed=seed)
            store.put(spec, spec.build())
        problems = store.verify(rebuild=True)
        assert all(not keys for keys in problems.values())

    def test_verify_reports_corruption(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        path = store.blobs.path_for(spec.cache_key())
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        problems = store.verify()
        assert problems["digest_mismatch"] == [spec.cache_key()]

    def test_verify_reports_missing_blob(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        store.blobs.delete(spec.cache_key())
        problems = store.verify()
        assert problems["missing_blob"] == [spec.cache_key()]


class TestGc:
    def test_gc_removes_orphan_blob(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        store.index.delete(spec.cache_key())  # blob is now an orphan
        report = store.gc(dry_run=True)
        assert report["orphan_blobs"] == [spec.cache_key()]
        assert store.blobs.exists(spec.cache_key())  # dry run touched nothing
        report = store.gc()
        assert report["orphan_blobs"] == [spec.cache_key()]
        assert not store.blobs.exists(spec.cache_key())

    def test_gc_sweeps_staging(self, store):
        (store.root / "staging" / "dead.writer.tmp").write_bytes(b"torn")
        report = store.gc()
        assert len(report["staging_files"]) == 1
        assert store.blobs.staging_files() == []

    def test_gc_reports_but_keeps_dangling_rows(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        store.blobs.delete(spec.cache_key())
        report = store.gc()
        assert report["dangling_rows"] == [spec.cache_key()]
        assert store.entry(spec) is not None  # evidence preserved

    def test_gc_clean_store_is_noop(self, store):
        spec = _spec()
        store.put(spec, spec.build())
        report = store.gc()
        assert report == {
            "orphan_blobs": [],
            "dangling_rows": [],
            "staging_files": [],
        }
        assert store.get(spec) is not None


class TestStats:
    def test_stats_shape(self, store):
        a, b = _spec(seed=1), _spec(seed=2)
        store.put(a, a.build())
        store.put_spec(b, kind="repro")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"repro": 1, "scenario": 1}
        assert stats["payload_bytes"] > 0
        assert stats["blobs_on_disk"] == 1
        assert stats["staging_files"] == 0
        assert stats["schema_version"] == 1

    def test_repr(self, store):
        assert "entries=0" in repr(store)
