"""Blob framing: deterministic encoding, integrity trailer, atomic publish."""

import numpy as np
import pytest

from repro.errors import StoreError, StoreIntegrityError
from repro.scenarios import NoiseSpec, ScenarioSpec
from repro.store import (
    BLOB_MAGIC,
    BlobStore,
    blob_digest,
    decode_matrix,
    encode_matrix,
)


@pytest.fixture
def matrix():
    return ScenarioSpec(base="ring", params={}, n=9, seed=11).build()


class TestFraming:
    def test_round_trip_identity(self, matrix):
        loaded = decode_matrix(encode_matrix(matrix))
        assert loaded == matrix
        assert loaded.meta == matrix.meta
        assert loaded.labels == matrix.labels
        assert loaded.extended_colors == matrix.extended_colors
        assert loaded.packets.dtype == matrix.packets.dtype
        assert loaded.colors.dtype == matrix.colors.dtype

    def test_encoding_is_deterministic(self, matrix):
        assert encode_matrix(matrix) == encode_matrix(matrix.copy())

    def test_equal_specs_encode_equal_bytes(self):
        a = ScenarioSpec(base="star", params={}, n=7, seed=5).build()
        b = ScenarioSpec(base="star", params={}, n=7, seed=5).build()
        assert encode_matrix(a) == encode_matrix(b)

    def test_frame_starts_with_magic(self, matrix):
        assert encode_matrix(matrix).startswith(BLOB_MAGIC)

    def test_flipped_byte_fails_checksum(self, matrix):
        frame = bytearray(encode_matrix(matrix))
        frame[len(frame) // 2] ^= 0xFF
        with pytest.raises(StoreIntegrityError, match="checksum"):
            decode_matrix(bytes(frame))

    def test_truncated_frame_rejected(self, matrix):
        frame = encode_matrix(matrix)
        with pytest.raises(StoreIntegrityError):
            decode_matrix(frame[: len(frame) // 2])
        with pytest.raises(StoreIntegrityError, match="truncated"):
            decode_matrix(b"xx")

    def test_foreign_bytes_rejected(self):
        with pytest.raises(StoreIntegrityError, match="magic"):
            decode_matrix(b"\x00" * 128)

    def test_unsupported_version_rejected(self, matrix):
        import hashlib
        import struct

        frame = encode_matrix(matrix)
        body = frame[:-32]
        # rewrite the header's format_version and re-seal the frame so only
        # the version check (not the checksum) can be the thing that trips
        (header_len,) = struct.unpack_from("<Q", body, len(BLOB_MAGIC))
        start = len(BLOB_MAGIC) + 8
        header = body[start : start + header_len].replace(
            b'"format_version":1', b'"format_version":9'
        )
        assert len(header) == header_len
        forged = body[:start] + header + body[start + header_len :]
        forged += hashlib.sha256(forged).digest()
        with pytest.raises(StoreError, match="format_version"):
            decode_matrix(forged)

    def test_non_json_meta_raises_store_error(self, matrix):
        from repro.core import TrafficMatrix

        bad = TrafficMatrix(
            matrix.packets, matrix.labels, matrix.colors,
            meta={"handle": object()},
        )
        with pytest.raises(StoreError, match="non-JSON"):
            encode_matrix(bad)

    def test_digest_is_sha256_hex(self, matrix):
        digest = blob_digest(encode_matrix(matrix))
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestBlobStore:
    def test_write_read_exists_delete(self, tmp_path, matrix):
        blobs = BlobStore(tmp_path, fsync=False)
        frame = encode_matrix(matrix)
        key = "ab" + "0" * 62
        path = blobs.write(key, frame)
        assert path.exists()
        assert blobs.exists(key)
        assert blobs.read(key) == frame
        assert blobs.size_of(key) == len(frame)
        assert blobs.delete(key)
        assert not blobs.exists(key)
        assert not blobs.delete(key)

    def test_two_level_fanout(self, tmp_path):
        blobs = BlobStore(tmp_path, fsync=False)
        key = "cd" + "1" * 62
        assert blobs.path_for(key).parent.name == "cd"

    def test_missing_blob_raises_integrity_error(self, tmp_path):
        blobs = BlobStore(tmp_path, fsync=False)
        with pytest.raises(StoreIntegrityError, match="missing"):
            blobs.read("ee" + "2" * 62)

    def test_bad_key_rejected(self, tmp_path):
        blobs = BlobStore(tmp_path, fsync=False)
        for bad in ("", "xyz!", "ABCDEF", "../../etc/passwd"):
            with pytest.raises(StoreError, match="hex"):
                blobs.path_for(bad)

    def test_keys_sorted_and_skip_staging(self, tmp_path, matrix):
        blobs = BlobStore(tmp_path, fsync=False)
        frame = encode_matrix(matrix)
        keys = ["ff" + "3" * 62, "aa" + "4" * 62]
        for key in keys:
            blobs.write(key, frame)
        (tmp_path / "staging" / "leftover.tmp").write_bytes(b"junk")
        assert list(blobs.keys()) == sorted(keys)
        assert len(blobs.staging_files()) == 1

    def test_overwrite_is_idempotent(self, tmp_path, matrix):
        blobs = BlobStore(tmp_path, fsync=False)
        frame = encode_matrix(matrix)
        key = "0a" + "5" * 62
        blobs.write(key, frame)
        blobs.write(key, frame)
        assert blobs.read(key) == frame
        assert list(blobs.keys()) == [key]

    def test_fsync_mode_writes_too(self, tmp_path, matrix):
        blobs = BlobStore(tmp_path, fsync=True)
        frame = encode_matrix(matrix)
        key = "0b" + "6" * 62
        blobs.write(key, frame)
        assert blobs.read(key) == frame

    def test_packets_survive_exactly(self, tmp_path):
        spec = ScenarioSpec(
            base="ddos_attack",
            params={"packets": 40},
            n=12,
            seed=99,
            noise=NoiseSpec(density=0.2),
        )
        matrix = spec.build()
        loaded = decode_matrix(encode_matrix(matrix))
        np.testing.assert_array_equal(loaded.packets, matrix.packets)
        np.testing.assert_array_equal(loaded.colors, matrix.colors)
