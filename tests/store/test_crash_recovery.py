"""Crash safety: killed writers, fault-injected transactions, concurrent upserts.

The store's write ordering (blob rename → index commit) claims a crashed
writer can only ever leave (a) nothing, (b) an invisible orphan blob, or
(c) the completed write.  These tests kill writers at every seam — via the
``fault_hook`` injection points in-process and via ``os._exit`` in real child
processes — reopen the store, and hold it to that claim.
"""

import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec
from repro.store import ScenarioStore

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spec(seed=7):
    return ScenarioSpec(base="ring", params={}, n=10, seed=seed)


class _Boom(BaseException):
    """Deliberately not Exception: nothing downstream may swallow the crash."""


def _hook_raising_at(stage):
    def hook(s):
        if s == stage:
            raise _Boom(stage)

    return hook


class TestFaultInjection:
    @pytest.mark.parametrize("stage", ["index_in_txn", "index_pre_commit"])
    def test_crash_inside_index_txn_leaves_orphan_only(self, tmp_path, stage):
        """Dying mid-transaction must roll back the row; the blob is an orphan."""
        spec = _spec()
        store = ScenarioStore(tmp_path, fsync=False, fault_hook=_hook_raising_at(stage))
        with pytest.raises(_Boom):
            store.put(spec, spec.build())
        store.close()

        with ScenarioStore(tmp_path, fsync=False) as reopened:
            assert reopened.entry(spec) is None  # no dangling row, ever
            assert reopened.get(spec) is None  # orphan blob is invisible
            report = reopened.gc()
            assert report["orphan_blobs"] == [spec.cache_key()]
            assert report["dangling_rows"] == []
            assert not reopened.blobs.exists(spec.cache_key())

    def test_crash_after_blob_before_index(self, tmp_path):
        spec = _spec()
        store = ScenarioStore(
            tmp_path, fsync=False, fault_hook=_hook_raising_at("blob_written")
        )
        with pytest.raises(_Boom):
            store.put(spec, spec.build())
        store.close()

        with ScenarioStore(tmp_path, fsync=False) as reopened:
            assert reopened.entry(spec) is None
            assert reopened.gc()["orphan_blobs"] == [spec.cache_key()]
            # and the key is perfectly writable afterwards
            reopened.put(spec, spec.build())
            assert reopened.get(spec) is not None
            assert reopened.verify(rebuild=True) == {
                "missing_blob": [],
                "corrupt_blob": [],
                "digest_mismatch": [],
                "rebuild_mismatch": [],
            }

    def test_crashed_write_does_not_corrupt_existing_entry(self, tmp_path):
        """A crash re-writing an existing key must leave the old entry intact."""
        spec = _spec()
        built = spec.build()
        with ScenarioStore(tmp_path, fsync=False) as store:
            store.put(spec, built)
        crasher = ScenarioStore(
            tmp_path, fsync=False, fault_hook=_hook_raising_at("index_pre_commit")
        )
        with pytest.raises(_Boom):
            crasher.put(spec, built)
        crasher.close()
        with ScenarioStore(tmp_path, fsync=False) as reopened:
            loaded = reopened.get(spec)
            assert loaded == built and loaded.meta == built.meta
            assert reopened.gc()["orphan_blobs"] == []  # same key: not an orphan


_KILLED_WRITER = """
import os, sys
sys.path.insert(0, {src!r})
from repro.scenarios import ScenarioSpec
from repro.store import ScenarioStore

spec = ScenarioSpec(base="ring", params={{}}, n=10, seed=7)
def die(stage):
    if stage == {stage!r}:
        os._exit(42)  # no cleanup, no atexit — as close to kill -9 as portable
store = ScenarioStore({root!r}, fsync=False, fault_hook=die)
store.put(spec, spec.build())
os._exit(0)
"""


class TestKilledWriterProcess:
    @pytest.mark.parametrize(
        "stage", ["blob_written", "index_in_txn", "index_pre_commit"]
    )
    def test_writer_killed_mid_write(self, tmp_path, stage):
        """A real process dying mid-write leaves a consistent store behind."""
        script = _KILLED_WRITER.format(src=SRC, stage=stage, root=str(tmp_path))
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert proc.returncode == 42, proc.stderr

        spec = _spec()
        with ScenarioStore(tmp_path, fsync=False) as store:
            assert store.entry(spec) is None  # the transaction never committed
            report = store.gc()
            assert report["dangling_rows"] == []
            # blob may or may not have landed depending on the stage; either
            # way gc leaves a store verify() calls clean
            assert store.verify(rebuild=True) == {
                "missing_blob": [],
                "corrupt_blob": [],
                "digest_mismatch": [],
                "rebuild_mismatch": [],
            }
            # the store stays fully writable
            store.put(spec, spec.build())
            assert store.get(spec) is not None


def _upsert_worker(root, barrier, results, worker_id):
    """One competing writer (module-level: crosses spawn pickling)."""
    try:
        spec = ScenarioSpec(base="ring", params={}, n=10, seed=7)
        matrix = spec.build()
        store = ScenarioStore(root, fsync=False, retries=30, backoff=0.01)
        barrier.wait(timeout=30)  # maximise the collision window
        for _ in range(3):
            store.put(spec, matrix)
        store.close()
        results[worker_id] = "ok"
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        results[worker_id] = f"{type(exc).__name__}: {exc}"


class TestConcurrentUpserts:
    def test_multiprocess_same_key_single_row(self, tmp_path):
        """N processes upserting one key leave exactly one valid row + blob."""
        n_workers = 4
        ctx = multiprocessing.get_context("spawn")
        with ctx.Manager() as manager:
            results = manager.dict()
            barrier = ctx.Barrier(n_workers)
            procs = [
                ctx.Process(
                    target=_upsert_worker,
                    args=(str(tmp_path), barrier, results, k),
                )
                for k in range(n_workers)
            ]
            for p in procs:
                p.start()
            for p in procs:
                p.join(timeout=120)
            outcomes = dict(results)

        assert all(v == "ok" for v in outcomes.values()), outcomes
        spec = _spec()
        with ScenarioStore(tmp_path, fsync=False) as store:
            assert store.index.count() == 1  # exactly one index row
            row = store.entry(spec)
            assert row.writes == n_workers * 3  # every upsert was counted
            assert list(store.blobs.keys()) == [spec.cache_key()]  # one blob
            loaded = store.get(spec)
            direct = spec.build()
            assert loaded == direct and loaded.meta == direct.meta
            assert store.gc() == {
                "orphan_blobs": [],
                "dangling_rows": [],
                "staging_files": [],
            }
