"""The SQLite index: WAL mode, transactional upserts, retry-with-backoff."""

import sqlite3
import threading

import pytest

from repro.errors import StoreError
from repro.scenarios import ScenarioSpec
from repro.store import SCHEMA_VERSION, StoreIndex


@pytest.fixture
def index(tmp_path):
    idx = StoreIndex(tmp_path / "index.sqlite")
    yield idx
    idx.close()


def _upsert(idx, spec, **overrides):
    fields = dict(
        base=spec.base,
        family="structural",
        n=spec.n,
        seed=spec.seed,
        nnz=10,
        payload_sha256="ab" * 32,
        payload_bytes=123,
    )
    fields.update(overrides)
    idx.upsert(spec.cache_key(), spec.canonical_json(), **fields)


class TestSchema:
    def test_wal_mode(self, index):
        mode = index._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_schema_version_stamped(self, index):
        assert index.schema_version() == SCHEMA_VERSION

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "index.sqlite"
        StoreIndex(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="schema_version"):
            StoreIndex(path)

    def test_bad_config_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="retries"):
            StoreIndex(tmp_path / "a.sqlite", retries=-1)
        with pytest.raises(StoreError, match="backoff"):
            StoreIndex(tmp_path / "b.sqlite", backoff=-0.1)


class TestUpsert:
    def test_insert_then_get(self, index):
        spec = ScenarioSpec(base="ring", params={}, n=8, seed=1)
        _upsert(index, spec)
        row = index.get(spec.cache_key())
        assert row is not None
        assert row.base == "ring"
        assert row.n == 8
        assert row.seed == 1
        assert row.writes == 1
        assert row.has_payload
        assert row.spec_dict()["base"] == "ring"
        assert row.created_ns == row.updated_ns

    def test_upsert_is_idempotent_one_row(self, index):
        spec = ScenarioSpec(base="ring", params={}, n=8, seed=1)
        _upsert(index, spec)
        _upsert(index, spec)
        _upsert(index, spec)
        assert index.count() == 1
        row = index.get(spec.cache_key())
        assert row.writes == 3
        assert row.updated_ns >= row.created_ns

    def test_upsert_preserves_created_ns(self, index):
        spec = ScenarioSpec(base="ring", params={}, n=8, seed=1)
        _upsert(index, spec)
        first = index.get(spec.cache_key()).created_ns
        _upsert(index, spec)
        assert index.get(spec.cache_key()).created_ns == first

    def test_spec_only_row(self, index):
        spec = ScenarioSpec(base="star", params={}, n=6, seed=2)
        _upsert(index, spec, nnz=None, payload_sha256=None, payload_bytes=None)
        row = index.get(spec.cache_key())
        assert not row.has_payload
        assert row.nnz is None

    def test_extra_json_round_trips(self, index):
        spec = ScenarioSpec(base="star", params={}, n=6, seed=3)
        _upsert(index, spec, kind="repro", extra={"oracle": "round_trip", "z": 1})
        row = index.get(spec.cache_key())
        assert row.kind == "repro"
        assert row.extra == {"oracle": "round_trip", "z": 1}

    def test_delete(self, index):
        spec = ScenarioSpec(base="ring", params={}, n=8, seed=4)
        _upsert(index, spec)
        assert index.delete(spec.cache_key())
        assert index.get(spec.cache_key()) is None
        assert not index.delete(spec.cache_key())


class TestQueries:
    def test_rows_filters(self, index):
        a = ScenarioSpec(base="ring", params={}, n=8, seed=1)
        b = ScenarioSpec(base="star", params={}, n=8, seed=2)
        _upsert(index, a, family="structural")
        _upsert(index, b, family="pattern", kind="repro")
        assert {r.base for r in index.rows()} == {"ring", "star"}
        assert [r.base for r in index.rows(family="pattern")] == ["star"]
        assert [r.base for r in index.rows(base="ring")] == ["ring"]
        assert [r.base for r in index.rows(kind="repro")] == ["star"]
        assert index.rows(kind="nope") == []

    def test_keys_sorted(self, index):
        specs = [ScenarioSpec(base="ring", params={}, n=8, seed=s) for s in range(5)]
        for spec in specs:
            _upsert(index, spec)
        assert index.keys() == sorted(spec.cache_key() for spec in specs)

    def test_count(self, index):
        assert index.count() == 0
        _upsert(index, ScenarioSpec(base="ring", params={}, n=8, seed=1))
        assert index.count() == 1


class TestContention:
    def test_busy_retries_then_succeeds(self, tmp_path):
        """A writer holding the lock briefly is ridden out by the backoff."""
        path = tmp_path / "index.sqlite"
        idx = StoreIndex(path, retries=10, backoff=0.01)
        blocker = sqlite3.connect(path, timeout=0.05, check_same_thread=False)
        blocker.execute("BEGIN IMMEDIATE")

        release = threading.Timer(0.15, lambda: (blocker.commit(), blocker.close()))
        release.start()
        try:
            spec = ScenarioSpec(base="ring", params={}, n=8, seed=1)
            _upsert(idx, spec)  # must survive the ~150ms of lock pressure
            assert idx.count() == 1
        finally:
            release.join()
            idx.close()

    def test_lock_outliving_retries_raises_store_error(self, tmp_path):
        path = tmp_path / "index.sqlite"
        idx = StoreIndex(path, retries=2, backoff=0.001)
        blocker = sqlite3.connect(path, timeout=0.05)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            spec = ScenarioSpec(base="ring", params={}, n=8, seed=1)
            with pytest.raises(StoreError, match="locked"):
                _upsert(idx, spec)
        finally:
            blocker.rollback()
            blocker.close()
            idx.close()

    def test_thread_safe_upserts(self, tmp_path):
        idx = StoreIndex(tmp_path / "index.sqlite", retries=20, backoff=0.005)
        specs = [ScenarioSpec(base="ring", params={}, n=8, seed=s) for s in range(8)]
        errors = []

        def work(spec):
            try:
                for _ in range(5):
                    _upsert(idx, spec)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(s,)) for s in specs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert idx.count() == len(specs)
        for spec in specs:
            assert idx.get(spec.cache_key()).writes == 5
        idx.close()
