"""Tiered cache: ScenarioCache with a ScenarioStore as its durable L2."""

import asyncio

import pytest

from repro.scenarios import (
    OverlaySpec,
    ScenarioCache,
    ScenarioSpec,
    generate_batch,
)
from repro.scenarios.delta import apply_delta
from repro.scenarios.service import ScenarioService
from repro.store import ScenarioStore


def spec_of(seed, base="ring", n=12):
    return ScenarioSpec(base=base, params={}, n=n, seed=seed)


@pytest.fixture
def store(tmp_path):
    with ScenarioStore(tmp_path / "store", fsync=False) as s:
        yield s


class TestReadThrough:
    def test_l1_hit_counted_per_tier(self, store):
        cache = ScenarioCache(store=store)
        spec = spec_of(1)
        cache.fetch(spec)
        cache.fetch(spec)
        analytics = cache.analytics()
        assert analytics.l1_hits == 1
        assert analytics.l2_hits == 0
        assert analytics.hits == 1  # back-compat: total hits unchanged

    def test_l2_hit_after_eviction(self, store):
        cache = ScenarioCache(max_entries=1, store=store)
        a, b = spec_of(1), spec_of(2)
        cache.fetch(a)
        cache.fetch(b)  # evicts a from L1; both persisted to L2
        matrix, tier = cache.fetch_tiered(a)
        assert tier == "l2"
        assert matrix == a.build()
        analytics = cache.analytics()
        assert analytics.l2_hits == 1
        assert analytics.promotions == 1  # the L2 hit re-entered L1
        assert analytics.hits == 1

    def test_l2_hit_promotes_to_l1(self, store):
        cache = ScenarioCache(max_entries=4, store=store)
        spec = spec_of(3)
        store.put(spec, spec.build())  # seeded out-of-band, cold L1
        _, first = cache.fetch_tiered(spec)
        _, second = cache.fetch_tiered(spec)
        assert (first, second) == ("l2", "l1")

    def test_contains_sees_both_tiers(self, store):
        cache = ScenarioCache(max_entries=1, store=store)
        a, b = spec_of(1), spec_of(2)
        cache.fetch(a)
        cache.fetch(b)
        assert a in cache  # evicted from L1, still visible via L2
        assert b in cache
        assert spec_of(99) not in cache

    def test_hit_rates_per_tier(self, store):
        cache = ScenarioCache(max_entries=1, store=store)
        a, b = spec_of(1), spec_of(2)
        cache.fetch(a)
        cache.fetch(a)  # l1 hit
        cache.fetch(b)  # build, evicts a
        cache.fetch(a)  # l2 hit
        analytics = cache.analytics()
        assert analytics.l1_hit_rate == pytest.approx(0.25)
        assert analytics.l2_hit_rate == pytest.approx(0.25)
        assert analytics.hit_rate == pytest.approx(0.5)
        tiers = analytics.to_dict()["tiers"]
        assert tiers["l1_hits"] == 1 and tiers["l2_hits"] == 1
        assert tiers["promotions"] == 1


class TestWriteThrough:
    def test_builds_are_persisted(self, store, tmp_path):
        cache = ScenarioCache(store=store)
        specs = [spec_of(k) for k in range(3)]
        built = [cache.fetch(spec)[0] for spec in specs]
        # a fresh process with a cold L1 serves every spec from disk
        with ScenarioStore(tmp_path / "store", fsync=False) as reopened:
            cold = ScenarioCache(store=reopened)
            for spec, matrix in zip(specs, built):
                loaded, tier = cold.fetch_tiered(spec)
                assert tier == "l2"
                assert loaded == matrix and loaded.meta == matrix.meta
            assert cold.analytics().l2_hits == len(specs)
            assert cold.analytics().misses == 0

    def test_oversized_entry_still_persisted(self, store):
        cache = ScenarioCache(max_bytes=1, store=store)  # nothing fits L1
        spec = spec_of(5)
        cache.fetch(spec)
        assert len(cache) == 0  # too big for L1 ...
        assert store.contains(spec)  # ... but durably stored

    def test_clear_leaves_l2_intact(self, store):
        cache = ScenarioCache(store=store)
        spec = spec_of(6)
        cache.fetch(spec)
        cache.clear()
        assert len(cache) == 0
        _, tier = cache.fetch_tiered(spec)
        assert tier == "l2"


class TestIntegration:
    def test_generate_batch_store_kwarg(self, store):
        specs = [spec_of(k) for k in range(4)]
        reference = generate_batch(specs)
        first = generate_batch(specs, store=store)
        second = generate_batch(specs, store=store)  # warm start from disk
        for ref, a, b in zip(reference, first, second):
            assert ref == a == b
            assert ref.meta == a.meta == b.meta
        assert store.index.count() == len(specs)

    def test_service_store_kwarg(self, store):
        spec = spec_of(7)

        async def main():
            async with ScenarioService(store=store) as service:
                results = await service.generate([spec])
                return results, service.stats()

        results, stats = asyncio.run(main())
        assert results == [spec.build()]
        assert stats["store"]["entries"] == 1

    def test_service_warm_starts_from_store(self, store, tmp_path):
        spec = spec_of(8)

        async def warm_phase():
            async with ScenarioService(store=store) as service:
                await service.generate([spec])

        asyncio.run(warm_phase())

        async def cold_phase(reopened):
            async with ScenarioService(store=reopened) as service:
                results = await service.generate([spec])
                return results, service.cache.analytics()

        with ScenarioStore(tmp_path / "store", fsync=False) as reopened:
            results, analytics = asyncio.run(cold_phase(reopened))
        assert results == [spec.build()]
        assert analytics.l2_hits == 1 and analytics.misses == 0

    def test_delta_base_tier_reported(self, store):
        cache = ScenarioCache(store=store)
        base = spec_of(9)
        cache.fetch(base)
        delta = OverlaySpec("self_loops", {})
        result = apply_delta(base, delta, cache=cache)
        assert result.stats.base_tier == "l1"
        cache.clear()
        result = apply_delta(base, delta, cache=cache)
        assert result.stats.base_tier == "l2"
