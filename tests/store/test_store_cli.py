"""The ``python -m repro.store`` admin CLI: ls, stats, gc, verify."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import ScenarioSpec
from repro.store import ScenarioStore
from repro.store.__main__ import main

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def populated(tmp_path):
    root = tmp_path / "store"
    with ScenarioStore(root, fsync=False) as store:
        a = ScenarioSpec(base="ring", params={}, n=8, seed=1)
        b = ScenarioSpec(base="star", params={}, n=6, seed=2)
        store.put(a, a.build())
        store.put(b, b.build(), kind="repro", extra={"oracle": "round_trip"})
    return root


class TestLs:
    def test_lists_all_entries(self, populated, capsys):
        assert main(["--root", str(populated), "ls"]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "scenario" in out and "repro" in out

    def test_kind_filter(self, populated, capsys):
        assert main(["--root", str(populated), "ls", "--kind", "repro"]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "scenario " not in out

    def test_base_filter(self, populated, capsys):
        assert main(["--root", str(populated), "ls", "--base", "ring"]) == 0
        assert "1 entries" in capsys.readouterr().out


class TestStats:
    def test_stats_is_json(self, populated, capsys):
        assert main(["--root", str(populated), "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"repro": 1, "scenario": 1}


class TestGc:
    def test_gc_removes_orphans(self, populated, capsys):
        with ScenarioStore(populated, fsync=False) as store:
            key = store.index.keys()[0]
            store.index.delete(key)
        assert main(["--root", str(populated), "gc"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 orphan blob(s)" in out
        with ScenarioStore(populated, fsync=False) as store:
            assert not store.blobs.exists(key)

    def test_gc_dry_run(self, populated, capsys):
        with ScenarioStore(populated, fsync=False) as store:
            key = store.index.keys()[0]
            store.index.delete(key)
        assert main(["--root", str(populated), "gc", "--dry-run"]) == 0
        assert "would remove 1 orphan blob(s)" in capsys.readouterr().out
        with ScenarioStore(populated, fsync=False) as store:
            assert store.blobs.exists(key)

    def test_gc_warns_on_dangling_rows(self, populated, capsys):
        with ScenarioStore(populated, fsync=False) as store:
            store.blobs.delete(store.index.keys()[0])
        assert main(["--root", str(populated), "gc"]) == 0
        assert "dangling index row(s)" in capsys.readouterr().err


class TestVerify:
    def test_clean_store_exits_zero(self, populated, capsys):
        assert main(["--root", str(populated), "verify", "--rebuild"]) == 0
        assert "0 problem(s)" in capsys.readouterr().out

    def test_corruption_exits_one(self, populated, capsys):
        with ScenarioStore(populated, fsync=False) as store:
            path = store.blobs.path_for(store.index.keys()[0])
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert main(["--root", str(populated), "verify"]) == 1
        assert "digest_mismatch" in capsys.readouterr().out


class TestErrors:
    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path / "nope"), "stats"]) == 2
        assert "does not exist" in capsys.readouterr().err


def test_module_is_executable(populated):
    """The documented invocation — ``python -m repro.store`` — really works."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.store", "--root", str(populated), "stats"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout)["entries"] == 2
