"""MergedWindowView: incremental materialization ≡ full merge, always."""

import pytest

from repro.analysis import MergedWindowView, merge_windows, window_digest
from repro.analysis.streaming import scenario_stream, window_stream
from repro.scenarios import ScenarioSpec
from repro.store import ScenarioStore


def _windows(n_specs=3, window_size=16):
    specs = [
        ScenarioSpec(base=base, params={}, n=10, seed=seed)
        for seed, base in zip(range(n_specs), ("ring", "star", "ddos_attack"))
    ]
    return [array for array, _ in scenario_stream(specs, window_size=window_size)]


class TestWindowDigest:
    def test_equal_windows_equal_digests(self):
        events = [("a", "b", 2), ("b", "c", 1)]
        [(w1, _)] = list(window_stream(events, window_size=10))
        [(w2, _)] = list(window_stream(events, window_size=10))
        assert window_digest(w1) == window_digest(w2)

    def test_different_content_different_digest(self):
        [(w1, _)] = list(window_stream([("a", "b", 2)], window_size=10))
        [(w2, _)] = list(window_stream([("a", "b", 3)], window_size=10))
        assert window_digest(w1) != window_digest(w2)

    def test_labels_are_part_of_the_digest(self):
        [(w1, _)] = list(window_stream([("a", "b", 2)], window_size=10))
        [(w2, _)] = list(window_stream([("a", "c", 2)], window_size=10))
        assert window_digest(w1) != window_digest(w2)

    def test_digest_is_sha256_hex(self):
        [(w, _)] = list(window_stream([("a", "b", 1)], window_size=10))
        digest = window_digest(w)
        assert len(digest) == 64 and set(digest) <= set("0123456789abcdef")


class TestIncrementalAdds:
    def test_view_equals_full_merge_after_each_add(self):
        view = MergedWindowView()
        windows = _windows()
        for k, array in enumerate(windows, start=1):
            view.add(array)
            assert view.merged() == merge_windows(windows[:k])
        stats = view.stats()
        # first add materializes; every later add refines incrementally
        assert stats["incremental_merges"] == len(windows) - 1
        assert not stats["dirty"]

    def test_adds_before_first_merged_batch_up(self):
        view = MergedWindowView()
        windows = _windows()
        for array in windows:
            view.add(array)
        assert view.merged() == merge_windows(windows)
        assert view.stats()["recomputes"] == 1  # one batch materialization

    def test_duplicate_window_is_deduped(self):
        view = MergedWindowView()
        windows = _windows(n_specs=2)
        keys = [view.add(a) for a in windows]
        assert view.add(windows[0]) == keys[0]  # same digest, no re-add
        assert len(view) == len(windows)
        assert view.merged() == merge_windows(windows)

    def test_empty_view_merges_to_empty(self):
        view = MergedWindowView()
        merged = view.merged()
        assert merged.nnz == 0
        assert len(view) == 0


class TestRemovalInvalidation:
    def test_remove_recomputes_from_retained(self):
        view = MergedWindowView()
        windows = _windows()
        keys = [view.add(a) for a in windows]
        view.merged()
        assert view.remove(keys[1])
        assert view.stats()["dirty"]
        assert view.merged() == merge_windows([windows[0], windows[2]])
        assert not view.stats()["dirty"]

    def test_remove_unknown_key_is_false_and_clean(self):
        view = MergedWindowView()
        windows = _windows(n_specs=2)
        for a in windows:
            view.add(a)
        view.merged()
        assert not view.remove("f" * 64)
        assert not view.stats()["dirty"]  # a miss must not invalidate

    def test_burst_of_removals_pays_one_recompute(self):
        view = MergedWindowView()
        windows = _windows()
        keys = [view.add(a) for a in windows]
        view.merged()
        before = view.stats()["recomputes"]
        view.remove(keys[0])
        view.remove(keys[1])
        view.merged()
        assert view.stats()["recomputes"] == before + 1

    def test_remove_all_then_merged_is_empty(self):
        view = MergedWindowView()
        windows = _windows(n_specs=2)
        keys = [view.add(a) for a in windows]
        for key in keys:
            view.remove(key)
        assert view.merged().nnz == 0

    def test_re_add_after_remove(self):
        view = MergedWindowView()
        windows = _windows(n_specs=2)
        keys = [view.add(a) for a in windows]
        view.remove(keys[0])
        view.add(windows[0])
        assert view.merged() == merge_windows(windows)


class TestStreamIntegration:
    def test_scenario_stream_over_store_is_bit_identical(self, tmp_path):
        """Streaming via the durable store matches a storeless stream exactly."""
        specs = [ScenarioSpec(base="ring", params={}, n=10, seed=s) for s in range(3)]
        plain = [a for a, _ in scenario_stream(specs, window_size=16)]
        with ScenarioStore(tmp_path / "store", fsync=False) as store:
            first = [a for a, _ in scenario_stream(specs, window_size=16, service=store)]
            assert store.index.count() == len(specs)
        # a fresh store instance replays the same stream from disk
        with ScenarioStore(tmp_path / "store", fsync=False) as store:
            replay = [
                a for a, _ in scenario_stream(specs, window_size=16, service=store)
            ]
        assert first == plain == replay

    def test_scenario_stream_rejects_bad_service(self):
        from repro.errors import ScenarioError

        with pytest.raises(ScenarioError, match="ScenarioStore"):
            list(scenario_stream([], service=42))

    def test_view_over_streamed_windows(self, tmp_path):
        specs = [ScenarioSpec(base="star", params={}, n=8, seed=s) for s in range(2)]
        with ScenarioStore(tmp_path / "store", fsync=False) as store:
            view = MergedWindowView()
            windows = []
            for array, _ in scenario_stream(specs, window_size=8, service=store):
                view.add(array)
                windows.append(array)
            assert view.merged() == merge_windows(windows)
