"""Anonymization, streaming windows, scaling-relation fits."""

import numpy as np
import pytest

from repro.analysis.anonymize import anonymize_assoc, anonymize_label, anonymize_matrix
from repro.analysis.stats import scaling_relation, synthetic_traffic
from repro.analysis.streaming import StreamAccumulator, window_stream
from repro.graphs.classify import classify_graph_pattern
from repro.graphs.patterns import ring


class TestAnonymizeLabel:
    def test_deterministic(self):
        assert anonymize_label("WS1") == anonymize_label("WS1")

    def test_key_changes_pseudonym(self):
        assert anonymize_label("WS1", key="a") != anonymize_label("WS1", key="b")

    def test_valid_axis_label(self):
        from repro.core.labels import validate_labels

        validate_labels([anonymize_label("WS1")])

    def test_distinct_labels_distinct(self):
        labels = [f"N{k}" for k in range(100)]
        assert len({anonymize_label(lb) for lb in labels}) == 100


class TestAnonymizeMatrix:
    def test_pattern_preserved(self, tpl10):
        anon = anonymize_matrix(tpl10.matrix)
        assert np.array_equal(anon.packets, tpl10.matrix.packets)
        assert np.array_equal(anon.colors, tpl10.matrix.colors)
        assert anon.labels != tpl10.matrix.labels

    def test_classification_survives(self):
        anon = anonymize_matrix(ring(10))
        assert classify_graph_pattern(anon) == "ring"

    def test_joinable_across_matrices(self, tpl10):
        a = anonymize_matrix(tpl10.matrix, key="k")
        b = anonymize_matrix(tpl10.matrix, key="k")
        assert a.labels == b.labels


class TestAnonymizeAssoc:
    def test_totals_preserved(self, tpl10):
        arr = tpl10.matrix.to_assoc()
        anon = anonymize_assoc(arr)
        assert anon.sum() == arr.sum()
        assert anon.nnz == arr.nnz

    def test_keys_hashed(self, tpl10):
        anon = anonymize_assoc(tpl10.matrix.to_assoc())
        assert all(k.startswith("H") for k in anon.row_labels)


class TestStreamAccumulator:
    def test_window_closes_at_size(self):
        acc = StreamAccumulator(window_size=3)
        assert acc.push("a", "b") is None
        assert acc.push("a", "b") is None
        window = acc.push("c", "d")
        assert window is not None
        assert window["a", "b"] == 2 and window["c", "d"] == 1
        assert acc.pending() == 0 and acc.windows_completed == 1

    def test_flush_partial(self):
        acc = StreamAccumulator(window_size=100)
        acc.push("a", "b", 5)
        window = acc.flush()
        assert window.sum() == 5
        assert acc.flush() is None

    def test_bad_window_size(self):
        with pytest.raises(ValueError):
            StreamAccumulator(window_size=0)


class TestWindowStream:
    def test_window_count_includes_tail(self):
        events = [("a", "b", 1)] * 10
        windows = list(window_stream(events, window_size=4))
        assert len(windows) == 3
        assert windows[-1][1].events == 2

    def test_stats_fields(self):
        events = [("s1", "d1", 2), ("s1", "d2", 1), ("s2", "d1", 1)]
        [(array, stats)] = list(window_stream(events, window_size=10))
        assert stats.total_packets == 4
        assert stats.unique_links == 3
        assert stats.unique_sources == 2
        assert stats.unique_destinations == 2
        assert stats.max_source_packets == 3

    def test_empty_stream(self):
        assert list(window_stream([], window_size=4)) == []


class TestSyntheticTraffic:
    def test_deterministic(self):
        assert synthetic_traffic(n_events=50, seed=1) == synthetic_traffic(n_events=50, seed=1)

    def test_heavy_tail_concentrates(self):
        heavy = synthetic_traffic(n_events=3000, n_endpoints=100, heavy_tail=True, seed=2)
        uniform = synthetic_traffic(n_events=3000, n_endpoints=100, heavy_tail=False, seed=2)

        def top_share(events):
            from collections import Counter

            counts = Counter(src for src, _d, _p in events)
            return counts.most_common(1)[0][1] / len(events)

        assert top_share(heavy) > 3 * top_share(uniform)


class TestScalingRelation:
    def test_sublinear_links_for_heavy_tail(self):
        events = synthetic_traffic(n_events=6000, n_endpoints=200, heavy_tail=True, seed=0)
        fit = scaling_relation(
            events,
            lambda s: s.unique_links,
            quantity_name="links",
            window_sizes=(64, 128, 256, 512),
        )
        assert 0.5 < fit.slope < 1.0  # distinct links grow sublinearly
        assert fit.r_squared > 0.9
        assert fit.quantity == "links"

    def test_sources_more_sublinear_than_links(self):
        events = synthetic_traffic(n_events=6000, n_endpoints=200, heavy_tail=True, seed=0)
        links = scaling_relation(
            events, lambda s: s.unique_links, window_sizes=(64, 128, 256, 512)
        )
        sources = scaling_relation(
            events, lambda s: s.unique_sources, window_sizes=(64, 128, 256, 512)
        )
        assert sources.slope < links.slope

    def test_needs_two_sizes(self):
        events = synthetic_traffic(n_events=100, seed=0)
        with pytest.raises(ValueError):
            scaling_relation(events, lambda s: s.unique_links, window_sizes=(1024,))
