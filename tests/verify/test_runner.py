"""run_corpus driver: fan-out, reports, repro persistence, replay."""

import json

import pytest
from fault_fixtures import PERTURBED_SEMIRING

from repro.errors import ScenarioError
from repro.scenarios import NoiseSpec, OverlaySpec, ScenarioSpec
from repro.verify import (
    KernelEqualityOracle,
    load_repro,
    make_corpus,
    replay_repro,
    run_corpus,
)


class TestGreenRun:
    def test_small_corpus_all_green(self):
        report = run_corpus(make_corpus(25, seed=41))
        assert report.ok, report.summary()
        assert report.counts["specs"] == 25
        assert report.counts["failed"] == 0
        assert report.counts["passed"] > 0

    def test_results_in_corpus_order(self):
        corpus = make_corpus(10, seed=42)
        report = run_corpus(corpus)
        assert [r.index for r in report.results] == list(range(10))
        assert [r.spec for r in report.results] == corpus

    def test_summary_mentions_counts(self):
        report = run_corpus(make_corpus(5, seed=43))
        assert "5 specs" in report.summary()

    def test_non_spec_items_rejected(self):
        with pytest.raises(ScenarioError, match="index 1"):
            run_corpus([ScenarioSpec(base="ring"), "ring"])


class TestCrossBackend:
    def test_verdicts_identical_across_backends(self):
        corpus = make_corpus(16, seed=44)
        serial = run_corpus(corpus, workers=1, backend="serial")
        thread = run_corpus(corpus, workers=4, backend="thread")
        assert serial.signature() == thread.signature()

    def test_process_backend_matches_serial(self):
        corpus = make_corpus(8, seed=45)
        serial = run_corpus(corpus, workers=1, backend="serial")
        process = run_corpus(corpus, workers=2, backend="process")
        assert serial.signature() == process.signature()

    def test_repeated_runs_are_deterministic(self):
        corpus = make_corpus(12, seed=46)
        assert run_corpus(corpus).signature() == run_corpus(corpus).signature()


class TestFailurePath:
    def failing_oracle(self) -> KernelEqualityOracle:
        return KernelEqualityOracle(semiring=PERTURBED_SEMIRING)

    def failing_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            base="clique",
            n=16,
            seed=77,
            noise=NoiseSpec(density=0.1),
            overlays=(OverlaySpec("ring"),),
        )

    def test_injected_fault_produces_minimized_repro_file(self, tmp_path):
        report = run_corpus(
            [self.failing_spec()], oracles=(self.failing_oracle(),), repro_dir=tmp_path
        )
        assert not report.ok
        (failure,) = report.failures
        assert failure.oracle == "kernel_equality"
        assert failure.repro_path is not None and failure.repro_path.exists()
        # the persisted spec is minimized: incidental structure stripped
        assert failure.minimized.overlays == ()
        assert failure.minimized.noise is None
        assert failure.minimized.n < 16
        document = json.loads(failure.repro_path.read_text())
        assert document["oracle"] == "kernel_equality"
        assert document["spec"] == failure.minimized.to_dict()
        assert document["original_spec"] == self.failing_spec().to_dict()

    def test_repro_file_round_trips_and_replays(self, tmp_path):
        report = run_corpus(
            [self.failing_spec()], oracles=(self.failing_oracle(),), repro_dir=tmp_path
        )
        path = report.failures[0].repro_path
        spec, document = load_repro(path)
        assert spec == report.failures[0].minimized
        # replaying against the *perturbed* oracle reproduces the failure ...
        verdicts = replay_repro(path, oracles=(self.failing_oracle(),))
        assert any(v.failed for v in verdicts)
        # ... and against the healthy default battery it passes (bug is in
        # the planted semiring, not the library)
        verdicts = replay_repro(path)
        assert all(v.passed or v.skipped for v in verdicts)

    def test_rerunning_overwrites_instead_of_accumulating(self, tmp_path):
        for _ in range(2):
            run_corpus(
                [self.failing_spec()],
                oracles=(self.failing_oracle(),),
                repro_dir=tmp_path,
            )
        assert len(list(tmp_path.glob("repro_*.json"))) == 1

    def test_filename_digest_is_the_spec_cache_key(self, tmp_path):
        """Repro files share the scenario cache's single content address."""
        report = run_corpus(
            [self.failing_spec()], oracles=(self.failing_oracle(),), repro_dir=tmp_path
        )
        (failure,) = report.failures
        expected = failure.minimized.cache_key()[:10]
        assert failure.repro_path.name.endswith(f"_{expected}.json")

    def test_legacy_sha1_named_repro_is_replaced_not_duplicated(self, tmp_path):
        """A repro saved under the old sha1 scheme is superseded on re-run
        (load_repro still reads old files by path — only the name changed)."""
        import hashlib

        report = run_corpus(
            [self.failing_spec()],
            oracles=(self.failing_oracle(),),
            repro_dir=tmp_path,
        )
        (failure,) = report.failures
        old_digest = hashlib.sha1(
            json.dumps(failure.minimized.to_dict(), sort_keys=True).encode()
        ).hexdigest()[:10]
        legacy = tmp_path / (
            f"repro_{failure.oracle}_{failure.minimized.base}_{old_digest}.json"
        )
        failure.repro_path.rename(legacy)  # simulate a pre-upgrade checkout
        spec, _ = load_repro(legacy)       # old files still load by path
        assert spec == failure.minimized
        run_corpus(
            [self.failing_spec()],
            oracles=(self.failing_oracle(),),
            repro_dir=tmp_path,
        )
        assert not legacy.exists()
        assert len(list(tmp_path.glob("repro_*.json"))) == 1

    def test_shrink_false_persists_the_original_spec(self, tmp_path):
        report = run_corpus(
            [self.failing_spec()],
            oracles=(self.failing_oracle(),),
            repro_dir=tmp_path,
            shrink=False,
        )
        assert report.failures[0].minimized == self.failing_spec()

    def test_crashing_oracle_becomes_a_failed_verdict(self):
        class ExplodingOracle:
            name = "exploding"

            def check(self, spec):
                raise RuntimeError("boom")

        report = run_corpus(
            [ScenarioSpec(base="star", n=6)], oracles=(ExplodingOracle(),), shrink=False
        )
        assert not report.ok
        assert "RuntimeError" in report.failures[0].detail

    def test_load_repro_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"repro_version": 99, "spec": {}}))
        with pytest.raises(ScenarioError, match="repro_version"):
            load_repro(path)
