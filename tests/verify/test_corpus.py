"""Corpus sampler: determinism, validity, coverage, and bound respect."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.scenarios import SCENARIO_FAMILIES, ScenarioSpec, get_generator
from repro.verify import CorpusConfig, make_corpus, random_spec, sampleable_names


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        assert make_corpus(50, seed=11) == make_corpus(50, seed=11)

    def test_different_seeds_differ(self):
        assert make_corpus(50, seed=1) != make_corpus(50, seed=2)

    def test_prefix_stability(self):
        """Growing a corpus never changes the specs already drawn."""
        assert make_corpus(40, seed=5)[:10] == make_corpus(10, seed=5)

    def test_specs_are_json_stable(self):
        for spec in make_corpus(30, seed=3):
            assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestValidity:
    def test_every_spec_validates_and_builds(self):
        for spec in make_corpus(60, seed=21):
            matrix = spec.validate().build()
            assert matrix.n == spec.n

    def test_sampled_params_respect_declared_bounds(self):
        for spec in make_corpus(80, seed=9):
            info = get_generator(spec.base)
            assert info.valid_n(spec.n)
            for key, value in spec.params.items():
                assert info.param(key).in_bounds(value), (spec.base, key, value)
            for ov in spec.overlays:
                ov_info = get_generator(ov.name)
                assert ov_info.valid_n(spec.n)
                for key, value in ov.params.items():
                    assert ov_info.param(key).in_bounds(value)

    def test_noise_density_stays_in_configured_range(self):
        cfg = CorpusConfig(noise_probability=1.0, noise_density_range=(0.05, 0.1))
        for spec in make_corpus(20, seed=2, config=cfg):
            assert spec.noise is not None
            assert 0.05 <= spec.noise.density <= 0.1


class TestCoverage:
    def test_all_families_appear_in_a_modest_corpus(self):
        corpus = make_corpus(150, seed=4)
        families = {get_generator(s.base).family for s in corpus}
        assert families == set(SCENARIO_FAMILIES)

    def test_overlays_and_noise_both_appear(self):
        corpus = make_corpus(100, seed=6)
        assert any(s.overlays for s in corpus)
        assert any(s.noise is not None for s in corpus)
        assert any(not s.overlays and s.noise is None for s in corpus)

    def test_family_filter(self):
        cfg = CorpusConfig(families=("pattern",))
        corpus = make_corpus(25, seed=8, config=cfg)
        assert {get_generator(s.base).family for s in corpus} == {"pattern"}

    def test_exclude_filter(self):
        cfg = CorpusConfig(exclude=("background_noise",))
        assert "background_noise" not in sampleable_names(cfg)
        corpus = make_corpus(40, seed=13, config=cfg)
        assert all(s.base != "background_noise" for s in corpus)


class TestConfigErrors:
    def test_bad_n_range_rejected(self):
        with pytest.raises(ScenarioError, match="n_range"):
            CorpusConfig(n_range=(9, 4))

    def test_excluding_everything_is_an_error(self):
        cfg = CorpusConfig(exclude=tuple(sampleable_names()))
        with pytest.raises(ScenarioError, match="excludes every"):
            random_spec(np.random.default_rng(0), cfg)

    def test_negative_count_rejected(self):
        with pytest.raises(ScenarioError, match=">= 0"):
            make_corpus(-1, seed=0)

    def test_template_matrix_only_drawn_at_even_sizes(self):
        cfg = CorpusConfig(families=("topology",))
        for spec in make_corpus(60, seed=17, config=cfg):
            if spec.base == "template_matrix":
                assert spec.n % 2 == 0
