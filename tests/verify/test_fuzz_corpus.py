"""The CI differential-fuzzing entry point: seeded, bounded, cross-backend.

This is the acceptance gate for the verification subsystem: a fixed-seed
200-spec corpus drawn from the whole registry runs all five oracles green
under the serial, thread, and process executors, with identical verdicts on
each — every push replays the same differential campaign.  The seed and
size are environment-overridable (``REPRO_FUZZ_SEED`` / ``REPRO_FUZZ_SPECS``)
so a nightly job or a local soak can widen the net without editing tests;
failures persist minimized JSON repros under ``tests/corpus/`` where CI
uploads them as artefacts.
"""

import os
from pathlib import Path

import pytest

from repro.verify import default_oracles, make_corpus, run_corpus

#: Fixed defaults keep the CI campaign deterministic and inside the smoke
#: budget (~200 specs × 5 oracles ≈ a few seconds single-threaded).
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20240607"))
FUZZ_SPECS = int(os.environ.get("REPRO_FUZZ_SPECS", "200"))

#: Where minimized failing specs land (uploaded by the CI fuzz-smoke job).
CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(FUZZ_SPECS, seed=FUZZ_SEED)


class TestSeededCampaign:
    def test_corpus_is_deterministic(self, corpus):
        assert corpus == make_corpus(FUZZ_SPECS, seed=FUZZ_SEED)

    def test_serial_campaign_green(self, corpus):
        report = run_corpus(corpus, workers=1, backend="serial", repro_dir=CORPUS_DIR)
        assert report.ok, report.summary()
        # every oracle must actually have covered part of the corpus
        covered = {
            v.oracle
            for result in report.results
            for v in result.verdicts
            if v.passed and not v.skipped
        }
        assert covered == {oracle.name for oracle in default_oracles()}

    def test_thread_campaign_matches_serial(self, corpus):
        serial = run_corpus(corpus, workers=1, backend="serial")
        thread = run_corpus(corpus, workers=4, backend="thread")
        assert thread.ok, thread.summary()
        assert thread.signature() == serial.signature()

    def test_process_campaign_matches_serial(self, corpus):
        serial = run_corpus(corpus, workers=1, backend="serial")
        process = run_corpus(corpus, workers=2, backend="process", repro_dir=CORPUS_DIR)
        assert process.ok, process.summary()
        assert process.signature() == serial.signature()

    def test_default_oracles_green_over_shared_memory_backend(self, corpus, monkeypatch):
        """The ISSUE 8 gate: every default oracle stays green when the blocked
        kernel paths dispatch through the shared-memory process backend
        (byte threshold forced to 0), and zero segments leak afterwards.

        The kernel oracles pin their blocked runs to an explicit config;
        swapping that config for a process+shm one routes every
        ``parallel_*`` call in the battery through segment export/attach.
        A corpus slice keeps the per-call pool round trips inside the smoke
        budget — identity is per-call, so breadth adds nothing here.
        """
        from repro import runtime
        from repro.runtime import shm
        from repro.runtime.config import RuntimeConfig
        from repro.verify import oracles as oracle_mod

        subset = list(corpus)[:25]
        reference = run_corpus(subset, workers=1, backend="serial")
        assert reference.ok, reference.summary()

        def _shm_config(self):
            return RuntimeConfig(
                workers=2,
                backend="process",
                block_rows=self.block_rows,
                min_parallel_work=1,
                shm_min_bytes=0,
            )

        monkeypatch.setattr(oracle_mod.KernelEqualityOracle, "_config", _shm_config)
        monkeypatch.setattr(oracle_mod.MaskedEqualityOracle, "_config", _shm_config)
        shared = run_corpus(subset, workers=1, backend="serial", repro_dir=CORPUS_DIR)
        assert shared.ok, shared.summary()
        assert shared.signature() == reference.signature()
        assert shm.live_segment_names() == []
        dev_shm = Path("/dev/shm")
        if dev_shm.is_dir():
            leaked = sorted(
                p.name for p in dev_shm.glob(f"{shm.SEGMENT_PREFIX}-{os.getpid()}-*")
            )
            assert leaked == [], f"segments leaked by the campaign: {leaked}"
        runtime.shutdown_executors()
