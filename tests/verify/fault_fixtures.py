"""Deliberately broken operators for fault-injection tests.

The perturbed semiring's multiplicative operator leaks the *size* of the
array it is applied to.  The serial ESC kernel applies ``mult`` to one full
expansion while the blocked kernel applies it per row block, so the bias
makes blocked results drift from serial ones — the class of tile-dependent
kernel bug the differential :class:`~repro.verify.KernelEqualityOracle`
exists to catch.  Module-level (not test-local) so thread-backend corpus
runs can ship it to workers.
"""

import numpy as np

from repro.assoc.semiring import PLUS_MONOID, BinaryOp, Semiring


def _tile_sensitive_times(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Multiply, plus a bias that leaks the operand length — a planted bug."""
    return np.multiply(x, y) + np.asarray(x).size


#: A semiring that is wrong in a way only tiling can reveal.
PERTURBED_SEMIRING = Semiring(PLUS_MONOID, BinaryOp("tile_times", _tile_sensitive_times))


def _wrong_shape_infer(tree, mask=None, **kwargs):
    """A planted inference bug: every matrix expression types as 0×0 int64.

    The ``static_shapes`` oracle compares inference against executed
    results; this stand-in must make it fail on any non-degenerate matrix,
    proving the agreement check has teeth.  Module-level so process-backend
    corpus runs can pickle the oracle carrying it.
    """
    from repro.staticcheck.shapes import ExprType

    return ExprType((0, 0), np.dtype(np.int64))


#: Fault-injection seam value for ``StaticShapesOracle(infer_fn=...)``.
WRONG_SHAPE_INFER = _wrong_shape_infer
