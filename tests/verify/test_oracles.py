"""Oracle semantics: pass/skip verdicts, and fault injection that must fail.

The fault-injection fixture is the acceptance check for the whole subsystem:
a deliberately perturbed semiring whose multiplicative operator depends on
the *size* of the array it sees.  The serial ESC kernel applies ``mult`` to
one full expansion while the blocked kernel applies it per row block, so the
perturbation makes blocked results drift from serial ones — exactly the
class of tile-dependent kernel bug differential testing exists to catch.
"""

from fault_fixtures import PERTURBED_SEMIRING, WRONG_SHAPE_INFER

from repro.assoc.semiring import PLUS_TIMES
from repro.scenarios import NoiseSpec, OverlaySpec, ScenarioSpec
from repro.verify import (
    CacheDeltaOracle,
    ClassifierOracle,
    KernelEqualityOracle,
    OverlayMetamorphicOracle,
    RoundTripOracle,
    StaticShapesOracle,
    default_oracles,
    make_corpus,
    run_corpus,
)


class TestKernelEqualityOracle:
    def test_passes_on_corpus_specs(self):
        oracle = KernelEqualityOracle()
        for spec in make_corpus(20, seed=31):
            verdict = oracle.check(spec)
            assert verdict.passed, verdict.detail

    def test_passes_on_empty_matrix(self):
        # isolated_links at n=1 builds an all-zero matrix
        verdict = KernelEqualityOracle().check(ScenarioSpec(base="isolated_links", n=1))
        assert verdict.passed

    def test_injected_fault_is_caught(self):
        oracle = KernelEqualityOracle(semiring=PERTURBED_SEMIRING)
        verdict = oracle.check(ScenarioSpec(base="clique", n=10, seed=3))
        assert verdict.failed
        assert "mxm" in verdict.detail

    def test_unperturbed_semiring_passes_where_fault_fails(self):
        spec = ScenarioSpec(base="clique", n=10, seed=3)
        assert KernelEqualityOracle().check(spec).passed
        assert KernelEqualityOracle(semiring=PERTURBED_SEMIRING).check(spec).failed

    def test_min_plus_semiring_also_verified(self):
        from repro.assoc.semiring import MIN_PLUS

        oracle = KernelEqualityOracle(semiring=MIN_PLUS)
        verdict = oracle.check(ScenarioSpec(base="ring", n=12, seed=5))
        assert verdict.passed, verdict.detail


class TestRoundTripOracle:
    def test_passes_on_corpus_specs(self):
        oracle = RoundTripOracle()
        for spec in make_corpus(20, seed=32):
            verdict = oracle.check(spec)
            assert verdict.passed, verdict.detail

    def test_detects_non_roundtrippable_spec(self):
        # a params value JSON cannot carry (a tuple decodes as a list)
        spec = ScenarioSpec(base="mesh", n=6, params={"dims": (2, 3)})
        verdict = RoundTripOracle().check(spec)
        assert verdict.failed
        assert "from_json" in verdict.detail


class TestClassifierOracle:
    def test_noise_free_specs_classify_to_their_family(self):
        oracle = ClassifierOracle()
        for base in ("star", "ring", "security", "ddos_attack", "isolated_links"):
            verdict = oracle.check(ScenarioSpec(base=base, n=10, seed=1))
            assert verdict.passed, (base, verdict.detail)

    def test_directed_variants_classify(self):
        # the corpus fuzzer originally found mutual=False rejected as unknown
        oracle = ClassifierOracle()
        for base in ("ring", "triangle", "tree", "bipartite"):
            verdict = oracle.check(
                ScenarioSpec(base=base, n=6, params={"mutual": False})
            )
            assert verdict.passed, (base, verdict.detail)

    def test_composites_are_skipped(self):
        verdict = ClassifierOracle().check(ScenarioSpec(base="full_ddos", n=10))
        assert verdict.skipped

    def test_overlay_stacks_are_skipped(self):
        spec = ScenarioSpec(base="star", n=10, overlays=(OverlaySpec("ring"),))
        assert ClassifierOracle().check(spec).skipped

    def test_unclassifiable_family_is_skipped(self):
        verdict = ClassifierOracle().check(
            ScenarioSpec(base="background_noise", n=10, params={"density": 0.2})
        )
        assert verdict.skipped

    def test_empty_matrix_is_skipped(self):
        verdict = ClassifierOracle().check(ScenarioSpec(base="isolated_links", n=1))
        assert verdict.skipped

    def test_noise_above_threshold_is_stripped_not_skipped(self):
        spec = ScenarioSpec(base="star", n=10, seed=2, noise=NoiseSpec(density=0.3))
        verdict = ClassifierOracle(noise_threshold=0.0).check(spec)
        assert verdict.passed and not verdict.skipped

    def test_noise_below_threshold_is_classified_as_is(self):
        # density 0 noise adds nothing: classification must survive it as-is
        spec = ScenarioSpec(base="star", n=10, seed=2, noise=NoiseSpec(density=0.0))
        verdict = ClassifierOracle(noise_threshold=0.05).check(spec)
        assert verdict.passed

    def test_staging_botnet_ambiguity_is_documented_not_failed(self):
        # at sizes with one grey endpoint, staging == uniform botnet tasking
        verdict = ClassifierOracle().check(ScenarioSpec(base="staging", n=6))
        assert verdict.passed


class TestOverlayMetamorphicOracle:
    def test_single_layer_checks_provenance_only(self):
        verdict = OverlayMetamorphicOracle().check(ScenarioSpec(base="star", n=8))
        assert verdict.passed
        assert "provenance" in verdict.detail

    def test_overlay_stacks_are_order_insensitive(self):
        oracle = OverlayMetamorphicOracle()
        spec = ScenarioSpec(
            base="security",
            n=10,
            seed=4,
            overlays=(
                OverlaySpec("ddos_attack"),
                OverlaySpec("background_noise", {"density": 0.1}),
            ),
        )
        verdict = oracle.check(spec)
        assert verdict.passed, verdict.detail

    def test_passes_on_corpus_specs(self):
        oracle = OverlayMetamorphicOracle()
        for spec in make_corpus(20, seed=33):
            verdict = oracle.check(spec)
            assert verdict.passed, verdict.detail


class TestCacheDeltaOracle:
    def test_passes_on_overlay_free_spec(self):
        verdict = CacheDeltaOracle().check(ScenarioSpec(base="ring", n=12, seed=4))
        assert verdict.passed, verdict.detail

    def test_passes_on_noisy_overlaid_spec(self):
        spec = ScenarioSpec(
            base="star",
            n=14,
            seed=9,
            noise=NoiseSpec(density=0.1),
            overlays=(OverlaySpec("ddos_attack"), OverlaySpec("clique")),
        )
        verdict = CacheDeltaOracle().check(spec)
        assert verdict.passed, verdict.detail

    def test_passes_on_corpus_specs(self):
        oracle = CacheDeltaOracle()
        for spec in make_corpus(20, seed=37):
            verdict = oracle.check(spec)
            assert verdict.passed, verdict.detail

    def test_injected_delta_fault_is_caught(self, monkeypatch):
        """A delta path that perturbs one cell must fail the oracle."""
        from repro.scenarios import delta as delta_mod

        true_apply = delta_mod.apply_delta

        def corrupted(base_spec, delta, **kwargs):
            result = true_apply(base_spec, delta, **kwargs)
            broken = result.matrix.copy()
            broken.add_packets(0, 1, 1)  # one stray packet
            return type(result)(spec=result.spec, matrix=broken, stats=result.stats)

        monkeypatch.setattr(delta_mod, "apply_delta", corrupted)
        verdict = CacheDeltaOracle().check(ScenarioSpec(base="ring", n=10, seed=1))
        assert verdict.failed
        assert "delta rebuild != full rebuild" in verdict.detail

    def test_injected_cache_fault_is_caught(self, monkeypatch):
        """A cache that serves a stale/corrupted entry must fail the oracle."""
        from repro.scenarios.cache import ScenarioCache

        true_get = ScenarioCache.get

        def corrupted(self, spec):
            matrix = true_get(self, spec)
            if matrix is not None:
                matrix.add_packets(0, 1, 1)
            return matrix

        monkeypatch.setattr(ScenarioCache, "get", corrupted)
        verdict = CacheDeltaOracle().check(ScenarioSpec(base="ring", n=10, seed=1))
        assert verdict.failed
        assert "cache hit != direct build" in verdict.detail


class TestStaticShapesOracle:
    def test_passes_on_generated_matrices(self):
        oracle = StaticShapesOracle()
        for base, n, seed in [("star", 10, 3), ("ring", 8, 1), ("ddos_attack", 12, 5)]:
            verdict = oracle.check(ScenarioSpec(base=base, n=n, seed=seed))
            assert verdict.passed, verdict.detail

    def test_passes_on_single_entry_matrix(self):
        # nnz == 1 regression: building the float-promoted operand used to
        # crash CSRMatrix._validate on matrices with leading empty rows.
        verdict = StaticShapesOracle().check(
            ScenarioSpec(base="command_and_control", n=5, seed=0)
        )
        assert verdict.passed, verdict.detail

    def test_fault_injection_wrong_inference_is_caught(self):
        verdict = StaticShapesOracle(infer_fn=WRONG_SHAPE_INFER).check(
            ScenarioSpec(base="star", n=10, seed=3)
        )
        assert verdict.failed
        assert "inferred shape" in verdict.detail

    def test_fault_injection_survives_process_fanout(self):
        report = run_corpus(
            [ScenarioSpec(base="ring", n=8, seed=1)],
            oracles=[StaticShapesOracle(infer_fn=WRONG_SHAPE_INFER)],
            workers=2,
            backend="process",
            shrink=False,
        )
        assert not report.ok


class TestBattery:
    def test_default_battery_has_all_eight(self):
        names = [oracle.name for oracle in default_oracles()]
        assert names == [
            "kernel_equality",
            "masked_equality",
            "round_trip",
            "classifier_agreement",
            "overlay_metamorphic",
            "cache_delta",
            "static_shapes",
            "store_round_trip",
        ]

    def test_oracles_are_picklable(self):
        import pickle

        for oracle in default_oracles():
            clone = pickle.loads(pickle.dumps(oracle))
            assert clone.name == oracle.name

    def test_default_semiring_is_plus_times(self):
        assert KernelEqualityOracle().semiring is PLUS_TIMES
