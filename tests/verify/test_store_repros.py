"""Durable repros: run_corpus/save_repro into a store, replay, migration."""

import hashlib
import json

import pytest
from fault_fixtures import PERTURBED_SEMIRING

from repro.errors import ScenarioError
from repro.scenarios import ScenarioSpec
from repro.store import ScenarioStore
from repro.verify import (
    KernelEqualityOracle,
    StoreRoundTripOracle,
    load_repro,
    replay_from_store,
    run_corpus,
)


def failing_oracle():
    return KernelEqualityOracle(semiring=PERTURBED_SEMIRING)


def failing_spec():
    return ScenarioSpec(base="clique", params={}, n=12, seed=77)


@pytest.fixture
def store(tmp_path):
    with ScenarioStore(tmp_path / "store", fsync=False) as s:
        yield s


class TestRunCorpusIntoStore:
    def test_failure_lands_durably_without_repro_dir(self, store):
        report = run_corpus(
            [failing_spec()], oracles=(failing_oracle(),), store=store
        )
        assert not report.ok
        (row,) = store.entries(kind="repro")
        assert row.extra["oracle"] == "kernel_equality"
        assert "mxm" in row.extra["detail"]
        assert row.has_payload  # the minimized matrix is stored too
        minimized = report.failures[0].minimized
        assert row.key == minimized.cache_key()

    def test_repro_dir_and_store_together(self, store, tmp_path):
        repro_dir = tmp_path / "repros"
        report = run_corpus(
            [failing_spec()],
            oracles=(failing_oracle(),),
            repro_dir=repro_dir,
            store=store,
        )
        (failure,) = report.failures
        assert failure.repro_path is not None and failure.repro_path.exists()
        assert store.entries(kind="repro") != []

    def test_green_run_stores_nothing(self, store):
        report = run_corpus(
            [ScenarioSpec(base="ring", params={}, n=8, seed=1)],
            oracles=(KernelEqualityOracle(),),
            store=store,
        )
        assert report.ok
        assert store.index.count() == 0


class TestReplayFromStore:
    def test_replays_recorded_oracle(self, store):
        run_corpus([failing_spec()], oracles=(failing_oracle(),), store=store)
        (row,) = store.entries(kind="repro")
        # the perturbed oracle reproduces the failure in a later "process"
        verdicts = replay_from_store(store, row.key, oracles=(failing_oracle(),))
        assert any(v.failed for v in verdicts)
        # the healthy default battery passes: the bug was in the oracle's
        # injected semiring, not the spec — recorded oracle name selects it
        verdicts = replay_from_store(store, row.key)
        assert all(v.passed or v.skipped for v in verdicts)

    def test_accepts_spec_or_key(self, store):
        run_corpus([failing_spec()], oracles=(failing_oracle(),), store=store)
        (row,) = store.entries(kind="repro")
        spec = ScenarioSpec.from_json(row.spec_json)
        by_key = replay_from_store(store, row.key, oracles=(failing_oracle(),))
        by_spec = replay_from_store(store, spec, oracles=(failing_oracle(),))
        assert [v.failed for v in by_key] == [v.failed for v in by_spec]

    def test_unknown_key_raises(self, store):
        with pytest.raises(ScenarioError, match="no repro"):
            replay_from_store(store, "ab" * 32)


class TestLegacyMigration:
    def _write_legacy(self, repro_dir, spec, oracle="kernel_equality"):
        """A repro file named with the retired sha1 scheme."""
        document = {
            "repro_version": 1,
            "oracle": oracle,
            "detail": "legacy finding",
            "spec": spec.to_dict(),
            "original_spec": spec.to_dict(),
        }
        digest = hashlib.sha1(
            json.dumps(spec.to_dict(), sort_keys=True).encode()
        ).hexdigest()[:10]
        path = repro_dir / f"repro_{oracle}_{spec.base}_{digest}.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        return path

    def test_legacy_file_warns_and_imports(self, store, tmp_path):
        spec = ScenarioSpec(base="ring", params={}, n=8, seed=3)
        path = self._write_legacy(tmp_path, spec)
        with pytest.warns(DeprecationWarning, match="sha1 naming"):
            loaded, document = load_repro(path, store=store)
        assert loaded == spec
        row = store.entry(spec)
        assert row is not None and row.kind == "repro"
        assert row.extra["oracle"] == "kernel_equality"

    def test_second_load_is_idempotent(self, store, tmp_path):
        spec = ScenarioSpec(base="ring", params={}, n=8, seed=3)
        path = self._write_legacy(tmp_path, spec)
        with pytest.warns(DeprecationWarning):
            load_repro(path, store=store)
        writes = store.entry(spec).writes
        with pytest.warns(DeprecationWarning):
            load_repro(path, store=store)  # already imported: untouched
        assert store.entry(spec).writes == writes

    def test_modern_file_imports_without_warning(self, store, tmp_path):
        report = run_corpus(
            [failing_spec()], oracles=(failing_oracle(),), repro_dir=tmp_path
        )
        path = report.failures[0].repro_path
        fresh_root = tmp_path / "fresh_store"
        with ScenarioStore(fresh_root, fsync=False) as fresh:
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")  # any warning fails the test
                spec, _ = load_repro(path, store=fresh)
            assert fresh.entry(spec) is not None


class TestStoreRoundTripOracleInBattery:
    def test_oracle_passes_over_corpus_sample(self):
        from repro.verify import make_corpus

        oracle = StoreRoundTripOracle()
        for spec in make_corpus(6, seed=51):
            verdict = oracle.check(spec)
            assert verdict.passed, verdict.detail

    @pytest.mark.parametrize(
        ("workers", "backend"), [(1, "serial"), (3, "thread"), (2, "process")]
    )
    def test_store_oracle_runs_on_every_backend(self, workers, backend):
        """The disk round trip is part of the bit-identity contract on all
        executors — the acceptance criterion for the store subsystem."""
        from repro.verify import make_corpus

        report = run_corpus(
            make_corpus(4, seed=52),
            oracles=(StoreRoundTripOracle(),),
            workers=workers,
            backend=backend,
        )
        assert report.ok, report.summary()
