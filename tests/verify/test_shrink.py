"""Shrink pass: minimises while the failure persists, deterministically."""

from fault_fixtures import PERTURBED_SEMIRING

from repro.scenarios import NoiseSpec, OverlaySpec, ScenarioSpec, get_generator
from repro.verify import KernelEqualityOracle, shrink_spec


def big_failing_spec() -> ScenarioSpec:
    return ScenarioSpec(
        base="clique",
        params={"packets": 7},
        n=20,
        seed=991,
        noise=NoiseSpec(density=0.2, max_packets=3),
        overlays=(OverlaySpec("ring", {"packets": 2}), OverlaySpec("star")),
    )


class TestShrink:
    def test_minimizes_perturbed_semiring_failure(self):
        oracle = KernelEqualityOracle(semiring=PERTURBED_SEMIRING)
        spec = big_failing_spec()
        assert oracle.check(spec).failed  # precondition
        minimized = shrink_spec(spec, lambda s: oracle.check(s).failed)
        # the failure survives minimisation ...
        assert oracle.check(minimized).failed
        # ... and everything incidental is gone
        assert minimized.overlays == ()
        assert minimized.noise is None
        assert minimized.params == {}
        assert minimized.seed == 0
        assert minimized.n < spec.n
        assert minimized.n >= get_generator(spec.base).min_n

    def test_shrink_is_deterministic(self):
        oracle = KernelEqualityOracle(semiring=PERTURBED_SEMIRING)
        spec = big_failing_spec()
        a = shrink_spec(spec, lambda s: oracle.check(s).failed)
        b = shrink_spec(spec, lambda s: oracle.check(s).failed)
        assert a == b

    def test_nothing_shrinkable_returns_original(self):
        spec = ScenarioSpec(base="ring", n=3, seed=0)
        assert shrink_spec(spec, lambda s: True) == spec

    def test_never_returns_a_passing_spec(self):
        """Shrinking a failure that depends on an overlay keeps the overlay."""
        def fails(spec: ScenarioSpec) -> bool:
            return any(ov.name == "ddos_attack" for ov in spec.overlays)

        spec = ScenarioSpec(
            base="star",
            n=12,
            seed=5,
            noise=NoiseSpec(density=0.1),
            overlays=(OverlaySpec("ring"), OverlaySpec("ddos_attack")),
        )
        minimized = shrink_spec(spec, fails)
        assert fails(minimized)
        assert [ov.name for ov in minimized.overlays] == ["ddos_attack"]
        assert minimized.noise is None

    def test_respects_max_attempts(self):
        calls = []

        def fails(spec: ScenarioSpec) -> bool:
            calls.append(spec)
            return True

        shrink_spec(big_failing_spec(), fails, max_attempts=5)
        assert len(calls) <= 5

    def test_candidates_always_validate(self):
        """Shrinking never proposes a spec below a layer generator's floor."""
        seen = []

        def fails(spec: ScenarioSpec) -> bool:
            spec.validate()  # raises if the shrinker produced garbage
            seen.append(spec.n)
            return True

        spec = ScenarioSpec(base="planning", n=20, seed=1)  # min_n == 5
        minimized = shrink_spec(spec, fails)
        assert minimized.n == get_generator("planning").min_n
        assert all(n >= 5 for n in seen)
