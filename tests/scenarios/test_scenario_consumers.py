"""Consumers of the scenario API: module builder, library catalogue,
curriculum generation, streaming, deprecation shims, uniform validation."""

import warnings

import pytest

import repro.graphs
from repro.analysis.streaming import scenario_stream
from repro.errors import ShapeError
from repro.game.curriculum_session import CurriculumSession
from repro.game.players import AnalystPlayer
from repro.graphs.compose import overlay
from repro.modules.builder import ModuleBuilder, pattern_question, scenario_module
from repro.modules.library import DISPLAY_NAMES, builtin_catalog
from repro.scenarios import ScenarioBuilder, ScenarioSpec, get_generator, scenario_names


class TestModuleBuilderIntegration:
    def test_builder_scenario_attaches_matrix_and_provenance(self):
        spec = ScenarioSpec(base="star", seed=5)
        module = ModuleBuilder("Star").scenario(spec).build()
        assert module.matrix == spec.build()
        assert module.extra["scenario"] == spec.to_dict()

    def test_builder_accepts_a_scenario_builder(self):
        module = ModuleBuilder("Ring").scenario(ScenarioBuilder().base("ring")).build()
        assert module.matrix == ScenarioSpec(base="ring").build()

    def test_pattern_question_defaults_from_registry(self):
        q = pattern_question("ring")
        assert q.answers[0] == "Ring"
        assert len(q.answers) == 3
        # distractors come from the same family, in registry order
        family_displays = {get_generator(n).display for n in scenario_names(family="pattern")}
        assert set(q.answers) <= family_displays

    def test_pattern_question_registry_excludes_composites(self):
        q = pattern_question("backscatter")
        assert "Full DDoS" not in q.answers

    def test_pattern_question_accepts_catalogue_vocabulary(self):
        # explicit family in catalogue names ('defense', not 'defense_pattern')
        # with display left to the registry default
        q = pattern_question("defense", ["security", "defense", "deterrence"])
        assert q.answers[0] == "Defense (walls-out)"

    def test_scenario_module_one_call(self):
        module = scenario_module(ScenarioSpec(base="ddos_attack", seed=1))
        assert module.name == "DDoS attack"
        assert module.has_question
        assert module.question.answers[0] == "DDoS attack"
        assert module.extra["scenario"]["base"] == "ddos_attack"

    def test_scenario_module_composites_get_no_question(self):
        module = scenario_module(ScenarioSpec(base="full_attack"))
        assert not module.has_question

    def test_scenario_module_reuses_prebuilt_matrix(self):
        spec = ScenarioSpec(base="clique", seed=2)
        matrix = spec.build()
        module = scenario_module(spec, matrix=matrix)
        assert module.matrix is matrix
        assert module.extra["scenario"] == spec.to_dict()


class TestLibraryIntegration:
    def test_display_names_derive_from_registry(self):
        assert DISPLAY_NAMES["star"] == "Star graph"
        assert DISPLAY_NAMES["defense"] == DISPLAY_NAMES["defense_pattern"]

    def test_builtin_catalog_modules_carry_provenance(self):
        cat = builtin_catalog()
        module = cat["graph_theory/star"]
        assert module.extra["scenario"]["base"] == "star"
        assert cat["defense/defense"].extra["scenario"]["base"] == "defense_pattern"

    def test_catalog_matrices_rebuild_from_their_specs(self):
        cat = builtin_catalog()
        for key in ("topologies/isolated_links", "ddos/backscatter", "attack/staging"):
            spec = ScenarioSpec.from_dict(cat[key].extra["scenario"])
            assert spec.build() == cat[key].matrix


class TestCurriculumFromSpecs:
    def test_units_and_gating(self):
        session = CurriculumSession.from_specs(
            {
                "Patterns": [ScenarioSpec(base="star"), ScenarioSpec(base="ring")],
                "Attack": [ScenarioSpec(base="infiltration")],
            },
            seed=7,
        )
        titles = [u.title for u in session.curriculum.root.iter_units()]
        assert titles == ["Scenario Curriculum", "Patterns", "Attack"]
        assert session.curriculum.unit("Attack").requires == ("Patterns",)
        assert session.curriculum.unit("Patterns").question_count() == 2

    def test_module_numbering_is_per_unit(self):
        session = CurriculumSession.from_specs(
            {
                "A": [ScenarioSpec(base="star"), ScenarioSpec(base="ring")],
                "B": [ScenarioSpec(base="clique")],
            }
        )
        assert [m.name for m in session.curriculum.unit("A").modules] == ["A #1", "A #2"]
        assert [m.name for m in session.curriculum.unit("B").modules] == ["B #1"]

    def test_autoplay_with_analyst(self):
        session = CurriculumSession.from_specs(
            {"Unit": [ScenarioSpec(base="star"), ScenarioSpec(base="clique")]},
            seed=3,
        )
        results = session.autoplay(AnalystPlayer(seed=3))
        assert any(r.unit_title == "Unit" for r in results)

    def test_parallel_generation_matches_serial(self):
        units = {"A": [ScenarioSpec(base="mesh", seed=k) for k in range(6)]}
        serial = CurriculumSession.from_specs(units, workers=1)
        parallel = CurriculumSession.from_specs(units, workers=4)
        for a, b in zip(
            serial.curriculum.unit("A").modules, parallel.curriculum.unit("A").modules
        ):
            assert a.matrix == b.matrix
            assert a.name == b.name


class TestScenarioStream:
    def test_specs_stream_into_windows(self):
        specs = [ScenarioSpec(base="clique", seed=k) for k in range(3)]
        windows = list(scenario_stream(specs, window_size=50))
        assert windows  # 3 cliques x 90 edges = 270 events -> several windows
        total_events = sum(stats.events for _, stats in windows)
        assert total_events == sum(s.build().nnz() for s in specs)

    def test_stream_matches_manual_pipeline(self):
        from repro.analysis.streaming import window_stream

        specs = [ScenarioSpec(base="star", seed=1), ScenarioSpec(base="ring", seed=2)]
        via_specs = [a for a, _ in scenario_stream(specs, window_size=16)]
        events = [e for s in specs for e in s.build().iter_edges()]
        manual = [a for a, _ in window_stream(events, window_size=16)]
        assert len(via_specs) == len(manual)
        for a, b in zip(via_specs, manual):
            assert a.to_dict() == b.to_dict()

    def test_stream_through_service_cache_is_bit_identical(self):
        import asyncio

        from repro.scenarios import ScenarioCache, ScenarioService

        specs = [ScenarioSpec(base="clique", seed=k) for k in range(3)]
        plain = [(a.to_dict(), s.events) for a, s in scenario_stream(specs, window_size=50)]

        cache = ScenarioCache()
        cache.warm(specs)
        cached = [
            (a.to_dict(), s.events)
            for a, s in scenario_stream(specs, window_size=50, service=cache)
        ]
        assert cached == plain
        assert cache.analytics().hits == 3  # every spec streamed from cache

        async def main():
            async with ScenarioService() as service:
                return [
                    (a.to_dict(), s.events)
                    for a, s in scenario_stream(
                        specs, window_size=50, service=service
                    )
                ]

        assert asyncio.run(main()) == plain

    def test_stream_rejects_non_service_objects(self):
        from repro.errors import ScenarioError

        with pytest.raises(
            ScenarioError, match="ScenarioService, ScenarioCache, or"
        ):
            list(scenario_stream([ScenarioSpec(base="ring")], service=object()))


class TestDefenseNamingWart:
    def test_defense_pattern_is_canonical(self):
        import importlib

        defense_module = importlib.import_module("repro.graphs.defense")
        assert repro.graphs.defense_pattern is defense_module.defense
        assert get_generator("defense_pattern").func is defense_module.defense

    def test_attribute_access_warns_and_both_idioms_work(self):
        with pytest.warns(DeprecationWarning, match="defense_pattern"):
            alias = repro.graphs.defense
        # callable as the historical function re-export ...
        assert alias(10) == repro.graphs.defense_pattern(10)
        # ... and dotted access still reaches the submodule's contents
        assert alias.security is repro.graphs.security
        assert alias.defense is repro.graphs.defense_pattern

    def test_dotted_import_idiom_keeps_working(self):
        import repro.graphs.defense  # noqa: F401 - binds the alias via getattr

        with pytest.warns(DeprecationWarning):
            matrix = repro.graphs.defense.security(10)
        assert matrix == repro.graphs.security(10)

    def test_submodule_import_does_not_warn(self):
        import importlib

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            importlib.import_module("repro.graphs.defense")
            from repro.graphs.defense import defense  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.graphs.does_not_exist


class TestUniformValidation:
    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_zero_size_raises_everywhere(self, name):
        """Satellite: n=0 raises uniformly instead of raising sometimes and
        returning nonsense other times."""
        with pytest.raises(ShapeError):
            get_generator(name).func(0)

    @pytest.mark.parametrize(
        "name",
        sorted(n for n in scenario_names() if get_generator(n).accepts("packets")),
    )
    def test_zero_packets_raises_everywhere(self, name):
        with pytest.raises(ShapeError, match="packets"):
            get_generator(name).func(10, packets=0)

    def test_secondary_counts_validated_with_their_own_names(self):
        import importlib

        ddos = importlib.import_module("repro.graphs.ddos")
        defense = importlib.import_module("repro.graphs.defense")
        with pytest.raises(ShapeError, match="attack_packets"):
            ddos.backscatter(10, attack_packets=0)
        with pytest.raises(ShapeError, match="provocation_packets"):
            defense.deterrence(10, provocation_packets=-1)
        from repro.graphs.noise import background_noise

        with pytest.raises(ShapeError, match="max_packets"):
            background_noise(10, max_packets=0)

    def test_overlay_empty_collection_message(self):
        """Satellite: overlay([]) raises a clear ReproError, not a reduce error."""
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="empty collection"):
            overlay([])
