"""Content-addressed scenario cache: keys, hits, eviction, analytics, warming."""

import hashlib
import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    CacheAnalytics,
    NoiseSpec,
    OverlaySpec,
    ScenarioCache,
    ScenarioSpec,
    generate_batch,
    matrix_bytes,
)


def spec_of(seed: int, base: str = "ring", n: int = 12) -> ScenarioSpec:
    return ScenarioSpec(base=base, n=n, seed=seed)


class TestCacheKey:
    def test_key_is_sha256_of_canonical_json(self):
        spec = ScenarioSpec(
            base="star",
            n=16,
            seed=9,
            noise=NoiseSpec(density=0.1),
            overlays=(OverlaySpec("ddos_attack"),),
        )
        canonical = json.dumps(
            spec.to_dict(), sort_keys=True, separators=(",", ":")
        )
        assert spec.canonical_json() == canonical
        assert spec.cache_key() == hashlib.sha256(canonical.encode()).hexdigest()

    def test_key_is_deterministic_and_equality_aligned(self):
        a = spec_of(7)
        b = ScenarioSpec.from_json(a.to_json())
        assert a.cache_key() == a.cache_key() == b.cache_key()

    def test_key_distinguishes_every_field(self):
        base = spec_of(7)
        variants = [
            spec_of(8),
            spec_of(7, base="star"),
            spec_of(7, n=13),
            ScenarioSpec(base="ring", n=12, seed=7, noise=NoiseSpec(density=0.1)),
            ScenarioSpec(base="ring", n=12, seed=7, overlays=(OverlaySpec("clique"),)),
            ScenarioSpec(base="ring", n=12, seed=7, params={"packets": 3}),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_key_of_accepts_spec_or_raw_key(self):
        spec = spec_of(1)
        assert ScenarioCache.key_of(spec) == spec.cache_key()
        assert ScenarioCache.key_of("abc123") == "abc123"
        with pytest.raises(ScenarioError, match="ScenarioSpec or str"):
            ScenarioCache.key_of(42)


class TestHitMiss:
    def test_miss_then_hit_round_trip(self):
        cache = ScenarioCache()
        spec = spec_of(3)
        assert cache.get(spec) is None
        built = spec.build()
        cache.put(spec, built)
        hit = cache.get(spec)
        assert hit == built
        assert hit.meta == built.meta

    def test_served_copies_are_isolated(self):
        """A caller scribbling on a hit must not corrupt the next hit."""
        cache = ScenarioCache()
        spec = spec_of(4)
        built = spec.build()
        cache.put(spec, built)
        built.add_packets(0, 1, 999_999)  # the caller's own copy, post-put
        first = cache.get(spec)
        first.add_packets(1, 2, 999_999)
        first.set_color(1, 2, 2)
        second = cache.get(spec)
        assert second == spec.build()
        assert second.meta == spec.build().meta

    def test_contains_is_counter_neutral(self):
        cache = ScenarioCache()
        spec = spec_of(5)
        assert spec not in cache
        cache.put(spec, spec.build())
        assert spec in cache
        analytics = cache.analytics()
        assert analytics.hits == 0 and analytics.misses == 0

    def test_fetch_builds_once_then_serves(self):
        cache = ScenarioCache()
        spec = spec_of(6)
        first, was_hit1 = cache.fetch(spec)
        second, was_hit2 = cache.fetch(spec)
        assert (was_hit1, was_hit2) == (False, True)
        assert first == second == spec.build()


class TestEviction:
    def test_lru_entry_count_eviction_is_deterministic(self):
        cache = ScenarioCache(max_entries=2)
        s0, s1, s2 = spec_of(0), spec_of(1), spec_of(2)
        for s in (s0, s1, s2):
            cache.put(s, s.build())
        assert s0 not in cache and s1 in cache and s2 in cache
        cache.get(s1)  # refresh s1; s2 becomes LRU
        cache.put(s0, s0.build())
        assert s2 not in cache and s1 in cache and s0 in cache
        assert cache.analytics().evictions == 2

    def test_max_bytes_bound_holds(self):
        spec = spec_of(0)
        size = matrix_bytes(spec.build())
        cache = ScenarioCache(max_entries=None, max_bytes=2 * size)
        for k in range(4):
            cache.put(spec_of(k), spec_of(k).build())
        assert len(cache) == 2
        assert cache.resident_bytes <= 2 * size
        assert cache.analytics().evictions == 2

    def test_oversized_entry_is_not_retained(self):
        """One matrix bigger than the whole budget must not flush the cache."""
        small, big = spec_of(0, n=8), spec_of(1, n=64)
        budget = matrix_bytes(big.build()) - 1
        cache = ScenarioCache(max_entries=None, max_bytes=budget)
        cache.put(small, small.build())
        cache.put(big, big.build())
        assert big not in cache
        assert small in cache  # refused up front, not admitted-then-flushed

    def test_overwrite_replaces_byte_accounting(self):
        """put() on an existing key must swap the old entry's bytes for the
        new ones — double-counting would trigger eviction early (or, after a
        shrinking overwrite, late).  Regression test for ISSUE 8."""
        spec = spec_of(0)
        small = spec_of(0, n=8).build()
        big = spec_of(0, n=64).build()
        cache = ScenarioCache(max_entries=None, max_bytes=None)
        cache.put(spec, small)
        assert cache.resident_bytes == matrix_bytes(small)
        cache.put(spec, big)  # grow in place
        assert len(cache) == 1
        assert cache.resident_bytes == matrix_bytes(big)
        assert cache.stats()["bytes"] == matrix_bytes(big)
        cache.put(spec, small)  # and shrink back
        assert len(cache) == 1
        assert cache.resident_bytes == matrix_bytes(small)
        recount = matrix_bytes(cache.get(spec))
        assert cache.stats()["bytes"] == recount

    def test_overwrite_accounting_survives_eviction_pressure(self):
        """With a tight byte budget, repeated overwrites of one key must not
        drift the ledger and evict a perfectly resident neighbour."""
        keeper, churner = spec_of(0, n=8), spec_of(1, n=8)
        keeper_m, churner_m = keeper.build(), churner.build()
        budget = matrix_bytes(keeper_m) + matrix_bytes(churner_m)
        cache = ScenarioCache(max_entries=None, max_bytes=budget)
        cache.put(keeper, keeper_m)
        for _ in range(5):
            cache.put(churner, churner_m)
        assert keeper in cache and churner in cache
        assert cache.resident_bytes == budget
        assert cache.analytics().evictions == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ScenarioError, match="max_entries"):
            ScenarioCache(max_entries=0)
        with pytest.raises(ScenarioError, match="max_bytes"):
            ScenarioCache(max_bytes=0)


class TestAnalytics:
    def test_per_family_hit_rates(self):
        cache = ScenarioCache()
        pattern, attack = spec_of(0, base="ring"), spec_of(0, base="ddos_attack")
        generate_batch([pattern, attack], cache=cache)   # two misses
        generate_batch([pattern], cache=cache)           # one pattern hit
        analytics = cache.analytics()
        assert isinstance(analytics, CacheAnalytics)
        assert analytics.hits == 1 and analytics.misses == 2
        assert analytics.hit_rate == pytest.approx(1 / 3)
        rates = analytics.family_hit_rates()
        assert rates["pattern"] == pytest.approx(0.5)
        assert rates["ddos"] == 0.0

    def test_stats_is_json_able(self):
        cache = ScenarioCache(max_entries=4, max_bytes=1 << 20)
        cache.fetch(spec_of(0))
        doc = json.loads(json.dumps(cache.stats()))
        assert doc["misses"] == 1 and doc["entries"] == 1
        assert doc["max_entries"] == 4 and doc["max_bytes"] == 1 << 20

    def test_clear_keeps_lifetime_counters(self):
        cache = ScenarioCache()
        cache.fetch(spec_of(0))
        cache.clear()
        assert len(cache) == 0 and cache.resident_bytes == 0
        assert cache.analytics().misses == 1


class TestWarm:
    def test_warm_is_idempotent_and_dedupes(self):
        cache = ScenarioCache()
        specs = [spec_of(k) for k in range(3)]
        assert cache.warm(specs + specs) == 3  # duplicates build once
        assert cache.warm(specs) == 0          # already resident: no builds
        analytics = cache.analytics()
        assert analytics.hits == 0  # warming is maintenance, not traffic
        assert analytics.puts == 3

    def test_warm_rejects_non_specs(self):
        with pytest.raises(ScenarioError, match="warm expects ScenarioSpec"):
            ScenarioCache().warm(["ring"])


class TestBatchIntegration:
    @pytest.mark.parametrize(
        "workers,backend",
        [(1, "serial"), (3, "thread"), (2, "process")],
        ids=["serial", "thread", "process"],
    )
    def test_cached_batch_bit_identical_on_every_backend(self, workers, backend):
        specs = [spec_of(k, base=b) for k in range(4) for b in ("ring", "star")]
        reference = generate_batch(specs, workers=1, backend="serial")
        cache = ScenarioCache()
        cold = generate_batch(specs, workers=workers, backend=backend, cache=cache)
        warm = generate_batch(specs, workers=workers, backend=backend, cache=cache)
        for ref, a, b in zip(reference, cold, warm):
            assert ref == a == b
            assert ref.meta == a.meta == b.meta
        analytics = cache.analytics()
        assert analytics.misses == len(specs) and analytics.hits == len(specs)

    def test_analytics_identical_across_backends(self):
        """Cache accounting is part of the determinism contract."""
        specs = [spec_of(k) for k in range(5)]
        snapshots = []
        for workers, backend in ((1, "serial"), (3, "thread")):
            cache = ScenarioCache(max_entries=3)
            generate_batch(specs, workers=workers, backend=backend, cache=cache)
            generate_batch(specs, workers=workers, backend=backend, cache=cache)
            snapshots.append(cache.stats())
        assert snapshots[0] == snapshots[1]

    def test_progress_counts_hits_and_misses(self):
        specs = [spec_of(k) for k in range(4)]
        cache = ScenarioCache()
        cache.warm(specs[:2])
        seen = []
        generate_batch(specs, cache=cache, on_progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]
