"""Scenario registry: coverage of every generator, schemas, tags, errors."""

import importlib

import pytest

from repro.errors import ScenarioError
from repro.graphs import attack, ddos, patterns, topologies
from repro.scenarios import (
    SCENARIO_FAMILIES,
    SCENARIO_REGISTRY,
    get_generator,
    parameter_schema,
    register_scenario,
    scenario_names,
)

defense = importlib.import_module("repro.graphs.defense")


class TestCoverage:
    def test_every_graphs_generator_is_registered(self):
        """Acceptance: every generator exported from repro.graphs is reachable
        via SCENARIO_REGISTRY by name (defense under its canonical name)."""
        expected = (
            set(patterns.PATTERN_GENERATORS)
            | set(topologies.TOPOLOGY_GENERATORS)
            | {"template_matrix"}
            | set(attack.ATTACK_STAGES)
            | {"full_attack"}
            | (set(ddos.DDOS_COMPONENTS) | {"full_ddos"})
            | {"security", "deterrence", "full_posture", "defense_pattern"}
            | {"background_noise"}
        )
        assert expected <= set(scenario_names())

    def test_registered_callable_is_the_generator_itself(self):
        assert get_generator("star").func is patterns.star
        assert get_generator("defense_pattern").func is defense.defense

    def test_families_cover_the_paper_figures(self):
        assert set(SCENARIO_FAMILIES) == {
            "pattern", "topology", "attack", "defense", "ddos", "noise",
        }
        for info in SCENARIO_REGISTRY.values():
            assert info.family in SCENARIO_FAMILIES

    @pytest.mark.parametrize("name", sorted(
        set(patterns.PATTERN_GENERATORS)
        | set(topologies.TOPOLOGY_GENERATORS)
        | set(attack.ATTACK_STAGES)
        | set(ddos.DDOS_COMPONENTS)
    ))
    def test_registry_call_matches_direct_call(self, name):
        assert get_generator(name).func(10) == SCENARIO_REGISTRY[name].func(10)


class TestSchemas:
    def test_every_entry_has_an_introspectable_schema(self):
        """Acceptance: parameter schemas are introspectable for all entries."""
        for name in scenario_names():
            schema = parameter_schema(name)
            assert schema["name"] == name
            assert schema["family"]
            param_names = [p["name"] for p in schema["params"]]
            assert "n" in param_names
            for p in schema["params"]:
                assert isinstance(p["required"], bool)
                if not p["required"]:
                    assert "default" in p

    def test_star_schema_details(self):
        info = get_generator("star")
        assert info.param("n").default == 10
        assert info.param("center").keyword_only
        assert not info.param("packets").required
        assert info.display == "Star graph"

    def test_validate_params_rejects_unknown_names(self):
        with pytest.raises(ScenarioError, match="does not accept"):
            get_generator("ring").validate_params({"hub": 3})

    def test_param_lookup_error_lists_accepted(self):
        with pytest.raises(ScenarioError, match="accepted"):
            get_generator("ring").param("nope")


class TestAliasesAndEagerness:
    def test_registry_is_populated_at_package_import(self):
        import subprocess
        import sys

        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.scenarios import SCENARIO_REGISTRY; print(len(SCENARIO_REGISTRY))"],
            capture_output=True, text=True,
        )
        assert int(out.stdout.strip()) >= 29, out.stderr

    def test_get_generator_resolves_the_defense_alias(self):
        from repro.scenarios import REGISTRY_ALIASES

        assert REGISTRY_ALIASES["defense"] == "defense_pattern"
        assert get_generator("defense") is get_generator("defense_pattern")


class TestSelection:
    def test_family_filter(self):
        assert set(scenario_names(family="topology")) == {
            "isolated_links", "single_links", "internal_supernode",
            "external_supernode", "template_matrix",
        }

    def test_tag_filter(self):
        composites = set(scenario_names(tags=("composite",)))
        assert composites == {"full_attack", "full_ddos", "full_posture"}

    def test_tag_and_family_filter(self):
        assert set(scenario_names(family="ddos", tags=("botnet",))) == {
            "command_and_control", "botnet_clients", "ddos_attack", "backscatter",
        }


class TestErrors:
    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(ScenarioError, match="did you mean"):
            get_generator("strar")

    def test_unknown_name_lists_known(self):
        with pytest.raises(ScenarioError, match="known:"):
            get_generator("definitely_not_a_generator")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register_scenario("star", family="pattern")(lambda n=10: None)

    def test_unknown_family_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario family"):
            register_scenario("whatever", family="nonsense")
