"""Registry-wide contract: declared schema bounds and bodies must agree.

Satellite of the differential-verification work: the corpus sampler draws
parameter values straight from each generator's introspected schema, so any
generator whose body rejects an in-bounds value (or accepts an out-of-bounds
one with a raw ``IndexError``) breaks fuzzing.  These tests walk the whole
registry and slam every declared boundary.
"""

import pytest

from repro.errors import ReproError, ScenarioError, ShapeError
from repro.scenarios import (
    SCENARIO_REGISTRY,
    ScenarioSpec,
    ensure_registered,
    get_generator,
    scenario_names,
)

ensure_registered()


def smallest_valid_n(name: str) -> int:
    info = get_generator(name)
    n = info.min_n
    if n % info.n_multiple_of:
        n += info.n_multiple_of - n % info.n_multiple_of
    return n


class TestSizeBoundaries:
    @pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
    def test_builds_at_declared_min_n(self, name):
        """The floor is tight from above: min_n itself must build."""
        n = smallest_valid_n(name)
        matrix = ScenarioSpec(base=name, n=n, seed=1).build()
        assert matrix.n == n

    @pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
    def test_below_min_n_rejected_as_repro_error(self, name):
        """Below the floor every failure is a library error, never a raw
        IndexError/ValueError out of a NumPy write."""
        info = get_generator(name)
        if info.min_n <= 1:
            pytest.skip("floor of 1 has no below-floor size")
        with pytest.raises(ReproError):
            ScenarioSpec(base=name, n=info.min_n - 1, seed=1).build()

    def test_template_matrix_odd_size_rejected(self):
        with pytest.raises(ReproError, match="divisible by 2"):
            ScenarioSpec(base="template_matrix", n=5).validate()


class TestParamBoundaries:
    @pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
    def test_every_bounded_param_builds_at_its_minimum(self, name):
        info = get_generator(name)
        n = smallest_valid_n(name)
        for p in info.params:
            if p.minimum is None:
                continue
            value = type(p.default)(p.minimum) if p.default is not None else p.minimum
            spec = ScenarioSpec(base=name, n=n, seed=1, params={p.name: value})
            matrix = spec.build()
            assert matrix.n == n, (name, p.name, value)

    @pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
    def test_every_finitely_bounded_param_builds_at_its_maximum(self, name):
        info = get_generator(name)
        n = smallest_valid_n(name)
        for p in info.params:
            if p.maximum is None:
                continue
            value = type(p.default)(p.maximum) if p.default is not None else p.maximum
            spec = ScenarioSpec(base=name, n=n, seed=1, params={p.name: value})
            assert spec.build().n == n, (name, p.name, value)

    @pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
    def test_below_minimum_rejected_at_validation(self, name):
        info = get_generator(name)
        for p in info.params:
            if p.minimum is None:
                continue
            bad = p.minimum - 1
            with pytest.raises(ScenarioError, match="outside its declared bounds"):
                ScenarioSpec(base=name, n=smallest_valid_n(name), params={p.name: bad}).validate()

    def test_packets_zero_rejected_by_body_too(self):
        """Defence in depth: the body's _validate_positive still guards
        direct calls that never saw spec validation."""
        import repro.graphs as g

        with pytest.raises(ShapeError, match="packets"):
            g.star(5, packets=0)


class TestSamplerAgreement:
    def test_schema_reports_bounds(self):
        doc = get_generator("deterrence").schema()
        by_name = {p["name"]: p for p in doc["params"]}
        assert by_name["packets"]["minimum"] == 1
        assert by_name["provocation_packets"]["minimum"] == 1
        assert doc["min_n"] == 2

    def test_noise_density_bounds_are_closed(self):
        info = get_generator("background_noise")
        density = info.param("density")
        assert (density.minimum, density.maximum) == (0.0, 1.0)
        # both endpoints are legal
        for value in (0.0, 1.0):
            ScenarioSpec(
                base="background_noise", n=6, params={"density": value}
            ).build()

    def test_out_of_range_vertex_args_raise_shape_error(self):
        """The fixes the corpus sampler's early runs demanded: structured
        vertex arguments outside the matrix raise ShapeError, not IndexError."""
        import repro.graphs as g

        cases = [
            lambda: g.triangle(4, vertices=(0, 1, 9)),
            lambda: g.self_loops(3, vertices=[5]),
            lambda: g.clique(3, members=[0, 7]),
            lambda: g.bipartite(3, left=[9]),
            lambda: g.isolated_links(3, pairs=[(0, 9)]),
            lambda: g.single_links(3, links=[(0, 9)]),
            lambda: g.internal_supernode(10, hub=40),
            lambda: g.external_supernode(10, hub="NOPE"),
            lambda: g.lateral_movement(10, foothold=99),
        ]
        for case in cases:
            with pytest.raises(ShapeError):
                case()

    def test_registry_names_all_sampleable(self):
        """Every registered generator is reachable by the corpus sampler."""
        from repro.verify import sampleable_names

        assert set(sampleable_names()) == set(scenario_names())
