"""Declarative specs and the fluent builder: JSON round trips, provenance,
classification round trips, validation errors."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError, ScenarioSpecError, ShapeError
from repro.graphs.classify import classify_spec
from repro.scenarios import (
    NoiseSpec,
    OverlaySpec,
    ScenarioBuilder,
    ScenarioSpec,
    scenario_names,
)


class TestBuilder:
    def test_issue_example_shape(self):
        matrix = (
            ScenarioBuilder()
            .base("star", n=12)
            .with_noise(density=0.05)
            .overlay("ddos_attack")
            .seed(7)
            .build()
        )
        assert matrix.n == 12
        assert matrix.nnz() > 0

    def test_builder_equals_spec(self):
        built = ScenarioBuilder().base("ring", packets=2).size(8).seed(3).build()
        spec = ScenarioSpec(base="ring", params={"packets": 2}, n=8, seed=3)
        assert built == spec.build()

    def test_builder_requires_base(self):
        with pytest.raises(ScenarioSpecError, match="base generator"):
            ScenarioBuilder().seed(1).spec()

    def test_builder_rejects_unknown_generator_eagerly(self):
        with pytest.raises(ScenarioError):
            ScenarioBuilder().base("not_a_generator")

    def test_builder_rejects_unknown_param_eagerly(self):
        with pytest.raises(ScenarioError, match="does not accept"):
            ScenarioBuilder().base("ring", hub=2)
        with pytest.raises(ScenarioError, match="does not accept"):
            ScenarioBuilder().base("ring").overlay("star", hub=2)

    def test_builder_rejects_bad_size(self):
        with pytest.raises(ScenarioSpecError, match="n must be"):
            ScenarioBuilder().base("ring").size(0)


class TestProvenance:
    def test_built_matrix_carries_its_spec(self):
        spec = ScenarioSpec(base="clique", n=6, seed=11)
        matrix = spec.build()
        assert matrix.meta["scenario"] == spec.to_dict()

    def test_provenance_rebuilds_the_same_matrix(self):
        spec = (
            ScenarioBuilder()
            .base("bipartite")
            .overlay("background_noise", density=0.2)
            .seed(21)
            .spec()
        )
        matrix = spec.build()
        rebuilt = ScenarioSpec.from_dict(matrix.meta["scenario"]).build()
        assert rebuilt == matrix
        assert rebuilt.meta == matrix.meta

    def test_meta_survives_copy_but_not_algebra(self):
        matrix = ScenarioSpec(base="ring").build()
        assert matrix.copy().meta == matrix.meta
        assert (matrix + matrix).meta == {}
        assert matrix.copy() == matrix  # meta is not part of matrix value


class TestJsonRoundTrip:
    def test_explicit_round_trip(self):
        spec = ScenarioSpec(
            base="star",
            params={"center": 2, "packets": 3},
            n=10,
            seed=42,
            noise=NoiseSpec(density=0.2, max_packets=3, preserve_pattern=False),
            overlays=(OverlaySpec("self_loops", {"packets": 2}),),
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.build() == spec.build()

    def test_json_document_is_plain_and_versioned(self):
        doc = json.loads(ScenarioSpec(base="mesh", seed=5).to_json())
        assert doc["spec_version"] == 1
        assert doc["base"] == "mesh"

    def test_non_json_params_rejected_with_clear_error(self):
        spec = ScenarioSpec(base="mesh", params={"dims": {2, 5}})
        with pytest.raises(ScenarioSpecError, match="non-JSON"):
            spec.to_json()

    @settings(max_examples=40, deadline=None)
    @given(
        base=st.sampled_from(["star", "ring", "clique", "security", "planning",
                              "ddos_attack", "isolated_links", "background_noise"]),
        n=st.integers(min_value=5, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        packets=st.integers(min_value=1, max_value=9),
        density=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        with_noise=st.booleans(),
        overlay=st.sampled_from([None, "self_loops", "background_noise"]),
    )
    def test_property_round_trip(self, base, n, seed, packets, density, with_noise, overlay):
        """Satellite: hypothesis ScenarioSpec -> to_json -> from_json -> build equality."""
        builder = ScenarioBuilder().base(base).size(n).seed(seed)
        if base not in ("background_noise",):
            builder = ScenarioBuilder().base(base, packets=packets).size(n).seed(seed)
        if with_noise:
            builder.with_noise(density=density)
        if overlay:
            builder.overlay(overlay)
        spec = builder.spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.build() == spec.build()


class TestSpecValidation:
    def test_unknown_base_generator(self):
        with pytest.raises(ScenarioError, match="unknown scenario generator"):
            ScenarioSpec(base="warp_drive").build()

    def test_unknown_param_named_in_error(self):
        with pytest.raises(ScenarioError, match="does not accept"):
            ScenarioSpec(base="ring", params={"spokes": 3}).build()

    def test_bad_size(self):
        with pytest.raises(ScenarioSpecError, match="n must be"):
            ScenarioSpec(base="ring", n=0).validate()

    def test_size_in_params_rejected_at_validate_time(self):
        # 'n' smuggled into params would clash with the spec-level size and
        # injected labels; it must fail fast, not mid-batch-fan-out
        with pytest.raises(ScenarioSpecError, match="'n' field"):
            ScenarioSpec(base="star", params={"n": 5}, n=10).validate()
        with pytest.raises(ScenarioSpecError, match="'n' field"):
            ScenarioSpec(base="star", overlays=(OverlaySpec("ring", {"n": 4}),)).validate()
        with pytest.raises(ScenarioSpecError, match="size"):
            ScenarioBuilder().base("star").overlay("ring", n=4)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScenarioSpecError, match="unknown spec field"):
            ScenarioSpec.from_dict({"base": "ring", "extra_field": 1})

    def test_from_dict_rejects_future_versions(self):
        with pytest.raises(ScenarioSpecError, match="spec_version"):
            ScenarioSpec.from_dict({"base": "ring", "spec_version": 99})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ScenarioSpecError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")

    def test_overlay_document_needs_name(self):
        with pytest.raises(ScenarioSpecError, match="'name'"):
            ScenarioSpec.from_dict({"base": "ring", "overlays": [{"params": {}}]})

    def test_undersized_n_caught_at_validation(self):
        # a ring needs 3 vertices; the registry's min_n catches it up front
        with pytest.raises(ScenarioSpecError, match="needs n >= 3"):
            ScenarioSpec(base="ring", n=2).build()

    def test_generator_level_errors_still_surface(self):
        # dims consistency is a body-level check the schema cannot express
        with pytest.raises(ShapeError):
            ScenarioSpec(base="mesh", n=6, params={"dims": [2, 2]}).build()


class TestDeterminism:
    def test_same_seed_same_matrix(self):
        spec = ScenarioSpec(base="security", seed=9, noise=NoiseSpec(density=0.3))
        assert spec.build() == spec.build()

    def test_different_seeds_differ(self):
        a = ScenarioSpec(base="security", seed=1, noise=NoiseSpec(density=0.3)).build()
        b = ScenarioSpec(base="security", seed=2, noise=NoiseSpec(density=0.3)).build()
        assert a != b

    def test_noise_layers_get_distinct_streams(self):
        spec = ScenarioSpec(
            base="background_noise",
            params={"density": 0.3},
            overlays=(OverlaySpec("background_noise", {"density": 0.3}),),
            seed=4,
        )
        layered = spec.build()
        single = ScenarioSpec(
            base="background_noise", params={"density": 0.3}, seed=4
        ).build()
        assert layered.total_packets() > single.total_packets()

    def test_noise_preserves_planted_pattern(self):
        spec = ScenarioSpec(base="star", params={"packets": 5}, seed=3,
                            noise=NoiseSpec(density=0.5))
        noisy = spec.build()
        clean = ScenarioSpec(base="star", params={"packets": 5}).build()
        mask = clean.packets > 0
        assert (noisy.packets[mask] == clean.packets[mask]).all()


class TestClassifyRoundTrip:
    @pytest.mark.parametrize("name", sorted(scenario_names(family="pattern")))
    def test_pattern_specs_classify_back(self, name):
        assert classify_spec(ScenarioSpec(base=name)) == name

    @pytest.mark.parametrize(
        "name", ["isolated_links", "single_links", "internal_supernode", "external_supernode"]
    )
    def test_topology_specs_classify_back(self, name):
        assert classify_spec(ScenarioSpec(base=name)) == name

    @pytest.mark.parametrize("name", [
        "planning", "staging", "infiltration", "lateral_movement",
        "security", "defense_pattern", "deterrence",
        "command_and_control", "botnet_clients", "ddos_attack", "backscatter",
    ])
    def test_scenario_specs_classify_back(self, name):
        """spec -> matrix -> classify_scenario round trip, registry vocabulary."""
        assert classify_spec(ScenarioSpec(base=name)) == name
