"""Incremental delta rebuilds: bit-identity to full rebuilds, stats, caching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError
from repro.scenarios import (
    NoiseSpec,
    OverlaySpec,
    ScenarioCache,
    ScenarioSpec,
    apply_delta,
    extend_spec,
)

OVERLAY_NAMES = (
    "ddos_attack",
    "background_noise",
    "infiltration",
    "lateral_movement",
    "clique",
    "staging",
)


def assert_bit_identical(result, target):
    full = target.build()
    assert result.spec == target
    assert result.matrix == full              # packets, labels, colours
    assert result.matrix.meta == full.meta    # provenance document too


class TestExtendSpec:
    def test_appends_overlays_in_order(self):
        base = ScenarioSpec("ring", n=10, overlays=(OverlaySpec("clique"),))
        target = extend_spec(base, {"name": "ddos_attack"})
        assert [o.name for o in target.overlays] == ["clique", "ddos_attack"]

    def test_accepts_spec_dict_and_iterables(self):
        base = ScenarioSpec("ring", n=10)
        one = extend_spec(base, OverlaySpec("clique"))
        two = extend_spec(base, [{"name": "clique"}, OverlaySpec("ddos_attack")])
        assert len(one.overlays) == 1 and len(two.overlays) == 2

    def test_rejects_empty_and_malformed_deltas(self):
        base = ScenarioSpec("ring", n=10)
        with pytest.raises(ScenarioError, match="at least one overlay"):
            extend_spec(base, [])
        with pytest.raises(ScenarioError, match="OverlaySpec or dict"):
            extend_spec(base, ["clique"])
        with pytest.raises(ScenarioError, match="expects a ScenarioSpec base"):
            extend_spec("ring", OverlaySpec("clique"))

    def test_rejects_invalid_combined_spec(self):
        with pytest.raises(ScenarioError, match="unknown scenario generator"):
            extend_spec(ScenarioSpec("ring", n=10), {"name": "nope"})


class TestBitIdentity:
    def test_plain_base(self):
        base = ScenarioSpec("star", n=24, seed=3)
        result = apply_delta(base, {"name": "ddos_attack"})
        assert_bit_identical(result, extend_spec(base, {"name": "ddos_attack"}))

    def test_base_with_existing_overlays(self):
        """Delta layer seeds must land at their combined-spec positions."""
        base = ScenarioSpec(
            "tree", n=32, seed=5, overlays=(OverlaySpec("staging"),)
        )
        delta = [{"name": "lateral_movement"}, {"name": "background_noise"}]
        assert_bit_identical(apply_delta(base, delta), extend_spec(base, delta))

    def test_noisy_base_reapplies_noise_for_combined_layer_count(self):
        """The noise seed depends on layer count — the delta path must re-roll
        it for the combined spec, not reuse the base's noise stream."""
        base = ScenarioSpec(
            "mesh", n=20, seed=11, noise=NoiseSpec(density=0.08)
        )
        result = apply_delta(base, {"name": "infiltration"})
        assert_bit_identical(result, extend_spec(base, {"name": "infiltration"}))

    def test_verify_flag_accepts_honest_rebuilds(self):
        base = ScenarioSpec("ring", n=16, seed=2)
        apply_delta(base, {"name": "clique"}, verify=True)  # must not raise

    def test_explicit_prenoise_base_matrix_short_circuit(self):
        from dataclasses import replace

        base = ScenarioSpec("star", n=18, seed=4, noise=NoiseSpec(density=0.1))
        prenoise = replace(base, noise=None).build()
        result = apply_delta(base, {"name": "clique"}, base_matrix=prenoise)
        assert_bit_identical(result, extend_spec(base, {"name": "clique"}))

    @settings(max_examples=25, deadline=None)
    @given(
        base_name=st.sampled_from(("ring", "star", "mesh", "tree", "clique")),
        n=st.integers(min_value=6, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        noise=st.one_of(
            st.none(),
            st.floats(min_value=0.01, max_value=0.3).map(
                lambda d: NoiseSpec(density=d)
            ),
        ),
        base_overlays=st.lists(
            st.sampled_from(OVERLAY_NAMES), min_size=0, max_size=2
        ),
        delta_overlays=st.lists(
            st.sampled_from(OVERLAY_NAMES), min_size=1, max_size=2
        ),
    )
    def test_random_base_and_delta(
        self, base_name, n, seed, noise, base_overlays, delta_overlays
    ):
        """Property: apply_delta ≡ full rebuild over random spec space."""
        base = ScenarioSpec(
            base_name,
            n=n,
            seed=seed,
            noise=noise,
            overlays=tuple(OverlaySpec(name) for name in base_overlays),
        )
        delta = [OverlaySpec(name) for name in delta_overlays]
        assert_bit_identical(apply_delta(base, delta), extend_spec(base, delta))


class TestStats:
    def test_row_block_accounting_with_unit_blocks(self):
        """An infiltration delta stores packets in a handful of rows: with
        block_rows=1 exactly those rows recompute; the rest carry over."""
        import numpy as np

        base = ScenarioSpec("ring", n=16, seed=1)
        delta = {"name": "infiltration"}
        result = apply_delta(base, delta, block_rows=1)
        target = extend_spec(base, delta)
        layer = target.layer_matrices()[-1]
        packet_rows = int((np.asarray(layer.packets) != 0).any(axis=1).sum())
        assert 1 <= packet_rows < 16
        assert result.stats.rows == result.stats.blocks_total == 16
        assert result.stats.rows_recomputed == packet_rows
        assert result.stats.blocks_recomputed == packet_rows
        assert result.stats.rows_reused == 16 - packet_rows
        assert result.stats.delta_nnz > 0
        assert_bit_identical(result, target)

    def test_full_grid_delta_recomputes_everything(self):
        base = ScenarioSpec("ring", n=12, seed=1)
        result = apply_delta(base, {"name": "mesh"}, block_rows=4)
        assert result.stats.rows_recomputed == 12
        assert result.stats.blocks_recomputed == result.stats.blocks_total == 3


class TestCacheInterplay:
    def test_base_composition_cached_and_reused(self):
        cache = ScenarioCache()
        base = ScenarioSpec("star", n=20, seed=7, noise=NoiseSpec(density=0.1))
        first = apply_delta(base, {"name": "clique"}, cache=cache)
        second = apply_delta(base, {"name": "ddos_attack"}, cache=cache)
        assert first.stats.base_cache_hit is False
        assert second.stats.base_cache_hit is True  # pre-noise base reused
        assert_bit_identical(second, extend_spec(base, {"name": "ddos_attack"}))

    def test_combined_result_is_cached_under_target_key(self):
        cache = ScenarioCache()
        base = ScenarioSpec("ring", n=14, seed=3)
        result = apply_delta(base, {"name": "clique"}, cache=cache)
        assert result.spec in cache
        hit = cache.get(result.spec)
        assert hit == result.matrix and hit.meta == result.matrix.meta
