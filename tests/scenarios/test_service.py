"""The asyncio scenario service: queueing, caching, progress, cancellation.

No pytest-asyncio in the toolchain — each test drives its own event loop with
``asyncio.run``, which also mirrors how synchronous callers embed the service.
"""

import asyncio
import threading

import pytest

from repro.errors import ScenarioError, ScenarioServiceError
from repro.scenarios import (
    ScenarioCache,
    ScenarioService,
    ScenarioSpec,
    extend_spec,
    generate_batch,
)


def specs_of(count: int, base: str = "ring", n: int = 12) -> list[ScenarioSpec]:
    return [ScenarioSpec(base=base, n=n, seed=k) for k in range(count)]


class TestLifecycle:
    def test_requires_start(self):
        service = ScenarioService()

        async def main():
            with pytest.raises(ScenarioServiceError, match="not running"):
                await service.submit(specs_of(1))

        asyncio.run(main())

    def test_double_start_rejected(self):
        async def main():
            async with ScenarioService() as service:
                with pytest.raises(ScenarioServiceError, match="already running"):
                    await service.start()

        asyncio.run(main())

    def test_stop_is_idempotent_and_context_manager_cleans_up(self):
        async def main():
            service = ScenarioService(concurrency=2)
            async with service:
                assert service.running
                await service.generate(specs_of(2))
            assert not service.running
            await service.stop()  # second stop: no-op

        asyncio.run(main())

    def test_bad_configuration_rejected(self):
        with pytest.raises(ScenarioServiceError, match="concurrency"):
            ScenarioService(concurrency=0)
        with pytest.raises(ScenarioServiceError, match="queue_size"):
            ScenarioService(queue_size=0)


class TestResults:
    def test_ordered_results_match_generate_batch(self):
        specs = specs_of(8) + specs_of(4, base="star")
        reference = generate_batch(specs, workers=1, backend="serial")

        async def main():
            async with ScenarioService(concurrency=3) as service:
                return await service.generate(specs)

        results = asyncio.run(main())
        assert len(results) == len(reference)
        for got, ref in zip(results, reference):
            assert got == ref
            assert got.meta == ref.meta

    def test_thread_backend_bit_identity(self):
        specs = specs_of(6, base="mesh", n=16)
        reference = generate_batch(specs, workers=1, backend="serial")

        async def main():
            async with ScenarioService(
                concurrency=2, workers=3, backend="thread"
            ) as service:
                return await service.generate(specs)

        for got, ref in zip(asyncio.run(main()), reference):
            assert got == ref and got.meta == ref.meta

    def test_handle_await_is_results_shorthand(self):
        specs = specs_of(3)

        async def main():
            async with ScenarioService() as service:
                handle = await service.submit(specs)
                return await handle

        assert asyncio.run(main()) == generate_batch(specs)

    def test_build_failure_surfaces_with_index_and_name(self):
        # passes registry validation; the generator body rejects it
        bad = ScenarioSpec(base="mesh", n=6, params={"dims": [2, 2]}, seed=2)
        batch = specs_of(2) + [bad]

        async def main():
            async with ScenarioService() as service:
                handle = await service.submit(batch)
                with pytest.raises(ScenarioError, match=r"spec 2 \('mesh'\) failed to build"):
                    await handle.results()
                mixed = await handle.results(return_exceptions=True)
                assert isinstance(mixed[2], ScenarioError)
                assert mixed[:2] == generate_batch(specs_of(2))
                assert service.stats()["specs_failed"] == 1

        asyncio.run(main())

    def test_submit_validates_like_generate_batch(self):
        async def main():
            async with ScenarioService() as service:
                with pytest.raises(ScenarioError, match="index 1"):
                    await service.submit([ScenarioSpec(base="ring"), "ring"])
                with pytest.raises(ScenarioError, match=r"spec 0 \('nope'\)"):
                    await service.submit([ScenarioSpec(base="nope")])

        asyncio.run(main())


class TestCaching:
    def test_repeat_batches_hit_the_cache(self):
        specs = specs_of(5)

        async def main():
            async with ScenarioService(concurrency=2) as service:
                first = await service.generate(specs)
                second = await service.generate(specs)
                assert first == second
                analytics = service.cache.analytics()
                assert analytics.misses == 5 and analytics.hits == 5
                return service.stats()

        stats = asyncio.run(main())
        assert stats["specs_completed"] == 10
        assert stats["cache"]["hit_rate"] == pytest.approx(0.5)

    def test_warm_is_idempotent_and_makes_batches_pure_hits(self):
        specs = specs_of(4)

        async def main():
            async with ScenarioService() as service:
                built = await service.warm(specs + specs)  # dupes build once
                again = await service.warm(specs)
                results = await service.generate(specs)
                return built, again, results, service.cache.analytics()

        built, again, results, analytics = asyncio.run(main())
        assert (built, again) == (4, 0)
        assert results == generate_batch(specs)
        assert analytics.hits == 4  # the generate() — warming itself missed

    def test_shared_cache_with_sync_batch_path(self):
        specs = specs_of(3)
        cache = ScenarioCache()
        generate_batch(specs, cache=cache)

        async def main():
            async with ScenarioService(cache=cache) as service:
                await service.generate(specs)
                return service.cache.analytics()

        analytics = asyncio.run(main())
        assert analytics.hits == 3 and analytics.misses == 3


class TestProgress:
    def test_progress_is_monotonic_and_reaches_total(self):
        specs = specs_of(7)
        seen: list[tuple[int, int]] = []

        async def main():
            async with ScenarioService(concurrency=3) as service:
                handle = await service.submit(
                    specs, on_progress=lambda d, t: seen.append((d, t))
                )
                await handle.results()
                assert handle.done == handle.total == 7

        asyncio.run(main())
        assert seen == [(k, 7) for k in range(1, 8)]


class _GatedBuild:
    """A build that parks until released — deterministic in-flight control."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls: list[int] = []

    def __call__(self, item):
        index, spec = item
        self.calls.append(index)
        self.started.set()
        assert self.release.wait(timeout=30)
        return spec.build()


class TestBackpressure:
    def test_queue_full_nowait_raises_and_wait_waits(self, monkeypatch):
        from repro.scenarios import service as service_mod

        gate = _GatedBuild()
        monkeypatch.setattr(service_mod, "_build_indexed", gate)
        specs = specs_of(4)

        async def main():
            async with ScenarioService(concurrency=1, queue_size=1) as service:
                # worker takes spec 0 and parks; spec 1 fills the queue
                first = await service.submit(specs[:2])
                await asyncio.to_thread(gate.started.wait, 30)
                with pytest.raises(ScenarioServiceError, match="queue is full"):
                    await service.submit(specs[2:], wait=False)
                # the failed submit cancelled its own futures, nothing else:
                stats = service.stats()
                assert stats["queue_depth"] == 1
                # wait=True parks instead of raising; release lets it through
                waiter = asyncio.create_task(service.submit(specs[2:3]))
                await asyncio.sleep(0.05)
                assert not waiter.done()  # backpressured, not failed
                gate.release.set()
                second = await waiter
                results = await first.results() + await second.results()
                assert results == generate_batch(specs[:3])

        asyncio.run(main())


class TestCancellation:
    def test_cancel_skips_queued_builds(self, monkeypatch):
        from repro.scenarios import service as service_mod

        gate = _GatedBuild()
        monkeypatch.setattr(service_mod, "_build_indexed", gate)
        specs = specs_of(5)

        async def main():
            async with ScenarioService(concurrency=1, queue_size=8) as service:
                handle = await service.submit(specs)
                await asyncio.to_thread(gate.started.wait, 30)
                cancelled = handle.cancel()
                gate.release.set()
                results = await handle.results(return_exceptions=True)
                await service.stop()  # drain so counters settle
                return cancelled, results, service.stats(), list(gate.calls)

        cancelled, results, stats, calls = asyncio.run(main())
        assert cancelled == 5  # in-flight spec 0 included: result discarded
        assert all(isinstance(r, asyncio.CancelledError) for r in results)
        assert calls == [0]  # queued specs 1..4 never reached a build
        assert stats["specs_cancelled"] == 5
        assert stats["specs_completed"] == 0

    def test_no_progress_after_cancel_observed(self, monkeypatch):
        """on_progress must never fire for tasks completing after cancel()."""
        from repro.scenarios import service as service_mod

        gate = _GatedBuild()
        monkeypatch.setattr(service_mod, "_build_indexed", gate)
        progress: list[tuple[int, int]] = []

        async def main():
            async with ScenarioService(concurrency=1, queue_size=8) as service:
                handle = await service.submit(specs_of(3), on_progress=progress.append)
                await asyncio.to_thread(gate.started.wait, 30)
                handle.cancel()  # observed while spec 0 is still in flight
                assert handle.cancelled
                gate.release.set()
                await handle.results(return_exceptions=True)
                await service.stop()  # drain: every job is marked done
                return handle.done

        done = asyncio.run(main())
        assert progress == [], "hook fired for a post-cancel completion"
        assert done == 3  # completions are still counted, just not reported

    def test_cancel_during_final_task_does_not_deadlock_await(self, monkeypatch):
        """cancel() while the last task is in flight — with a hook that would
        raise if it fired — must still let ``await handle`` resolve."""
        from repro.scenarios import service as service_mod

        gate = _GatedBuild()
        monkeypatch.setattr(service_mod, "_build_indexed", gate)

        def hostile_hook(done, total):
            raise RuntimeError("hook fired after cancellation")

        async def main():
            async with ScenarioService(concurrency=1, queue_size=8) as service:
                handle = await service.submit(specs_of(1), on_progress=hostile_hook)
                await asyncio.to_thread(gate.started.wait, 30)
                assert handle.cancel() == 1  # the final (only) task, in flight
                gate.release.set()
                results = await asyncio.wait_for(
                    handle.results(return_exceptions=True), timeout=10
                )
                assert all(isinstance(r, asyncio.CancelledError) for r in results)
                # the worker survived; the service serves the next batch
                follow_up = await asyncio.wait_for(service.generate(specs_of(1)), 30)
                assert follow_up == generate_batch(specs_of(1))

        asyncio.run(main())

    def test_raising_progress_hook_does_not_strand_the_queue(self):
        """A hook that raises on every call must not kill the worker task —
        a dead worker would leave queued futures unresolved forever."""

        def hostile_hook(done, total):
            raise RuntimeError("boom")

        async def main():
            async with ScenarioService(concurrency=1, queue_size=8) as service:
                handle = await service.submit(specs_of(3), on_progress=hostile_hook)
                results = await asyncio.wait_for(handle.results(), timeout=30)
                assert results == generate_batch(specs_of(3))
                assert service.stats()["specs_completed"] == 3

        asyncio.run(main())

    def test_cancelled_results_raise_without_return_exceptions(self):
        async def main():
            async with ScenarioService() as service:
                handle = await service.submit(specs_of(2))
                handle.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await handle.results()
                # the service itself survives for the next batch
                assert await service.generate(specs_of(1)) == generate_batch(
                    specs_of(1)
                )

        asyncio.run(main())


class TestDelta:
    def test_apply_delta_matches_full_rebuild_and_caches_target(self):
        base = ScenarioSpec("star", n=20, seed=3)
        delta = {"name": "ddos_attack"}
        target = extend_spec(base, delta)
        full = target.build()

        async def main():
            async with ScenarioService() as service:
                result = await service.apply_delta(base, delta)
                follow_up = await service.generate([target])
                return result, follow_up, service.stats()

        result, follow_up, stats = asyncio.run(main())
        assert result.matrix == full and result.matrix.meta == full.meta
        assert follow_up[0] == full  # served from cache, not rebuilt
        assert stats["delta_rebuilds"] == 1
        assert (
            stats["delta_rows_recomputed"] + stats["delta_rows_reused"]
            == result.stats.rows
        )


class TestStats:
    def test_stats_shape(self):
        async def main():
            async with ScenarioService(concurrency=2, queue_size=16) as service:
                await service.generate(specs_of(3))
                return service.stats()

        stats = asyncio.run(main())
        assert stats["running"] is True
        assert stats["concurrency"] == 2 and stats["queue_size"] == 16
        assert stats["batches_submitted"] == 1
        assert stats["specs_submitted"] == stats["specs_completed"] == 3
        assert stats["cache"]["misses"] == 3
