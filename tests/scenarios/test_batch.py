"""Parallel batch generation: serial/parallel bit-identity, ordering, errors."""

import pytest

from repro import runtime
from repro.errors import ScenarioError
from repro.scenarios import (
    NoiseSpec,
    OverlaySpec,
    ScenarioSpec,
    generate_batch,
    scenario_names,
)


def mixed_specs(count: int) -> list[ScenarioSpec]:
    """A deterministic mixed curriculum across every family, seeded noise on."""
    bases = sorted(set(scenario_names()) - {"background_noise"})
    out = []
    for k in range(count):
        base = bases[k % len(bases)]
        out.append(
            ScenarioSpec(
                base=base,
                n=10,
                seed=k,
                noise=NoiseSpec(density=0.1) if k % 2 else None,
                overlays=(OverlaySpec("background_noise", {"density": 0.05}),)
                if k % 3 == 0
                else (),
            )
        )
    return out


class TestBitIdentity:
    def test_serial_vs_thread_parallel_over_32_specs(self):
        """Acceptance: generate_batch over >= 32 specs is bit-identical
        serial vs parallel."""
        specs = mixed_specs(36)
        serial = generate_batch(specs, workers=1, backend="serial")
        parallel = generate_batch(specs, workers=4, backend="thread")
        assert len(serial) == len(parallel) == 36
        for a, b in zip(serial, parallel):
            assert a == b  # packets, labels, colours — bit for bit
            assert a.meta == b.meta

    def test_serial_vs_process_parallel(self):
        specs = mixed_specs(8)
        serial = generate_batch(specs, workers=1, backend="serial")
        parallel = generate_batch(specs, workers=2, backend="process")
        for a, b in zip(serial, parallel):
            assert a == b
            assert a.meta == b.meta

    def test_repeated_runs_are_deterministic(self):
        specs = mixed_specs(8)
        assert generate_batch(specs, workers=3) == generate_batch(specs, workers=3)


class TestSemantics:
    def test_results_in_input_order(self):
        specs = [ScenarioSpec(base="star", params={"center": c}, seed=c) for c in range(6)]
        for c, matrix in enumerate(generate_batch(specs, workers=3)):
            assert matrix.packets[c].sum() > 0  # row c filled means center == c
            assert matrix.meta["scenario"]["params"]["center"] == c

    def test_default_uses_process_wide_runtime_config(self):
        specs = mixed_specs(4)
        with runtime.configured(workers=2, backend="thread"):
            matrices = generate_batch(specs)
        assert matrices == generate_batch(specs, workers=1, backend="serial")

    def test_empty_batch(self):
        assert generate_batch([]) == []

    def test_non_spec_items_rejected_up_front(self):
        with pytest.raises(ScenarioError, match="index 1"):
            generate_batch([ScenarioSpec(base="ring"), "ring"])

    def test_invalid_spec_fails_before_fan_out(self):
        bad = [ScenarioSpec(base="ring"), ScenarioSpec(base="not_real")]
        with pytest.raises(ScenarioError, match="unknown scenario generator"):
            generate_batch(bad, workers=4)


class TestFailurePaths:
    """One bad spec must fail loudly (index + name) without poisoning pools."""

    def bad_batch(self) -> list[ScenarioSpec]:
        # index 2 passes registry validation but the body rejects it:
        # dims that do not cover n is a constraint the schema cannot express
        return [
            ScenarioSpec(base="star", seed=0),
            ScenarioSpec(base="ring", seed=1),
            ScenarioSpec(base="mesh", n=6, params={"dims": [2, 2]}, seed=2),
            ScenarioSpec(base="clique", seed=3),
        ]

    def test_validation_failure_names_index_and_spec(self):
        batch = [ScenarioSpec(base="star"), ScenarioSpec(base="nope_not_real")]
        with pytest.raises(ScenarioError, match=r"spec 1 \('nope_not_real'\)"):
            generate_batch(batch)

    @pytest.mark.parametrize(
        "workers,backend",
        [(1, "serial"), (3, "thread"), (2, "process")],
        ids=["serial", "thread", "process"],
    )
    def test_build_failure_names_index_and_spec(self, workers, backend):
        with pytest.raises(ScenarioError, match=r"spec 2 \('mesh'\) failed to build"):
            generate_batch(self.bad_batch(), workers=workers, backend=backend)

    @pytest.mark.parametrize(
        "workers,backend",
        [(3, "thread"), (2, "process")],
        ids=["thread", "process"],
    )
    def test_failure_does_not_poison_the_cached_pool(self, workers, backend):
        """The same (backend, workers) pool must keep serving after a raise."""
        good = mixed_specs(6)
        with pytest.raises(ScenarioError):
            generate_batch(self.bad_batch(), workers=workers, backend=backend)
        after = generate_batch(good, workers=workers, backend=backend)
        assert after == generate_batch(good, workers=1, backend="serial")

    def test_serial_failure_leaves_runtime_usable(self):
        with pytest.raises(ScenarioError):
            generate_batch(self.bad_batch(), workers=1, backend="serial")
        assert len(generate_batch(mixed_specs(4))) == 4
