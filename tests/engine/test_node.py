"""Node semantics: hierarchy, naming, paths, lifecycle, signals, groups."""

import pytest

from repro.engine.node import Label3D, MeshInstance3D, Node, Node3D
from repro.engine.math3d import Vector3
from repro.engine.tree import SceneTree
from repro.errors import EngineError, NodePathError, SignalError


class TestHierarchy:
    def test_add_and_get_children(self):
        root = Node("Root")
        a = root.add_child(Node("A"))
        b = root.add_child(Node("B"))
        assert root.get_children() == [a, b]
        assert root.get_child(1) is b
        assert root.get_child_count() == 2

    def test_child_index_error(self):
        with pytest.raises(EngineError, match="out of range"):
            Node("Root").get_child(0)

    def test_duplicate_names_auto_renamed(self):
        root = Node("Root")
        root.add_child(Node("Dup"))
        second = root.add_child(Node("Dup"))
        third = root.add_child(Node("Dup"))
        assert second.name == "Dup2" and third.name == "Dup3"

    def test_reparent_requires_remove(self):
        root, other = Node("R"), Node("O")
        child = root.add_child(Node("C"))
        with pytest.raises(EngineError, match="already has parent"):
            other.add_child(child)
        root.remove_child(child)
        other.add_child(child)
        assert child.parent is other

    def test_cycle_rejected(self):
        root = Node("R")
        child = root.add_child(Node("C"))
        with pytest.raises(EngineError, match="cycle"):
            child.add_child(root)

    def test_self_child_rejected(self):
        n = Node("N")
        with pytest.raises(EngineError):
            n.add_child(n)

    def test_remove_non_child(self):
        with pytest.raises(EngineError):
            Node("A").remove_child(Node("B"))

    def test_free_detaches(self):
        root = Node("R")
        child = root.add_child(Node("C"))
        child.free()
        assert root.get_child_count() == 0 and child.parent is None

    def test_find_child_recursive(self):
        root = Node("R")
        mid = root.add_child(Node("Mid"))
        deep = mid.add_child(Node("Deep"))
        assert root.find_child("Deep") is deep
        assert root.find_child("Deep", recursive=False) is None

    def test_iter_tree_preorder(self):
        root = Node("R")
        a = root.add_child(Node("A"))
        a.add_child(Node("A1"))
        root.add_child(Node("B"))
        names = [n.name for n in root.iter_tree()]
        assert names == ["R", "A", "A1", "B"]


class TestPaths:
    def build(self):
        root = Node3D("Level")
        data = root.add_child(Node3D("Data"))
        ctrl = root.add_child(Node3D("Controller"))
        x = ctrl.add_child(Node3D("X"))
        return root, data, ctrl, x

    def test_relative_up(self):
        _root, data, ctrl, _x = self.build()
        assert ctrl.get_node("../Data") is data

    def test_relative_down(self):
        root, _d, _c, x = self.build()
        assert root.get_node("Controller/X") is x

    def test_dot_and_empty_segments(self):
        root, _d, ctrl, _x = self.build()
        assert ctrl.get_node(".") is ctrl
        assert root.get_node("./Controller") is ctrl

    def test_absolute(self):
        _root, data, _c, x = self.build()
        assert x.get_node("/Level/Data") is data

    def test_get_path(self):
        _r, _d, _c, x = self.build()
        assert x.get_path() == "/Level/Controller/X"

    def test_missing_raises_with_context(self):
        root, *_ = self.build()
        with pytest.raises(NodePathError, match="Nope"):
            root.get_node("Nope")

    def test_up_past_root_raises(self):
        root, *_ = self.build()
        with pytest.raises(NodePathError):
            root.get_node("../Too/Far")

    def test_empty_path_raises(self):
        root, *_ = self.build()
        with pytest.raises(NodePathError):
            root.get_node("")

    def test_has_node(self):
        root, *_ = self.build()
        assert root.has_node("Data") and not root.has_node("Ghost")


class TestLifecycle:
    def test_ready_children_first_once(self):
        order: list[str] = []

        class Probe(Node):
            def _ready(self):
                order.append(self.name)

        root = Probe("Root")
        mid = root.add_child(Probe("Mid"))
        mid.add_child(Probe("Leaf"))
        SceneTree(root)
        assert order == ["Leaf", "Mid", "Root"]

    def test_ready_fires_for_late_added_subtree(self):
        order: list[str] = []

        class Probe(Node):
            def _ready(self):
                order.append(self.name)

        root = Probe("Root")
        SceneTree(root)
        root.add_child(Probe("Late"))
        assert order == ["Root", "Late"]

    def test_ready_not_refired_on_reattach(self):
        count = {"n": 0}

        class Probe(Node):
            def _ready(self):
                count["n"] += 1

        root = Node("Root")
        p = root.add_child(Probe("P"))
        SceneTree(root)
        root.remove_child(p)
        root.add_child(p)
        assert count["n"] == 1

    def test_is_inside_tree(self):
        root = Node("R")
        child = root.add_child(Node("C"))
        assert not child.is_inside_tree()
        tree = SceneTree(root)
        assert child.is_inside_tree()
        root.remove_child(child)
        assert not child.is_inside_tree() and root.is_inside_tree()
        assert tree.root is root

    def test_ready_signal_emitted(self):
        hits = []
        root = Node("R")
        root.connect("ready", lambda: hits.append(True))
        SceneTree(root)
        assert hits == [True]


class TestSignals:
    def test_user_signal_connect_emit(self):
        n = Node("N")
        sig = n.add_user_signal("toggled")
        got = []
        n.connect("toggled", lambda v: got.append(v))
        n.emit_signal("toggled", 42)
        assert got == [42]
        assert sig.connection_count() == 1

    def test_duplicate_signal_rejected(self):
        n = Node("N")
        n.add_user_signal("s")
        with pytest.raises(SignalError):
            n.add_user_signal("s")

    def test_unknown_signal(self):
        with pytest.raises(SignalError, match="no signal"):
            Node("N").emit_signal("ghost")

    def test_child_entered_tree_signal(self):
        root = Node("R")
        got = []
        root.connect("child_entered_tree", lambda c: got.append(c.name))
        root.add_child(Node("C"))
        assert got == ["C"]


class TestGroupsAndCall:
    def test_groups_via_tree(self):
        root = Node("R")
        a = root.add_child(Node("A"))
        a.add_to_group("pallets")
        tree = SceneTree(root)
        assert tree.get_nodes_in_group("pallets") == [a]
        a.remove_from_group("pallets")
        assert tree.get_nodes_in_group("pallets") == []

    def test_call_script_method(self):
        class Script:
            def greet(self, who):
                return f"hi {who}"

        n = Node("N")
        n.attach_script(Script())
        assert n.call("greet", "you") == "hi you"

    def test_call_missing_method(self):
        with pytest.raises(EngineError, match="no method"):
            Node("N").call("ghost")


class TestNode3DTypes:
    def test_global_position_accumulates(self):
        root = Node3D("R", position=Vector3(1, 0, 0))
        mid = root.add_child(Node3D("M", position=Vector3(0, 2, 0)))
        leaf = mid.add_child(Node3D("L", position=Vector3(0, 0, 3)))
        assert leaf.global_position == Vector3(1, 2, 3)

    def test_plain_node_ancestors_ignored(self):
        root = Node("R")
        holder = root.add_child(Node3D("H", position=Vector3(5, 0, 0)))
        leaf = holder.add_child(Node3D("L", position=Vector3(1, 0, 0)))
        assert leaf.global_position.x == 6

    def test_label3d_text(self):
        lbl = Label3D("L", text="WS1")
        assert lbl.text == "WS1"
        lbl.text = "ADV1"
        assert lbl.text == "ADV1"

    def test_mesh_instance_defaults(self):
        m = MeshInstance3D("M", mesh="pallet")
        assert m.material_override is None and m.visible
