"""SceneTree processing, inspector export editing, input mapping, math."""

import math

import pytest

from repro.engine.input import ACTIONS, InputEventKey, Key, action_for_key
from repro.engine.inspector import dump_inspector, get_export, list_exports, set_export
from repro.engine.math3d import Basis, Vector3
from repro.engine.node import Node, Node3D
from repro.engine.resources import StandardMaterial3D, preload, register_resource
from repro.engine.tree import SceneTree
from repro.errors import EngineError, ResourceError


class TestSceneTree:
    def test_process_walks_whole_tree(self):
        ticks = []

        class P(Node):
            def _process(self, delta):
                ticks.append((self.name, delta))

        root = P("R")
        root.add_child(P("A"))
        tree = SceneTree(root)
        tree.process(0.5)
        assert ticks == [("R", 0.5), ("A", 0.5)]
        assert tree.frame == 1

    def test_run_fixed_timestep(self):
        deltas = []

        class P(Node):
            def _process(self, delta):
                deltas.append(delta)

        tree = SceneTree(P("R"))
        tree.run(3, fps=30)
        assert deltas == [pytest.approx(1 / 30)] * 3
        assert tree.frame == 3

    def test_paused_skips_process(self):
        ticks = []

        class P(Node):
            def _process(self, delta):
                ticks.append(1)

        tree = SceneTree(P("R"))
        tree.paused = True
        tree.process(0.1)
        assert ticks == [] and tree.frame == 1

    def test_empty_tree_process_raises(self):
        with pytest.raises(EngineError):
            SceneTree().process(0.1)

    def test_second_root_rejected(self):
        tree = SceneTree(Node("A"))
        with pytest.raises(EngineError, match="change_scene"):
            tree.set_root(Node("B"))

    def test_change_scene_swaps_and_returns_old(self):
        old_root = Node("Old")
        tree = SceneTree(old_root)
        new_root = Node("New")
        returned = tree.change_scene(new_root)
        assert returned is old_root
        assert tree.root is new_root
        assert not old_root.is_inside_tree()

    def test_push_input_dispatches(self):
        seen = []

        class P(Node):
            def _input(self, event):
                seen.append(event.key)

        tree = SceneTree(P("R"))
        tree.push_input(InputEventKey(Key.SPACE))
        assert seen == [Key.SPACE]

    def test_call_group(self):
        class P(Node):
            def ping(self):
                return self.name

        root = Node("R")
        a, b = P("A"), P("B")
        a.add_to_group("g")
        b.add_to_group("g")
        root.add_child(a)
        root.add_child(b)
        tree = SceneTree(root)
        assert tree.call_group("g", "ping") == ["A", "B"]

    def test_bad_fps(self):
        with pytest.raises(EngineError):
            SceneTree(Node("R")).run(1, fps=0)


class TestInspector:
    def test_list_get_set(self):
        n = Node("N")
        n.export_var("speed", 1.0, "float")
        assert list_exports(n) == {"speed": 1.0}
        set_export(n, "speed", 2.5)
        assert get_export(n, "speed") == 2.5

    def test_type_hint_enforced(self):
        n = Node("N")
        n.export_var("flag", False, "bool")
        with pytest.raises(EngineError, match="expects bool"):
            set_export(n, "flag", "yes")

    def test_node_hint_accepts_subclass(self):
        n = Node("N")
        n.export_var("target", None, "Node3D")
        from repro.engine.node import Label3D

        set_export(n, "target", Label3D("L"))

    def test_node_hint_rejects_plain_node(self):
        n = Node("N")
        n.export_var("target", None, "Node3D")
        with pytest.raises(EngineError):
            set_export(n, "target", Node("plain"))

    def test_unknown_export(self):
        with pytest.raises(EngineError, match="no export"):
            set_export(Node("N"), "ghost", 1)

    def test_dump_shows_node_references_by_name(self):
        n = Node3D("Controller")
        n.export_var("y_axis", None, "Node3D")
        set_export(n, "y_axis", Node3D("Y"))
        dump = dump_inspector(n)
        assert "Controller" in dump and "[Y]" in dump and "(Node3D)" in dump

    def test_dump_empty(self):
        assert "no export variables" in dump_inspector(Node("N"))

    def test_redeclare_keeps_value(self):
        n = Node("N")
        n.export_var("x", 5)
        n.export_var("x", 99)
        assert get_export(n, "x") == 5


class TestResources:
    def test_preload_builtin_materials(self):
        mat = preload("res://Assets/Objects/pallet_material_b.tres")
        assert isinstance(mat, StandardMaterial3D) and mat.albedo == "blue"

    def test_unknown_path(self):
        with pytest.raises(ResourceError, match="unknown resource"):
            preload("res://ghost.tres")

    def test_register_and_overwrite_policy(self):
        mat = StandardMaterial3D("res://custom.tres", "green")
        register_resource(mat)
        assert preload("res://custom.tres") is mat
        with pytest.raises(ResourceError, match="already registered"):
            register_resource(StandardMaterial3D("res://custom.tres", "red"))
        register_resource(StandardMaterial3D("res://custom.tres", "red"), overwrite=True)
        assert preload("res://custom.tres").albedo == "red"


class TestInputMap:
    def test_paper_controls(self):
        assert ACTIONS["toggle_view"] is Key.SPACE
        assert ACTIONS["rotate_left"] is Key.Q
        assert ACTIONS["rotate_right"] is Key.E

    def test_reverse_lookup(self):
        assert action_for_key(Key.SPACE) == "toggle_view"
        assert action_for_key(Key.ENTER) == "confirm"


class TestMath3D:
    def test_vector_algebra(self):
        v = Vector3(1, 2, 3) + Vector3(4, 5, 6)
        assert v == Vector3(5, 7, 9)
        assert (v - Vector3(5, 7, 9)) == Vector3.ZERO
        assert Vector3(1, 0, 0).cross(Vector3(0, 1, 0)) == Vector3(0, 0, 1)
        assert Vector3(3, 4, 0).length() == pytest.approx(5.0)

    def test_normalized(self):
        n = Vector3(0, 10, 0).normalized()
        assert n == Vector3(0, 1, 0)
        assert Vector3.ZERO.normalized() == Vector3.ZERO

    def test_rotation_y_quarter_turn(self):
        b = Basis.rotation_y(math.pi / 2)
        v = b.apply(Vector3(1, 0, 0))
        assert v.x == pytest.approx(0, abs=1e-12)
        assert v.z == pytest.approx(-1)

    def test_rotation_preserves_length(self):
        b = Basis.rotation_x(0.7) @ Basis.rotation_y(1.1)
        v = b.apply(Vector3(1, 2, 3))
        assert v.length() == pytest.approx(Vector3(1, 2, 3).length())

    def test_inverse(self):
        b = Basis.rotation_y(0.5)
        assert (b @ b.inverse()) == Basis.identity()

    def test_apply_many_matches_apply(self):
        import numpy as np

        b = Basis.rotation_y(0.3) @ Basis.rotation_x(0.2)
        pts = np.asarray([[1.0, 2.0, 3.0], [0.0, 1.0, 0.0]])
        batch = b.apply_many(pts)
        single = b.apply(Vector3(1, 2, 3))
        assert batch[0] == pytest.approx([single.x, single.y, single.z])
