"""Consumer integrations: the runtime switch reaches the public pipelines."""

import numpy as np
import pytest

from repro import runtime
from repro.analysis.streaming import merge_windows, window_stream
from repro.assoc.array import AssociativeArray
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import LabelError
from repro.graphs.attack import full_attack
from repro.graphs.compose import overlay
from repro.graphs.ddos import full_ddos
from repro.graphs.defense import defense, deterrence, full_posture, security


@pytest.fixture(autouse=True)
def _pristine_runtime():
    runtime.reset()
    yield
    runtime.reset()


class TestTrafficMatrixBridge:
    def test_to_csr_round_trip(self, tpl10):
        m = full_attack(labels=tpl10.matrix.labels)
        csr = m.to_csr()
        assert csr.shape == m.shape
        assert np.array_equal(csr.to_dense(0), np.asarray(m.packets))

    def test_compose_counts_two_hop_traffic(self):
        labels = ["WS1", "WS2", "WS3"]
        hop1 = TrafficMatrix.from_edges([("WS1", "WS2", 2)], labels)
        hop2 = TrafficMatrix.from_edges([("WS2", "WS3", 3)], labels)
        relayed = hop1.compose(hop2)
        assert relayed["WS1", "WS3"] == 6
        assert relayed.total_packets() == 6

    def test_compose_semiring_by_name(self):
        labels = ["WS1", "WS2", "WS3"]
        m = TrafficMatrix.from_edges([("WS1", "WS2", 4), ("WS2", "WS3", 2)], labels)
        widest = m.compose(m, semiring="max.times")
        assert widest["WS1", "WS3"] == 8

    def test_compose_parallel_equals_serial(self):
        rng = np.random.default_rng(3)
        labels = [f"WS{i}" for i in range(1, 41)]
        m = TrafficMatrix(rng.integers(0, 3, (40, 40)), labels)
        serial = m.compose(m)
        with runtime.configured(workers=3, backend="thread", min_parallel_work=1, block_rows=7):
            parallel = m.compose(m)
        assert parallel == serial

    def test_compose_rejects_label_mismatch(self):
        a = TrafficMatrix.zeros(3, ["WS1", "WS2", "WS3"])
        b = TrafficMatrix.zeros(3, ["WS1", "WS2", "SRV1"])
        with pytest.raises(LabelError):
            a.compose(b)

    def test_compose_rejects_min_like_semirings(self):
        """Densifying min.plus would turn 'unreachable' into cost 0 — refuse."""
        from repro.errors import TrafficMatrixError

        m = TrafficMatrix.from_edges([("WS1", "WS2", 3)], ["WS1", "WS2", "WS3"])
        with pytest.raises(TrafficMatrixError, match="min"):
            m.compose(m, semiring="min.plus")


class TestOverlayRuntimePath:
    @staticmethod
    def _sparse_stack():
        """Large, sparse matrices: the profile where the CSR path engages."""
        labels = [f"WS{i}" for i in range(1, 65)]
        stack = []
        for seed in range(3):
            dense = np.zeros((64, 64), dtype=np.int64)
            g = np.random.default_rng(seed)
            dense[g.integers(0, 64, 50), g.integers(0, 64, 50)] = g.integers(1, 9, 50)
            stack.append(TrafficMatrix(dense, labels))
        return stack

    def test_sparse_overlay_matches_dense(self):
        stack = self._sparse_stack()
        dense = overlay(stack)
        with runtime.configured(workers=3, backend="thread", min_parallel_work=1, block_rows=9):
            sparse = overlay(stack)
        assert sparse == dense
        assert sparse.extended_colors == dense.extended_colors

    def test_dense_stack_stays_on_dense_path(self, tpl10):
        """Mostly-occupied matrices must not pay the CSR round trip."""
        stages = [full_attack(labels=tpl10.matrix.labels), full_ddos(labels=tpl10.matrix.labels)]
        serial = overlay(stages)
        with runtime.configured(workers=3, backend="thread", min_parallel_work=1):
            parallel = overlay(stages)
        assert parallel == serial

    def test_sparse_overlay_validates_labels(self):
        a = TrafficMatrix.zeros(3, ["WS1", "WS2", "WS3"])
        b = TrafficMatrix.zeros(3, ["WS1", "WS2", "SRV1"])
        with runtime.configured(workers=3, backend="thread", min_parallel_work=1):
            with pytest.raises(LabelError):
                overlay([a, b])


class TestFullPosture:
    def test_overlays_all_three_concepts(self):
        combined = full_posture()
        expected = security() + defense() + deterrence()
        assert np.array_equal(combined.packets, expected.packets)

    def test_parallel_equals_serial(self):
        serial = full_posture()
        with runtime.configured(workers=3, backend="thread", min_parallel_work=1):
            parallel = full_posture()
        assert parallel == serial


class TestMergeWindows:
    @staticmethod
    def _windows():
        events = [(f"S{i % 13}", f"D{i % 7}", 1 + i % 3) for i in range(2000)]
        return [w for w, _ in window_stream(events, window_size=256)]

    def test_empty_input(self):
        assert merge_windows([]) == AssociativeArray.empty()

    def test_single_window_passthrough(self):
        wins = self._windows()[:1]
        assert merge_windows(wins) == wins[0]

    def test_aggregate_preserves_totals(self):
        wins = self._windows()
        total = merge_windows(wins)
        assert int(total.sum()) == sum(int(w.sum()) for w in wins)

    def test_parallel_equals_serial(self):
        wins = self._windows()
        serial = merge_windows(wins)
        with runtime.configured(workers=4, backend="thread", min_parallel_work=1):
            parallel = merge_windows(wins)
        assert parallel == serial
