"""Serial vs parallel engine equality — the bit-identical guarantee.

Every routed kernel (mxm, mxv, element-wise, coalesce) must return exactly
the same matrix under ``runtime.configure(workers=N)`` as on the serial path:
same indptr, same indices, same data bits — float rounding included, because
blocked execution preserves the serial per-row term order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import runtime
from repro.assoc.semiring import (
    LOR_LAND,
    MIN_MONOID,
    MIN_PLUS,
    PLUS_PAIR,
    PLUS_TIMES,
)
from repro.assoc.sparse import CSRMatrix, coalesce


@pytest.fixture(autouse=True)
def _pristine_runtime():
    runtime.reset()
    yield
    runtime.reset()


def parallel_cfg(**overrides):
    kwargs = dict(workers=3, backend="thread", min_parallel_work=1, block_rows=2)
    kwargs.update(overrides)
    return runtime.configured(**kwargs)


def dense_pair_strategy(max_n: int = 10):
    return st.tuples(
        st.integers(2, max_n), st.integers(2, max_n), st.integers(2, max_n),
        st.integers(0, 2**31),
    ).map(
        lambda t: (
            np.random.default_rng(t[3]).integers(0, 3, size=(t[0], t[1])),
            np.random.default_rng(t[3] + 1).integers(0, 3, size=(t[1], t[2])),
        )
    )


class TestPropertyEquality:
    @given(dense_pair_strategy())
    @settings(max_examples=40, deadline=None)
    def test_mxm_bit_identical(self, pair):
        a = CSRMatrix.from_dense(pair[0])
        b = CSRMatrix.from_dense(pair[1])
        for semiring in (PLUS_TIMES, MIN_PLUS, LOR_LAND, PLUS_PAIR):
            serial = a.mxm(b, semiring)
            with parallel_cfg():
                parallel = a.mxm(b, semiring)
            assert parallel == serial
            assert parallel.dtype == serial.dtype

    @given(dense_pair_strategy())
    @settings(max_examples=30, deadline=None)
    def test_float_mxm_bit_identical(self, pair):
        """Float data: term order (hence rounding) must match exactly."""
        a = CSRMatrix.from_dense(pair[0] * 0.137)
        b = CSRMatrix.from_dense(pair[1] * 0.731)
        serial = a.mxm(b, PLUS_TIMES)
        with parallel_cfg():
            parallel = a.mxm(b, PLUS_TIMES)
        assert parallel == serial

    @given(dense_pair_strategy())
    @settings(max_examples=30, deadline=None)
    def test_ewise_and_mxv_bit_identical(self, pair):
        a = CSRMatrix.from_dense(pair[0])
        b = CSRMatrix.from_dense(np.random.default_rng(int(pair[1][0, 0]) + 7).integers(0, 3, pair[0].shape))
        x = np.arange(a.shape[1], dtype=np.float64)
        serial_union = a.ewise_union(b)
        serial_intersect = a.ewise_intersect(b, PLUS_TIMES.mult)
        serial_mxv = a.mxv(x, MIN_PLUS)
        with parallel_cfg():
            assert a.ewise_union(b) == serial_union
            assert a.ewise_intersect(b, PLUS_TIMES.mult) == serial_intersect
            assert np.array_equal(a.mxv(x, MIN_PLUS), serial_mxv)


class TestCoalesceParallel:
    def test_empty_triples(self):
        with parallel_cfg():
            r, c, v = coalesce(np.asarray([]), np.asarray([]), np.asarray([]), (5, 5))
        assert r.size == c.size == v.size == 0

    def test_all_duplicate_coordinates(self):
        """Every triple lands on one cell: a single entry must survive."""
        n = 5000
        rows = np.full(n, 3, dtype=np.int64)
        cols = np.full(n, 4, dtype=np.int64)
        vals = np.arange(n, dtype=np.int64)
        serial = coalesce(rows, cols, vals, (8, 8))
        with parallel_cfg():
            parallel = coalesce(rows, cols, vals, (8, 8))
        for s, p in zip(serial, parallel):
            assert np.array_equal(s, p)
        assert parallel[0].tolist() == [3]
        assert parallel[2].tolist() == [n * (n - 1) // 2]

    def test_all_duplicates_non_commutative_order(self):
        """Float accumulation order is preserved exactly across blocks."""
        n = 4097
        rows = np.repeat(np.arange(7, dtype=np.int64), n)
        cols = np.zeros(7 * n, dtype=np.int64)
        vals = np.random.default_rng(0).random(7 * n) * 1e-3 + 1.0
        serial = coalesce(rows, cols, vals, (7, 3))
        with parallel_cfg():
            parallel = coalesce(rows, cols, vals, (7, 3))
        assert np.array_equal(serial[2], parallel[2])  # bitwise, not approx

    @given(st.integers(0, 2**31), st.integers(1, 40), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_random_triples_property(self, seed, n_triples, n_rows):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, n_rows, n_triples)
        cols = rng.integers(0, n_rows, n_triples)
        vals = rng.random(n_triples)
        serial = coalesce(rows, cols, vals, (n_rows, n_rows), MIN_MONOID)
        with parallel_cfg():
            parallel = coalesce(rows, cols, vals, (n_rows, n_rows), MIN_MONOID)
        for s, p in zip(serial, parallel):
            assert np.array_equal(s, p)


class TestProcessBackend:
    def test_mxm_bit_identical_across_processes(self):
        rng = np.random.default_rng(5)
        a = CSRMatrix.from_dense(rng.integers(0, 3, (40, 40)))
        b = CSRMatrix.from_dense(rng.integers(0, 3, (40, 40)))
        serial = a.mxm(b, MIN_PLUS)
        with parallel_cfg(backend="process", workers=2, block_rows=11):
            parallel = a.mxm(b, MIN_PLUS)
        assert parallel == serial

    def test_builtin_semirings_pickle(self):
        import pickle

        from repro.assoc.semiring import MONOIDS, SEMIRINGS

        for s in SEMIRINGS.values():
            assert pickle.loads(pickle.dumps(s)).name == s.name
        for m in MONOIDS.values():
            assert pickle.loads(pickle.dumps(m)).name == m.name
