"""Shared-memory operand plane: refs, leases, lifecycle, and kernel identity.

The lifecycle tests assert the ISSUE 8 contract directly: every segment the
plane creates is unlinked after normal completion, after a raising task,
after a worker crash, and after pool teardown — observed through the
``/dev/shm`` directory (the segments carry a recognisable ``repro-shm-``
prefix) with a reattach-failure fallback for hosts without it.
"""

import os
import pathlib

import numpy as np
import pytest

from repro import runtime
from repro.assoc import blocked
from repro.assoc import sparse as _sparse
from repro.assoc.semiring import MIN_PLUS, PLUS_MONOID, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.errors import SharedMemoryError, WorkerCrashError
from repro.runtime import shm
from repro.runtime.executor import ProcessExecutor

_DEV_SHM = pathlib.Path("/dev/shm")


@pytest.fixture(autouse=True)
def _pristine_runtime():
    runtime.reset()
    yield
    runtime.reset()
    runtime.shutdown_executors()
    shm.detach_all()


def _segment_files() -> "set[str] | None":
    """Names under /dev/shm with our prefix, or None when unobservable."""
    if not _DEV_SHM.is_dir():
        return None
    return {p.name for p in _DEV_SHM.glob(f"{shm.SEGMENT_PREFIX}-*")}


def _assert_unlinked(names: "list[str]") -> None:
    """Every segment in *names* is gone: /dev/shm check plus reattach failure."""
    files = _segment_files()
    if files is not None:
        leaked = files.intersection(names)
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"
    from multiprocessing import shared_memory

    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)


def _rand_csr(rng, n, m, nnz):
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, m, nnz)
    vals = rng.standard_normal(nnz)
    return CSRMatrix.from_triples(rows, cols, vals, (n, m))


def _eq_csr(u: CSRMatrix, v: CSRMatrix) -> bool:
    return (
        u.shape == v.shape
        and u.data.dtype == v.data.dtype
        and np.array_equal(u.indptr, v.indptr)
        and np.array_equal(u.indices, v.indices)
        and np.array_equal(u.data, v.data)
    )


def _killer_mult(x, y):  # pragma: no cover - runs (briefly) in a pool worker
    os._exit(17)


class TestRefsAndLease:
    def test_export_attach_array_roundtrip(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        with shm.OperandLease() as lease:
            ref = lease.export_array(arr)
            assert ref.shape == (3, 4) and ref.nbytes == arr.nbytes
            view = shm.attach_array(ref)
            assert np.array_equal(view, arr)
            assert view.dtype == arr.dtype
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0, 0] = 99.0
        shm.detach_all()

    def test_export_attach_csr_roundtrip(self):
        rng = np.random.default_rng(7)
        a = _rand_csr(rng, 40, 30, 200)
        with shm.OperandLease() as lease:
            ref = lease.export_csr(a)
            back = shm.attach_csr(ref)
            assert _eq_csr(a, back)
            assert ref.nbytes == shm.csr_nbytes(a)
        shm.detach_all()

    def test_empty_array_exports(self):
        with shm.OperandLease() as lease:
            ref = lease.export_array(np.empty(0, dtype=np.int64))
            assert shm.attach_array(ref).size == 0
        shm.detach_all()

    def test_release_is_idempotent_and_final(self):
        lease = shm.OperandLease()
        ref = lease.export_array(np.ones(8))
        assert not lease.released
        lease.release()
        lease.release()  # second call is a no-op
        assert lease.released
        with pytest.raises(SharedMemoryError):
            lease.export_array(np.ones(8))
        _assert_unlinked([ref.name])

    def test_attach_after_release_names_the_segment(self):
        lease = shm.OperandLease()
        ref = lease.export_array(np.ones(4))
        lease.release()
        with pytest.raises(SharedMemoryError, match=ref.name):
            shm.attach_array(ref)

    def test_live_segment_names_and_release_all(self):
        lease = shm.OperandLease()
        ref = lease.export_array(np.ones(16))
        assert ref.name in shm.live_segment_names()
        freed = shm.release_all()
        assert freed >= 1
        assert shm.live_segment_names() == []
        _assert_unlinked([ref.name])

    def test_lease_releases_on_exception(self):
        names = []
        with pytest.raises(RuntimeError):
            with shm.OperandLease() as lease:
                names.append(lease.export_array(np.ones(32)).name)
                raise RuntimeError("mid-export failure")
        assert shm.live_segment_names() == []
        _assert_unlinked(names)

    def test_attachments_are_cached_per_process(self):
        with shm.OperandLease() as lease:
            ref = lease.export_array(np.arange(6))
            seg1 = shm._attach_segment(ref.name)
            seg2 = shm._attach_segment(ref.name)
            assert seg1 is seg2
        assert shm.detach_all() >= 1


class TestKernelLifecycle:
    """Segments never outlive the kernel call that exported them."""

    def _shm_cfg(self):
        return runtime.configure(
            workers=2, backend="process", min_parallel_work=1, shm_min_bytes=0, block_rows=32
        )

    def test_unlinked_after_normal_completion(self):
        cfg = self._shm_cfg()
        rng = np.random.default_rng(11)
        a = _rand_csr(rng, 100, 100, 1500)
        b = _rand_csr(rng, 100, 100, 1500)
        before = _segment_files()
        expected = a._mxm_serial(b, PLUS_TIMES)
        got = blocked.parallel_mxm(a, b, PLUS_TIMES, cfg)
        assert _eq_csr(expected, got)
        assert shm.live_segment_names() == []
        after = _segment_files()
        if before is not None:
            assert after == before, "kernel left segments behind in /dev/shm"

    def test_unlinked_after_raising_task(self, monkeypatch):
        cfg = self._shm_cfg()
        rng = np.random.default_rng(12)
        a = _rand_csr(rng, 100, 100, 1500)
        b = _rand_csr(rng, 100, 100, 1500)

        def boom(self, fn, items, on_progress=None, label=""):
            raise RuntimeError("task exploded before completion")

        monkeypatch.setattr(ProcessExecutor, "map", boom)
        before = _segment_files()
        with pytest.raises(RuntimeError, match="exploded"):
            blocked.parallel_mxm(a, b, PLUS_TIMES, cfg)
        assert shm.live_segment_names() == []
        after = _segment_files()
        if before is not None:
            assert after == before

    def test_unlinked_after_worker_crash(self):
        cfg = self._shm_cfg()
        rng = np.random.default_rng(13)
        a = _rand_csr(rng, 100, 100, 1500)
        b = _rand_csr(rng, 100, 100, 1500)
        before = _segment_files()
        with pytest.raises(WorkerCrashError, match="parallel_ewise_intersect"):
            blocked.parallel_ewise_intersect(a, b, _killer_mult, cfg)
        assert shm.live_segment_names() == []
        after = _segment_files()
        if before is not None:
            assert after == before
        # the evicted pool was rebuilt: the same dispatch now succeeds
        expected = a._ewise_intersect_serial(b, np.multiply)
        assert _eq_csr(expected, blocked.parallel_ewise_intersect(a, b, np.multiply, cfg))

    def test_unlinked_after_pool_teardown(self):
        self._shm_cfg()
        lease = shm.OperandLease()  # abandoned on purpose (no with-block)
        ref = lease.export_array(np.ones(1024))
        assert shm.live_segment_names() == [ref.name]
        runtime.shutdown_executors()
        assert shm.live_segment_names() == []
        _assert_unlinked([ref.name])


class TestDispatchGating:
    def test_small_operands_keep_pickle_path(self, monkeypatch):
        exports = []
        real = shm.OperandLease.export_array

        def spy(self, arr):
            exports.append(int(arr.nbytes))
            return real(self, arr)

        monkeypatch.setattr(shm.OperandLease, "export_array", spy)
        rng = np.random.default_rng(21)
        a = _rand_csr(rng, 100, 100, 1500)
        b = _rand_csr(rng, 100, 100, 1500)
        expected = a._mxm_serial(b, PLUS_TIMES)
        with runtime.configured(
            workers=2, backend="process", min_parallel_work=1, shm_min_bytes=1 << 40
        ) as cfg:
            below = blocked.parallel_mxm(a, b, PLUS_TIMES, cfg)
        assert exports == [], "operands below the threshold must not be exported"
        with runtime.configured(
            workers=2, backend="process", min_parallel_work=1, shm_min_bytes=0
        ) as cfg:
            above = blocked.parallel_mxm(a, b, PLUS_TIMES, cfg)
        assert exports, "operands above the threshold must go through segments"
        assert _eq_csr(expected, below)
        assert _eq_csr(expected, above)

    def test_thread_backend_never_uses_shm(self, monkeypatch):
        exports = []
        monkeypatch.setattr(
            shm.OperandLease,
            "export_array",
            lambda self, arr: exports.append(1),
        )
        rng = np.random.default_rng(22)
        a = _rand_csr(rng, 100, 100, 1500)
        b = _rand_csr(rng, 100, 100, 1500)
        with runtime.configured(
            workers=2, backend="thread", min_parallel_work=1, shm_min_bytes=0
        ) as cfg:
            blocked.parallel_mxm(a, b, PLUS_TIMES, cfg)
        assert exports == []


class TestKernelIdentity:
    """Every kernel is bit-identical over the shared-memory path."""

    @pytest.fixture()
    def shm_cfg(self):
        return runtime.configure(
            workers=2, backend="process", min_parallel_work=1, shm_min_bytes=0, block_rows=48
        )

    @pytest.fixture()
    def operands(self):
        rng = np.random.default_rng(33)
        return {
            "a": _rand_csr(rng, 150, 150, 2500),
            "b": _rand_csr(rng, 150, 150, 2500),
            "mask": _rand_csr(rng, 150, 150, 900),
            "x": rng.standard_normal(150),
            "allow": rng.integers(0, 2, 150).astype(bool),
        }

    def test_mxm_and_mxv(self, shm_cfg, operands):
        a, b, x = operands["a"], operands["b"], operands["x"]
        for semiring in (PLUS_TIMES, MIN_PLUS):
            assert _eq_csr(
                a._mxm_serial(b, semiring), blocked.parallel_mxm(a, b, semiring, shm_cfg)
            )
            serial_v = a._mxv_serial(x, semiring)
            shm_v = blocked.parallel_mxv(a, x, semiring, shm_cfg)
            assert np.array_equal(serial_v, shm_v) and serial_v.dtype == shm_v.dtype

    def test_ewise_and_union_all(self, shm_cfg, operands):
        a, b, mask = operands["a"], operands["b"], operands["mask"]
        assert _eq_csr(
            a._ewise_union_serial(b, PLUS_MONOID),
            blocked.parallel_ewise_union(a, b, PLUS_MONOID, shm_cfg),
        )
        assert _eq_csr(
            a._ewise_intersect_serial(b, np.multiply),
            blocked.parallel_ewise_intersect(a, b, np.multiply, shm_cfg),
        )
        assert _eq_csr(
            _sparse._union_all_serial([a, b, mask], PLUS_MONOID, mask, True),
            blocked.parallel_union_all([a, b, mask], PLUS_MONOID, mask, True, shm_cfg),
        )

    def test_masked_kernels(self, shm_cfg, operands):
        a, b, mask = operands["a"], operands["b"], operands["mask"]
        x, allow = operands["x"], operands["allow"]
        out_dtype = _sparse._mxm_out_dtype(a, b, PLUS_TIMES.mult)
        assert _eq_csr(
            _sparse._masked_mxm_serial(a, b, PLUS_TIMES, mask, out_dtype),
            blocked.parallel_masked_mxm(a, b, PLUS_TIMES, mask, shm_cfg),
        )
        serial_v = _sparse._masked_mxv_serial(a, x, PLUS_TIMES, allow)
        shm_v = blocked.parallel_masked_mxv(a, x, PLUS_TIMES, allow, shm_cfg)
        assert np.array_equal(serial_v, shm_v) and serial_v.dtype == shm_v.dtype
        assert _eq_csr(
            _sparse._masked_intersect_serial(a, b, np.multiply, mask, False),
            blocked.parallel_masked_intersect(a, b, np.multiply, mask, False, shm_cfg),
        )

    def test_coalesce(self, shm_cfg):
        rng = np.random.default_rng(34)
        rows = rng.integers(0, 150, 6000)
        cols = rng.integers(0, 150, 6000)
        vals = rng.standard_normal(6000)
        serial = _sparse._coalesce_core(rows, cols, vals, (150, 150), PLUS_MONOID)
        parallel = blocked.parallel_coalesce(rows, cols, vals, (150, 150), PLUS_MONOID, shm_cfg)
        for s_arr, p_arr in zip(serial, parallel):
            assert np.array_equal(s_arr, p_arr) and s_arr.dtype == p_arr.dtype

    def test_no_segments_leak_across_the_battery(self, shm_cfg, operands):
        a, b = operands["a"], operands["b"]
        for _ in range(3):
            blocked.parallel_mxm(a, b, PLUS_TIMES, shm_cfg)
            blocked.parallel_ewise_union(a, b, PLUS_MONOID, shm_cfg)
        assert shm.live_segment_names() == []
        files = _segment_files()
        if files is not None:
            mine = {n for n in files if f"-{os.getpid()}-" in n}
            assert mine == set(), f"leaked: {sorted(mine)}"
