"""Runtime configuration, executors, heuristics, and host detection."""

import os

import pytest

from repro import runtime
from repro.errors import RuntimeConfigError, WorkerCrashError
from repro.runtime.executor import MIN_NNZ_PER_BLOCK, SerialExecutor


@pytest.fixture(autouse=True)
def _pristine_runtime():
    runtime.reset()
    yield
    runtime.reset()
    runtime.shutdown_executors()


class TestConfig:
    def test_default_is_serial(self):
        cfg = runtime.get_config()
        assert cfg.workers == 1
        assert not cfg.parallel
        assert cfg.resolved_backend() == "serial"

    def test_configure_merges_fields(self):
        runtime.configure(workers=3)
        runtime.configure(backend="thread")
        cfg = runtime.get_config()
        assert cfg.workers == 3 and cfg.backend == "thread"

    def test_configure_block_rows_none_means_heuristic(self):
        runtime.configure(block_rows=64)
        assert runtime.get_config().block_rows == 64
        runtime.configure(block_rows=None)
        assert runtime.get_config().block_rows is None

    def test_configured_restores_previous(self):
        runtime.configure(workers=2)
        with runtime.configured(workers=5, backend="process"):
            assert runtime.get_config().workers == 5
        cfg = runtime.get_config()
        assert cfg.workers == 2 and cfg.backend == "auto"

    def test_reset(self):
        runtime.configure(workers=9, backend="thread")
        runtime.reset()
        assert runtime.get_config() == runtime.RuntimeConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -2},
            {"block_rows": 0},
            {"backend": "gpu"},
            {"min_parallel_work": -1},
            {"shm_min_bytes": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(RuntimeConfigError):
            runtime.RuntimeConfig(**kwargs)

    def test_use_shm_gate(self):
        """shm needs a multi-worker process backend and heavy enough operands."""
        cfg = runtime.RuntimeConfig(workers=2, backend="process", shm_min_bytes=1000)
        assert cfg.use_shm(1000)
        assert not cfg.use_shm(999)
        assert not runtime.RuntimeConfig(workers=2, backend="thread", shm_min_bytes=0).use_shm(10**9)
        assert not runtime.RuntimeConfig(workers=1, backend="process", shm_min_bytes=0).use_shm(10**9)
        disabled = runtime.RuntimeConfig(workers=2, backend="process", shm_min_bytes=None)
        assert not disabled.use_shm(10**9)

    def test_configure_shm_min_bytes(self):
        runtime.configure(shm_min_bytes=123)
        assert runtime.get_config().shm_min_bytes == 123
        runtime.configure(shm_min_bytes=None)
        assert runtime.get_config().shm_min_bytes is None
        runtime.configure(workers=2)  # unrelated update keeps the sentinel
        assert runtime.get_config().shm_min_bytes is None

    def test_auto_backend_resolution(self):
        assert runtime.RuntimeConfig(workers=1).resolved_backend() == "serial"
        assert runtime.RuntimeConfig(workers=2).resolved_backend() == "thread"
        assert runtime.RuntimeConfig(workers=2, backend="process").resolved_backend() == "process"

    def test_should_parallelize_threshold(self):
        cfg = runtime.RuntimeConfig(workers=4, min_parallel_work=100)
        assert cfg.should_parallelize(100)
        assert not cfg.should_parallelize(99)
        assert not runtime.RuntimeConfig(workers=1).should_parallelize(10**9)

    def test_parallel_config_gate(self):
        assert runtime.parallel_config(10**9) is None  # serial default
        runtime.configure(workers=4, min_parallel_work=10)
        assert runtime.parallel_config(10) is not None
        assert runtime.parallel_config(9) is None

    def test_serial_region_blocks_dispatch(self):
        runtime.configure(workers=4, min_parallel_work=1)
        assert runtime.parallel_config(100) is not None
        with runtime.serial_region():
            assert runtime.in_serial_region()
            assert runtime.parallel_config(100) is None
        assert not runtime.in_serial_region()


class TestExecutors:
    def test_serial_map_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_map_preserves_order(self, backend):
        cfg = runtime.RuntimeConfig(workers=2, backend=backend)
        ex = runtime.get_executor(cfg)
        assert ex.map(abs, [-5, 3, -1, 0]) == [5, 3, 1, 0]

    def test_get_executor_serial_for_one_worker(self):
        cfg = runtime.RuntimeConfig(workers=1, backend="thread")
        assert runtime.get_executor(cfg) is runtime.get_executor(cfg)
        assert runtime.get_executor(cfg).name == "serial"

    def test_get_executor_caches_pools(self):
        cfg = runtime.RuntimeConfig(workers=2, backend="thread")
        assert runtime.get_executor(cfg) is runtime.get_executor(cfg)

    def test_parallel_map_single_item_stays_inline(self):
        calls = runtime.parallel_map(lambda x: x + 1, [41])
        assert calls == [42]

    def test_parallel_map_uses_active_config(self):
        runtime.configure(workers=2, backend="thread")
        assert runtime.parallel_map(str, [1, 2, 3]) == ["1", "2", "3"]

    def test_tasks_run_in_serial_region(self):
        runtime.configure(workers=2, backend="thread")
        flags = runtime.parallel_map(lambda _: runtime.in_serial_region(), [0, 1, 2])
        assert flags == [True, True, True]

    def test_nested_parallel_map_stays_serial(self):
        """parallel_map from inside a worker must not re-enter the pool."""
        runtime.configure(workers=2, backend="thread")

        def outer(_):
            return runtime.parallel_map(lambda x: x + 1, [1, 2, 3])

        assert runtime.parallel_map(outer, [0, 1, 2, 3]) == [[2, 3, 4]] * 4


class TestPoolInvalidation:
    """configure() must never leave a stale cached pool behind (ISSUE 8)."""

    def test_reconfigure_drains_and_rebuilds_pool(self):
        runtime.configure(workers=2, backend="thread")
        old = runtime.get_executor()
        assert old.workers == 2
        runtime.configure(workers=3)
        new = runtime.get_executor()
        assert new is not old
        assert new.workers == 3
        assert old._pool._shutdown, "superseded pool must be drained, not leaked"
        assert new.map(abs, [-1, -2]) == [1, 2]

    def test_reconfigure_same_shape_keeps_pool_warm(self):
        runtime.configure(workers=2, backend="thread")
        old = runtime.get_executor()
        runtime.configure(min_parallel_work=1)  # no (backend, workers) change
        assert runtime.get_executor() is old

    def test_other_backend_pools_stay_warm(self):
        runtime.configure(workers=2, backend="thread")
        thread_pool = runtime.get_executor()
        runtime.configure(backend="process")
        runtime.get_executor()
        runtime.configure(workers=3)  # drains only the stale ("process", 2) pool
        runtime.configure(backend="thread", workers=2)
        assert runtime.get_executor() is thread_pool
        assert not thread_pool._pool._shutdown


class TestWorkerCrash:
    """A dying worker must surface as a named error and never poison the
    executor cache (ISSUE 8)."""

    def test_process_crash_raises_named_error(self):
        runtime.configure(workers=2, backend="process", min_parallel_work=1)
        with pytest.raises(WorkerCrashError) as err:
            runtime.parallel_map(os._exit, [13, 13], label="crash probe (block 0-2)")
        assert "crash probe (block 0-2)" in str(err.value)
        assert err.value.label == "crash probe (block 0-2)"

    def test_pool_rebuilt_and_usable_after_crash_on_all_backends(self):
        runtime.configure(workers=2, backend="process", min_parallel_work=1)
        broken = runtime.get_executor()
        with pytest.raises(WorkerCrashError):
            runtime.parallel_map(os._exit, [13, 13])
        rebuilt = runtime.get_executor()
        assert rebuilt is not broken, "broken pool must be evicted from the cache"
        assert runtime.parallel_map(abs, [-1, -2, -3]) == [1, 2, 3]
        for backend in ("serial", "thread", "process"):
            runtime.configure(backend=backend)
            assert runtime.parallel_map(abs, [-4, -5]) == [4, 5]

    def test_async_submit_crash_raises_named_error_then_recovers(self):
        import asyncio

        runtime.configure(workers=2, backend="process")

        async def main():
            with pytest.raises(WorkerCrashError) as err:
                await runtime.async_submit(os._exit, 13, label="spec 3 ('ddos')")
            assert err.value.label == "spec 3 ('ddos')"
            assert await runtime.async_submit(abs, -7) == 7  # fresh pool

        asyncio.run(main())


class TestProgressUnderCrash:
    """Progress accounting must not drift when rebuild retries are in flight
    (ISSUE 9 satellite): ``done == total`` may only be reported once every
    task genuinely completed — a crashed task is a retry, not progress."""

    def test_crashed_tasks_never_report_full_progress(self):
        from repro.obs import metrics as obs_metrics

        runtime.configure(workers=2, backend="process", min_parallel_work=1)
        crashed_before = obs_metrics.counter("runtime.tasks_crashed").value
        calls: list[tuple[int, int]] = []
        with pytest.raises(WorkerCrashError):
            runtime.parallel_map(
                os._exit, [13, 13], on_progress=lambda d, t: calls.append((d, t))
            )
        assert all(done < total for done, total in calls), (
            f"progress reported completion for crashed tasks: {calls}"
        )
        assert obs_metrics.counter("runtime.tasks_crashed").value > crashed_before

    def test_progress_still_reaches_total_on_success(self):
        runtime.configure(workers=2, backend="thread", min_parallel_work=1)
        calls: list[tuple[int, int]] = []
        runtime.parallel_map(abs, [-1, -2, -3], on_progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (3, 3)
        assert [d for d, _ in calls] == [1, 2, 3]


class TestShutdownFlushesTrace:
    """shutdown_executors() must export-close the trace ring, not drop it."""

    def test_buffered_spans_land_in_the_sink(self, tmp_path):
        import json

        from repro.obs import trace as obs_trace

        sink = tmp_path / "teardown_trace.json"
        obs_trace.enable(sink=sink)
        try:
            runtime.configure(
                workers=2, backend="thread", min_parallel_work=1, tracing=True
            )
            runtime.parallel_map(abs, [-1, -2])
            assert len(obs_trace.get_tracer()) > 0
            runtime.shutdown_executors()
            assert sink.exists(), "shutdown dropped the buffered spans"
            document = json.loads(sink.read_text())
            names = {ev["name"] for ev in document["traceEvents"]}
            assert "runtime.map" in names
        finally:
            obs_trace.disable(flush=False)
            obs_trace._sink = None


class TestHeuristics:
    def test_explicit_request_wins(self):
        assert runtime.choose_block_rows(1000, 10**6, workers=4, requested=17) == 17

    def test_request_clamped_to_matrix(self):
        assert runtime.choose_block_rows(10, 100, workers=4, requested=500) == 10

    def test_zero_rows(self):
        assert runtime.choose_block_rows(0, 0, workers=4) == 1

    def test_dense_matrix_splits_into_blocks(self):
        block = runtime.choose_block_rows(1024, 10**6, workers=4)
        assert 1 <= block < 1024
        n_blocks = -(-1024 // block)
        assert n_blocks > 1

    def test_sparse_matrix_keeps_meaty_blocks(self):
        """Very sparse rows widen blocks to keep nnz per block above the floor."""
        n_rows, nnz = 10_000, 2_000
        block = runtime.choose_block_rows(n_rows, nnz, workers=4)
        assert block * nnz / n_rows >= MIN_NNZ_PER_BLOCK * 0.5


class TestBackends:
    def test_cpu_count_positive(self):
        assert runtime.cpu_count() >= 1

    def test_recommended_workers_bounded(self):
        assert 1 <= runtime.recommended_workers() <= 8

    def test_detect_summary(self):
        info = runtime.detect()
        assert info.cpu_count == runtime.cpu_count()
        assert isinstance(info.scipy_available, bool)
        assert "CPU" in info.describe()
