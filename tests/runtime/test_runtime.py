"""Runtime configuration, executors, heuristics, and host detection."""

import pytest

from repro import runtime
from repro.errors import RuntimeConfigError
from repro.runtime.executor import MIN_NNZ_PER_BLOCK, SerialExecutor


@pytest.fixture(autouse=True)
def _pristine_runtime():
    runtime.reset()
    yield
    runtime.reset()
    runtime.shutdown_executors()


class TestConfig:
    def test_default_is_serial(self):
        cfg = runtime.get_config()
        assert cfg.workers == 1
        assert not cfg.parallel
        assert cfg.resolved_backend() == "serial"

    def test_configure_merges_fields(self):
        runtime.configure(workers=3)
        runtime.configure(backend="thread")
        cfg = runtime.get_config()
        assert cfg.workers == 3 and cfg.backend == "thread"

    def test_configure_block_rows_none_means_heuristic(self):
        runtime.configure(block_rows=64)
        assert runtime.get_config().block_rows == 64
        runtime.configure(block_rows=None)
        assert runtime.get_config().block_rows is None

    def test_configured_restores_previous(self):
        runtime.configure(workers=2)
        with runtime.configured(workers=5, backend="process"):
            assert runtime.get_config().workers == 5
        cfg = runtime.get_config()
        assert cfg.workers == 2 and cfg.backend == "auto"

    def test_reset(self):
        runtime.configure(workers=9, backend="thread")
        runtime.reset()
        assert runtime.get_config() == runtime.RuntimeConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -2},
            {"block_rows": 0},
            {"backend": "gpu"},
            {"min_parallel_work": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(RuntimeConfigError):
            runtime.RuntimeConfig(**kwargs)

    def test_auto_backend_resolution(self):
        assert runtime.RuntimeConfig(workers=1).resolved_backend() == "serial"
        assert runtime.RuntimeConfig(workers=2).resolved_backend() == "thread"
        assert runtime.RuntimeConfig(workers=2, backend="process").resolved_backend() == "process"

    def test_should_parallelize_threshold(self):
        cfg = runtime.RuntimeConfig(workers=4, min_parallel_work=100)
        assert cfg.should_parallelize(100)
        assert not cfg.should_parallelize(99)
        assert not runtime.RuntimeConfig(workers=1).should_parallelize(10**9)

    def test_parallel_config_gate(self):
        assert runtime.parallel_config(10**9) is None  # serial default
        runtime.configure(workers=4, min_parallel_work=10)
        assert runtime.parallel_config(10) is not None
        assert runtime.parallel_config(9) is None

    def test_serial_region_blocks_dispatch(self):
        runtime.configure(workers=4, min_parallel_work=1)
        assert runtime.parallel_config(100) is not None
        with runtime.serial_region():
            assert runtime.in_serial_region()
            assert runtime.parallel_config(100) is None
        assert not runtime.in_serial_region()


class TestExecutors:
    def test_serial_map_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_map_preserves_order(self, backend):
        cfg = runtime.RuntimeConfig(workers=2, backend=backend)
        ex = runtime.get_executor(cfg)
        assert ex.map(abs, [-5, 3, -1, 0]) == [5, 3, 1, 0]

    def test_get_executor_serial_for_one_worker(self):
        cfg = runtime.RuntimeConfig(workers=1, backend="thread")
        assert runtime.get_executor(cfg) is runtime.get_executor(cfg)
        assert runtime.get_executor(cfg).name == "serial"

    def test_get_executor_caches_pools(self):
        cfg = runtime.RuntimeConfig(workers=2, backend="thread")
        assert runtime.get_executor(cfg) is runtime.get_executor(cfg)

    def test_parallel_map_single_item_stays_inline(self):
        calls = runtime.parallel_map(lambda x: x + 1, [41])
        assert calls == [42]

    def test_parallel_map_uses_active_config(self):
        runtime.configure(workers=2, backend="thread")
        assert runtime.parallel_map(str, [1, 2, 3]) == ["1", "2", "3"]

    def test_tasks_run_in_serial_region(self):
        runtime.configure(workers=2, backend="thread")
        flags = runtime.parallel_map(lambda _: runtime.in_serial_region(), [0, 1, 2])
        assert flags == [True, True, True]

    def test_nested_parallel_map_stays_serial(self):
        """parallel_map from inside a worker must not re-enter the pool."""
        runtime.configure(workers=2, backend="thread")

        def outer(_):
            return runtime.parallel_map(lambda x: x + 1, [1, 2, 3])

        assert runtime.parallel_map(outer, [0, 1, 2, 3]) == [[2, 3, 4]] * 4


class TestHeuristics:
    def test_explicit_request_wins(self):
        assert runtime.choose_block_rows(1000, 10**6, workers=4, requested=17) == 17

    def test_request_clamped_to_matrix(self):
        assert runtime.choose_block_rows(10, 100, workers=4, requested=500) == 10

    def test_zero_rows(self):
        assert runtime.choose_block_rows(0, 0, workers=4) == 1

    def test_dense_matrix_splits_into_blocks(self):
        block = runtime.choose_block_rows(1024, 10**6, workers=4)
        assert 1 <= block < 1024
        n_blocks = -(-1024 // block)
        assert n_blocks > 1

    def test_sparse_matrix_keeps_meaty_blocks(self):
        """Very sparse rows widen blocks to keep nnz per block above the floor."""
        n_rows, nnz = 10_000, 2_000
        block = runtime.choose_block_rows(n_rows, nnz, workers=4)
        assert block * nnz / n_rows >= MIN_NNZ_PER_BLOCK * 0.5


class TestBackends:
    def test_cpu_count_positive(self):
        assert runtime.cpu_count() >= 1

    def test_recommended_workers_bounded(self):
        assert 1 <= runtime.recommended_workers() <= 8

    def test_detect_summary(self):
        info = runtime.detect()
        assert info.cpu_count == runtime.cpu_count()
        assert isinstance(info.scipy_available, bool)
        assert "CPU" in info.describe()
