"""GDScript interpreter: semantics, node binding, lifecycle, error paths."""

import pytest

from repro.engine.inspector import set_export
from repro.engine.node import Label3D, Node3D
from repro.engine.tree import SceneTree
from repro.errors import GDScriptRuntimeError
from repro.gdscript.interpreter import GDScriptClass, compile_script


def run(source: str, node: Node3D | None = None):
    """Compile, instantiate on a node, ready it, return the instance."""
    node = node or Node3D("Main")
    inst = compile_script(source).instantiate(node)
    if node.parent is None and node.tree is None:
        SceneTree(node)
    return inst


class TestBasics:
    def test_hello_world(self):
        inst = run('func _ready():\n\tprint("Hello, world!")\n')
        assert inst.output_text() == "Hello, world!"

    def test_member_var_initialised_at_instantiate(self):
        inst = run("var x : int = 41\nfunc _ready():\n\tx += 1\n")
        assert inst.get_var("x") == 42

    def test_function_call_and_return(self):
        inst = run("func double(v):\n\treturn v * 2\n")
        assert inst.call("double", 21) == 42

    def test_call_between_script_functions(self):
        src = "func _ready():\n\thelper()\nfunc helper():\n\tprint(1)\n"
        assert run(src).output_text() == "1"

    def test_arity_checked(self):
        inst = run("func f(a):\n\treturn a\n")
        with pytest.raises(GDScriptRuntimeError, match="takes 1"):
            inst.call("f")

    def test_missing_function(self):
        inst = run("func f():\n\tpass\n")
        with pytest.raises(GDScriptRuntimeError, match="no function"):
            inst.call("ghost")

    def test_undefined_identifier(self):
        inst = run("func f():\n\treturn ghost\n")
        with pytest.raises(GDScriptRuntimeError, match="undefined identifier"):
            inst.call("f")

    def test_assign_undeclared_rejected(self):
        inst = run("func f():\n\tghost = 1\n")
        with pytest.raises(GDScriptRuntimeError, match="undeclared"):
            inst.call("f")


class TestControlFlow:
    def test_if_elif_else(self):
        src = (
            "func grade(x):\n"
            "\tif x > 2:\n\t\treturn \"big\"\n"
            "\telif x > 0:\n\t\treturn \"small\"\n"
            "\telse:\n\t\treturn \"zero\"\n"
        )
        inst = run(src)
        assert inst.call("grade", 5) == "big"
        assert inst.call("grade", 1) == "small"
        assert inst.call("grade", 0) == "zero"

    def test_for_over_array_and_range(self):
        src = (
            "func total():\n"
            "\tvar t : int = 0\n"
            "\tfor v in [1, 2, 3]:\n\t\tt += v\n"
            "\tfor i in range(4):\n\t\tt += i\n"
            "\treturn t\n"
        )
        assert run(src).call("total") == 12

    def test_for_over_dict_iterates_keys(self):
        src = (
            "func keys():\n"
            "\tvar out = []\n"
            '\tfor k in {"a": 1, "b": 2}:\n\t\tout += [k]\n'
            "\treturn out\n"
        )
        assert sorted(run(src).call("keys")) == ["a", "b"]

    def test_while_break_continue(self):
        src = (
            "func f():\n"
            "\tvar i : int = 0\n"
            "\tvar t : int = 0\n"
            "\twhile true:\n"
            "\t\ti += 1\n"
            "\t\tif i == 3:\n\t\t\tcontinue\n"
            "\t\tif i > 5:\n\t\t\tbreak\n"
            "\t\tt += i\n"
            "\treturn t\n"
        )
        assert run(src).call("f") == 1 + 2 + 4 + 5

    def test_match_literals_and_wildcard(self):
        src = (
            "func name(c):\n"
            "\tvar out = \"\"\n"
            "\tmatch c:\n"
            '\t\t0: out = "grey"\n'
            '\t\t1: out = "blue"\n'
            '\t\t_: out = "black"\n'
            "\treturn out\n"
        )
        inst = run(src)
        assert inst.call("name", 0) == "grey"
        assert inst.call("name", 1) == "blue"
        assert inst.call("name", 9) == "black"

    def test_match_first_arm_wins(self):
        src = (
            "func f(x):\n"
            "\tvar n : int = 0\n"
            "\tmatch x:\n"
            "\t\t1: n = 10\n"
            "\t\t_: n = 99\n"
            "\treturn n\n"
        )
        assert run(src).call("f", 1) == 10

    def test_infinite_loop_tripwire(self):
        inst = run("func f():\n\twhile true:\n\t\tpass\n")
        with pytest.raises(GDScriptRuntimeError, match="exceeded"):
            inst.call("f")


class TestOperators:
    def test_integer_division_truncates(self):
        inst = run("func f(a, b):\n\treturn a / b\n")
        assert inst.call("f", 7, 2) == 3
        assert inst.call("f", -7, 2) == -3  # GDScript truncates toward zero

    def test_float_division(self):
        inst = run("func f():\n\treturn 7.0 / 2\n")
        assert inst.call("f") == 3.5

    def test_division_by_zero(self):
        inst = run("func f():\n\treturn 1 / 0\n")
        with pytest.raises(GDScriptRuntimeError, match="zero"):
            inst.call("f")

    def test_string_concat_requires_str(self):
        good = run('func f(c):\n\treturn "n: " + str(c)\n')
        assert good.call("f", 2) == "n: 2"
        bad = run('func f(c):\n\treturn "n: " + c\n')
        with pytest.raises(GDScriptRuntimeError, match="str"):
            bad.call("f", 2)

    def test_array_concat_with_plus_equals(self):
        src = (
            "var acc = []\n"
            "func f():\n"
            "\tfor row in [[1, 2], [3]]:\n\t\tacc += row\n"
            "\treturn acc\n"
        )
        assert run(src).call("f") == [1, 2, 3]

    def test_str_of_bool_is_lowercase(self):
        inst = run("func f():\n\treturn str(true) + str(false)\n")
        assert inst.call("f") == "truefalse"

    def test_in_operator(self):
        inst = run('func f(d):\n\treturn "k" in d\n')
        assert inst.call("f", {"k": 1}) is True
        assert inst.call("f", {}) is False


class TestNodeBinding:
    def test_self_and_node_attributes(self):
        node = Node3D("Named")
        inst = run("func f():\n\treturn self.name\n", node)
        assert inst.call("f") == "Named"

    def test_bare_name_resolves_node_attribute(self):
        node = Node3D("Named")
        inst = run("func f():\n\treturn name\n", node)
        assert inst.call("f") == "Named"

    def test_node_path_resolution(self):
        root = Node3D("Root")
        data = root.add_child(Node3D("Data"))
        data.payload = {"k": "v"}  # type: ignore[attr-defined]
        holder = root.add_child(Node3D("Holder"))
        inst = compile_script('func f():\n\treturn $"../Data".payload["k"]\n').instantiate(holder)
        SceneTree(root)
        assert inst.call("f") == "v"

    def test_onready_runs_before_ready_body(self):
        root = Node3D("Root")
        root.add_child(Label3D("Target", text="hi"))
        holder = root.add_child(Node3D("Holder"))
        src = (
            '@onready var target = $"../Target"\n'
            "var seen = \"\"\n"
            "func _ready():\n\tseen = target.text\n"
        )
        inst = compile_script(src).instantiate(holder)
        SceneTree(root)
        assert inst.get_var("seen") == "hi"

    def test_export_var_set_via_inspector_visible_to_script(self):
        node = Node3D("N")
        src = "@export var target : Node3D\nfunc f():\n\treturn target.name\n"
        inst = compile_script(src).instantiate(node)
        set_export(node, "target", Node3D("Wired"))
        SceneTree(node)
        assert inst.call("f") == "Wired"

    def test_script_assignment_updates_export_view(self):
        node = Node3D("N")
        src = "@export var flag : bool = false\nfunc f():\n\tflag = true\n"
        inst = compile_script(src).instantiate(node)
        SceneTree(node)
        inst.call("f")
        assert node.exports["flag"].value is True

    def test_node_method_call(self):
        root = Node3D("Root")
        root.add_child(Node3D("A"))
        inst = compile_script("func f():\n\treturn len(get_children())\n").instantiate(root)
        SceneTree(root)
        assert inst.call("f") == 1

    def test_attribute_write_on_engine_node(self):
        root = Node3D("Root")
        root.add_child(Label3D("L"))
        src = "func f():\n\tget_child(0).text = \"WS1\"\n"
        inst = compile_script(src).instantiate(root)
        SceneTree(root)
        inst.call("f")
        assert root.get_child(0).text == "WS1"

    def test_private_attribute_blocked(self):
        inst = run("func f():\n\treturn self._children\n")
        with pytest.raises(GDScriptRuntimeError, match="private"):
            inst.call("f")

    def test_unknown_attribute_error(self):
        inst = run("func f():\n\treturn self.warp_drive\n")
        with pytest.raises(GDScriptRuntimeError, match="warp_drive"):
            inst.call("f")

    def test_preload_builtin(self):
        src = (
            'var mat = preload("res://Assets/Objects/pallet_material_r.tres")\n'
            "func f():\n\treturn mat.albedo\n"
        )
        assert run(src).call("f") == "red"

    def test_preload_unknown_path(self):
        with pytest.raises(Exception):
            run('var m = preload("res://ghost.tres")\n')

    def test_printerr_captured_separately(self):
        src = 'func _ready():\n\tprint("ok")\n\tprinterr("bad")\n'
        inst = run(src)
        assert inst.error_lines() == ["bad"]

    def test_process_hook(self):
        node = Node3D("N")
        src = "var ticks : int = 0\nfunc _process(delta):\n\tticks += 1\n"
        inst = compile_script(src).instantiate(node)
        tree = SceneTree(node)
        tree.run(5)
        assert inst.get_var("ticks") == 5

    def test_cross_node_script_method_call(self):
        root = Node3D("Root")
        worker = root.add_child(Node3D("Worker"))
        compile_script("func ping():\n\treturn 99\n").instantiate(worker)
        caller = root.add_child(Node3D("Caller"))
        inst = compile_script('func f():\n\treturn $"../Worker".ping()\n').instantiate(caller)
        SceneTree(root)
        assert inst.call("f") == 99

    def test_shared_class_independent_instances(self):
        cls = GDScriptClass.compile("var n : int = 0\nfunc bump():\n\tn += 1\n\treturn n\n")
        a, b = Node3D("A"), Node3D("B")
        ia, ib = cls.instantiate(a), cls.instantiate(b)
        root = Node3D("Root")
        root.add_child(a)
        root.add_child(b)
        SceneTree(root)
        assert ia.call("bump") == 1
        assert ia.call("bump") == 2
        assert ib.call("bump") == 1
