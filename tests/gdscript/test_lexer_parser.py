"""GDScript front end: tokenization and parsing."""

import pytest

from repro.errors import GDScriptSyntaxError
from repro.gdscript import ast
from repro.gdscript.lexer import tokenize
from repro.gdscript.parser import parse
from repro.gdscript.tokens import TokenType as T


def types(source):
    return [t.type for t in tokenize(source)]


class TestLexer:
    def test_simple_line(self):
        ts = types("var x = 1\n")
        assert ts == [T.VAR, T.IDENT, T.ASSIGN, T.INT, T.NEWLINE, T.EOF]

    def test_indent_dedent(self):
        src = "func f():\n\tvar a = 1\nvar b = 2\n"
        ts = types(src)
        assert T.INDENT in ts and T.DEDENT in ts
        assert ts.index(T.INDENT) < ts.index(T.DEDENT)

    def test_nested_dedents_at_eof(self):
        src = "func f():\n\tif true:\n\t\tpass\n"
        ts = types(src)
        assert ts.count(T.DEDENT) == 2

    def test_comments_and_blanks_skipped(self):
        ts = types("# comment\n\nvar x = 1  # trailing\n")
        assert T.IDENT in ts and ts.count(T.NEWLINE) == 1

    def test_string_escapes(self):
        toks = tokenize('var s = "a\\nb"')
        lit = next(t for t in toks if t.type is T.STRING)
        assert lit.value == "a\nb"

    def test_curly_quotes_from_pdf(self):
        toks = tokenize("print(‘‘Hello, world!’’)")
        lit = next(t for t in toks if t.type is T.STRING)
        assert lit.value == "Hello, world!"

    def test_unterminated_string(self):
        with pytest.raises(GDScriptSyntaxError, match="unterminated"):
            tokenize('var s = "oops')

    def test_nodepath_quoted(self):
        toks = tokenize('$"../Data"')
        assert toks[0].type is T.NODEPATH and toks[0].value == "../Data"

    def test_nodepath_bare(self):
        toks = tokenize("$Pallets/Pallet0")
        assert toks[0].value == "Pallets/Pallet0"

    def test_annotations(self):
        ts = types("@export var x : int = 0\n@onready var y = 1\n")
        assert T.AT_EXPORT in ts and T.AT_ONREADY in ts

    def test_unknown_annotation(self):
        with pytest.raises(GDScriptSyntaxError, match="@tool"):
            tokenize("@tool\n")

    def test_numbers(self):
        toks = tokenize("1 2.5 300")
        assert [t.value for t in toks[:3]] == [1, 2.5, 300]

    def test_operators_two_char(self):
        ts = types("a += 1\nb == c\nd != e\nf <= g\n")
        assert T.PLUS_ASSIGN in ts and T.EQ in ts and T.NE in ts and T.LE in ts

    def test_multiline_brackets_continue_statement(self):
        src = "var a = [\n\t1,\n\t2,\n]\n"
        ts = types(src)
        assert ts.count(T.NEWLINE) == 1  # only after the closing bracket
        assert T.INDENT not in ts

    def test_unexpected_character(self):
        with pytest.raises(GDScriptSyntaxError, match="unexpected"):
            tokenize("var x = `bad`")

    def test_inconsistent_dedent(self):
        src = "func f():\n\t\tpass\n\tpass\n"
        with pytest.raises(GDScriptSyntaxError, match="dedent"):
            tokenize(src)

    def test_positions_recorded(self):
        toks = tokenize("var x = 1")
        assert toks[0].line == 1 and toks[0].column == 1
        assert toks[1].column == 5


class TestParserTopLevel:
    def test_extends(self):
        script = parse("extends Node3D\n")
        assert script.extends == "Node3D"

    def test_member_vars(self):
        src = (
            "@export var y_axis : Node3D\n"
            "@onready var data = $\"../Data\"\n"
            "var plain : Array = []\n"
        )
        script = parse(src)
        assert [m.name for m in script.members] == ["y_axis", "data", "plain"]
        assert script.members[0].export and script.members[1].onready
        assert script.members[0].type_hint == "Node3D"
        assert isinstance(script.members[1].initializer, ast.NodePath)

    def test_functions_with_params(self):
        script = parse("func add(a, b):\n\treturn a + b\n")
        fn = script.function("add")
        assert fn.params == ["a", "b"]
        assert isinstance(fn.body[0], ast.Return)

    def test_typed_params_and_return(self):
        script = parse("func f(a : int) -> int:\n\treturn a\n")
        assert script.function("f") is not None

    def test_unexpected_top_level(self):
        with pytest.raises(GDScriptSyntaxError, match="top level"):
            parse("1 + 1\n")


class TestParserStatements:
    def body(self, stmts: str):
        indented = "\n".join("\t" + line for line in stmts.splitlines())
        return parse(f"func f():\n{indented}\n").function("f").body

    def test_if_elif_else(self):
        body = self.body("if a:\n\tpass\nelif b:\n\tpass\nelse:\n\tpass")
        stmt = body[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.branches) == 2 and stmt.else_body

    def test_for_and_while(self):
        body = self.body("for i in range(3):\n\tpass\nwhile x:\n\tbreak")
        assert isinstance(body[0], ast.For) and body[0].var == "i"
        assert isinstance(body[1], ast.While)

    def test_match_with_wildcard_inline_arms(self):
        body = self.body('match x:\n\t0: a = 1\n\t1: a = 2\n\t_: a = 3')
        m = body[0]
        assert isinstance(m, ast.Match)
        assert len(m.arms) == 3 and m.arms[2].wildcard

    def test_local_var_decl(self):
        body = self.body("var c : int = 0")
        decl = body[0]
        assert isinstance(decl, ast.VarDecl) and decl.type_hint == "int"

    def test_assignment_targets(self):
        body = self.body("x = 1\na.b = 2\nc[0] = 3\nd += 4")
        assert isinstance(body[0], ast.Assign)
        assert isinstance(body[0].target, ast.Identifier)
        assert isinstance(body[1].target, ast.Attribute)
        assert isinstance(body[2].target, ast.Index)
        assert isinstance(body[3], ast.AugAssign)

    def test_assign_to_literal_rejected(self):
        with pytest.raises(GDScriptSyntaxError, match="cannot assign"):
            self.body("1 = 2")

    def test_empty_block_rejected(self):
        with pytest.raises(GDScriptSyntaxError):
            parse("func f():\n\nfunc g():\n\tpass\n")


class TestParserExpressions:
    def expr(self, text: str):
        body = parse(f"func f():\n\treturn {text}\n").function("f").body
        return body[0].value

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_comparison_chains_left(self):
        e = self.expr("a < b == c")
        assert e.op == "=="

    def test_and_or_not(self):
        e = self.expr("not a and b or c")
        assert e.op == "or"

    def test_method_call_chain(self):
        e = self.expr("pallets.get_children()")
        assert isinstance(e, ast.MethodCall) and e.method == "get_children"

    def test_index_then_method(self):
        e = self.expr("pallet_array[c].get_child(0)")
        assert isinstance(e, ast.MethodCall)
        assert isinstance(e.obj, ast.Index)

    def test_attribute_assign_target_parse(self):
        e = self.expr('level_data.data["axis_labels"]')
        assert isinstance(e, ast.Index)
        assert isinstance(e.obj, ast.Attribute)

    def test_array_and_dict_literals(self):
        arr = self.expr("[1, 2, 3,]")
        assert isinstance(arr, ast.ArrayLiteral) and len(arr.items) == 3
        d = self.expr('{"a": 1, "b": 2}')
        assert isinstance(d, ast.DictLiteral) and len(d.keys) == 2

    def test_unary_minus(self):
        e = self.expr("-x")
        assert isinstance(e, ast.Unary) and e.op == "-"

    def test_in_operator(self):
        e = self.expr('"k" in d')
        assert e.op == "in"

    def test_parenthesised(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*"
