"""The paper's own listings running end-to-end on the interpreter + engine."""

import pytest

from repro.engine.node import Node3D
from repro.engine.tree import SceneTree
from repro.game.scripts import HELLO_WORLD_GD, PALLET_CONTROLLER_GD
from repro.game.warehouse import WarehouseLevel, build_level
from repro.gdscript.interpreter import compile_script
from repro.modules.templates import template_6x6, template_10x10


class TestHelloWorld:
    def test_fig1c_output(self):
        node = Node3D("Main")
        inst = compile_script(HELLO_WORLD_GD).instantiate(node)
        SceneTree(node)
        assert inst.output_text() == "Hello, world!"


class TestPalletController:
    def test_compiles(self):
        cls = compile_script(PALLET_CONTROLLER_GD)
        assert cls.extends == "Node3D"
        assert set(cls.functions) == {"_ready", "set_labels", "change_pallet_color"}

    def test_member_layout(self):
        cls = compile_script(PALLET_CONTROLLER_GD)
        members = {m.name: m for m in cls.ast.members}
        assert members["y_axis"].export
        assert members["pallets_are_colored"].export
        assert members["level_data"].onready
        assert members["pallet_array"].onready
        assert not members["pallet_color_array"].export

    def test_ready_flattens_colors_row_major(self, tpl10):
        level = WarehouseLevel(tpl10)
        script = level.controller.script
        flat = script.get_var("pallet_color_array")
        assert len(flat) == 100
        expected = [c for row in tpl10.matrix.colors.tolist() for c in row]
        assert flat == expected

    def test_set_labels_assigns_both_axes(self, tpl10):
        level = WarehouseLevel(tpl10)
        assert level.x_labels() == list(tpl10.matrix.labels)
        assert level.y_labels() == list(tpl10.matrix.labels)

    def test_label_mismatch_prints_game_error(self, tpl10):
        root = build_level(tpl10)
        controller = root.get_node("PalletAndLabelController")
        # sabotage: drop one X label holder before ready
        x_row = controller.get_node("X")
        x_row.remove_child(x_row.get_child(9))
        SceneTree(root)
        errors = controller.script.error_lines()
        assert errors == ["Number of y labels does not match number of x labels!"]

    def test_data_label_count_mismatch_error(self, tpl10):
        root = build_level(tpl10)
        controller = root.get_node("PalletAndLabelController")
        for row_name in ("X", "Y"):
            row = controller.get_node(row_name)
            row.remove_child(row.get_child(9))
        SceneTree(root)
        errors = controller.script.error_lines()
        assert errors == ["Level data does not match number of labels!"]

    def test_color_toggle_matches_color_grid(self, tpl10):
        level = WarehouseLevel(tpl10)
        level.toggle_pallet_colors()
        albedo = {0: "grey", 1: "blue", 2: "red"}
        colors = tpl10.matrix.colors
        for i, j in [(0, 0), (0, 9), (9, 0), (4, 5), (6, 3)]:
            mesh = level.pallet(i, j).get_child(0)
            assert mesh.material_override.albedo == albedo[int(colors[i, j])], (i, j)

    def test_color_toggle_back_to_default(self, tpl10):
        level = WarehouseLevel(tpl10)
        level.toggle_pallet_colors()
        level.toggle_pallet_colors()
        assert not level.pallets_are_colored
        mesh = level.pallet(0, 9).get_child(0)
        assert mesh.material_override.albedo == "wood"

    def test_toggle_prints_console_lines(self, tpl10):
        level = WarehouseLevel(tpl10)
        level.toggle_pallet_colors()
        out = level.controller.script.output_text()
        assert "Change pallet color button" in out
        assert "Palets are default! Making them colored" in out
        assert "Matching color: 2" in out

    def test_works_on_6x6_template(self, tpl6):
        level = WarehouseLevel(tpl6)
        assert level.x_labels() == list(tpl6.matrix.labels)
        level.toggle_pallet_colors()
        assert level.pallet(0, 5).get_child(0).material_override.albedo == "red"

    @pytest.mark.parametrize("template", [template_6x6, template_10x10])
    def test_no_errors_on_clean_scene(self, template):
        level = WarehouseLevel(template())
        assert level.controller.script.error_lines() == []
