"""GDScript front-end fuzzing: hostile source never escapes the error type.

Educators hand-write scripts; the front end's contract is that any text
produces tokens/AST or a :class:`GDScriptSyntaxError` with a line/column —
never an IndexError from the lexer or a RecursionError from the parser on
classroom-sized input.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GDScriptError, GDScriptRuntimeError, GDScriptSyntaxError
from repro.gdscript.lexer import tokenize
from repro.gdscript.parser import parse

source_alphabet = st.sampled_from(
    list("abcxyz_ 0123456789+-*/=<>!()[]{}:.,\"'#\t\n$@")
    + ["var ", "func ", "if ", "for ", "in ", "match ", "return", "extends "]
)


def sources(max_size: int = 12):
    return st.lists(source_alphabet, max_size=max_size).map("".join)


class TestLexerTotalness:
    @given(sources(40))
    @settings(max_examples=300, deadline=None)
    def test_tokenize_never_crashes(self, source):
        try:
            tokens = tokenize(source)
        except GDScriptSyntaxError:
            return
        assert tokens[-1].type.name == "EOF"

    @given(st.text(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_unicode(self, source):
        try:
            tokenize(source)
        except GDScriptSyntaxError:
            pass


class TestParserTotalness:
    @given(sources(30))
    @settings(max_examples=300, deadline=None)
    def test_parse_never_crashes(self, source):
        try:
            parse(source)
        except GDScriptSyntaxError:
            pass

    @given(st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_deep_nesting_parses_or_errors(self, depth):
        body = "".join(
            "\t" * (k + 1) + "if true:\n" for k in range(depth)
        ) + "\t" * (depth + 1) + "pass\n"
        source = "func f():\n" + body
        script = parse(source)
        assert script.function("f") is not None

    @given(st.integers(1, 60))
    @settings(max_examples=20, deadline=None)
    def test_long_expression_chains(self, n):
        expr = " + ".join(["1"] * n)
        script = parse(f"func f():\n\treturn {expr}\n")
        assert script.function("f") is not None


class TestInterpreterRobustness:
    def run_script(self, source: str):
        from repro.engine.node import Node3D
        from repro.engine.tree import SceneTree
        from repro.gdscript.interpreter import compile_script

        node = Node3D("Main")
        inst = compile_script(source).instantiate(node)
        SceneTree(node)
        return inst

    @given(
        st.lists(
            st.sampled_from([
                "x += 1", "x -= 2", "x = x * 2", "x = x / 3",
                "if x > 5:\n\t\tx = 0", "for i in range(3):\n\t\tx += i",
            ]),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_programs_terminate(self, stmts):
        body = "\n".join("\t" + s for s in stmts)
        source = f"var x : int = 1\nfunc f():\n{body}\n\treturn x\n"
        inst = self.run_script(source)
        result = inst.call("f")
        assert isinstance(result, int)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=100, deadline=None)
    def test_arithmetic_matches_gdscript_semantics(self, a, b):
        inst = self.run_script("func f(a, b):\n\treturn a + b * 2 - a / 3\n")
        import math

        expected = a + b * 2 - math.trunc(a / 3)
        assert inst.call("f", a, b) == expected

    def test_runtime_errors_are_typed(self):
        inst = self.run_script("func f():\n\treturn [1][5]\n")
        try:
            inst.call("f")
            raise AssertionError("expected an error")
        except GDScriptRuntimeError:
            pass
        except Exception as exc:  # noqa: BLE001
            raise AssertionError(f"leaked {type(exc).__name__}") from exc

    def test_error_hierarchy(self):
        assert issubclass(GDScriptSyntaxError, GDScriptError)
        assert issubclass(GDScriptRuntimeError, GDScriptError)
