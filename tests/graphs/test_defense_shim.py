"""The deprecated ``repro.graphs.defense`` attribute shim, locked down.

The ``defense`` *function* registers as ``defense_pattern`` (its natural
name belongs to the submodule); attribute access to ``repro.graphs.defense``
returns a deprecated alias that is callable as the function and forwards
attributes to the submodule.  These tests pin the whole contract: warning
cadence, both call idioms, attribute forwarding, and alias resolution in the
scenario registry.
"""

import importlib
import warnings

import numpy as np
import pytest

import repro.graphs
from repro.scenarios import REGISTRY_ALIASES, get_generator

defense_module = importlib.import_module("repro.graphs.defense")


def _touch_defense_attr():
    """One fixed call site for the deprecated attribute access."""
    return repro.graphs.defense


class TestWarningCadence:
    def test_attribute_access_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="defense_pattern"):
            _touch_defense_attr()

    def test_warning_emitted_once_per_call_site_under_default_filter(self):
        """The default 'default' filter dedupes by call location, so a loop
        over one call site sees exactly one warning."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(5):
                _touch_defense_attr()
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_each_access_warns_under_always_filter(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _touch_defense_attr()
            _touch_defense_attr()
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2


class TestBothIdiomsKeepWorking:
    def test_alias_is_callable_as_the_function(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_alias = repro.graphs.defense(10, packets=2)
        direct = repro.graphs.defense_pattern(10, packets=2)
        assert via_alias == direct
        assert np.array_equal(via_alias.packets, direct.packets)

    def test_alias_forwards_attributes_to_the_submodule(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            alias = repro.graphs.defense
        assert alias.security is defense_module.security
        assert alias.deterrence is defense_module.deterrence
        assert alias.DEFENSE_CONCEPTS is defense_module.DEFENSE_CONCEPTS

    def test_submodule_import_is_unaffected_and_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            module = importlib.import_module("repro.graphs.defense")
        assert module.defense is defense_module.defense

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.graphs.definitely_not_a_generator


class TestRegistryAliasResolution:
    def test_both_names_resolve_to_the_same_generator_info(self):
        assert REGISTRY_ALIASES["defense"] == "defense_pattern"
        assert get_generator("defense") is get_generator("defense_pattern")

    def test_canonical_entry_wraps_the_real_function(self):
        info = get_generator("defense")
        assert info.name == "defense_pattern"
        assert info.func is defense_module.defense
