"""Firewall policies and violation detection (paper future-work concept)."""

import numpy as np
import pytest

import importlib

from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs import ddos

# the submodule, not the deprecated function alias ``repro.graphs.defense``
defense = importlib.import_module("repro.graphs.defense")
from repro.graphs.compose import overlay
from repro.graphs.firewall import (
    FirewallPolicy,
    compliant_traffic,
    default_policy,
    violating_traffic,
    violations,
)


class TestDefaultPolicy:
    def test_blue_internal_allowed(self):
        p = default_policy()
        assert p.permits("WS1", "WS2")
        assert p.permits("WS1", "SRV1")

    def test_egress_allowed(self):
        p = default_policy()
        assert p.permits("WS1", "EXT1")

    def test_dmz_rule(self):
        p = default_policy()
        assert p.permits("EXT1", "SRV1")      # inbound to the server only
        assert not p.permits("EXT1", "WS1")   # not to workstations

    def test_red_space_blocked(self):
        p = default_policy()
        assert not p.permits("ADV1", "SRV1")
        assert not p.permits("WS1", "ADV1")
        assert not p.permits("ADV1", "EXT1")

    def test_loopback_allowed(self):
        p = default_policy()
        for lb in p.labels:
            assert p.permits(lb, lb)

    def test_policy_matrix_colors(self):
        m = default_policy().as_matrix()
        assert int(m.color_of("WS1", "WS2")) == 1  # allowed = blue
        assert int(m.color_of("WS1", "ADV1")) == 2  # denied = red

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            FirewallPolicy(("A", "B"), np.zeros((3, 3), dtype=bool))


class TestViolations:
    def policy(self):
        return default_policy()

    def test_security_traffic_is_clean(self):
        assert violations(defense.security(10), self.policy()) == []

    def test_ddos_red_clients_flagged(self):
        viols = violations(ddos.ddos_attack(10), self.policy())
        sources = {src for src, _dst, _p in viols}
        assert sources == {"ADV3", "ADV4"}  # EXT clients pass the DMZ rule

    def test_combined_traffic_counts(self):
        traffic = overlay([defense.security(10), ddos.ddos_attack(10)])
        viols = violations(traffic, self.policy())
        assert len(viols) == 2

    def test_label_mismatch_rejected(self):
        other = TrafficMatrix.zeros(6)
        with pytest.raises(ShapeError):
            violations(other, self.policy())

    def test_split_partitions_traffic(self):
        traffic = overlay([defense.security(10), ddos.ddos_attack(10)])
        p = self.policy()
        good = compliant_traffic(traffic, p)
        bad = violating_traffic(traffic, p)
        assert good.total_packets() + bad.total_packets() == traffic.total_packets()
        assert (good.packets * bad.packets).sum() == 0  # disjoint cells

    def test_violating_traffic_colored_red(self):
        bad = violating_traffic(ddos.ddos_attack(10), self.policy())
        cells = bad.packets > 0
        assert (bad.colors[cells] == 2).all()

    def test_compliant_traffic_colored_blue(self):
        good = compliant_traffic(defense.security(10), self.policy())
        cells = good.packets > 0
        assert (good.colors[cells] == 1).all()


class TestFirewallModules:
    def test_extended_catalog_adds_family(self):
        from repro.modules.library import builtin_catalog, extended_catalog

        base = builtin_catalog()
        ext = extended_catalog()
        assert set(base) < set(ext)
        assert {k for k in ext if k.startswith("firewall/")} == {
            "firewall/policy",
            "firewall/spot_violations",
            "firewall/clean_traffic",
        }

    def test_firewall_modules_validate(self):
        from repro.modules.library import extended_catalog
        from repro.modules.schema import validate_module_dict

        for key, module in extended_catalog().items():
            if key.startswith("firewall/"):
                validate_module_dict(module.to_json_dict())

    def test_analyst_answers_violation_count(self):
        from repro.game.players import AnalystPlayer
        from repro.game.quiz import present_question
        from repro.modules.library import extended_catalog

        module = extended_catalog()["firewall/spot_violations"]
        pres = present_question(module, seed=3)
        choice = AnalystPlayer(seed=3).choose(module, pres)
        assert pres.options[choice] == module.question.correct_answer
