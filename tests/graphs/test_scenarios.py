"""Attack stages, defense concepts, DDoS components (Figs. 7-9)."""

import numpy as np
import pytest

import importlib

from repro.core.spaces import NetworkSpace as S
from repro.errors import ShapeError
from repro.graphs import attack, ddos

# ``repro.graphs.defense`` as an attribute is the deprecated function alias;
# the submodule is reached through the import system (as modules.library does).
defense = importlib.import_module("repro.graphs.defense")


def active_blocks(matrix):
    return {pair for pair, packets in matrix.space_traffic().items() if packets > 0}


class TestAttackStages:
    def test_planning_red_only(self):
        m = attack.planning(10)
        assert active_blocks(m) == {(S.RED, S.RED)}

    def test_planning_all_adversaries_participate(self):
        m = attack.planning(10)
        red_rows = m.packets[6:, 6:]
        assert (red_rows.sum(axis=1) > 0).all()

    def test_planning_no_self_traffic(self):
        assert np.diag(attack.planning(10).packets).sum() == 0

    def test_staging_blocks(self):
        m = attack.staging(10)
        assert active_blocks(m) == {(S.RED, S.GREY), (S.GREY, S.GREY)}

    def test_infiltration_border_only(self):
        m = attack.infiltration(10)
        assert active_blocks(m) == {(S.GREY, S.BLUE)}

    def test_lateral_movement_blue_only(self):
        m = attack.lateral_movement(10)
        assert active_blocks(m) == {(S.BLUE, S.BLUE)}

    def test_lateral_movement_not_full_block(self):
        # lateral movement must stay distinguishable from walls-in security
        m = attack.lateral_movement(10)
        blue = m.packets[:4, :4]
        assert 0 < np.count_nonzero(blue) < 12

    def test_lateral_custom_foothold(self):
        m = attack.lateral_movement(10, foothold="WS2")
        assert m.out_fan()[1] == 3

    def test_lateral_foothold_must_be_blue(self):
        with pytest.raises(ShapeError):
            attack.lateral_movement(10, foothold="ADV1")

    def test_full_attack_overlays_all_stages(self):
        m = attack.full_attack(10)
        expected = {
            (S.RED, S.RED), (S.RED, S.GREY), (S.GREY, S.GREY),
            (S.GREY, S.BLUE), (S.BLUE, S.BLUE),
        }
        assert active_blocks(m) == expected

    def test_stage_needs_spaces(self):
        with pytest.raises(ShapeError):
            attack.planning(4, labels=["WS1", "WS2", "WS3", "WS4"])

    def test_stage_registry_order(self):
        assert list(attack.ATTACK_STAGES) == [
            "planning", "staging", "infiltration", "lateral_movement",
        ]


class TestDefenseConcepts:
    def test_security_blue_only_and_full(self):
        m = defense.security(10)
        assert active_blocks(m) == {(S.BLUE, S.BLUE)}
        blue = m.packets[:4, :4]
        assert np.count_nonzero(blue) == 12  # complete minus diagonal

    def test_defense_watches_greyspace(self):
        m = defense.defense(10)
        assert (S.BLUE, S.GREY) in active_blocks(m)
        assert (S.RED, S.GREY) in active_blocks(m)
        assert (S.RED, S.BLUE) not in active_blocks(m)

    def test_deterrence_blocks(self):
        m = defense.deterrence(10)
        blocks = active_blocks(m)
        assert (S.BLUE, S.RED) in blocks  # visible response in adversary space
        assert (S.RED, S.BLUE) in blocks  # the provocation

    def test_deterrence_provocation_heavier(self):
        m = defense.deterrence(10, packets=1, provocation_packets=3)
        assert m["ADV1", "WS1"] == 3 and m["WS1", "ADV1"] == 1

    def test_registry(self):
        assert list(defense.DEFENSE_CONCEPTS) == ["security", "defense", "deterrence"]


class TestBotnetRoles:
    def test_default_roles_on_template(self):
        r = ddos.BotnetRoles.from_labels(
            ("WS1", "WS2", "WS3", "SRV1", "EXT1", "EXT2", "ADV1", "ADV2", "ADV3", "ADV4")
        )
        assert r.c2 == (6, 7)
        assert r.clients == (8, 9, 4, 5)
        assert r.victims == (3,)

    def test_victims_fall_back_to_blue(self):
        r = ddos.BotnetRoles.from_labels(("WS1", "WS2", "ADV1", "ADV2"))
        assert r.victims == (0, 1)

    def test_from_names(self):
        labels = ("WS1", "SRV1", "EXT1", "ADV1", "ADV2")
        r = ddos.BotnetRoles.from_names(labels, ["ADV1"], ["ADV2", "EXT1"], ["SRV1"])
        assert r.c2 == (3,) and r.victims == (1,)

    def test_overlapping_roles_rejected(self):
        labels = ("WS1", "ADV1", "ADV2")
        with pytest.raises(ShapeError, match="multiple"):
            ddos.BotnetRoles.from_names(labels, ["ADV1"], ["ADV1"], ["WS1"])

    def test_needs_red_endpoints(self):
        with pytest.raises(ShapeError):
            ddos.BotnetRoles.from_labels(("WS1", "WS2"))


class TestDDoSComponents:
    def test_c2_red_space_only(self):
        m = ddos.command_and_control(10)
        assert active_blocks(m) == {(S.RED, S.RED)}

    def test_c2_only_among_c2_nodes(self):
        m = ddos.command_and_control(10)
        assert m["ADV1", "ADV2"] > 0
        assert m["ADV3", "ADV4"] == 0

    def test_botnet_tasking_identical(self):
        m = ddos.botnet_clients(10)
        vals = m.packets[m.packets > 0]
        assert vals.size == 8  # 2 C2 × 4 clients
        assert (vals == vals[0]).all()

    def test_attack_targets_victims(self):
        m = ddos.ddos_attack(10)
        assert m["EXT1", "SRV1"] == 9
        assert m["ADV3", "SRV1"] == 9
        assert m["ADV1", "SRV1"] == 0  # C2 stays out of the flood

    def test_attack_under_display_limit(self):
        assert ddos.ddos_attack(10).cells_over_display_limit() == []

    def test_backscatter_is_attack_transpose_pattern(self):
        atk = ddos.ddos_attack(10)
        bsc = ddos.backscatter(10)
        assert np.array_equal(bsc.packets > 0, atk.packets.T > 0)

    def test_backscatter_reply_rate(self):
        bsc = ddos.backscatter(10, packets=2)
        vals = bsc.packets[bsc.packets > 0]
        assert (vals == 2).all()

    def test_full_ddos_combines_all(self):
        m = ddos.full_ddos(10)
        assert m["ADV1", "ADV2"] > 0   # C2
        assert m["ADV1", "ADV3"] > 0   # tasking
        assert m["EXT1", "SRV1"] >= 9  # flood
        assert m["SRV1", "EXT1"] > 0   # backscatter

    def test_shared_roles_consistency(self):
        roles = ddos.BotnetRoles.from_labels(
            ("WS1", "WS2", "WS3", "SRV1", "EXT1", "EXT2", "ADV1", "ADV2", "ADV3", "ADV4")
        )
        atk = ddos.ddos_attack(10, roles=roles)
        bsc = ddos.backscatter(10, roles=roles)
        assert np.array_equal(bsc.packets.T > 0, atk.packets > 0)
