"""Pattern classification: generator → classifier round trips and edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import importlib

from repro.core.traffic_matrix import TrafficMatrix
from repro.graphs import attack, ddos, patterns, topologies

# ``repro.graphs.defense`` as an attribute is the deprecated function alias;
# the submodule is reached through the import system (as modules.library does).
defense = importlib.import_module("repro.graphs.defense")
from repro.graphs.classify import (
    classify_graph_pattern,
    classify_scenario,
    classify_topology,
)
from repro.graphs.compose import challenge


class TestGraphPatternRoundTrip:
    @pytest.mark.parametrize("name", list(patterns.PATTERN_GENERATORS))
    def test_default_10(self, name):
        m = patterns.PATTERN_GENERATORS[name](10)
        assert classify_graph_pattern(m) == name

    @pytest.mark.parametrize("name", ["star", "clique", "ring", "self_loops", "tree"])
    def test_other_sizes(self, name):
        for n in (6, 8, 12):
            m = patterns.PATTERN_GENERATORS[name](n)
            assert classify_graph_pattern(m) == name, (name, n)

    @given(st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_star_any_center(self, center):
        m = patterns.star(10, center=center)
        assert classify_graph_pattern(m) == "star"

    @given(st.integers(2, 13))
    @settings(max_examples=20, deadline=None)
    def test_packets_do_not_matter(self, packets):
        m = patterns.ring(10, packets=packets)
        assert classify_graph_pattern(m) == "ring"

    def test_clique_subset(self):
        m = patterns.clique(10, members=[1, 3, 5, 7])
        assert classify_graph_pattern(m) == "clique"

    def test_triangle_on_any_vertices(self):
        m = patterns.triangle(10, vertices=(2, 5, 8))
        assert classify_graph_pattern(m) == "triangle"

    def test_empty_unknown(self):
        assert classify_graph_pattern(TrafficMatrix.zeros(5)) == "unknown"

    def test_mixed_self_loops_and_links_unknown(self):
        m = patterns.self_loops(6) + patterns.ring(6)
        assert classify_graph_pattern(m) == "unknown"

    def test_asymmetric_ring_not_ring(self):
        m = patterns.ring(8, mutual=False)
        # a directed cycle symmetrises to a ring shape but is not symmetric
        assert classify_graph_pattern(m) in ("ring", "unknown")

    def test_bipartite_unbalanced(self):
        m = patterns.bipartite(10, left=[0, 1, 2])
        assert classify_graph_pattern(m) == "bipartite"

    def test_star_is_not_reported_as_tree_or_bipartite(self):
        # K1,9 is both a tree and complete bipartite; star must win
        assert classify_graph_pattern(patterns.star(10)) == "star"

    def test_path_is_tree(self):
        m = patterns.mesh(10, dims=(1, 10))
        # a 1×n mesh is a path; mesh match is checked before tree and accepts it
        assert classify_graph_pattern(m) in ("mesh", "tree")


class TestTopologyRoundTrip:
    @pytest.mark.parametrize("name", list(topologies.TOPOLOGY_GENERATORS))
    def test_default_10(self, name):
        m = topologies.TOPOLOGY_GENERATORS[name](10)
        assert classify_topology(m) == name

    def test_custom_pairs_still_isolated(self):
        m = topologies.isolated_links(10, pairs=[(0, 5), (1, 6), (2, 7)])
        assert classify_topology(m) == "isolated_links"

    def test_empty_unknown(self):
        assert classify_topology(TrafficMatrix.zeros(10)) == "unknown"

    def test_clique_not_a_topology(self):
        assert classify_topology(patterns.clique(10)) == "unknown"


class TestScenarioRoundTrip:
    @pytest.mark.parametrize("name,gen", list(attack.ATTACK_STAGES.items()))
    def test_attack_stages(self, name, gen):
        assert classify_scenario(gen(10)).best == name

    @pytest.mark.parametrize("name,gen", list(defense.DEFENSE_CONCEPTS.items()))
    def test_defense_concepts(self, name, gen):
        assert classify_scenario(gen(10)).best == name

    @pytest.mark.parametrize("name,gen", list(ddos.DDOS_COMPONENTS.items()))
    def test_ddos_components(self, name, gen):
        assert classify_scenario(gen(10)).best == name

    def test_scores_are_ranked(self):
        score = classify_scenario(attack.planning(10))
        assert score.scores[score.best] >= max(score.scores.values()) - 1e-9

    def test_active_blocks_reported(self):
        score = classify_scenario(attack.infiltration(10))
        # 2 grey sources × 4 blue destinations × 1 packet
        assert score.active_blocks == {("grey", "blue"): 8}

    def test_empty_matrix_scores_low(self):
        score = classify_scenario(TrafficMatrix.zeros(10))
        assert max(score.scores.values()) <= 0.0


class TestClassifierUnderNoise:
    def test_supernode_survives_light_noise(self):
        noisy = challenge(topologies.external_supernode(10), noise_density=0.05, seed=1)
        # light noise shifts exact structural classification; the supernode
        # itself must still be detectable by fan
        from repro.graphs.metrics import supernodes

        assert "EXT1" in supernodes(noisy)

    def test_scenario_block_signal_robust(self):
        noisy = challenge(attack.planning(10), noise_density=0.0, seed=1)
        assert classify_scenario(noisy).best == "planning"
