"""Graph-theory pattern generators (Fig. 10): structure of each family."""

import numpy as np
import pytest

from repro.core.labels import TEMPLATE_LABELS_10
from repro.errors import ShapeError
from repro.graphs import patterns as P


class TestStar:
    def test_hub_row_and_column_full(self):
        m = P.star(10)
        p = m.packets > 0
        assert p[0, 1:].all() and p[1:, 0].all()
        assert not p[1:, 1:].any()

    def test_custom_center(self):
        m = P.star(6, center=3)
        assert (m.packets[3] > 0).sum() == 5

    def test_directed_only_out(self):
        m = P.star(5, mutual=False)
        assert m.packets[1:, 0].sum() == 0

    def test_bad_center(self):
        with pytest.raises(ShapeError):
            P.star(5, center=7)

    def test_default_labels(self):
        assert P.star(10).labels == TEMPLATE_LABELS_10


class TestClique:
    def test_full_off_diagonal(self):
        m = P.clique(5)
        p = m.packets > 0
        assert p.sum() == 20
        assert not np.diag(p).any()

    def test_member_subset(self):
        m = P.clique(10, members=[2, 4, 6])
        assert m.nnz() == 6
        assert m[2, 4] > 0 and m[0, 1] == 0

    def test_symmetric(self):
        p = P.clique(6).packets
        assert np.array_equal(p, p.T)


class TestBipartite:
    def test_default_split_blocks(self):
        m = P.bipartite(10)
        p = m.packets > 0
        assert p[:5, 5:].all() and p[5:, :5].all()
        assert not p[:5, :5].any() and not p[5:, 5:].any()

    def test_custom_left(self):
        m = P.bipartite(6, left=[0])
        assert (m.packets[0, 1:] > 0).all()

    def test_empty_side_rejected(self):
        with pytest.raises(ShapeError):
            P.bipartite(4, left=range(4))


class TestTree:
    def test_binary_tree_edge_count(self):
        m = P.tree(10)
        assert m.nnz() == 18  # 9 undirected edges, both directions

    def test_parent_rule(self):
        m = P.tree(7, branching=2)
        for k in range(1, 7):
            assert m[(k - 1) // 2, k] > 0

    def test_ternary(self):
        m = P.tree(10, branching=3)
        assert m[0, 3] > 0 and m[1, 4] > 0

    def test_bad_branching(self):
        with pytest.raises(ShapeError):
            P.tree(5, branching=0)


class TestRing:
    def test_successor_links(self):
        m = P.ring(10)
        for i in range(10):
            assert m[i, (i + 1) % 10] > 0

    def test_wraparound_present(self):
        assert P.ring(10)[9, 0] > 0

    def test_degree_two(self):
        p = P.ring(8).packets > 0
        u = p | p.T
        assert (u.sum(axis=1) == 2).all()

    def test_too_small(self):
        with pytest.raises(ShapeError):
            P.ring(2)


class TestMesh:
    def test_grid_dims(self):
        assert P.grid_dims(10) == (2, 5)
        assert P.grid_dims(9) == (3, 3)
        assert P.grid_dims(7) == (1, 7)

    def test_corner_degrees(self):
        m = P.mesh(9, dims=(3, 3))
        p = m.packets > 0
        u = p | p.T
        deg = u.sum(axis=1)
        assert deg[0] == 2 and deg[4] == 4  # corner vs centre

    def test_no_wraparound(self):
        m = P.mesh(10, dims=(2, 5))
        assert m[0, 4] == 0  # row ends don't connect

    def test_bad_dims(self):
        with pytest.raises(ShapeError):
            P.mesh(10, dims=(3, 3))


class TestToroidalMesh:
    def test_all_degrees_equal(self):
        m = P.toroidal_mesh(9, dims=(3, 3))
        p = m.packets > 0
        u = p | p.T
        assert (u.sum(axis=1) == 4).all()

    def test_wraparound_links(self):
        m = P.toroidal_mesh(9, dims=(3, 3))
        assert m[0, 2] > 0  # row wrap
        assert m[0, 6] > 0  # column wrap

    def test_more_edges_than_mesh(self):
        assert P.toroidal_mesh(9, dims=(3, 3)).nnz() > P.mesh(9, dims=(3, 3)).nnz()


class TestSelfLoopsAndTriangle:
    def test_self_loops_diagonal_only(self):
        m = P.self_loops(10)
        assert np.array_equal(m.packets, np.eye(10, dtype=np.int64))

    def test_self_loops_subset(self):
        m = P.self_loops(5, vertices=[1, 3])
        assert m.nnz() == 2 and m[1, 1] > 0

    def test_triangle_cells(self):
        m = P.triangle(10)
        for a, b in [(0, 1), (1, 2), (2, 0)]:
            assert m[a, b] > 0 and m[b, a] > 0
        assert m.nnz() == 6

    def test_triangle_custom_vertices(self):
        m = P.triangle(10, vertices=(3, 7, 9))
        assert m[3, 7] > 0 and m[9, 3] > 0

    def test_triangle_distinct_vertices(self):
        with pytest.raises(ShapeError):
            P.triangle(10, vertices=(1, 1, 2))


class TestCommon:
    @pytest.mark.parametrize("name", list(P.PATTERN_GENERATORS))
    def test_registry_generates_10x10(self, name):
        m = P.PATTERN_GENERATORS[name](10)
        assert m.n == 10
        assert m.nnz() > 0

    @pytest.mark.parametrize("name", list(P.PATTERN_GENERATORS))
    def test_packets_param_scales(self, name):
        m = P.PATTERN_GENERATORS[name](10, packets=3)
        vals = m.packets[m.packets > 0]
        assert (vals == 3).all()

    @pytest.mark.parametrize("name", list(P.PATTERN_GENERATORS))
    def test_display_guidance_respected(self, name):
        m = P.PATTERN_GENERATORS[name](10)
        assert m.cells_over_display_limit() == []
