"""Traffic topologies (Fig. 6) and the paper's template matrix."""

import numpy as np
import pytest

from repro.core.spaces import NetworkSpace
from repro.errors import ShapeError
from repro.graphs import topologies as T
from repro.modules.templates import template_10x10


class TestIsolatedLinks:
    def test_default_antidiagonal_pairing(self):
        m = T.isolated_links(10)
        for i in range(5):
            assert m[i, 9 - i] == 2 and m[9 - i, i] == 2

    def test_every_endpoint_fan_one(self):
        m = T.isolated_links(10)
        assert (m.out_fan() == 1).all() and (m.in_fan() == 1).all()

    def test_custom_pairs(self):
        m = T.isolated_links(6, pairs=[(0, 1), (2, 3)])
        assert m[0, 1] > 0 and m[4, 5] == 0

    def test_self_pair_rejected(self):
        with pytest.raises(ShapeError, match="self loop"):
            T.isolated_links(6, pairs=[(1, 1)])

    def test_shared_endpoint_rejected(self):
        with pytest.raises(ShapeError, match="disjoint"):
            T.isolated_links(6, pairs=[(0, 1), (1, 2)])

    def test_space_colored(self):
        m = T.isolated_links(10)
        assert int(m.color_of("ADV1", "ADV2")) == 2


class TestSingleLinks:
    def test_one_directional(self):
        m = T.single_links(10)
        p = m.packets
        assert not (p & p.T).any() or (p * p.T).sum() == 0

    def test_default_count(self):
        assert T.single_links(10).nnz() == 5

    def test_custom_links(self):
        m = T.single_links(6, links=[(0, 5)])
        assert m[0, 5] > 0 and m.nnz() == 1

    def test_self_link_rejected(self):
        with pytest.raises(ShapeError):
            T.single_links(6, links=[(2, 2)])


class TestInternalSupernode:
    def test_default_hub_is_server(self):
        m = T.internal_supernode(10)
        assert m.out_fan()[3] == 3  # SRV1 talks to WS1..WS3

    def test_traffic_stays_in_blue(self):
        m = T.internal_supernode(10)
        blocks = m.space_traffic()
        assert blocks[(NetworkSpace.BLUE, NetworkSpace.BLUE)] == m.total_packets()

    def test_hub_by_name(self):
        m = T.internal_supernode(10, hub="WS2")
        assert m.out_fan()[1] == 3

    def test_non_blue_hub_rejected(self):
        with pytest.raises(ShapeError, match="not in blue"):
            T.internal_supernode(10, hub="ADV1")


class TestExternalSupernode:
    def test_default_hub_is_first_ext(self):
        m = T.external_supernode(10)
        assert m.out_fan()[4] == 4  # EXT1 answers all 4 blue endpoints

    def test_traffic_crosses_border(self):
        m = T.external_supernode(10)
        blocks = m.space_traffic()
        assert blocks[(NetworkSpace.BLUE, NetworkSpace.GREY)] > 0
        assert blocks[(NetworkSpace.GREY, NetworkSpace.BLUE)] > 0
        assert blocks[(NetworkSpace.BLUE, NetworkSpace.BLUE)] == 0

    def test_blue_hub_rejected(self):
        with pytest.raises(ShapeError, match="outside blue"):
            T.external_supernode(10, hub="WS1")

    def test_red_hub_allowed(self):
        m = T.external_supernode(10, hub="ADV1")
        assert m.out_fan()[6] == 4


class TestTemplateMatrix:
    def test_matches_paper_template_exactly(self):
        assert T.template_matrix(10) == template_10x10().matrix

    def test_even_size_required(self):
        with pytest.raises(ShapeError):
            T.template_matrix(7)

    def test_structure_generalises(self):
        m = T.template_matrix(6)
        assert np.array_equal(np.diag(m.packets), np.ones(6, dtype=np.int64))
        assert m[0, 5] == 2
