"""Traffic metrics: reciprocity, supernodes, degree histograms, fits."""

import pytest

from repro.core.traffic_matrix import TrafficMatrix
from repro.graphs import ddos, patterns, topologies
from repro.graphs.metrics import (
    degree_histogram,
    diagonal_fraction,
    power_law_slope,
    reciprocity,
    summarize,
    supernodes,
)


class TestReciprocity:
    def test_mutual_pattern_is_one(self):
        assert reciprocity(patterns.clique(6)) == 1.0

    def test_one_way_pattern_is_zero(self):
        assert reciprocity(ddos.ddos_attack(10)) == 0.0

    def test_empty_is_zero(self):
        assert reciprocity(TrafficMatrix.zeros(5)) == 0.0

    def test_half_mutual(self):
        m = TrafficMatrix([[0, 1, 1], [1, 0, 0], [0, 0, 0]])
        assert reciprocity(m) == pytest.approx(2 / 3)

    def test_self_loops_ignored(self):
        m = TrafficMatrix([[5, 0], [0, 5]])
        assert reciprocity(m) == 0.0


class TestDiagonalFraction:
    def test_pure_self_loops(self):
        assert diagonal_fraction(patterns.self_loops(10)) == 1.0

    def test_no_self_loops(self):
        assert diagonal_fraction(patterns.ring(10)) == 0.0

    def test_template_mix(self, tpl10):
        assert diagonal_fraction(tpl10.matrix) == pytest.approx(0.5)

    def test_empty(self):
        assert diagonal_fraction(TrafficMatrix.zeros(4)) == 0.0


class TestSupernodes:
    def test_star_hub_found(self):
        assert supernodes(patterns.star(10)) == ["WS1"]

    def test_external_supernode_found(self):
        assert "EXT1" in supernodes(topologies.external_supernode(10))

    def test_isolated_links_have_none(self):
        assert supernodes(topologies.isolated_links(10)) == []

    def test_custom_threshold(self):
        m = patterns.ring(10)
        assert supernodes(m, min_fan=2) == list(m.labels)

    def test_counts_peers_not_packets(self):
        m = TrafficMatrix.zeros(6)
        m[0, 1] = 14  # heavy single link is not a supernode
        assert supernodes(m) == []


class TestDegreeHistogram:
    def test_ring_out_fan(self):
        hist = degree_histogram(patterns.ring(10), axis="out")
        assert hist == {2: 10}

    def test_star_out_fan(self):
        hist = degree_histogram(patterns.star(10), axis="out")
        assert hist == {1: 9, 9: 1}

    def test_in_axis(self):
        hist = degree_histogram(ddos.ddos_attack(10), axis="in")
        assert hist[4] == 1  # SRV1 hit by 4 clients

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            degree_histogram(patterns.ring(10), axis="sideways")


class TestPowerLawSlope:
    def test_needs_two_points(self):
        assert power_law_slope({2: 10}) is None
        assert power_law_slope({}) is None

    def test_exact_power_law_recovered(self):
        # counts = degree^-2 scaled
        hist = {1: 1000, 2: 250, 4: 62, 8: 15}
        slope = power_law_slope(hist)
        assert slope == pytest.approx(-2.0, abs=0.05)

    def test_zero_degree_excluded(self):
        hist = {0: 99, 1: 100, 2: 25}
        slope = power_law_slope(hist)
        assert slope == pytest.approx(-2.0, abs=0.05)


class TestSummarize:
    def test_template_summary(self, tpl10):
        s = summarize(tpl10.matrix)
        assert s.n == 10 and s.nnz == 20 and s.total_packets == 30
        assert s.max_packets == 2
        assert s.active_sources == 10

    def test_dominant_block(self):
        s = summarize(ddos.ddos_attack(10))
        # the flood is mostly grey/red → blue; dominant source space varies
        assert s.dominant_block()[1] == "blue"

    def test_dominant_block_empty(self):
        assert summarize(TrafficMatrix.zeros(4)).dominant_block() is None

    def test_block_packets_partition(self, tpl10):
        s = summarize(tpl10.matrix)
        assert sum(s.space_block_packets.values()) == s.total_packets
