"""Noise injection and pattern composition."""

import numpy as np
import pytest

from repro.core.spaces import NetworkSpace
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs import attack
from repro.graphs.compose import challenge, overlay, sequence
from repro.graphs.noise import background_noise, with_noise
from repro.graphs.patterns import star


class TestBackgroundNoise:
    def test_deterministic_for_seed(self):
        a = background_noise(10, seed=42)
        b = background_noise(10, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        assert background_noise(10, seed=1) != background_noise(10, seed=2)

    def test_density_zero_is_empty(self):
        assert background_noise(10, density=0.0, seed=0).nnz() == 0

    def test_density_one_fills_off_diagonal(self):
        m = background_noise(10, density=1.0, seed=0)
        assert m.nnz() == 90  # no self loops by default

    def test_self_loops_flag(self):
        m = background_noise(10, density=1.0, seed=0, allow_self_loops=True)
        assert m.nnz() == 100

    def test_max_packets_bound(self):
        m = background_noise(10, density=1.0, max_packets=3, seed=5)
        assert m.max_packets() <= 3 and m.max_packets() >= 1

    def test_space_restriction(self):
        m = background_noise(
            10, density=1.0, seed=0,
            src_space=NetworkSpace.GREY, dst_space=NetworkSpace.GREY,
        )
        blocks = {k for k, v in m.space_traffic().items() if v > 0}
        assert blocks == {(NetworkSpace.GREY, NetworkSpace.GREY)}

    def test_bad_density(self):
        with pytest.raises(ShapeError):
            background_noise(10, density=1.5)

    def test_bad_max_packets(self):
        with pytest.raises(ShapeError):
            background_noise(10, max_packets=0)


class TestWithNoise:
    def test_pattern_cells_preserved(self):
        pattern = star(10, packets=5)
        noisy = with_noise(pattern, density=0.5, seed=3)
        mask = pattern.packets > 0
        assert np.array_equal(noisy.packets[mask], pattern.packets[mask])

    def test_noise_added_somewhere(self):
        pattern = star(10)
        noisy = with_noise(pattern, density=0.5, seed=3)
        assert noisy.nnz() > pattern.nnz()

    def test_without_preserve_noise_may_stack(self):
        pattern = star(10, packets=1)
        noisy = with_noise(pattern, density=1.0, seed=3, preserve_pattern=False)
        assert noisy.total_packets() > pattern.total_packets()


class TestOverlay:
    def test_sums_packets(self):
        a = TrafficMatrix([[1, 0], [0, 0]])
        b = TrafficMatrix([[2, 3], [0, 0]])
        c = overlay([a, b])
        assert c[0, 0] == 3 and c[0, 1] == 3

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            overlay([])

    def test_does_not_mutate_inputs(self):
        a = TrafficMatrix([[1]], labels=["A"])
        b = TrafficMatrix([[2]], labels=["A"])
        overlay([a, b])
        assert a[0, 0] == 1


class TestSequence:
    def test_stage_list(self):
        stages = sequence(list(attack.ATTACK_STAGES.values()), n=10)
        assert len(stages) == 4
        assert stages[0] == attack.planning(10)

    def test_cumulative(self):
        stages = sequence(list(attack.ATTACK_STAGES.values()), n=10, cumulative=True)
        assert stages[-1] == attack.full_attack(10)
        for earlier, later in zip(stages, stages[1:]):
            assert later.total_packets() > earlier.total_packets()


class TestChallenge:
    def test_plants_pattern_verbatim(self):
        pattern = attack.infiltration(10)
        chal = challenge(pattern, seed=11)
        mask = pattern.packets > 0
        assert np.array_equal(chal.packets[mask], pattern.packets[mask])

    def test_reproducible(self):
        pattern = attack.infiltration(10)
        assert challenge(pattern, seed=11) == challenge(pattern, seed=11)
