"""Static analysis in action: lint a snippet, then typecheck a plan.

Two demonstrations of the ``repro.staticcheck`` subsystem:

1. the lint framework finds planted domain bugs (an unseeded RNG, a lambda
   headed for the process pool) in a source snippet, exactly as
   ``python -m repro.staticcheck src/`` does over the tree;
2. ``Plan.typecheck()`` statically rejects a shape-mismatched masked ``mxm``
   that the raw expression constructors accepted — the class of error that
   previously surfaced only inside a kernel at evaluation time — and
   ``Plan.explain()`` points at the offending subtree.

Run:  python examples/staticcheck_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.assoc import expr as E
from repro.assoc.semiring import PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.errors import ShapeInferenceError
from repro.staticcheck import check_file, default_rules

SNIPPET = """\
import random

from repro.runtime import parallel_map


def jitter(values):
    return [v + random.random() for v in values]


def fan_out(items):
    return parallel_map(lambda x: x * 2, items)
"""


def lint_demo() -> None:
    print("== lint: planted domain bugs ==")
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "snippet.py"
        target.write_text(SNIPPET)
        findings = check_file(target, default_rules(), display_path="snippet.py")
    for finding in findings:
        print(f"  {finding}")
    print()


def typecheck_demo() -> None:
    print("== Plan.typecheck: reject before evaluating ==")
    a = CSRMatrix.from_dense(np.asarray([[1, 0, 2], [0, 3, 0]]))  # 2x3
    b = CSRMatrix.from_dense(np.asarray([[1, 0], [0, 1], [2, 0]]))  # 3x2
    mask = CSRMatrix.from_dense(np.ones((2, 2), dtype=np.int64))

    good = E.as_expr(a).mxm(b, PLUS_TIMES)
    plan = good.plan(mask=mask)
    print(f"  well-shaped masked mxm types as: {plan.typecheck()}")

    # The raw node constructor skips the builder's validation, so this
    # 2x3 @ 2x3 product is constructible — and plannable, since its nominal
    # output shape (2, 3) satisfies the mask check.  Only typecheck() walks
    # inside and proves the inner dimensions can never meet, without running
    # a kernel.
    bad = E.MxM(E.MatLeaf(a), E.MatLeaf(a), PLUS_TIMES)  # staticcheck: ignore[SHP001]
    bad_mask = CSRMatrix.from_dense(np.ones((2, 3), dtype=np.int64))
    bad_plan = bad.plan(mask=bad_mask)
    try:
        bad_plan.typecheck()
    except ShapeInferenceError as exc:
        print(f"  rejected statically: {exc}")
    print("  explain() marks the failing subtree:")
    for line in bad_plan.explain().splitlines():
        print(f"    {line}")


def main() -> None:
    lint_demo()
    typecheck_demo()


if __name__ == "__main__":
    main()
