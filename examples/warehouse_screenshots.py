"""Regenerate the game's visuals: 2-D/3-D views, rotations, asset exports.

Produces, under ``screenshots/``:

* ANSI/plain text frames of the training level in both views,
* eight PPM frames of a full Q/E rotation around the loaded warehouse,
* every voxel asset exported as ``.obj`` (+ ``.mtl``) and ``.vox``.

Run:  python examples/warehouse_screenshots.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.game.training import training_module
from repro.game.warehouse import WarehouseLevel
from repro.render.ascii2d import render_matrix_2d
from repro.render.ppm import write_ppm
from repro.voxel.assets import ASSET_BUILDERS
from repro.voxel.obj_export import write_obj
from repro.voxel.vox_io import write_vox


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("screenshots")
    out.mkdir(parents=True, exist_ok=True)

    module = training_module()
    level = WarehouseLevel(module)
    level.place_all_packets()
    level.toggle_pallet_colors()

    # Fig. 5a: the 2-D spreadsheet view
    (out / "view_2d.txt").write_text(
        render_matrix_2d(module.matrix, ansi=False) + "\n", encoding="utf-8"
    )
    print(f"wrote {out / 'view_2d.txt'}")

    # Fig. 5b/5c: the 3-D warehouse, full Q/E rotation as PPM frames
    level.toggle_view()
    for step in range(8):
        frame = level.render_pixels(width=480, height=360)
        path = write_ppm(frame, out / f"view_3d_yaw{step}.ppm")
        print(f"wrote {path}")
        level.rotate_right()

    # one ASCII 3-D frame for the terminal-inclined
    (out / "view_3d.txt").write_text(
        level.render_ascii(width=110, height=40).to_plain() + "\n", encoding="utf-8"
    )
    print(f"wrote {out / 'view_3d.txt'}")

    # every asset, exported in both interchange formats
    assets_dir = out / "assets"
    for name, builder in ASSET_BUILDERS.items():
        model = builder()
        obj_path, _ = write_obj(model, assets_dir / f"{name}.obj")
        vox_path = write_vox(model, assets_dir / f"{name}.vox")
        print(f"wrote {obj_path} and {vox_path} ({model.count()} voxels)")


if __name__ == "__main__":
    main()
