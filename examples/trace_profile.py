"""Profiling a masked product end to end with ``repro.obs``.

Walkthrough of the observability subsystem on the engine's flagship fused
kernel, the masked semiring product:

1. build a masked ``mxm`` expression and show the planner's schedule,
2. turn tracing on (``runtime.configure(tracing=True)`` — the same switch
   as ``REPRO_TRACE=1``) and execute the plan,
3. print the profiled ``Plan.explain`` — every step with measured wall
   time and result nnz,
4. dump the process-local metrics registry (kernel counters, wall-time
   histograms, runtime dispatch stats),
5. export the span ring as Chrome/Perfetto ``trace_event`` JSON — open it
   at https://ui.perfetto.dev — plus a terminal flame summary.

Run:  python examples/trace_profile.py [output_dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro import runtime
from repro.assoc.expr import lazy
from repro.assoc.sparse import CSRMatrix
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def random_csr(n: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n), dtype=np.int64)
    nnz = max(1, int(n * n * density))
    dense[rng.integers(0, n, nnz), rng.integers(0, n, nnz)] = rng.integers(1, 9, nnz)
    return CSRMatrix.from_dense(dense)


def main(out_dir: Path) -> None:
    n = 400
    a = random_csr(n, 0.02, seed=1)
    b = random_csr(n, 0.02, seed=2)
    rng = np.random.default_rng(3)
    mask = CSRMatrix.from_dense(rng.random((n, n)) < 0.05)

    expr = lazy(a).mxm(b)
    plan = expr.plan(mask=mask)
    print("=== the plan (before running anything) ===")
    print(plan.explain())

    # tracing rides the runtime config: scoped on, parallel, then back off
    with runtime.configured(
        workers=2, backend="thread", min_parallel_work=1, block_rows=64,
        tracing=True,
    ):
        result = plan.execute()
        print(f"\nresult: {result.nnz} stored entries under a {mask.nnz}-entry mask")

        print("\n=== profiled schedule (measured wall time + nnz) ===")
        print(plan.explain(profile=True))

        print("\n=== metrics registry ===")
        snap = obs_metrics.snapshot()
        for name, value in snap["counters"].items():
            print(f"  {name} = {value}")
        wall = snap["histograms"].get("kernels.wall_ms")
        if wall:
            print(f"  kernels.wall_ms: count={wall['count']} mean={wall['mean']:.3f} ms")

        tracer = obs_trace.get_tracer()
        records = tracer.spans()
        print("\n=== flame summary (heaviest spans first) ===")
        print(obs_trace.flame_summary(records))

        out_dir.mkdir(parents=True, exist_ok=True)
        trace_path = obs_trace.write_trace_json(records, out_dir / "masked_mxm.perfetto.json")
        spans_path = obs_trace.dump_spans(records, out_dir / "masked_mxm.spans.json")

    events = json.loads(trace_path.read_text())["traceEvents"]
    print(f"\nwrote {trace_path} ({len(events)} events)")
    print("open it at https://ui.perfetto.dev; the raw span dump converts with:")
    print(f"  python -m repro.obs convert {spans_path}")
    print(f"  python -m repro.obs flame {spans_path}")


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1 else Path("trace_profile_out"))
