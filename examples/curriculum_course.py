"""A hierarchical course (paper future work): units, prerequisites, gating.

Builds a three-unit course over the built-in catalogue — basics unlock
topologies, topologies unlock the attack unit — saves it as a curriculum
bundle (which degrades gracefully to a plain playlist on an old client), and
runs a simulated student through it with pass-score gating.

Run:  python examples/curriculum_course.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.game.curriculum_session import CurriculumSession
from repro.game.players import AnalystPlayer
from repro.modules.curriculum import Curriculum, Unit, load_curriculum_bundle, save_curriculum_bundle
from repro.modules.library import builtin_catalog, family_modules
from repro.modules.loader import load_bundle


def build_course() -> Curriculum:
    cat = builtin_catalog()
    return Curriculum(
        Unit(
            "Traffic Matrices 101",
            children=(
                Unit(
                    "Unit 1: Reading a Matrix",
                    modules=(cat["training/training"], cat["templates/10x10"]),
                    pass_score=0.5,
                ),
                Unit(
                    "Unit 2: Traffic Topologies",
                    modules=tuple(family_modules("topologies")),
                    requires=("Unit 1: Reading a Matrix",),
                    pass_score=0.75,
                ),
                Unit(
                    "Unit 3: Recognising an Attack",
                    modules=tuple(family_modules("attack")) + tuple(family_modules("ddos")),
                    requires=("Unit 2: Traffic Topologies",),
                    pass_score=0.75,
                ),
            ),
        )
    )


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("course")
    out.mkdir(parents=True, exist_ok=True)

    course = build_course()
    bundle = save_curriculum_bundle(course, out / "course.zip")
    print(f"wrote {bundle}")
    print(f"  as a curriculum: {len(load_curriculum_bundle(bundle).flatten())} modules in 3 gated units")
    print(f"  as a playlist (old client): {len(load_bundle(bundle))} modules, flat\n")

    student = CurriculumSession(course, seed=7)
    results = student.autoplay(AnalystPlayer(seed=7))
    print("unit results:")
    for r in results:
        status = "PASS" if r.passed else "fail"
        score = f"{r.correct}/{r.questions}" if r.questions else "-"
        print(f"  [{status}] {r.unit_title}: {score}")
    print(f"\ncourse complete: {student.is_complete()}")
    print(f"units passed: {', '.join(student.passed_units)}")


if __name__ == "__main__":
    main()
