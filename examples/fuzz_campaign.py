"""An open-ended differential fuzzing campaign over the scenario space.

Where ``tests/verify/test_fuzz_corpus.py`` replays one fixed-seed corpus on
every CI push, this script keeps drawing *new* corpora — round after round,
each from a fresh seed — and fans them over the parallel runtime.  Any
oracle disagreement is shrunk to a minimal spec and written to
``tests/corpus/`` as a replayable JSON repro file (see the README there).

Run:  python examples/fuzz_campaign.py                      # until interrupted
      python examples/fuzz_campaign.py --rounds 5           # bounded soak
      python examples/fuzz_campaign.py --seed 7 --specs 500 # one named corpus
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.verify import CorpusConfig, make_corpus, run_corpus

DEFAULT_REPRO_DIR = Path(__file__).resolve().parent.parent / "tests" / "corpus"


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=0,
                        help="rounds to run (0 = until interrupted or failing)")
    parser.add_argument("--specs", type=int, default=300,
                        help="specs per round (default 300)")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed of the first round (default: wall clock)")
    parser.add_argument("--workers", type=int, default=4,
                        help="runtime workers for the fan-out (default 4)")
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--max-n", type=int, default=32,
                        help="largest matrix size to draw (default 32)")
    parser.add_argument("--repro-dir", type=Path, default=DEFAULT_REPRO_DIR,
                        help="where minimized failing specs are written")
    parser.add_argument("--keep-going", action="store_true",
                        help="continue past a failing round")
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    config = CorpusConfig(n_range=(4, args.max_n))
    seed = args.seed if args.seed is not None else int(time.time())
    checked = failures = round_no = 0
    started = time.time()
    print(f"fuzzing: {args.specs} specs/round, backend={args.backend}, "
          f"workers={args.workers}, first seed={seed}")
    try:
        while args.rounds <= 0 or round_no < args.rounds:
            round_seed = seed + round_no
            round_no += 1
            corpus = make_corpus(args.specs, seed=round_seed, config=config)
            t0 = time.time()
            report = run_corpus(
                corpus,
                workers=args.workers,
                backend=args.backend,
                repro_dir=args.repro_dir,
            )
            counts = report.counts
            checked += counts["specs"]
            failures += len(report.failures)
            print(f"round {round_no:>4} (seed {round_seed}): "
                  f"{counts['passed']} passed, {counts['failed']} failed, "
                  f"{counts['skipped']} skipped  [{time.time() - t0:.1f}s]")
            if not report.ok:
                print(report.summary())
                if not args.keep_going:
                    break
    except KeyboardInterrupt:
        print("\ninterrupted")
    elapsed = max(time.time() - started, 1e-9)
    print(f"\ncampaign: {checked} specs in {round_no} round(s), "
          f"{failures} failure(s), {elapsed:.0f}s "
          f"({checked / elapsed:.0f} specs/s)")
    if failures:
        print(f"minimized repros in {args.repro_dir}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
