"""Educator workflow: author a custom lesson bundle from the generators.

This is the paper's core design point — "the key design choice ... was to
define the learning modules via easily editable JSON files that a non-game
developer could use to create new learning modules."  Here we build a themed
three-lesson bundle programmatically, obfuscate the answers (the paper's
future-work item), and write both loose JSON files and a zip bundle the game
loads directly.

Run:  python examples/build_custom_module.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.graphs import ddos
from repro.graphs.compose import challenge
from repro.graphs.topologies import external_supernode
from repro.modules.builder import ModuleBuilder
from repro.modules.library import HINT_ZERO_BOTNETS
from repro.modules.loader import load_bundle, save_bundle, save_module
from repro.modules.obfuscate import obfuscate_module


def build_lessons() -> list:
    """Three escalating lessons: spot the hub, spot the flood, find it in noise."""
    lessons = []

    lessons.append(
        ModuleBuilder("Lesson 1: The Popular Server")
        .author("Example Educator")
        .matrix(external_supernode(10, packets=2))
        .question(
            "Which choice is the displayed traffic pattern most relevant to?",
            answers=["External supernode", "Isolated links", "Ring"],
            correct=0,
            hint="One endpoint outside your network that everyone talks to.",
        )
        .build()
    )

    lessons.append(
        ModuleBuilder("Lesson 2: The Flood")
        .author("Example Educator")
        .matrix(ddos.ddos_attack(10))
        .question(
            "Which choice is the displayed traffic pattern most relevant to?",
            answers=["DDoS attack", "Backscatter", "Command and control (C2)"],
            correct=0,
            hint=HINT_ZERO_BOTNETS,
        )
        .build()
    )

    hidden = challenge(ddos.ddos_attack(10), noise_density=0.1, seed=99)
    lessons.append(
        ModuleBuilder("Lesson 3: Flood in the Noise")
        .author("Example Educator")
        .matrix(hidden)
        .question(
            "Background chatter has been added. What is hidden inside it?",
            answers=["DDoS attack", "Security (walls-in)", "Mesh"],
            correct=0,
            hint="Look for the heaviest column.",
        )
        .build()
    )
    return lessons


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("custom_lessons")
    out.mkdir(parents=True, exist_ok=True)

    lessons = [obfuscate_module(m) for m in build_lessons()]

    # loose JSON files — hand-editable, reviewable, printable
    for k, lesson in enumerate(lessons, start=1):
        path = save_module(lesson, out / f"{k:02d}_{lesson.name.split(':')[0].lower().replace(' ', '_')}.json")
        print(f"wrote {path}")

    # the zip bundle the game presents sequentially
    bundle = out / "lesson_bundle.zip"
    names = save_bundle(lessons, bundle)
    print(f"wrote {bundle} with members: {names}")

    # prove it loads back
    loaded = load_bundle(bundle)
    print(f"bundle loads {len(loaded)} modules; answers are obfuscated: "
          f"{[m.question.is_obfuscated for m in loaded]}")
    print(f"\nplay it:  traffic-warehouse {bundle}")


if __name__ == "__main__":
    main()
