"""The firewall panel, built lazily: masks, accumulators, and the planner.

Walkthrough of the expression layer (:mod:`repro.assoc.expr`) on the
firewall lesson from the paper's future-work list:

1. build combined traffic (security posture + a DDoS flood) and the
   perimeter policy,
2. split it into compliant/violating panels with masked selects —
   ``traffic⟨allowed⟩`` and ``traffic⟨¬allowed⟩`` — instead of dense
   ``np.where`` grids,
3. ask "which *relayed* flows would the firewall pass?" with a fused
   masked product (``(T·T)⟨allowed⟩``) and show the planner's schedule,
4. accumulate a day of traffic windows into one matrix with
   ``total(accum=PLUS) << union_all(windows)``.

Run:  python examples/masked_firewall.py
"""

from __future__ import annotations

import importlib

from repro.assoc.expr import Mat, lazy, union_all
from repro.assoc.semiring import PLUS
from repro.graphs import ddos
from repro.graphs.compose import overlay
from repro.graphs.firewall import (
    compliant_traffic,
    default_policy,
    violating_traffic,
    violations,
)

defense = importlib.import_module("repro.graphs.defense")


def build_panels() -> None:
    traffic = overlay([defense.security(10), ddos.ddos_attack(10)])
    policy = default_policy()

    print("=== combined traffic ===")
    print(traffic.to_text())

    good = compliant_traffic(traffic, policy)   # traffic⟨allowed⟩, blue
    bad = violating_traffic(traffic, policy)    # traffic⟨¬allowed⟩, red
    print("\n=== compliant (masked select, blue) ===")
    print(good.to_text(show_colors=True))
    print("\n=== violating (complement-masked select, red) ===")
    print(bad.to_text(show_colors=True))

    print("\n=== drop log ===")
    for src, dst, packets in violations(traffic, policy):
        print(f"  DENY {src:>5} -> {dst:<5} ({packets} packets)")

    # conservation: the mask and its complement partition the traffic
    assert good.total_packets() + bad.total_packets() == traffic.total_packets()


def masked_relay_analysis() -> None:
    """Fused masked product: relayed flows the policy would still pass."""
    traffic = overlay([defense.security(10), ddos.ddos_attack(10)])
    policy = default_policy()

    t = lazy(traffic.to_csr())
    expr = t.mxm(traffic.to_csr())          # two-hop relay picture, deferred
    plan = expr.plan(mask=policy.as_mask())
    print("\n=== planner schedule for (T·T)⟨allowed⟩ ===")
    print(" ", plan.describe())
    assert not plan.materializes_unmasked   # the full product never exists

    relayed_ok = expr.new(mask=policy.as_mask())
    print(f"  relayed flows passing the firewall: {relayed_ok.nnz} cells")

    # the same thing at the TrafficMatrix level
    panel = traffic.compose(traffic, mask=policy.as_mask())
    assert panel.nnz() == relayed_ok.nnz


def accumulate_windows() -> None:
    """A day of traffic accumulated with one accumulator assignment."""
    windows = [
        overlay([defense.security(10), ddos.ddos_attack(10)]).to_csr()
        for _ in range(8)
    ]
    total = Mat.from_csr(windows[0])
    total(accum=PLUS) << union_all(windows[1:])   # one fused coalesce
    print("\n=== 8 windows accumulated ===")
    print(f"  total packets: {int(total.csr.data.sum())} "
          f"(= 8 x {int(windows[0].data.sum())})")
    assert int(total.csr.data.sum()) == 8 * int(windows[0].data.sum())


def main() -> None:
    build_panels()
    masked_relay_analysis()
    accumulate_windows()


if __name__ == "__main__":
    main()
