"""The resident scenario service: warming, a 200-spec batch, delta rebuilds.

Walkthrough of :class:`repro.scenarios.ScenarioService`:

1. start the service (bounded queue + fixed worker concurrency),
2. warm the content-addressed cache with the curriculum's common specs,
3. stream a 200-spec batch through it with live progress,
4. re-run the batch — served from cache, bit-identically,
5. extend a scenario incrementally with ``apply_delta`` and compare the
   recomputed-row accounting against a full rebuild,
6. read the hit-rate analytics the service collected along the way.

Run:  python examples/scenario_service.py
"""

from __future__ import annotations

import asyncio
import time

from repro.scenarios import (
    NoiseSpec,
    OverlaySpec,
    ScenarioService,
    ScenarioSpec,
    scenario_names,
)


def curriculum(count: int) -> list[ScenarioSpec]:
    """A deterministic mix over every non-noise generator family."""
    bases = sorted(set(scenario_names()) - {"background_noise"})
    return [
        ScenarioSpec(
            base=bases[k % len(bases)],
            n=24,
            seed=k,
            noise=NoiseSpec(density=0.05) if k % 2 else None,
        )
        for k in range(count)
    ]


def progress_line(done: int, total: int) -> None:
    if done % 50 == 0 or done == total:
        print(f"  progress: {done}/{total}")


async def main() -> None:
    specs = curriculum(200)

    async with ScenarioService(concurrency=4, queue_size=64) as service:
        # 1. warm the cache with the specs every session starts from
        common = specs[:40]
        built = await service.warm(common)
        print(f"warmed {built} common specs into the cache "
              f"({len(common) - built} were already resident)\n")

        # 2. the 200-spec batch; the warmed prefix is served without building
        t0 = time.perf_counter()
        first = await service.generate(specs, on_progress=progress_line)
        cold_ms = (time.perf_counter() - t0) * 1e3
        print(f"cold batch: {len(first)} matrices in {cold_ms:.0f} ms\n")

        # 3. the same batch again — every spec is a cache hit now
        t0 = time.perf_counter()
        second = await service.generate(specs)
        warm_ms = (time.perf_counter() - t0) * 1e3
        identical = all(
            a == b and a.meta == b.meta for a, b in zip(first, second)
        )
        print(f"warm batch: {warm_ms:.0f} ms "
              f"({cold_ms / max(warm_ms, 1e-9):.1f}x) — bit-identical: {identical}\n")

        # 4. extend one scenario incrementally: only the row blocks the new
        #    overlay's packets touch are recomputed
        base = ScenarioSpec(
            "ring",
            n=200,
            seed=7,
            overlays=(OverlaySpec("ddos_attack"), OverlaySpec("staging")),
        )
        await service.generate([base])  # build + cache the base scenario
        result = await service.apply_delta(base, {"name": "infiltration"})
        stats = result.stats
        full = result.spec.build()
        print("delta rebuild: ring(200) + ddos + staging, then + infiltration")
        print(f"  rows recomputed : {stats.rows_recomputed}/{stats.rows} "
              f"(blocks {stats.blocks_recomputed}/{stats.blocks_total})")
        print(f"  base cache hit  : {stats.base_cache_hit}")
        print(f"  == full rebuild : {result.matrix == full and result.matrix.meta == full.meta}\n")

        # 5. the analytics the service kept while all of that ran
        report = service.stats()
        cache = report["cache"]
        print("service stats:")
        print(f"  specs completed : {report['specs_completed']}")
        print(f"  delta rebuilds  : {report['delta_rebuilds']}")
        print(f"  cache hit rate  : {cache['hit_rate']:.3f} "
              f"({cache['hits']} hits / {cache['hits'] + cache['misses']} requests)")
        print("  hit rate by family:")
        for family, rate in sorted(cache["family_hit_rates"].items()):
            print(f"    {family:<9} {rate:.3f}")


if __name__ == "__main__":
    asyncio.run(main())
