"""Quickstart: load a learning module, read the matrix, answer the question.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import builtin_catalog
from repro.game.quiz import judge_answer, present_question
from repro.render.ascii2d import render_matrix_2d


def main() -> None:
    # The built-in catalogue holds every module the paper describes,
    # keyed "family/name".
    catalog = builtin_catalog()
    module = catalog["templates/10x10"]

    print(module.describe())
    print()

    # The 2-D top-down view: "how they would generally see a matrix in a
    # spreadsheet, a textbook, or a presentation".
    print(render_matrix_2d(module.matrix, ansi=False))
    print()

    # Present the three-choice question with shuffled options (seeded here so
    # the walkthrough is reproducible) and answer it by reading the matrix.
    pres = present_question(module, seed=2024)
    print(pres.text)
    for line in pres.option_lines():
        print(line)

    answer = str(module.matrix["WS1", "ADV4"])  # read the cell the question asks about
    choice = list(pres.options).index(answer)
    result = judge_answer(module.question, pres, choice)
    print()
    print(f"chose option {choice + 1} ({result.chosen!r}) -> "
          f"{'correct!' if result.correct else 'wrong'}")


if __name__ == "__main__":
    main()
