"""The durable scenario store: build once, restart, serve from disk.

Walkthrough of :mod:`repro.store`:

1. build a mixed corpus and persist it write-through to a ScenarioStore,
2. simulate a process restart (fresh store instance, cold in-memory cache)
   and serve the same corpus bit-identically from disk,
3. inspect the store: entries, tier analytics, integrity verification,
4. persist a fuzz campaign's findings durably and replay one,
5. administer the store from the command line (`python -m repro.store`).

Run:  python examples/persistent_store.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.scenarios import (
    NoiseSpec,
    ScenarioCache,
    ScenarioSpec,
    generate_batch,
)
from repro.store import ScenarioStore


def corpus() -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            base=base,
            n=48,
            seed=seed,
            noise=NoiseSpec(density=0.05) if seed % 2 else None,
        )
        for seed, base in enumerate(
            ("ring", "star", "ddos_attack", "security", "mesh", "clique") * 4
        )
    ]


def build_and_persist(root: Path) -> float:
    """Process 1: generate the corpus with the store as write-through L2."""
    specs = corpus()
    t0 = time.perf_counter()
    with ScenarioStore(root) as store:
        generate_batch(specs, store=store)
        stats = store.stats()
    elapsed = time.perf_counter() - t0
    print(f"built + persisted {stats['entries']} scenarios "
          f"({stats['payload_bytes'] / 1024:.0f} KiB) in {elapsed * 1e3:.0f} ms")
    return elapsed


def warm_start(root: Path, t_build: float) -> None:
    """Process 2 (simulated): cold L1, everything served off disk."""
    specs = corpus()
    reference = generate_batch(specs)  # what a rebuild would produce
    t0 = time.perf_counter()
    with ScenarioStore(root) as store:
        cache = ScenarioCache(store=store)
        served = [cache.fetch(spec)[0] for spec in specs]
    elapsed = time.perf_counter() - t0

    assert all(got == ref for got, ref in zip(served, reference))
    analytics = cache.analytics()
    print(f"warm start served {len(served)} scenarios bit-identically in "
          f"{elapsed * 1e3:.0f} ms ({t_build / elapsed:.1f}x faster than rebuild)")
    print(f"tiers: l1_hits={analytics.l1_hits} l2_hits={analytics.l2_hits} "
          f"misses={analytics.misses}")


def inspect(root: Path) -> None:
    with ScenarioStore(root) as store:
        print(f"\n{store!r}")
        for row in store.entries()[:3]:
            print(f"  {row.key[:16]}  {row.base:<12} n={row.n} "
                  f"seed={row.seed} bytes={row.payload_bytes}")
        print(f"  ... {store.index.count()} entries total")
        problems = store.verify()
        print(f"verify: {sum(len(v) for v in problems.values())} problem(s)")
        report = store.gc(dry_run=True)
        print(f"gc --dry-run: {len(report['orphan_blobs'])} orphan(s), "
              f"{len(report['staging_files'])} staging file(s)")


def durable_repro(root: Path) -> None:
    """Persist a finding under kind="repro" and replay it from the store."""
    from repro.verify import replay_from_store

    suspect = ScenarioSpec(base="clique", n=10, seed=3)
    with ScenarioStore(root) as store:
        store.put(
            suspect,
            suspect.build(),
            kind="repro",
            extra={"oracle": "kernel_equality", "detail": "demo finding"},
        )
        # any later process replays it straight from the content address —
        # the recorded oracle name selects the battery
        verdicts = replay_from_store(store, suspect.cache_key())
        outcome = "passed" if all(v.passed or v.skipped for v in verdicts) else "FAILED"
        print(f"\nreplayed stored repro {suspect.cache_key()[:12]}…: {outcome}")


def cli_tour(root: Path) -> None:
    print("\nadminister from the shell:")
    for cmd in ("ls", "stats", "gc --dry-run", "verify --rebuild"):
        print(f"  python -m repro.store --root {root} {cmd}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro_store_demo_") as tmp:
        root = Path(tmp) / "store"
        t_build = build_and_persist(root)
        warm_start(root, t_build)
        inspect(root)
        durable_repro(root)
        cli_tour(root)


if __name__ == "__main__":
    main()
