"""The unified scenario API: specs, batch generation, a 100-scenario curriculum.

Walkthrough of :mod:`repro.scenarios`:

1. enumerate the generator registry and its parameter schemas,
2. describe scenarios declaratively (fluent builder / JSON round trip),
3. fan a mixed curriculum of 100 specs out over the parallel runtime,
4. verify every matrix classifies back to its recipe,
5. play a generated curriculum with the analyst bot.

Run:  python examples/scenario_batch.py
"""

from __future__ import annotations

import time

from repro.game.curriculum_session import CurriculumSession
from repro.game.players import AnalystPlayer
from repro.graphs.classify import classify_spec
from repro.scenarios import (
    NoiseSpec,
    ScenarioBuilder,
    ScenarioSpec,
    generate_batch,
    parameter_schema,
    scenario_names,
)


def show_registry() -> None:
    print(f"registry: {len(scenario_names())} generators")
    for family in ("pattern", "topology", "attack", "defense", "ddos", "noise"):
        print(f"  {family:<9} {', '.join(sorted(scenario_names(family=family)))}")
    schema = parameter_schema("ddos_attack")
    params = ", ".join(p["name"] for p in schema["params"])
    print(f"\nintrospection: ddos_attack({params})\n")


def show_declarative_specs() -> None:
    matrix = (
        ScenarioBuilder()
        .base("star", n=12)
        .with_noise(density=0.05)
        .overlay("ddos_attack")
        .seed(7)
        .build()
    )
    spec_json = ScenarioSpec.from_dict(matrix.meta["scenario"]).to_json()
    rebuilt = ScenarioSpec.from_json(spec_json).build()
    print("declarative build: star(12) + ddos overlay + 5% noise")
    print(f"  provenance round trip rebuilds identically: {rebuilt == matrix}\n")


def mixed_curriculum(count: int) -> list[ScenarioSpec]:
    """A deterministic mix over every non-noise generator family."""
    bases = sorted(set(scenario_names()) - {"background_noise"})
    return [
        ScenarioSpec(
            base=bases[k % len(bases)],
            n=10,
            seed=k,
            noise=NoiseSpec(density=0.08) if k % 2 else None,
        )
        for k in range(count)
    ]


def batch_generate() -> None:
    specs = mixed_curriculum(100)

    t0 = time.perf_counter()
    serial = generate_batch(specs, workers=1, backend="serial")
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = generate_batch(specs, workers=4)
    t_parallel = time.perf_counter() - t0

    identical = all(a == b for a, b in zip(serial, parallel))
    print(f"batch of {len(specs)} scenarios:")
    print(f"  serial      {t_serial * 1e3:7.1f} ms")
    print(f"  4 workers   {t_parallel * 1e3:7.1f} ms")
    print(f"  serial == parallel, bit for bit: {identical}")

    # every clean (noise-free) single-layer spec classifies back to its recipe
    clean = [s for s in specs if s.noise is None and s.base not in
             ("full_attack", "full_ddos", "full_posture", "template_matrix")]
    correct = sum(classify_spec(s) == s.base for s in clean)
    print(f"  classify round trip on {len(clean)} clean specs: {correct}/{len(clean)}\n")


def play_generated_curriculum() -> None:
    session = CurriculumSession.from_specs(
        {
            "Unit 1: Graph Patterns": [
                ScenarioSpec(base=name) for name in ("star", "ring", "clique")
            ],
            "Unit 2: Spot the Attack": [
                ScenarioSpec(base=name, seed=3, noise=NoiseSpec(density=0.05))
                for name in ("infiltration", "ddos_attack")
            ],
        },
        seed=7,
        workers=4,
    )
    results = session.autoplay(AnalystPlayer(seed=7))
    print("generated curriculum, analyst playthrough:")
    for r in results:
        status = "PASS" if r.passed else "fail"
        print(f"  [{status}] {r.unit_title}: {r.correct}/{r.questions}")


def main() -> None:
    show_registry()
    show_declarative_specs()
    batch_generate()
    play_generated_curriculum()


if __name__ == "__main__":
    main()
