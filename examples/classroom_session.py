"""Classroom simulation: three student profiles play the whole catalogue.

The paper's evaluation is classroom delivery; this example measures what a
class would: the score gap between a student who answers the way the modules
teach (read the matrix, classify the pattern) and one who guesses — against
the 1/3 floor the deliberate three-option design implies.

Run:  python examples/classroom_session.py
"""

from __future__ import annotations

from repro.game.app import TrafficWarehouse
from repro.game.players import AnalystPlayer, PerfectPlayer, RandomPlayer


def main() -> None:
    results = {}
    per_family: dict[str, dict[str, list[bool]]] = {}

    for player in (PerfectPlayer(), AnalystPlayer(seed=0), RandomPlayer(seed=0)):
        game = TrafficWarehouse(seed=42)
        report = game.autoplay(player)
        results[player.name] = report

        # break the analyst's answers down by module family
        if player.name == "analyst":
            for answered in report.answers:
                key = next(
                    (k for k, m in zip(
                        [f"{i}" for i in range(len(game.session.modules))],
                        game.session.modules,
                    ) if m.name == answered.module_name),
                    None,
                )
                family = answered.module_name.split(":")[0].split("/")[0]
                per_family.setdefault(family, {}).setdefault("ok", []).append(
                    answered.result.correct
                )

    print("player   score")
    print("-" * 30)
    for name, report in results.items():
        print(f"{name:8s} {report.summary()}")

    analyst = results["analyst"]
    random_score = results["random"].score_fraction
    print()
    print(f"analyst beats random guessing by "
          f"{100 * (analyst.score_fraction - random_score):.0f} points — "
          "the modules are answerable from the matrix alone.")

    # which questions did the analyst miss? those are the hard lessons
    missed = [a.module_name for a in analyst.answers if not a.result.correct]
    if missed:
        print("\nhardest modules (analyst missed):")
        for name in missed:
            print(f"  - {name}")


if __name__ == "__main__":
    main()
