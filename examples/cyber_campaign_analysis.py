"""Analyse a full cyber campaign the way the modules teach — at stream scale.

Combines everything the paper's lineage is about: a notional attack unfolds
stage by stage, is hidden in background traffic, classified back out of the
matrix, anonymized for sharing, and finally accumulated from a packet stream
with windowed associative arrays (the refs [16]-[19] pipeline).

Run:  python examples/cyber_campaign_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.anonymize import anonymize_matrix
from repro.analysis.stats import scaling_relation, synthetic_traffic
from repro.analysis.streaming import window_stream
from repro.graphs import attack
from repro.graphs.classify import classify_scenario
from repro.graphs.compose import challenge, sequence
from repro.graphs.metrics import summarize
from repro.render.ascii2d import render_matrix_compact


def watch_the_attack_unfold() -> None:
    print("=== 1. the attack, stage by stage (cumulative view) ===")
    stages = sequence(list(attack.ATTACK_STAGES.values()), n=10, cumulative=True)
    for name, matrix in zip(attack.ATTACK_STAGES, stages):
        verdict = classify_scenario(matrix)
        stats = summarize(matrix)
        print(f"\n-- after {name}: {stats.nnz} active links, "
              f"{stats.total_packets} packets; latest activity reads as "
              f"{verdict.best!r}")
        print(render_matrix_compact(matrix))


def find_it_in_noise() -> None:
    print("\n=== 2. the same infiltration, hidden in benign chatter ===")
    hidden = challenge(attack.infiltration(10), noise_density=0.12, seed=7)
    print(render_matrix_compact(hidden))
    verdict = classify_scenario(hidden)
    ranked = sorted(verdict.scores.items(), key=lambda kv: -kv[1])[:3]
    print("top candidates:", ", ".join(f"{n} ({s:.2f})" for n, s in ranked))


def share_without_identities() -> None:
    print("\n=== 3. anonymized for sharing (pattern intact) ===")
    from repro.graphs.classify import classify_graph_pattern
    from repro.graphs.patterns import star

    matrix = star(10)
    anon = anonymize_matrix(matrix, key="classroom-2026")
    assert np.array_equal(anon.packets, matrix.packets)
    print("labels:", " ".join(anon.labels))
    print("structural pattern survives hashing:", classify_graph_pattern(anon))
    print("(space-based scenario classification needs the blue/grey/red map "
          "shipped alongside — hashed labels carry no space prefix)")


def stream_scale() -> None:
    print("\n=== 4. stream-scale accumulation (windowed assoc arrays) ===")
    events = synthetic_traffic(n_events=8000, n_endpoints=300, heavy_tail=True, seed=1)
    for _array, stats in list(window_stream(events, window_size=2048))[:3]:
        print(f"window {stats.window_index}: {stats.total_packets} packets, "
              f"{stats.unique_links} links, {stats.unique_sources} sources, "
              f"busiest source sent {stats.max_source_packets}")
    fit = scaling_relation(
        events, lambda s: s.unique_links, quantity_name="unique links",
        window_sizes=(256, 512, 1024, 2048),
    )
    print(f"unique links ~ packets^{fit.slope:.2f} (r^2={fit.r_squared:.3f}) — "
          "sublinear: the heavy-tail signature of real-looking traffic")


def main() -> None:
    watch_the_attack_unfold()
    find_it_in_noise()
    share_without_identities()
    stream_scale()


if __name__ == "__main__":
    main()
