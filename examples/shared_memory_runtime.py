"""Zero-copy process dispatch: the shared-memory operand plane in action.

Run:  PYTHONPATH=src python examples/shared_memory_runtime.py

Builds a ~10^5-nnz banded matrix, squares it under the process backend with
shared-memory dispatch forced on and forced off, and shows that the results
are bit-identical, the segment registry is empty afterwards, and what the
dispatch actually shipped in each mode.
"""

from __future__ import annotations

import numpy as np

from repro import runtime
from repro.assoc.semiring import PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.runtime import shm


def banded(n: int, offsets: tuple[int, ...], seed: int) -> CSRMatrix:
    rows = np.repeat(np.arange(n, dtype=np.int64), len(offsets))
    cols = (rows + np.tile(np.array(offsets, dtype=np.int64), n)) % n
    vals = np.random.default_rng(seed).integers(1, 10, rows.size).astype(np.int64)
    return CSRMatrix.from_triples(rows, cols, vals, (n, n))


def main() -> None:
    a = banded(25_000, (1, 3, 7, 12), seed=1)
    b = banded(25_000, (1, 3, 7, 12), seed=2)
    operand_bytes = shm.csr_nbytes(a) + shm.csr_nbytes(b)
    print(f"operands: {a.nnz} + {b.nnz} nnz, {operand_bytes / 2**20:.1f} MiB total")

    with runtime.configured(workers=1, backend="serial"):
        reference = a.mxm(b, PLUS_TIMES)

    # Force the shared-memory plane on (threshold 0): operands are exported
    # into multiprocessing.shared_memory once, each block task ships only
    # segment names + a row range, and workers attach zero-copy views.
    with runtime.configured(
        workers=2, backend="process", min_parallel_work=1, shm_min_bytes=0
    ):
        via_shm = a.mxm(b, PLUS_TIMES)

    # Force it off (threshold None): the classic path pickles operand slices
    # into every task payload.  Identical result, more bytes moved.
    with runtime.configured(
        workers=2, backend="process", min_parallel_work=1, shm_min_bytes=None
    ):
        via_pickle = a.mxm(b, PLUS_TIMES)

    print(f"shm    == serial: {via_shm == reference}")
    print(f"pickle == serial: {via_pickle == reference}")

    # Leases are scoped to the kernel call: nothing outlives it.
    print(f"live segments after both runs: {shm.live_segment_names()}")

    # The default gate: process backend, >1 worker, operands >= 1 MiB.
    cfg = runtime.RuntimeConfig(workers=2, backend="process")
    print(
        f"default gate at {cfg.shm_min_bytes} bytes -> "
        f"use_shm({operand_bytes}) = {cfg.use_shm(operand_bytes)}, "
        f"use_shm(1024) = {cfg.use_shm(1024)}"
    )

    runtime.shutdown_executors()


if __name__ == "__main__":
    main()
