"""Fig. 9 — DDoS components: C2, botnet clients, attack, backscatter.

Asserts the figure's structural relations: identical C2→client tasking, the
flood dominating the packet counts, and backscatter being exactly the
transpose of the attack pattern.
"""

from __future__ import annotations

import numpy as np

from conftest import write_artifact

from repro.graphs.classify import classify_scenario
from repro.graphs.ddos import DDOS_COMPONENTS, full_ddos
from repro.render.ascii2d import render_matrix_compact


def test_fig9_ddos_components(benchmark, artifacts):
    def generate_and_classify():
        return {
            name: (gen(10), classify_scenario(gen(10)).best)
            for name, gen in DDOS_COMPONENTS.items()
        }

    results = benchmark(generate_and_classify)

    panels = []
    for name, (matrix, classified) in results.items():
        assert classified == name, f"{name} classified as {classified}"
        panels.append(f"Fig. 9 — {name} (classified: {classified})\n{render_matrix_compact(matrix)}")

    tasking = results["botnet_clients"][0]
    vals = tasking.packets[tasking.packets > 0]
    assert (vals == vals[0]).all()  # "identical communications"

    attack = results["ddos_attack"][0]
    backscatter = results["backscatter"][0]
    assert np.array_equal(backscatter.packets > 0, attack.packets.T > 0)
    assert attack.max_packets() > backscatter.max_packets()  # flood dominates

    combined = full_ddos(10)
    assert combined.max_packets() == attack.max_packets()
    panels.append("All components combined\n" + render_matrix_compact(combined))

    write_artifact(
        artifacts / "fig9_ddos_components.txt",
        "Fig. 9: DDoS attack components",
        "\n\n".join(panels),
    )
