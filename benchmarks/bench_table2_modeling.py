"""Table II — 3-D modelling tool comparison (MagicaVoxel vs Blender vs Maya).

Regenerates the paper's criteria rows and measures what the voxel substrate
makes quantitative: building every warehouse asset voxel-by-voxel and
exporting to ``.obj`` — the "Can export to .obj: Yes" cell, demonstrated
rather than asserted.
"""

from __future__ import annotations

from conftest import format_table, write_artifact

from repro.voxel.assets import ASSET_BUILDERS
from repro.voxel.obj_export import to_obj, write_obj
from repro.voxel.vox_io import read_vox, write_vox

TABLE2_ROWS = [
    ["Cost", "Free to use", "Free to use", "$1,875/yr"],
    ["Model Creation", "LEGO-like voxel building", "Polygon mesh, digital sculpting", "Polygon mesh, digital sculpting"],
    ["Texture Creation", "Paint-by-voxel, place colored voxel", "UV Unwrapping, paint-on-model", "UV Unwrapping, paint-on-model"],
    ["Animation", "Simple animations", "Advanced animations", "Advanced animations"],
    ["Can export to .obj", "Yes", "Yes", "Yes"],
]

REPRO_COLUMN = [
    "Free (pure Python)",
    "Voxel grid API (fill_box / set)",
    "Palette indices per voxel",
    "None (static assets suffice)",
    "Yes (greedy face-culled quads)",
]


def test_table2_rows_and_asset_pipeline(benchmark, artifacts, tmp_path):
    def build_all_assets_and_export():
        stats = {}
        for name, builder in ASSET_BUILDERS.items():
            model = builder()
            obj_text, mtl_text = to_obj(model)
            stats[name] = (model.count(), obj_text.count("\nf "))
        return stats

    stats = benchmark(build_all_assets_and_export)

    # the LEGO-like pipeline produces real, loadable OBJ + VOX for every asset
    for name, builder in ASSET_BUILDERS.items():
        model = builder()
        obj_path, mtl_path = write_obj(model, tmp_path / f"{name}.obj")
        assert obj_path.exists() and mtl_path.exists()
        back = read_vox(write_vox(model, tmp_path / f"{name}.vox"))
        assert back.count() == model.count()

    headers = ["", "MagicaVoxel (paper)", "Blender (paper)", "Maya (paper)", "repro.voxel (ours)"]
    rows = [row + [ours] for row, ours in zip(TABLE2_ROWS, REPRO_COLUMN)]
    asset_lines = "\n".join(
        f"  {name}: {voxels} voxels -> {faces} OBJ faces" for name, (voxels, faces) in stats.items()
    )
    body = format_table(headers, rows) + f"\n\nMeasured asset pipeline:\n{asset_lines}"
    write_artifact(artifacts / "table2_modeling.txt", "Table II: modelling tool comparison", body)
