"""Figs. 3 & 4 — export variables in the Inspector; X/Y label nodes.

Fig. 3 shows the controller's exported variables edited in the Inspector;
Fig. 4 shows the X and Y nodes whose Label3D children the script fills.
This bench regenerates the inspector dump and times the paper's
``set_labels`` path (export wiring → ready → labels assigned).
"""

from __future__ import annotations

from conftest import write_artifact

from repro.engine.inspector import dump_inspector, list_exports
from repro.engine.tree import SceneTree
from repro.game.warehouse import build_level
from repro.modules.templates import template_10x10


def test_fig3_fig4_exports_and_labels(benchmark, artifacts):
    module = template_10x10()

    def wire_and_ready():
        root = build_level(module)
        SceneTree(root)
        return root

    root = benchmark(wire_and_ready)
    controller = root.get_node("PalletAndLabelController")

    # Fig. 3: the four export variables of the paper's listing, wired
    exports = list_exports(controller)
    assert set(exports) == {"y_axis", "x_axis", "pallets", "pallets_are_colored"}
    assert exports["y_axis"].name == "Y"
    assert exports["pallets_are_colored"] is False

    # Fig. 4: X and Y nodes with label-holder children, text set by the script
    x_row = controller.get_node("X")
    y_row = controller.get_node("Y")
    x_texts = [holder.get_child(1).text for holder in x_row.get_children()]
    y_texts = [holder.get_child(1).text for holder in y_row.get_children()]
    assert x_texts == y_texts == list(module.matrix.labels)

    body = (
        dump_inspector(controller)
        + "\n\nX labels: " + " ".join(x_texts)
        + "\nY labels: " + " ".join(y_texts)
    )
    write_artifact(
        artifacts / "fig3_fig4_inspector_labels.txt",
        "Figs. 3/4: export variables and axis label nodes",
        body,
    )
