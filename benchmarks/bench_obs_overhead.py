"""Price of the always-on observability hooks on the blocked-mxm hot path.

``repro.obs`` promises near-zero cost when tracing is disabled: kernels pay a
couple of counter increments and one histogram observation per *dispatch*
(not per row), and the tracer is a shared no-op singleton.  This bench makes
that promise a gate.  It times the same thread-backend ``mxm`` twice —

* **instrumented**: the library exactly as shipped, tracing disabled;
* **bare**: with the two module-level hooks (``blocked._kernel_obs`` and
  ``executor._map_obs``) swapped for transparent no-ops, i.e. the hot path
  with the instrumentation surgically removed —

and asserts the instrumented path is within ``OVERHEAD_CEILING`` of bare.
A second test runs the same kernel with tracing *enabled* and writes the
resulting Perfetto JSON into ``benchmarks/artifacts/`` so every CI bench run
ships an openable trace of the engine.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

import numpy as np

from conftest import format_table, write_artifact

from repro import runtime
from repro.assoc import blocked
from repro.assoc.semiring import PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.obs import trace as obs_trace
from repro.runtime import executor as executor_mod

#: ~160k stored entries: large enough that kernel time dwarfs timer noise,
#: small enough that the bench stays in the smoke budget.
N_ROWS = 40_000
OFFSETS = (1, 2, 5, 9)

#: The ISSUE's acceptance bar: disabled-tracing instrumentation costs <= 5%.
OVERHEAD_CEILING = 0.05
#: Same convention as the other timing gates: only enforce on hosts with
#: enough cores that the pool genuinely runs, and honour the CI skip switch.
GATE_MIN_CPUS = 2


def banded(n: int, offsets: tuple[int, ...], seed: int) -> CSRMatrix:
    rows = np.repeat(np.arange(n, dtype=np.int64), len(offsets))
    cols = (rows + np.tile(np.array(offsets, dtype=np.int64), n)) % n
    rng = np.random.default_rng(seed)
    vals = rng.integers(1, 10, rows.size).astype(np.int64)
    return CSRMatrix.from_triples(rows, cols, vals, (n, n))


def best_of_interleaved(fn_a, fn_b, rounds: int = 6):
    """Best-of timing for two variants, alternating which runs first.

    Sequential best-of blocks are vulnerable to machine drift (the later
    block wins or loses a few percent just from cache and scheduler state);
    alternating the order each round cancels that bias, which matters when
    the quantity under test is a <=5% delta.
    """
    best_a = best_b = float("inf")
    result_a = result_b = None
    for k in range(rounds):
        pair = (("a", fn_a), ("b", fn_b)) if k % 2 == 0 else (("b", fn_b), ("a", fn_a))
        for tag, fn in pair:
            t0 = time.perf_counter()
            out = fn()
            dt = time.perf_counter() - t0
            if tag == "a":
                best_a, result_a = min(best_a, dt), out
            else:
                best_b, result_b = min(best_b, dt), out
    return (best_a, result_a), (best_b, result_b)


@contextmanager
def _noop_kernel_obs(name, cfg, nnz_in):  # noqa: ANN001
    yield obs_trace.NULL_SPAN


@contextmanager
def _noop_map_obs(executor, total, label):  # noqa: ANN001
    yield obs_trace.NULL_TRACER, obs_trace.NULL_SPAN


def test_disabled_tracing_overhead_is_bounded(benchmark, artifacts):
    cpus = runtime.cpu_count()
    a = banded(N_ROWS, OFFSETS, seed=1)
    b = banded(N_ROWS, OFFSETS, seed=2)

    with runtime.configured(
        workers=2, backend="thread", min_parallel_work=1, block_rows=4096
    ):
        assert not obs_trace.is_enabled()
        a.mxm(b, PLUS_TIMES)  # warm the pool and the allocator

        hooks = (blocked._kernel_obs, executor_mod._map_obs)

        def run_instrumented():
            return a.mxm(b, PLUS_TIMES)

        def run_bare():
            blocked._kernel_obs = _noop_kernel_obs
            executor_mod._map_obs = _noop_map_obs
            try:
                return a.mxm(b, PLUS_TIMES)
            finally:
                blocked._kernel_obs, executor_mod._map_obs = hooks

        (t_instr, c_instr), (t_bare, c_bare) = best_of_interleaved(
            run_instrumented, run_bare
        )

        # instrumentation must never change results
        assert c_instr == c_bare, "obs hooks changed the mxm result"

        overhead = t_instr / max(t_bare, 1e-9) - 1.0
        # Timing gates are noisy on shared CI runners; the smoke job sets
        # REPRO_SKIP_SPEEDUP_GATE=1 so only the equality assertion gates there.
        if cpus >= GATE_MIN_CPUS and os.environ.get("REPRO_SKIP_SPEEDUP_GATE") != "1":
            assert overhead <= OVERHEAD_CEILING, (
                f"disabled-tracing instrumentation costs {overhead:+.1%} over the "
                f"bare hot path (ceiling {OVERHEAD_CEILING:.0%})"
            )

        benchmark(a.mxm, b, PLUS_TIMES)

    rows = [[
        f"{a.nnz}",
        f"{t_bare * 1e3:.2f} ms",
        f"{t_instr * 1e3:.2f} ms",
        f"{overhead:+.2%}",
    ]]
    body = format_table(
        ["nnz(A)", "bare (hooks no-op)", "instrumented (tracing off)", "overhead"],
        rows,
    ) + (
        f"\n\nhost: {cpus} CPU(s); thread backend, 2 workers; results"
        "\nverified bit-identical with and without the obs hooks."
    )
    write_artifact(
        artifacts / "obs_overhead.txt",
        "Observability: disabled-tracing overhead on blocked mxm",
        body,
    )


def test_traced_mxm_ships_a_perfetto_artifact(artifacts):
    a = banded(4_000, OFFSETS, seed=3)
    b = banded(4_000, OFFSETS, seed=4)
    with runtime.configured(
        workers=2, backend="thread", min_parallel_work=1, block_rows=512,
        tracing=True,
    ):
        a.mxm(b, PLUS_TIMES)
        tracer = obs_trace.get_tracer()
        names = {rec.name for rec in tracer.spans()}
        assert "kernel.parallel_mxm" in names
        assert "runtime.map" in names
        path = obs_trace.write_trace_json(
            tracer.spans(), artifacts / "obs_trace_mxm.perfetto.json"
        )
    document = json.loads(path.read_text())
    assert document["traceEvents"], "traced run produced an empty trace"
    assert not obs_trace.is_enabled()
