"""Section II — the JSON learning-module pipeline.

Times the educator-facing path: serialise the full built-in catalogue into a
zip bundle, then load + validate every module back (the operation the game
performs when a student picks a bundle).
"""

from __future__ import annotations

import io

from conftest import write_artifact

from repro.modules.library import builtin_catalog
from repro.modules.loader import load_bundle, save_bundle
from repro.modules.schema import validate_module_dict
from repro.modules.templates import template_10x10_dict


def test_catalog_bundle_load(benchmark, artifacts):
    catalog = builtin_catalog()
    buf = io.BytesIO()
    save_bundle(list(catalog.values()), buf)
    payload = buf.getvalue()

    def load():
        return load_bundle(io.BytesIO(payload))

    modules = benchmark(load)
    assert len(modules) == len(catalog)
    assert all(m.matrix.n in (6, 10) for m in modules)

    lines = [f"bundle: {len(payload)} bytes, {len(modules)} modules"]
    lines += [f"  {m.name} [{m.size}]" for m in modules]
    write_artifact(
        artifacts / "modules_pipeline.txt",
        "Section II: JSON module bundle pipeline",
        "\n".join(lines),
    )


def test_template_validation(benchmark):
    doc = template_10x10_dict()
    module = benchmark(validate_module_dict, doc)
    assert module.matrix["WS1", "ADV4"] == 2
