"""Scenario cache and delta rebuilds: cold vs warm batches, delta vs full.

Two claims of the scenario service, timed and gated:

* **Warm-cache speedup** — a batch served entirely from the content-addressed
  :class:`~repro.scenarios.ScenarioCache` must beat rebuilding it cold by at
  least :data:`WARM_SPEEDUP_FLOOR` (a cache hit is a key lookup plus one grid
  copy; a build runs generators, overlays, and noise).  Skippable on shared
  runners via ``REPRO_SKIP_SPEEDUP_GATE=1`` — bit-identity always gates.
* **Delta vs full rebuild** — :func:`~repro.scenarios.apply_delta` with a
  cached base must reproduce the full from-scratch rebuild of the extended
  spec bit for bit, recomputing only the packet-touched row blocks.

Both tables land in ``benchmarks/artifacts/`` with the cache analytics that
produced them, so the hit-rate accounting is part of the inspectable record.
"""

from __future__ import annotations

import os
import time

from conftest import format_table, write_artifact

from repro.scenarios import (
    NoiseSpec,
    OverlaySpec,
    ScenarioCache,
    ScenarioSpec,
    apply_delta,
    extend_spec,
    generate_batch,
    scenario_names,
)

BATCH = 96
N = 60
WARM_SPEEDUP_FLOOR = 2.0
DELTA_BASE_N = 1000


def mixed_specs(count: int, n: int) -> list[ScenarioSpec]:
    bases = sorted(set(scenario_names()) - {"background_noise"})
    return [
        ScenarioSpec(
            base=bases[k % len(bases)],
            n=n,
            seed=k,
            noise=NoiseSpec(density=0.05) if k % 2 else None,
        )
        for k in range(count)
    ]


def best_of(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_warm_cache_speedup_and_bit_identity(benchmark, artifacts):
    specs = mixed_specs(BATCH, N)
    reference = generate_batch(specs)

    cache = ScenarioCache(max_entries=None)
    t_cold, cold = best_of(lambda: generate_batch(specs, cache=cache), repeats=1)
    t_warm, warm = best_of(lambda: generate_batch(specs, cache=cache))

    # the unconditional gate: the cache is invisible except in speed
    for k, (ref, a, b) in enumerate(zip(reference, cold, warm)):
        assert ref == a, f"cold cached batch diverged at spec {k}"
        assert ref == b, f"warm cached batch diverged at spec {k}"
        assert ref.meta == a.meta == b.meta

    analytics = cache.analytics()
    assert analytics.misses == BATCH
    assert analytics.hits >= 3 * BATCH  # the timed warm repeats all hit
    assert analytics.evictions == 0

    speedup = t_cold / max(t_warm, 1e-9)
    if os.environ.get("REPRO_SKIP_SPEEDUP_GATE") != "1":
        assert speedup >= WARM_SPEEDUP_FLOOR, (
            f"warm cache {speedup:.2f}x over cold; floor is {WARM_SPEEDUP_FLOOR}x"
        )

    benchmark(generate_batch, specs, cache=cache)

    rows = [[
        f"{N}x{N}",
        str(BATCH),
        f"{t_cold * 1e3:.1f} ms",
        f"{t_warm * 1e3:.1f} ms",
        f"{speedup:.1f}x",
        f"{analytics.hit_rate:.3f}",
    ]]
    family_lines = "\n".join(
        f"  {family:<9} {rate:.3f}"
        for family, rate in sorted(analytics.family_hit_rates().items())
    )
    body = format_table(
        ["size", "specs", "cold batch", "warm batch", "speedup", "hit rate"], rows
    ) + (
        "\n\nWarm batches are served from the content-addressed cache"
        "\nbit-identically (packets, labels, colours, provenance)."
        f"\n\nlifetime hit rate by scenario family "
        f"({analytics.hits} hits / {analytics.requests} requests):\n" + family_lines
    )
    write_artifact(
        artifacts / "scenario_cache.txt",
        "Scenario service: cold vs warm cached batch generation",
        body,
    )


def test_delta_rebuild_vs_full_and_bit_identity(benchmark, artifacts):
    # A layered base is the delta path's habitat: the full rebuild pays for
    # every base layer again, the delta path reuses their cached composition.
    base = ScenarioSpec(
        "ring",
        n=DELTA_BASE_N,
        seed=7,
        overlays=(
            OverlaySpec("ddos_attack"),
            OverlaySpec("botnet_clients"),
            OverlaySpec("staging"),
        ),
    )
    delta = {"name": "infiltration"}
    target = extend_spec(base, delta)

    cache = ScenarioCache()
    apply_delta(base, delta, cache=cache)  # cold call populates the base entry

    t_full, full = best_of(target.build)
    t_delta, result = best_of(lambda: apply_delta(base, delta, cache=cache))

    # the unconditional gate: incremental == monolithic, bit for bit
    assert result.matrix == full, "delta rebuild diverged from full rebuild"
    assert result.matrix.meta == full.meta
    assert result.stats.base_cache_hit
    assert 0 < result.stats.rows_recomputed < result.stats.rows

    benchmark(apply_delta, base, delta, cache=cache)

    rows = [[
        f"{DELTA_BASE_N}x{DELTA_BASE_N}",
        f"{result.stats.rows_recomputed}/{result.stats.rows}",
        f"{result.stats.blocks_recomputed}/{result.stats.blocks_total}",
        f"{t_full * 1e3:.1f} ms",
        f"{t_delta * 1e3:.1f} ms",
        f"{t_full / max(t_delta, 1e-9):.1f}x",
    ]]
    body = format_table(
        ["size", "rows redone", "blocks redone", "full rebuild", "delta", "speedup"],
        rows,
    ) + (
        "\n\napply_delta reused the cached pre-noise base composition and"
        "\nrecomputed only the packet-touched row blocks; the result matches"
        "\nthe from-scratch rebuild of the extended spec bit for bit."
    )
    write_artifact(
        artifacts / "scenario_delta.txt",
        "Scenario service: incremental delta rebuild vs full rebuild",
        body,
    )
