"""Fig. 10 — nine graph-theory patterns on a 10×10 traffic matrix.

Regenerates every panel (star, clique, bipartite, tree, ring, mesh, toroidal
mesh, self loop, triangle) and asserts the full generator → classifier round
trip, the property that lets the module auto-grade itself.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.graphs.classify import classify_graph_pattern
from repro.graphs.patterns import PATTERN_GENERATORS
from repro.render.ascii2d import render_matrix_compact


def test_fig10_graph_theory_patterns(benchmark, artifacts):
    def generate_and_classify():
        return {
            name: (gen(10), classify_graph_pattern(gen(10)))
            for name, gen in PATTERN_GENERATORS.items()
        }

    results = benchmark(generate_and_classify)

    assert len(results) == 9  # Figs. 10a-10i
    panels = []
    for name, (matrix, classified) in results.items():
        assert classified == name, f"{name} classified as {classified}"
        panels.append(
            f"Fig. 10 — {name} (classified: {classified}, nnz={matrix.nnz()})\n"
            + render_matrix_compact(matrix)
        )

    write_artifact(
        artifacts / "fig10_graph_theory.txt",
        "Fig. 10: graph-theory patterns",
        "\n\n".join(panels),
    )
