"""Fig. 8 — security, defense, deterrence traffic patterns.

Asserts each concept's defining space signature from the paper's prose:
security lives inside blue space, defense steps out into grey space, and
deterrence answers a red-space provocation with visible activity in adversary
space.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core.spaces import NetworkSpace as S
from repro.graphs.classify import classify_scenario
from repro.graphs.defense import DEFENSE_CONCEPTS
from repro.render.ascii2d import render_matrix_compact


def test_fig8_defense_concepts(benchmark, artifacts):
    def generate_and_classify():
        return {
            name: (gen(10), classify_scenario(gen(10)).best)
            for name, gen in DEFENSE_CONCEPTS.items()
        }

    results = benchmark(generate_and_classify)

    panels = []
    for name, (matrix, classified) in results.items():
        assert classified == name, f"{name} classified as {classified}"
        panels.append(f"Fig. 8 — {name} (classified: {classified})\n{render_matrix_compact(matrix)}")

    security_blocks = {k for k, v in results["security"][0].space_traffic().items() if v}
    assert security_blocks == {(S.BLUE, S.BLUE)}

    defense_blocks = {k for k, v in results["defense"][0].space_traffic().items() if v}
    assert (S.BLUE, S.GREY) in defense_blocks and (S.RED, S.GREY) in defense_blocks
    assert (S.RED, S.BLUE) not in defense_blocks  # threats caught before entry

    deterrence = results["deterrence"][0]
    blocks = deterrence.space_traffic()
    assert blocks[(S.BLUE, S.RED)] > 0  # credible activity in adversary space
    assert blocks[(S.RED, S.BLUE)] > 0  # the provocation that triggered it

    write_artifact(
        artifacts / "fig8_defense_concepts.txt",
        "Fig. 8: security / defense / deterrence",
        "\n\n".join(panels),
    )
