"""Ablation — renderer scaling with matrix size, 2-D vs 3-D views.

The game ships 6×6 and 10×10 templates; this bench measures how far the
software rasteriser stretches (up to 24×24) and the relative cost of the two
views.  Expected shape: render time grows with pallet count (voxel count is
O(n²)); the 2-D spreadsheet view is cheap string assembly by comparison.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import format_table, write_artifact

from repro.core.traffic_matrix import TrafficMatrix
from repro.game.warehouse import WarehouseLevel
from repro.modules.builder import ModuleBuilder
from repro.render.ascii2d import render_matrix_2d


def module_of_size(n: int):
    rng = np.random.default_rng(n)
    packets = np.where(rng.random((n, n)) < 0.15, rng.integers(1, 4, (n, n)), 0)
    matrix = TrafficMatrix(packets)
    return ModuleBuilder(f"Scale {n}x{n}").matrix(matrix).build()


def test_render_scaling(benchmark, artifacts):
    sizes = (6, 10, 16, 24)
    rows = []
    for n in sizes:
        level = WarehouseLevel(module_of_size(n))
        level.place_all_packets()

        t0 = time.perf_counter()
        render_matrix_2d(level.module.matrix, ansi=True)
        t_2d = time.perf_counter() - t0

        level.toggle_view()
        t0 = time.perf_counter()
        level.render_ascii(width=100, height=36)
        t_3d = time.perf_counter() - t0

        rows.append([f"{n}x{n}", f"{t_2d * 1e3:.2f} ms", f"{t_3d * 1e3:.2f} ms"])

    # timed target: the paper's 10x10 in 3-D
    level10 = WarehouseLevel(module_of_size(10))
    level10.place_all_packets()
    level10.toggle_view()
    buf = benchmark(level10.render_ascii, width=100, height=36)
    assert "█" in buf.to_plain()

    body = format_table(["matrix", "2-D view", "3-D view"], rows) + (
        "\n\nshape: 3-D cost grows with voxel count (O(n^2) pallets); the 2-D "
        "spreadsheet view stays near-constant."
    )
    write_artifact(artifacts / "render_scaling.txt", "Ablation: renderer scaling", body)
