"""Fused masked mxm vs materialize-then-filter (expression-layer bench).

The acceptance property of the lazy expression layer: a sparse,
non-complemented mask on a semiring product runs the *fused* masked ESC
kernel — masked-out rows are never expanded and masked-out terms never reach
the coalesce sort — instead of materialising the full product and filtering.
This bench runs both paths on the same operands, asserts bit-identity, and
requires the fused path to win by a real margin when the mask is sparse.

Like ``bench_parallel_engine``, the timing gate is skippable on noisy shared
runners via ``REPRO_SKIP_SPEEDUP_GATE=1`` (the smoke job sets it); the
equality assertions always gate.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import format_table, write_artifact

from repro.assoc.expr import lazy
from repro.assoc.semiring import PLUS_TIMES
from repro.assoc.sparse import CSRMatrix, masked_select

SIZES = (400, 800, 1600)
DENSITY = 0.02
#: Sparse mask: ~0.5% of cells allowed — the firewall-style "few rows of
#: interest" shape the fused kernel exists for.
MASK_DENSITY = 0.005

#: Required fused-vs-filter speedup at the largest size (sparse mask).
SPEEDUP_FLOOR = 1.5


def random_sparse(n: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n), dtype=np.int64)
    nnz = max(1, int(n * n * density))
    dense[rng.integers(0, n, nnz), rng.integers(0, n, nnz)] = rng.integers(1, 10, nnz)
    return CSRMatrix.from_dense(dense)


def random_mask(n: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    return CSRMatrix.from_dense(rng.random((n, n)) < density)


def best_of(fn, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_masked_mxm_fused_vs_filter(benchmark, artifacts):
    rows = []
    speedups: dict[int, float] = {}
    for n in SIZES:
        a = random_sparse(n, DENSITY, 1)
        b = random_sparse(n, DENSITY, 2)
        mask = random_mask(n, MASK_DENSITY, 3)

        # the planner must emit the fused kernel for a sparse mask
        plan = lazy(a).mxm(b).plan(mask=mask)
        assert not plan.materializes_unmasked, plan.describe()
        assert "masked_mxm" in plan.kernels, plan.describe()

        t_fused, c_fused = best_of(lambda: lazy(a).mxm(b).new(mask=mask))
        t_filter, c_filter = best_of(
            lambda: masked_select(a.mxm(b, PLUS_TIMES), mask)
        )
        # the headline guarantee: fused output is the filtered output, bit for bit
        assert c_fused == c_filter, f"fused masked mxm diverged at n={n}"
        assert c_fused.dtype == c_filter.dtype
        speedups[n] = t_filter / max(t_fused, 1e-9)
        rows.append([
            str(n),
            f"{c_fused.nnz}",
            f"{t_filter * 1e3:.2f} ms",
            f"{t_fused * 1e3:.2f} ms",
            f"{speedups[n]:.2f}x",
        ])

    # Timing gates are noisy on shared CI runners; the smoke job sets
    # REPRO_SKIP_SPEEDUP_GATE=1 so only the equality assertions gate there.
    if os.environ.get("REPRO_SKIP_SPEEDUP_GATE") != "1":
        largest = SIZES[-1]
        assert speedups[largest] >= SPEEDUP_FLOOR, (
            f"fused masked mxm only {speedups[largest]:.2f}x the "
            f"materialize-then-filter path at n={largest} "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

    a = random_sparse(SIZES[-1], DENSITY, 1)
    b = random_sparse(SIZES[-1], DENSITY, 2)
    mask = random_mask(SIZES[-1], MASK_DENSITY, 3)
    expr = lazy(a).mxm(b)
    benchmark(lambda: expr.new(mask=mask))

    body = format_table(
        ["n", "nnz(C⟨M⟩)", "materialize+filter", "fused masked", "speedup"], rows
    ) + (
        f"\n\nmask density {MASK_DENSITY:.3%}; fused and filtered outputs verified"
        "\nbit-identical at every size (same indptr, indices, data, dtype)."
    )
    write_artifact(
        artifacts / "masked_mxm.txt",
        "Expression layer: fused masked mxm vs materialize-then-filter",
        body,
    )


def test_masked_mxm_dense_mask_still_correct(artifacts):
    """An adversarially dense mask exercises the same kernel correctly (the
    speedup claim is only made for sparse masks)."""
    n = SIZES[0]
    a = random_sparse(n, DENSITY, 4)
    b = random_sparse(n, DENSITY, 5)
    mask = random_mask(n, 0.6, 6)
    fused = lazy(a).mxm(b).new(mask=mask)
    assert fused == masked_select(a.mxm(b, PLUS_TIMES), mask)
    write_artifact(
        artifacts / "masked_mxm_dense_mask.txt",
        "Expression layer: dense-mask correctness check",
        f"n={n}, mask density 60%: fused masked product still bit-identical"
        "\nto materialize-then-filter.",
    )
