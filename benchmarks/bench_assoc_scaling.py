"""Ablation — sparse kernel backends (DESIGN.md design-choice bench).

Compares the hand-rolled vectorized CSR semiring mxm against scipy.sparse and
dense NumPy across matrix sizes, and measures COO build vs CSR compute.
Expected shape: dense wins at tiny n, sparse backends win as n grows with
fixed density; scipy's C kernels beat our NumPy ESC by a constant factor —
the documented cost of keeping the semiring generic in pure Python.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import format_table, write_artifact

from repro.assoc.semiring import MIN_PLUS
from repro.assoc.sparse import CSRMatrix


def random_sparse(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n), dtype=np.int64)
    nnz = max(1, int(n * n * density))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    dense[rows, cols] = rng.integers(1, 10, nnz)
    return dense


def time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_mxm_backend_scaling(benchmark, artifacts):
    density = 0.02
    sizes = (100, 300, 800)
    rows = []
    for n in sizes:
        dense_a = random_sparse(n, density, 1)
        dense_b = random_sparse(n, density, 2)
        ours_a, ours_b = CSRMatrix.from_dense(dense_a), CSRMatrix.from_dense(dense_b)
        sp_a, sp_b = ours_a.to_scipy(), ours_b.to_scipy()

        t_ours = time_once(lambda: ours_a.mxm(ours_b))
        t_scipy = time_once(lambda: sp_a @ sp_b)
        t_dense = time_once(lambda: dense_a @ dense_b)
        # correctness across backends
        assert np.array_equal(ours_a.mxm(ours_b).to_dense(), dense_a @ dense_b)
        rows.append([
            str(n),
            f"{t_ours * 1e3:.2f} ms",
            f"{t_scipy * 1e3:.2f} ms",
            f"{t_dense * 1e3:.2f} ms",
            f"{ours_a.nnz}",
        ])

    # benchmark the middle size for the timing table
    a = CSRMatrix.from_dense(random_sparse(300, density, 1))
    b = CSRMatrix.from_dense(random_sparse(300, density, 2))
    benchmark(a.mxm, b)

    body = format_table(["n", "ours (ESC)", "scipy", "dense numpy", "nnz/operand"], rows) + (
        "\n\nshape: sparse backends overtake dense as n grows at fixed density;"
        "\nscipy's compiled kernels hold a constant-factor lead over the pure-"
        "NumPy ESC — the price of semiring genericity."
    )
    write_artifact(artifacts / "assoc_scaling.txt", "Ablation: sparse mxm backends", body)


def test_semiring_genericity_no_extra_cost(benchmark):
    """min.plus costs within ~4x of plus.times on the same pattern (same kernel)."""
    n = 400
    dense = random_sparse(n, 0.02, 3).astype(np.float64)
    m = CSRMatrix.from_dense(dense)

    t_plus = time_once(lambda: m.mxm(m))
    result = benchmark(m.mxm, m, MIN_PLUS)
    t_min = time_once(lambda: m.mxm(m, MIN_PLUS))
    assert result.shape == (n, n)
    assert t_min < max(t_plus, 1e-4) * 6 + 0.05


def test_coo_build_vs_csr_compute(benchmark, artifacts):
    """COO-style triple build is the cheap phase; mxm dominates (guide shape)."""
    n = 500
    dense = random_sparse(n, 0.02, 4)
    rows_idx, cols_idx = np.nonzero(dense)
    vals = dense[rows_idx, cols_idx]

    def build():
        return CSRMatrix.from_triples(rows_idx, cols_idx, vals, (n, n))

    m = benchmark(build)
    t_build = time_once(build)
    t_mxm = time_once(lambda: m.mxm(m))
    write_artifact(
        artifacts / "assoc_build_vs_compute.txt",
        "Ablation: build vs compute",
        f"n={n}, nnz={m.nnz}\nbuild (coalesce+indptr): {t_build * 1e3:.2f} ms\n"
        f"mxm (ESC):               {t_mxm * 1e3:.2f} ms",
    )
