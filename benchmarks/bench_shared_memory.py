"""Pickled vs shared-memory process dispatch for blocked semiring GEMM.

The process backend historically shipped every block task its operand slices
by pickle — at ``~10^6`` nnz that means re-serializing tens of megabytes of
CSR arrays per dispatch.  The shared-memory operand plane exports each
operand into ``multiprocessing.shared_memory`` once and ships only segment
names, so worker-side attachment is a zero-copy ``mmap``.

This bench runs the same ``mxm`` through both process paths (the byte
threshold toggles them: ``shm_min_bytes=None`` forces pickling,
``shm_min_bytes=0`` forces segments), verifies both are **bit-identical** to
the serial kernel, checks that no segment outlives the run, and enforces a
speedup floor for shm over pickling on multi-core hosts.

The operand is a banded matrix: ~10^6 stored entries but only a few products
per output row, so transfer cost — the thing shm removes — dominates compute.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import format_table, write_artifact

from repro import runtime
from repro.assoc.semiring import PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.runtime import shm

#: ~10^6 nnz: every row holds one stored entry per band offset.
N_ROWS = 250_000
OFFSETS = (1, 2, 5, 9)

#: Required shm-over-pickle speedup on machines with enough cores for the
#: process pool to matter (same convention as ``bench_parallel_engine``).
SPEEDUP_FLOOR = 1.5
SPEEDUP_MIN_CPUS = 4


def banded(n: int, offsets: tuple[int, ...], seed: int) -> CSRMatrix:
    rows = np.repeat(np.arange(n, dtype=np.int64), len(offsets))
    cols = (rows + np.tile(np.array(offsets, dtype=np.int64), n)) % n
    rng = np.random.default_rng(seed)
    vals = rng.integers(1, 10, rows.size).astype(np.int64)
    return CSRMatrix.from_triples(rows, cols, vals, (n, n))


def best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_shm_mxm_speedup_and_equality(benchmark, artifacts):
    # at least two workers so the process paths really dispatch, even on a
    # single-core runner (there the floor gate is skipped anyway)
    workers = max(2, runtime.recommended_workers())
    cpus = runtime.cpu_count()
    a = banded(N_ROWS, OFFSETS, seed=1)
    b = banded(N_ROWS, OFFSETS, seed=2)
    operand_mb = (shm.csr_nbytes(a) + shm.csr_nbytes(b)) / 2**20

    with runtime.configured(workers=1, backend="serial"):
        t_serial, c_serial = best_of(lambda: a.mxm(b, PLUS_TIMES))
    with runtime.configured(
        workers=workers, backend="process", min_parallel_work=1, shm_min_bytes=None
    ):
        t_pickle, c_pickle = best_of(lambda: a.mxm(b, PLUS_TIMES))
    with runtime.configured(
        workers=workers, backend="process", min_parallel_work=1, shm_min_bytes=0
    ):
        t_shm, c_shm = best_of(lambda: a.mxm(b, PLUS_TIMES))

    # the headline guarantee: all three paths agree bit for bit
    assert c_pickle == c_serial, "pickled process mxm diverged from serial"
    assert c_shm == c_serial, "shared-memory process mxm diverged from serial"
    # and the operand plane cleans up after itself
    assert shm.live_segment_names() == [], "segments leaked by the bench"

    speedup = t_pickle / max(t_shm, 1e-9)
    # Timing gates are noisy on shared CI runners; the smoke job sets
    # REPRO_SKIP_SPEEDUP_GATE=1 so only the equality assertions gate there.
    # Run the bench directly on a quiet multi-core host to enforce the floor.
    if cpus >= SPEEDUP_MIN_CPUS and os.environ.get("REPRO_SKIP_SPEEDUP_GATE") != "1":
        assert speedup >= SPEEDUP_FLOOR, (
            f"shm mxm only {speedup:.2f}x the pickling process path at "
            f"{c_serial.nnz} nnz on {cpus} CPUs (floor {SPEEDUP_FLOOR}x)"
        )

    # timing fixture: the shm path end to end (export, dispatch, assemble)
    with runtime.configured(
        workers=workers, backend="process", min_parallel_work=1, shm_min_bytes=0
    ):
        benchmark(a.mxm, b, PLUS_TIMES)

    rows = [[
        f"{a.nnz}",
        f"{operand_mb:.1f} MB",
        f"{t_serial * 1e3:.1f} ms",
        f"{t_pickle * 1e3:.1f} ms",
        f"{t_shm * 1e3:.1f} ms",
        f"{speedup:.2f}x",
    ]]
    body = format_table(
        ["nnz(A)", "operands", "serial", f"pickle ({workers}w proc)",
         f"shm ({workers}w proc)", "shm/pickle"], rows
    ) + (
        f"\n\nhost: {cpus} CPU(s); serial, pickled, and shared-memory outputs"
        "\nverified bit-identical (same indptr, indices, data); zero segments"
        "\nleft in the registry or /dev/shm after the run."
    )
    write_artifact(artifacts / "shared_memory.txt", "Runtime: pickled vs shared-memory process mxm", body)


def test_shm_threshold_keeps_small_operands_on_pickle_path():
    """Below ``shm_min_bytes`` the process backend must not export segments."""
    small_a = banded(64, (1, 2), seed=3)
    small_b = banded(64, (1, 2), seed=4)
    with runtime.configured(
        workers=2, backend="process", min_parallel_work=1, shm_min_bytes=1 << 30
    ):
        c = small_a.mxm(small_b, PLUS_TIMES)
        assert shm.live_segment_names() == []
    with runtime.configured(workers=1, backend="serial"):
        assert c == small_a.mxm(small_b, PLUS_TIMES)
