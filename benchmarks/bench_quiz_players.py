"""Section V — quiz outcomes over the full module catalogue.

The paper's three-option design implies a 1/3 guessing floor; the module
content implies a student who reads the matrix can do far better.  This bench
plays the whole catalogue with the three scripted players and regenerates the
score table, asserting the ordering perfect > analyst > random and the
random score sitting near the 1/3 floor.
"""

from __future__ import annotations

from conftest import format_table, write_artifact

from repro.game.app import TrafficWarehouse
from repro.game.players import AnalystPlayer, PerfectPlayer, RandomPlayer


def play(player, seed=0):
    game = TrafficWarehouse(seed=seed)
    return game.autoplay(player)


def test_quiz_player_outcomes(benchmark, artifacts):
    report = benchmark(play, AnalystPlayer(seed=0))

    perfect = play(PerfectPlayer())
    randoms = [play(RandomPlayer(seed=s), seed=s) for s in range(5)]
    random_mean = sum(r.score_fraction for r in randoms) / len(randoms)

    assert perfect.score_fraction == 1.0
    assert report.score_fraction > random_mean + 0.25
    assert 0.15 < random_mean < 0.55  # the three-option floor

    rows = [
        ["perfect", f"{perfect.correct}/{perfect.questions_asked}", f"{perfect.score_fraction:.0%}"],
        ["analyst", f"{report.correct}/{report.questions_asked}", f"{report.score_fraction:.0%}"],
        ["random (mean of 5 seeds)", "-", f"{random_mean:.0%}"],
    ]
    body = format_table(["player", "correct", "score"], rows) + (
        "\n\nanalyst = classifies the displayed pattern the way the modules teach;"
        "\nrandom ~ 1/3 floor implied by the deliberate three-option design."
    )
    write_artifact(artifacts / "quiz_player_outcomes.txt", "Section V: quiz outcomes", body)
