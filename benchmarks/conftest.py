"""Shared helpers for the per-figure/per-table benchmark harness.

Every bench regenerates its paper artefact (table rows, figure views) into
``benchmarks/artifacts/`` so the reproduction is inspectable after the run,
and times the operation that produces it with pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts() -> Path:
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    return ARTIFACTS


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach a Perfetto trace to the artifacts of a failed traced bench.

    When a bench fails mid-call with tracing live, the span ring holds the
    dispatches leading up to the failure — exactly what is needed to debug a
    timing regression from CI, where the artifacts directory is uploaded.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    from repro.obs import trace as _trace

    tracer = _trace.get_tracer()
    if isinstance(tracer, _trace.Tracer) and len(tracer) > 0:
        ARTIFACTS.mkdir(parents=True, exist_ok=True)
        safe = item.name.replace("/", "_").replace("[", "_").replace("]", "")
        path = ARTIFACTS / f"trace_failed_{safe}.json"
        _trace.write_trace_json(tracer.spans(), path)
        report.sections.append(
            ("observability", f"span trace written to {path}")
        )


def write_artifact(path: Path, title: str, body: str) -> None:
    """Write one artefact file with a header naming the paper content."""
    path.write_text(f"== {title} ==\n\n{body.rstrip()}\n", encoding="utf-8")


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table in the layout of the paper's Tables I/II."""
    widths = [
        max(len(str(headers[k])), *(len(str(r[k])) for r in rows)) for k in range(len(headers))
    ]
    def fmt(row):
        return " | ".join(str(c).ljust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep, *(fmt(r) for r in rows)])
