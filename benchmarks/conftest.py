"""Shared helpers for the per-figure/per-table benchmark harness.

Every bench regenerates its paper artefact (table rows, figure views) into
``benchmarks/artifacts/`` so the reproduction is inspectable after the run,
and times the operation that produces it with pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts() -> Path:
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    return ARTIFACTS


def write_artifact(path: Path, title: str, body: str) -> None:
    """Write one artefact file with a header naming the paper content."""
    path.write_text(f"== {title} ==\n\n{body.rstrip()}\n", encoding="utf-8")


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table in the layout of the paper's Tables I/II."""
    widths = [
        max(len(str(headers[k])), *(len(str(r[k])) for r in rows)) for k in range(len(headers))
    ]
    def fmt(row):
        return " | ".join(str(c).ljust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep, *(fmt(r) for r in rows)])
