"""Fig. 7 — the notional attack: planning, staging, infiltration, lateral
movement, each a traffic pattern on the 10×10 template.

Asserts the paper's narrative property — the attack *moves* from red space
toward blue space across the four panels — and that every stage classifies
back to itself.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core.spaces import NetworkSpace as S
from repro.graphs.attack import ATTACK_STAGES, full_attack
from repro.graphs.classify import classify_scenario
from repro.render.ascii2d import render_matrix_compact


def test_fig7_attack_stages(benchmark, artifacts):
    def generate_and_classify():
        return {name: (gen(10), classify_scenario(gen(10)).best) for name, gen in ATTACK_STAGES.items()}

    results = benchmark(generate_and_classify)

    panels = []
    for name, (matrix, classified) in results.items():
        assert classified == name, f"{name} classified as {classified}"
        panels.append(f"Fig. 7 — {name} (classified: {classified})\n{render_matrix_compact(matrix)}")

    # the kill chain moves toward blue space: fraction of packets touching
    # blue space is non-decreasing across the stages
    def blue_fraction(matrix):
        blocks = matrix.space_traffic()
        touching = sum(v for (src, dst), v in blocks.items() if S.BLUE in (src, dst))
        total = matrix.total_packets()
        return touching / total if total else 0.0

    fractions = [blue_fraction(results[n][0]) for n in ATTACK_STAGES]
    assert fractions == sorted(fractions), fractions
    assert fractions[0] == 0.0 and fractions[-1] == 1.0

    combined = full_attack(10)
    panels.append(
        "All stages combined (the follow-on exercise)\n" + render_matrix_compact(combined)
    )
    write_artifact(
        artifacts / "fig7_attack_stages.txt",
        "Fig. 7: notional attack stages",
        "\n\n".join(panels) + f"\n\nblue-space involvement per stage: {fractions}",
    )
