"""Serial vs blocked-parallel semiring GEMM (runtime subsystem bench).

Runs the same ESC ``mxm`` through the classic serial kernel and through the
row-blocked parallel engine (``repro.runtime`` thread backend) at the
``bench_assoc_scaling`` sizes, verifying that the two paths return
**bit-identical** coalesced matrices, and records the speedup per size.

On a single-core runner the parallel path simply has to stay close to serial
(the dispatch overhead is bounded); on multi-core runners the largest size
must clear a real speedup floor.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import format_table, write_artifact

from repro import runtime
from repro.assoc.semiring import MIN_PLUS, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix

#: The ``bench_assoc_scaling`` sizes, plus one scale point where blocks are
#: wide enough for per-block NumPy work to dominate dispatch overhead.
SIZES = (100, 300, 800)
SCALE_SIZE = 1600
DENSITY = 0.02

#: Required parallel speedup at the largest ``bench_assoc_scaling`` size on
#: machines with enough cores for the thread pool to matter.
SPEEDUP_FLOOR = 1.5
SPEEDUP_MIN_CPUS = 4


def random_sparse(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n), dtype=np.int64)
    nnz = max(1, int(n * n * density))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    dense[rows, cols] = rng.integers(1, 10, nnz)
    return dense


def best_of(fn, repeats: int = 5) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_parallel_mxm_speedup_and_equality(benchmark, artifacts):
    workers = runtime.recommended_workers()
    cpus = runtime.cpu_count()
    rows = []
    speedups: dict[int, float] = {}
    for n in (*SIZES, SCALE_SIZE):
        a = CSRMatrix.from_dense(random_sparse(n, DENSITY, 1))
        b = CSRMatrix.from_dense(random_sparse(n, DENSITY, 2))
        with runtime.configured(workers=1, backend="serial"):
            t_serial, c_serial = best_of(lambda: a.mxm(b, PLUS_TIMES))
        with runtime.configured(workers=workers, backend="thread", min_parallel_work=1):
            t_parallel, c_parallel = best_of(lambda: a.mxm(b, PLUS_TIMES))
        # the headline guarantee: identical indptr/indices/data, bit for bit
        assert c_parallel == c_serial, f"parallel mxm diverged from serial at n={n}"
        speedups[n] = t_serial / max(t_parallel, 1e-9)
        rows.append([
            str(n),
            f"{c_serial.nnz}",
            f"{t_serial * 1e3:.2f} ms",
            f"{t_parallel * 1e3:.2f} ms",
            f"{speedups[n]:.2f}x",
        ])

    # Timing gates are noisy on shared CI runners; the smoke job sets
    # REPRO_SKIP_SPEEDUP_GATE=1 so only the equality assertions gate there.
    # Run the bench directly on a quiet multi-core host to enforce the floor.
    if cpus >= SPEEDUP_MIN_CPUS and os.environ.get("REPRO_SKIP_SPEEDUP_GATE") != "1":
        largest = SIZES[-1]
        assert speedups[largest] >= SPEEDUP_FLOOR, (
            f"blocked-parallel mxm only {speedups[largest]:.2f}x serial at "
            f"n={largest} on {cpus} CPUs (floor {SPEEDUP_FLOOR}x)"
        )

    # timing fixture: the parallel path at the largest bench_assoc_scaling size
    a = CSRMatrix.from_dense(random_sparse(SIZES[-1], DENSITY, 1))
    b = CSRMatrix.from_dense(random_sparse(SIZES[-1], DENSITY, 2))
    with runtime.configured(workers=workers, backend="thread", min_parallel_work=1):
        benchmark(a.mxm, b, PLUS_TIMES)

    body = format_table(
        ["n", "nnz(C)", "serial", f"parallel ({workers}w thread)", "speedup"], rows
    ) + (
        f"\n\nhost: {cpus} CPU(s); serial and parallel outputs verified"
        "\nbit-identical at every size (same indptr, indices, data)."
    )
    write_artifact(artifacts / "parallel_engine.txt", "Runtime: serial vs blocked-parallel mxm", body)


def test_parallel_semiring_consistency(artifacts):
    """min.plus parallelizes identically to plus.times (same blocked path)."""
    n = SIZES[-1]
    dense = random_sparse(n, DENSITY, 3).astype(np.float64)
    m = CSRMatrix.from_dense(dense)
    with runtime.configured(workers=1, backend="serial"):
        serial = m.mxm(m, MIN_PLUS)
    with runtime.configured(
        workers=runtime.recommended_workers(), backend="thread", min_parallel_work=1
    ):
        parallel = m.mxm(m, MIN_PLUS)
    assert parallel == serial
    write_artifact(
        artifacts / "parallel_engine_minplus.txt",
        "Runtime: min.plus serial/parallel equality",
        f"n={n}, nnz={m.nnz}: min.plus blocked-parallel product is bit-identical"
        "\nto the serial kernel (float data included — term order is preserved).",
    )


def test_parallel_mxv_and_coalesce_equality():
    """The routed mxv and coalesce paths also match serial bit-for-bit."""
    n = SIZES[-1]
    m = CSRMatrix.from_dense(random_sparse(n, DENSITY, 4))
    x = np.random.default_rng(5).random(n)
    triples = (
        np.random.default_rng(6).integers(0, n, 20000),
        np.random.default_rng(7).integers(0, n, 20000),
        np.random.default_rng(8).random(20000),
    )
    with runtime.configured(workers=1, backend="serial"):
        y_serial = m.mxv(x, MIN_PLUS)
        c_serial = CSRMatrix.from_triples(*triples, (n, n))
    with runtime.configured(
        workers=runtime.recommended_workers(), backend="thread", min_parallel_work=1
    ):
        y_parallel = m.mxv(x, MIN_PLUS)
        c_parallel = CSRMatrix.from_triples(*triples, (n, n))
    assert np.array_equal(y_serial, y_parallel)
    assert c_serial == c_parallel
