"""Scenario batch generation: serial vs parallel, determinism gated.

Fans a mixed-curriculum spec batch through :func:`repro.scenarios.generate_batch`
on the serial, thread, and process executors, asserting the headline guarantee
— **bit-identical results on every backend** (each spec is self-seeded, so no
execution order can change a matrix) — and recording the timings per backend.

Unlike the semiring kernels, spec realisation is dominated by small-matrix
NumPy calls that hold the GIL, so thread speedups are modest at classroom
sizes; the table exists to keep that honest.  Determinism, not speed, is the
gate here (the smoke job runs with ``--benchmark-disable`` either way).
"""

from __future__ import annotations

import time

from conftest import format_table, write_artifact

from repro import runtime
from repro.scenarios import NoiseSpec, ScenarioSpec, generate_batch, scenario_names

BATCH = 64
SIZES = (10, 100)


def mixed_specs(count: int, n: int) -> list[ScenarioSpec]:
    bases = sorted(set(scenario_names()) - {"background_noise"})
    return [
        ScenarioSpec(
            base=bases[k % len(bases)],
            n=n,
            seed=k,
            noise=NoiseSpec(density=0.05) if k % 2 else None,
        )
        for k in range(count)
    ]


def best_of(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_batch_determinism_and_timings(benchmark, artifacts):
    workers = runtime.recommended_workers()
    rows = []
    for n in SIZES:
        specs = mixed_specs(BATCH, n)
        t_serial, serial = best_of(lambda: generate_batch(specs, workers=1, backend="serial"))
        t_thread, thread = best_of(lambda: generate_batch(specs, workers=workers, backend="thread"))
        t_process, process = best_of(lambda: generate_batch(specs, workers=2, backend="process"))

        # the gate: every backend realises every spec bit-identically
        for k, (a, b, c) in enumerate(zip(serial, thread, process)):
            assert a == b, f"thread batch diverged from serial at spec {k} (n={n})"
            assert a == c, f"process batch diverged from serial at spec {k} (n={n})"
            assert a.meta == b.meta == c.meta

        rows.append([
            f"{n}x{n}",
            str(BATCH),
            f"{t_serial * 1e3:.1f} ms",
            f"{t_thread * 1e3:.1f} ms ({t_serial / max(t_thread, 1e-9):.2f}x)",
            f"{t_process * 1e3:.1f} ms ({t_serial / max(t_process, 1e-9):.2f}x)",
        ])

    specs = mixed_specs(BATCH, SIZES[0])
    benchmark(generate_batch, specs, workers=workers)

    body = format_table(
        ["size", "specs", "serial", f"thread ({workers}w)", "process (2w)"], rows
    ) + (
        "\n\nEvery backend produced bit-identical matrices (packets, labels,"
        "\ncolours, provenance metadata) for every spec — deterministic"
        "\nper-spec seeding makes scenario fan-out order-independent."
    )
    write_artifact(
        artifacts / "scenario_batch.txt",
        "Scenario API: serial vs parallel batch generation",
        body,
    )


def test_registry_covers_all_generator_families(artifacts):
    """Companion check: the batch above exercised every registered family."""
    families = {}
    for name in scenario_names():
        from repro.scenarios import get_generator

        families.setdefault(get_generator(name).family, []).append(name)
    assert set(families) == {"pattern", "topology", "attack", "defense", "ddos", "noise"}
    body = "\n".join(
        f"{family:<9} {len(names):2d} generators: {', '.join(sorted(names))}"
        for family, names in sorted(families.items())
    )
    write_artifact(
        artifacts / "scenario_registry.txt",
        "Scenario API: registry coverage by family",
        body,
    )
