"""Fig. 6 — traffic topologies: isolated links, single links, internal and
external supernodes, each on a 10×10 matrix with space colouring.

Regenerates all four panels, asserts each classifies back to its own family
(the property that makes the module teachable), and times the
generate-render-classify loop.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.graphs.classify import classify_topology
from repro.graphs.metrics import reciprocity, supernodes
from repro.graphs.topologies import TOPOLOGY_GENERATORS
from repro.render.ascii2d import render_matrix_compact


def test_fig6_topologies(benchmark, artifacts):
    def generate_and_classify():
        out = {}
        for name, gen in TOPOLOGY_GENERATORS.items():
            matrix = gen(10)
            out[name] = (matrix, classify_topology(matrix))
        return out

    results = benchmark(generate_and_classify)

    panels = []
    for name, (matrix, classified) in results.items():
        assert classified == name, f"{name} classified as {classified}"
        panels.append(f"Fig. 6 — {name} (classified: {classified})\n{render_matrix_compact(matrix)}")

    iso = results["isolated_links"][0]
    single = results["single_links"][0]
    assert reciprocity(iso) == 1.0 and reciprocity(single) == 0.0
    # the internal hub's fan is bounded by blue-space size (3 peers on the
    # template), so detect it with an explicit threshold
    assert supernodes(results["internal_supernode"][0], min_fan=3) == ["SRV1"]
    assert supernodes(results["external_supernode"][0]) == ["EXT1"]

    write_artifact(
        artifacts / "fig6_topologies.txt",
        "Fig. 6: traffic topologies on a 10x10 matrix",
        "\n\n".join(panels),
    )
