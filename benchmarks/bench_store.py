"""Durable scenario store: warm start from disk vs rebuilding from scratch.

The store's performance claim, timed and gated:

* **Warm-start speedup** — a corpus built once and persisted to a
  :class:`~repro.store.ScenarioStore` must be served to a *fresh process*
  (cold L1, store-only) at least :data:`WARM_START_FLOOR` times faster than
  rebuilding it from specs (a store hit is one blob read plus a checksum; a
  build runs generators, overlays, and noise).  Skippable on shared runners
  via ``REPRO_SKIP_SPEEDUP_GATE=1`` — bit-identity always gates.
* **Bit identity across the disk round trip** — every matrix served from the
  store must equal the direct build exactly (packets, labels, colours,
  provenance), the same contract the ``store_round_trip`` oracle enforces
  per spec.

The artefact table lands in ``benchmarks/artifacts/`` with the tier
analytics that produced it.
"""

from __future__ import annotations

import os
import time

from conftest import format_table, write_artifact

from repro.scenarios import (
    NoiseSpec,
    ScenarioCache,
    ScenarioSpec,
    generate_batch,
    scenario_names,
)
from repro.store import ScenarioStore

BATCH = 64
N = 60
WARM_START_FLOOR = 2.0


def mixed_specs(count: int, n: int) -> list[ScenarioSpec]:
    bases = sorted(set(scenario_names()) - {"background_noise"})
    return [
        ScenarioSpec(
            base=bases[k % len(bases)],
            n=n,
            seed=k,
            noise=NoiseSpec(density=0.05) if k % 2 else None,
        )
        for k in range(count)
    ]


def best_of(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_warm_start_speedup_and_bit_identity(benchmark, artifacts, tmp_path):
    specs = mixed_specs(BATCH, N)
    root = tmp_path / "store"

    # process 1: build the corpus and persist it through the write-through L2
    t_build, reference = best_of(lambda: generate_batch(specs), repeats=1)
    with ScenarioStore(root, fsync=False) as writer:
        generate_batch(specs, store=writer)

    # "process 2": a fresh store instance with a cold L1 — every fetch must
    # come off disk, so this times exactly the restart-survival path
    def warm_start():
        with ScenarioStore(root, fsync=False) as reader:
            cache = ScenarioCache(max_entries=None, store=reader)
            matrices = [cache.fetch(spec)[0] for spec in specs]
            return matrices, cache.analytics()

    t_warm, (served, analytics) = best_of(warm_start)

    # the unconditional gate: the store is invisible except in speed
    for k, (ref, got) in enumerate(zip(reference, served)):
        assert ref == got, f"store-served corpus diverged at spec {k}"
        assert ref.meta == got.meta

    assert analytics.l2_hits == BATCH  # everything came off disk
    assert analytics.misses == 0

    speedup = t_build / max(t_warm, 1e-9)
    if os.environ.get("REPRO_SKIP_SPEEDUP_GATE") != "1":
        assert speedup >= WARM_START_FLOOR, (
            f"warm start {speedup:.2f}x over rebuild; floor is {WARM_START_FLOOR}x"
        )

    benchmark(warm_start)

    with ScenarioStore(root, fsync=False) as reader:
        stats = reader.stats()
    rows = [[
        f"{N}x{N}",
        str(BATCH),
        f"{t_build * 1e3:.1f} ms",
        f"{t_warm * 1e3:.1f} ms",
        f"{speedup:.1f}x",
        f"{stats['payload_bytes'] / 1024:.0f} KiB",
    ]]
    body = format_table(
        ["size", "specs", "rebuild", "warm start", "speedup", "on disk"], rows
    ) + (
        "\n\nA fresh process served the whole corpus from the durable"
        "\ncontent-addressed store bit-identically (packets, labels,"
        "\ncolours, provenance) without rebuilding a single scenario."
        f"\n\ntier analytics: l2_hits={analytics.l2_hits}"
        f" misses={analytics.misses}"
        f" l2_hit_rate={analytics.l2_hit_rate:.3f}"
    )
    write_artifact(
        artifacts / "scenario_store.txt",
        "Durable store: warm start from disk vs rebuilding from specs",
        body,
    )
