"""Fig. 5 — the training level: 2-D view, 3-D view, all packets placed.

Regenerates the figure's three screenshots (as ASCII frames plus PPM images)
and times the full sequence: build level → 2-D render → toggle → 3-D render →
place every packet → final render.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.game.training import training_module
from repro.game.warehouse import WarehouseLevel
from repro.render.ascii2d import render_matrix_2d
from repro.render.ppm import write_ppm


def test_fig5_training_level_views(benchmark, artifacts):
    module = training_module()

    def full_training_sequence():
        level = WarehouseLevel(module)
        two_d = level.render_ascii(width=90, height=30)
        level.toggle_view()
        three_d = level.render_ascii(width=90, height=30)
        level.place_all_packets()
        placed = level.render_ascii(width=90, height=30)
        return level, two_d, three_d, placed

    level, two_d, three_d, placed = benchmark(full_training_sequence)

    assert level.all_packets_placed()
    assert level.packets_placed == module.matrix.total_packets() == 30
    # the three frames are genuinely different screens (boxes share the block
    # glyph with pallets, so the distinguishing layer is colour: compare ANSI)
    frames = {two_d.to_ansi(), three_d.to_ansi(), placed.to_ansi()}
    assert len(frames) == 3

    # PPM screenshots (the figure's panels) — 5a spreadsheet, 5b 3D, 5c placed
    write_ppm(level.render_pixels(width=480, height=360), artifacts / "fig5c_packets_placed.ppm")
    spreadsheet = render_matrix_2d(module.matrix, ansi=False)
    body = (
        "Fig. 5a (2-D spreadsheet view of the training matrix):\n"
        f"{spreadsheet}\n\n"
        "Fig. 5b (3-D warehouse view, empty pallets):\n"
        f"{three_d.to_plain()}\n\n"
        "Fig. 5c (all 30 packets placed):\n"
        f"{placed.to_plain()}"
    )
    write_artifact(artifacts / "fig5_training_views.txt", "Fig. 5: training level views", body)
