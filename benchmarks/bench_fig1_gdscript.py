"""Fig. 1 — Hello World in C#/Python/GDScript.

The figure's point is GDScript's Python-likeness.  This bench runs the
GDScript listing on the interpreter, the Python listing natively, and reports
the interpretation overhead — the ablation DESIGN.md calls out (interpreted
educator scripts vs native handlers).
"""

from __future__ import annotations

import io
import time
from contextlib import redirect_stdout

from conftest import write_artifact

from repro.engine.node import Node3D
from repro.engine.tree import SceneTree
from repro.game.scripts import HELLO_WORLD_GD
from repro.gdscript.interpreter import compile_script
from repro.gdscript.lexer import tokenize

PYTHON_HELLO = 'def HelloWorld():\n    print("Hello, world!")\n\nHelloWorld()\n'


def run_gdscript_hello() -> str:
    node = Node3D("Main")
    inst = compile_script(HELLO_WORLD_GD).instantiate(node)
    SceneTree(node)
    return inst.output_text()


def run_python_hello() -> str:
    buf = io.StringIO()
    with redirect_stdout(buf):
        exec(compile(PYTHON_HELLO, "<hello>", "exec"), {})  # noqa: S102 - the figure's own listing
    return buf.getvalue().strip()


def test_fig1_hello_world_gdscript_vs_python(benchmark, artifacts):
    out = benchmark(run_gdscript_hello)
    assert out == "Hello, world!"
    assert run_python_hello() == "Hello, world!"

    # overhead estimate: repeat both enough to see a stable ratio
    n = 200
    t0 = time.perf_counter()
    for _ in range(n):
        run_gdscript_hello()
    gd = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n):
        run_python_hello()
    py = time.perf_counter() - t0
    ratio = gd / py if py > 0 else float("inf")

    tokens = len(tokenize(HELLO_WORLD_GD))
    body = (
        f"GDScript listing (Fig. 1c) runs on repro.gdscript: output 'Hello, world!'\n"
        f"Python listing (Fig. 1b) runs natively: output 'Hello, world!'\n\n"
        f"GDScript tokens: {tokens}\n"
        f"Interpretation overhead (incl. node setup): {ratio:.1f}x native Python\n"
        f"(game-scale scripts run in well under a millisecond either way)"
    )
    write_artifact(artifacts / "fig1_hello_world.txt", "Fig. 1: Hello World comparison", body)
    assert ratio < 500  # interpreted, but comfortably game-scale
