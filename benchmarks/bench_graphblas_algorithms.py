"""Ablation — semiring graph algorithms vs networkx (refs [1], [5]-[8]).

The paper's framing rests on matrix-based graph analysis being practical;
this bench runs the classic semiring algorithms on the package's own CSR
kernels against networkx on the same random graphs.  Measured shape: the
generic semiring formulations stay within a small constant factor (~2-5x) of
networkx's specialised per-algorithm implementations, with PageRank — whose
inner loop is a single vxm — running at parity or better.  That constant
factor is the cost of genericity in pure NumPy; a compiled GraphBLAS erases
it, which is exactly the paper's refs [9]-[15] story.
"""

from __future__ import annotations

import time

import networkx as nx
import numpy as np

from conftest import format_table, write_artifact

from repro.assoc.algorithms import bfs_levels, pagerank, triangle_count
from repro.assoc.sparse import CSRMatrix


def random_graph(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density).astype(np.int64)
    np.fill_diagonal(dense, 0)
    return dense


def time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_semiring_algorithms_vs_networkx(benchmark, artifacts):
    rows = []
    for n in (200, 600, 1500):
        dense = random_graph(n, 8.0 / n, seed=n)  # ~8 edges per vertex
        adj = CSRMatrix.from_dense(dense)
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)

        t_bfs = time_once(lambda: bfs_levels(adj, 0))
        t_bfs_nx = time_once(lambda: nx.single_source_shortest_path_length(g, 0))
        t_pr = time_once(lambda: pagerank(adj))
        t_pr_nx = time_once(lambda: nx.pagerank(g, alpha=0.85))

        sym = ((dense + dense.T) > 0).astype(np.int64)
        np.fill_diagonal(sym, 0)
        sym_adj = CSRMatrix.from_dense(sym)
        ug = nx.from_numpy_array(sym)
        t_tri = time_once(lambda: triangle_count(sym_adj))
        t_tri_nx = time_once(lambda: sum(nx.triangles(ug).values()) // 3)
        assert triangle_count(sym_adj) == sum(nx.triangles(ug).values()) // 3

        rows.append([
            str(n),
            f"{t_bfs * 1e3:.1f} / {t_bfs_nx * 1e3:.1f}",
            f"{t_pr * 1e3:.1f} / {t_pr_nx * 1e3:.1f}",
            f"{t_tri * 1e3:.1f} / {t_tri_nx * 1e3:.1f}",
        ])

    adj = CSRMatrix.from_dense(random_graph(600, 8.0 / 600, seed=600))
    benchmark(bfs_levels, adj, 0)

    body = format_table(
        ["n", "BFS ours/nx (ms)", "PageRank ours/nx (ms)", "Triangles ours/nx (ms)"],
        rows,
    ) + (
        "\n\nshape: generic semiring formulations hold a small constant factor"
        "\n(~2-5x) against networkx's specialised implementations; PageRank"
        "\n(one vxm per iteration) runs at parity or better. A compiled"
        "\nGraphBLAS (refs [9]-[15]) erases the constant."
    )
    write_artifact(
        artifacts / "graphblas_algorithms.txt",
        "Ablation: semiring graph algorithms vs networkx",
        body,
    )
