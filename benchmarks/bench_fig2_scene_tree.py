"""Fig. 2 — the training level's scene tree.

Regenerates the scene-tree dump the Godot dock shows and times scene
construction.  The asserted shape is the figure's: a level root holding the
Data node and the pallet-and-label controller with its X / Y / Pallets
children.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.game.training import training_module
from repro.game.warehouse import build_level


def test_fig2_training_scene_tree(benchmark, artifacts):
    module = training_module()
    root = benchmark(build_level, module)

    dump = root.print_tree()
    lines = dump.splitlines()
    assert lines[0].startswith("Level")
    assert any("Data" in line for line in lines)
    assert any("PalletAndLabelController" in line for line in lines)
    for section in ("X", "Y", "Pallets"):
        assert any(f" {section} " in line for line in lines), section
    assert sum("Pallet" in line for line in lines) >= 100

    # the full dump is large; keep the figure-sized head plus a summary
    head = "\n".join(lines[:40])
    body = f"{head}\n... ({len(lines)} nodes total)"
    write_artifact(artifacts / "fig2_scene_tree.txt", "Fig. 2: training-level scene tree", body)
