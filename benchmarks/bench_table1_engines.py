"""Table I — game-engine comparison (Godot vs Unity vs Unreal).

The paper's table is qualitative; this bench regenerates its rows and adds the
quantitative column our substrate makes measurable: the cost of the
engine-side operations Traffic Warehouse actually performs (scene
construction, script attach + ready, input dispatch).  The reproduction
criterion is the table's *winner*: the Godot-like engine is free, scriptable
in a Python-like language, imports OBJ, and exports everywhere — which is
exactly the feature set `repro.engine` implements.
"""

from __future__ import annotations

from conftest import format_table, write_artifact

from repro.engine.input import InputEventKey, Key
from repro.engine.tree import SceneTree
from repro.game.warehouse import build_level
from repro.modules.templates import template_10x10

#: The paper's Table I rows, verbatim criteria.
TABLE1_ROWS = [
    ["Cost", "Always Free", "Free when making less than $100k/yr", "Free when making less than $1mil"],
    ["Language Used", "C#, GDScript", "C#", "C++"],
    ["Can Import .obj", "Yes", "Yes", "Yes"],
    ["Exports to Platform", "HTML5, Windows, Mac, *NIX", "HTML5, Windows, Mac, *NIX", "HTML5, Windows, Mac, *NIX"],
    ["Online Tutorials", "Some", "Many", "Many"],
    ["Asset Store", "Almost non-existent", "Many high quality assets", "Many high quality assets"],
]

#: What our headless reproduction of the chosen engine provides, same axes.
REPRO_COLUMN = [
    "Always Free (pure Python)",
    "GDScript (interpreted), Python",
    "Yes (repro.voxel.obj_export)",
    "Anywhere CPython runs",
    "README + examples",
    "Procedural voxel assets",
]


def test_table1_rows_and_engine_cost(benchmark, artifacts):
    module = template_10x10()

    def build_and_ready():
        root = build_level(module)
        tree = SceneTree(root)
        tree.push_input(InputEventKey(Key.SPACE))
        tree.run(3)
        return root

    root = benchmark(build_and_ready)

    # the reproduced engine satisfies the criteria that made Godot the pick
    controller = root.get_node("PalletAndLabelController")
    assert controller.script is not None              # GDScript attached & ran
    assert controller.script.error_lines() == []      # scene wired correctly
    n_nodes = sum(1 for _ in root.iter_tree())
    # 100 pallets × (self+mesh+boxes) + 2 × 10 label holders × 3 + chrome = 367
    assert n_nodes == 367

    headers = ["", "Godot (paper)", "Unity (paper)", "Unreal (paper)", "repro.engine (ours)"]
    rows = [row + [ours] for row, ours in zip(TABLE1_ROWS, REPRO_COLUMN)]
    body = format_table(headers, rows) + (
        f"\n\nMeasured: training-level scene = {n_nodes} nodes; "
        "build+ready+input+3 frames timed by pytest-benchmark (see table)."
    )
    write_artifact(artifacts / "table1_engines.txt", "Table I: engine comparison", body)
