"""Godot-style signals: named per-node event channels.

Nodes declare signals (``add_user_signal`` in Godot terms), other code
connects callables, and ``emit`` fan-outs synchronously in connection order —
the mechanism behind the game's "toggle pallet colour button clicked" flow.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SignalError

__all__ = ["Signal"]


class Signal:
    """A named signal with an ordered list of connections.

    Connections may be one-shot (Godot's ``CONNECT_ONE_SHOT``): they
    disconnect themselves after the first emission.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._connections: list[tuple[Callable[..., Any], bool]] = []

    def connect(self, callback: Callable[..., Any], *, one_shot: bool = False) -> None:
        """Connect *callback*; connecting the same callable twice is an error
        (matching Godot, which warns and refuses)."""
        if any(cb is callback for cb, _ in self._connections):
            raise SignalError(f"callback already connected to signal {self.name!r}")
        self._connections.append((callback, one_shot))

    def disconnect(self, callback: Callable[..., Any]) -> None:
        for k, (cb, _) in enumerate(self._connections):
            if cb is callback:
                del self._connections[k]
                return
        raise SignalError(f"callback is not connected to signal {self.name!r}")

    def is_connected(self, callback: Callable[..., Any]) -> bool:
        return any(cb is callback for cb, _ in self._connections)

    def connection_count(self) -> int:
        return len(self._connections)

    def emit(self, *args: Any) -> None:
        """Call every connection synchronously, in connection order."""
        for cb, one_shot in list(self._connections):
            if one_shot:
                self.disconnect(cb)
            cb(*args)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, connections={len(self._connections)})"
