"""Minimal 3-D math for the scene tree and renderer: vectors and rotations.

Only what the warehouse needs: positions, axis rotations (the Q/E view
rotation is a yaw about +Y), and enough basis algebra for the orthographic
camera.  Values are plain floats; batch transforms of many points go through
:meth:`Basis.apply_many`, which is a single NumPy matmul.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Vector3", "Basis"]


@dataclass(frozen=True)
class Vector3:
    """An immutable 3-component vector (Godot's value-type semantics).

    Class constants ``Vector3.ZERO``, ``Vector3.ONE`` and ``Vector3.UP`` are
    attached after the class definition (a frozen dataclass cannot hold
    instances of itself in its body).
    """

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    def __add__(self, other: "Vector3") -> "Vector3":
        return Vector3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vector3") -> "Vector3":
        return Vector3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, k: float) -> "Vector3":
        return Vector3(self.x * k, self.y * k, self.z * k)

    __rmul__ = __mul__

    def __neg__(self) -> "Vector3":
        return Vector3(-self.x, -self.y, -self.z)

    def dot(self, other: "Vector3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vector3") -> "Vector3":
        return Vector3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def length(self) -> float:
        return math.sqrt(self.dot(self))

    def normalized(self) -> "Vector3":
        n = self.length()
        return Vector3() if n == 0.0 else self * (1.0 / n)

    def to_array(self) -> np.ndarray:
        return np.asarray([self.x, self.y, self.z], dtype=np.float64)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "Vector3":
        return cls(float(arr[0]), float(arr[1]), float(arr[2]))


# value-type constants (plain class attributes, not dataclass fields)
Vector3.ZERO = Vector3(0.0, 0.0, 0.0)  # type: ignore[attr-defined]
Vector3.ONE = Vector3(1.0, 1.0, 1.0)  # type: ignore[attr-defined]
Vector3.UP = Vector3(0.0, 1.0, 0.0)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class Basis:
    """A 3×3 rotation/scale basis stored as a NumPy matrix."""

    m: np.ndarray

    @classmethod
    def identity(cls) -> "Basis":
        return cls(np.eye(3))

    @classmethod
    def rotation_x(cls, angle: float) -> "Basis":
        c, s = math.cos(angle), math.sin(angle)
        return cls(np.asarray([[1, 0, 0], [0, c, -s], [0, s, c]], dtype=np.float64))

    @classmethod
    def rotation_y(cls, angle: float) -> "Basis":
        """Yaw — the Q/E view rotation axis."""
        c, s = math.cos(angle), math.sin(angle)
        return cls(np.asarray([[c, 0, s], [0, 1, 0], [-s, 0, c]], dtype=np.float64))

    @classmethod
    def rotation_z(cls, angle: float) -> "Basis":
        c, s = math.cos(angle), math.sin(angle)
        return cls(np.asarray([[c, -s, 0], [s, c, 0], [0, 0, 1]], dtype=np.float64))

    def __matmul__(self, other: "Basis") -> "Basis":
        return Basis(self.m @ other.m)

    def apply(self, v: Vector3) -> Vector3:
        return Vector3.from_array(self.m @ v.to_array())

    def apply_many(self, points: np.ndarray) -> np.ndarray:
        """Rotate an ``(n, 3)`` point cloud in one matmul."""
        return points @ self.m.T

    def inverse(self) -> "Basis":
        return Basis(np.linalg.inv(self.m))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Basis):
            return NotImplemented
        return np.allclose(self.m, other.m)

    def __hash__(self) -> int:
        return id(self)
