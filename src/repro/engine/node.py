"""Scene-tree nodes: the engine's smallest building block.

"In Godot a node is the smallest component that can be modified and used to
build a scene."  This module reproduces the node semantics the paper's
implementation section relies on:

* named children with Godot's auto-rename on collision,
* ``get_node`` path resolution (``"../Data"``, ``"X/Label"``, ``"."``),
* the ``_ready`` lifecycle (children ready before parents, once per node),
* per-node signals and groups,
* export variables editable through the Inspector
  (:mod:`repro.engine.inspector`),
* script attachment — a Python object or a GDScript instance supplying
  ``_ready`` / ``_process`` / ``_input`` and extra methods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.engine.math3d import Vector3
from repro.engine.resources import Resource
from repro.engine.signals import Signal
from repro.errors import EngineError, NodePathError, SignalError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.tree import SceneTree

__all__ = ["Node", "Node3D", "Label3D", "MeshInstance3D", "ExportVar"]


class ExportVar:
    """One ``@export`` variable: a name, a value, and an optional type hint."""

    __slots__ = ("name", "value", "type_hint")

    def __init__(self, name: str, value: Any = None, type_hint: str | None = None) -> None:
        self.name = name
        self.value = value
        self.type_hint = type_hint

    def __repr__(self) -> str:
        hint = f": {self.type_hint}" if self.type_hint else ""
        return f"ExportVar({self.name}{hint} = {self.value!r})"


class Node:
    """A named tree node with lifecycle, signals, groups, and exports."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self._parent: Optional["Node"] = None
        self._children: list[Node] = []
        self._tree: Optional["SceneTree"] = None
        self._ready_called = False
        self._groups: set[str] = set()
        self._signals: dict[str, Signal] = {}
        self._exports: dict[str, ExportVar] = {}
        self._script: Any = None
        for builtin in ("ready", "child_entered_tree", "tree_entered", "tree_exited"):
            self._signals[builtin] = Signal(builtin)

    # ------------------------------------------------------------------ #
    # tree structure
    # ------------------------------------------------------------------ #

    @property
    def parent(self) -> Optional["Node"]:
        return self._parent

    def get_parent(self) -> Optional["Node"]:
        return self._parent

    def get_children(self) -> list["Node"]:
        """A copy of the ordered child list (mutation-safe iteration)."""
        return list(self._children)

    def get_child(self, index: int) -> "Node":
        try:
            return self._children[index]
        except IndexError:
            raise EngineError(
                f"node {self.name!r} has {len(self._children)} children; "
                f"index {index} out of range"
            ) from None

    def get_child_count(self) -> int:
        return len(self._children)

    def _unique_child_name(self, wanted: str) -> str:
        names = {c.name for c in self._children}
        if wanted not in names:
            return wanted
        k = 2
        while f"{wanted}{k}" in names:
            k += 1
        return f"{wanted}{k}"

    def add_child(self, child: "Node") -> "Node":
        """Append a child; duplicate names get Godot's numeric auto-rename.

        If this node is already inside a tree the child's subtree enters the
        tree immediately (``_ready`` fires, children first).
        """
        if child is self:
            raise EngineError(f"node {self.name!r} cannot be its own child")
        if child._parent is not None:
            raise EngineError(
                f"node {child.name!r} already has parent {child._parent.name!r}; "
                "remove it first"
            )
        anc: Optional[Node] = self
        while anc is not None:
            if anc is child:
                raise EngineError("adding an ancestor as a child would create a cycle")
            anc = anc._parent
        child.name = self._unique_child_name(child.name)
        child._parent = self
        self._children.append(child)
        self.emit_signal("child_entered_tree", child)
        if self._tree is not None:
            child._propagate_enter_tree(self._tree)
        return child

    def remove_child(self, child: "Node") -> None:
        """Detach a child (its subtree leaves the tree, but is not freed)."""
        if child._parent is not self:
            raise EngineError(f"{child.name!r} is not a child of {self.name!r}")
        self._children.remove(child)
        child._parent = None
        if child._tree is not None:
            child._propagate_exit_tree()

    def free(self) -> None:
        """Detach from the parent and drop all children (Godot's ``free``)."""
        if self._parent is not None:
            self._parent.remove_child(self)
        for child in self.get_children():
            child.free()

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def get_path(self) -> str:
        """Absolute slash path from the tree root (or from the subtree top)."""
        parts: list[str] = []
        node: Optional[Node] = self
        while node is not None:
            parts.append(node.name)
            node = node._parent
        return "/" + "/".join(reversed(parts))

    def get_node(self, path: str) -> "Node":
        """Resolve a Godot node path: ``"../Data"``, ``"X/Label"``, ``"."``.

        Leading ``/`` resolves from the tree root.  Raises
        :class:`~repro.errors.NodePathError` with the full attempted path on
        failure — the error an engine must make findable.
        """
        if path == "":
            raise NodePathError("empty node path")
        node: Optional[Node] = self
        segments = path.split("/")
        if path.startswith("/"):
            top = self
            while top._parent is not None:
                top = top._parent
            node = top
            segments = [s for s in segments if s]
            # absolute paths include the root's own name as the first segment
            if segments and node.name == segments[0]:
                segments = segments[1:]
        for seg in segments:
            if node is None:
                break
            if seg in ("", "."):
                continue
            if seg == "..":
                node = node._parent
                continue
            node = next((c for c in node._children if c.name == seg), None)
        if node is None:
            raise NodePathError(f"node path {path!r} does not resolve from {self.get_path()}")
        return node

    def has_node(self, path: str) -> bool:
        try:
            self.get_node(path)
            return True
        except NodePathError:
            return False

    def find_child(self, name: str, *, recursive: bool = True) -> Optional["Node"]:
        """First child with the given name (depth-first when recursive)."""
        for child in self._children:
            if child.name == name:
                return child
        if recursive:
            for child in self._children:
                found = child.find_child(name, recursive=True)
                if found is not None:
                    return found
        return None

    def iter_tree(self) -> Iterator["Node"]:
        """Depth-first pre-order walk of this subtree (self first)."""
        yield self
        for child in self._children:
            yield from child.iter_tree()

    def print_tree(self) -> str:
        """ASCII scene-tree dump in the style of the Godot dock (Fig. 2)."""
        lines: list[str] = []

        def walk(node: "Node", prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lines.append(f"{node.name} ({type(node).__name__})")
                child_prefix = ""
            else:
                joint = "└─ " if is_last else "├─ "
                lines.append(f"{prefix}{joint}{node.name} ({type(node).__name__})")
                child_prefix = prefix + ("   " if is_last else "│  ")
            kids = node._children
            for k, child in enumerate(kids):
                walk(child, child_prefix, k == len(kids) - 1, False)

        walk(self, "", True, True)
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def tree(self) -> Optional["SceneTree"]:
        return self._tree

    def get_tree(self) -> Optional["SceneTree"]:
        return self._tree

    def is_inside_tree(self) -> bool:
        return self._tree is not None

    def _propagate_enter_tree(self, tree: "SceneTree") -> None:
        self._tree = tree
        tree._register_node(self)
        self.emit_signal("tree_entered")
        for child in self._children:
            child._propagate_enter_tree(tree)
        # Godot readies children before their parent
        if not self._ready_called:
            self._ready_called = True
            self._call_lifecycle("_ready")
            self.emit_signal("ready")

    def _propagate_exit_tree(self) -> None:
        for child in self._children:
            child._propagate_exit_tree()
        if self._tree is not None:
            self._tree._unregister_node(self)
        self._tree = None
        self.emit_signal("tree_exited")

    def _call_lifecycle(self, hook: str, *args: Any) -> None:
        """Invoke a lifecycle hook on the attached script, then the subclass.

        Scripts get the node via their own binding; Python subclasses simply
        override ``_ready`` / ``_process`` / ``_input``.
        """
        if self._script is not None and hasattr(self._script, hook):
            getattr(self._script, hook)(*args)
        method = getattr(type(self), hook, None)
        if method is not None and method is not getattr(Node, hook, None):
            getattr(self, hook)(*args)

    # overridable lifecycle hooks (no-ops on the base class)
    def _ready(self) -> None:  # noqa: B027 - intentional no-op hook
        pass

    def _process(self, delta: float) -> None:  # noqa: B027
        pass

    def _input(self, event: Any) -> None:  # noqa: B027
        pass

    # ------------------------------------------------------------------ #
    # scripts, exports, signals, groups
    # ------------------------------------------------------------------ #

    def attach_script(self, script: Any) -> None:
        """Attach a script instance (GDScript or plain Python object).

        The script may expose ``_ready``/``_process``/``_input`` plus
        arbitrary methods; :meth:`call` reaches them by name.
        """
        self._script = script

    @property
    def script(self) -> Any:
        return self._script

    def call(self, method: str, *args: Any) -> Any:
        """Call a method on the script (preferred) or on the node itself."""
        if self._script is not None and hasattr(self._script, method):
            return getattr(self._script, method)(*args)
        if hasattr(self, method):
            return getattr(self, method)(*args)
        raise EngineError(f"node {self.name!r} has no method {method!r}")

    def export_var(self, name: str, value: Any = None, type_hint: str | None = None) -> ExportVar:
        """Declare an export variable (idempotent re-declare keeps the value)."""
        if name in self._exports:
            return self._exports[name]
        var = ExportVar(name, value, type_hint)
        self._exports[name] = var
        return var

    @property
    def exports(self) -> dict[str, ExportVar]:
        return dict(self._exports)

    def add_user_signal(self, name: str) -> Signal:
        if name in self._signals:
            raise SignalError(f"signal {name!r} already exists on node {self.name!r}")
        sig = Signal(name)
        self._signals[name] = sig
        return sig

    def get_signal(self, name: str) -> Signal:
        try:
            return self._signals[name]
        except KeyError:
            raise SignalError(f"node {self.name!r} has no signal {name!r}") from None

    def connect(self, signal_name: str, callback: Any, *, one_shot: bool = False) -> None:
        self.get_signal(signal_name).connect(callback, one_shot=one_shot)

    def emit_signal(self, name: str, *args: Any) -> None:
        self.get_signal(name).emit(*args)

    def add_to_group(self, group: str) -> None:
        self._groups.add(group)
        if self._tree is not None:
            self._tree._register_node(self)

    def remove_from_group(self, group: str) -> None:
        self._groups.discard(group)
        if self._tree is not None:
            self._tree._refresh_groups(self)

    def is_in_group(self, group: str) -> bool:
        return group in self._groups

    @property
    def groups(self) -> frozenset[str]:
        return frozenset(self._groups)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, children={len(self._children)})"


class Node3D(Node):
    """A node with a 3-D transform (position, yaw rotation, uniform scale)."""

    def __init__(self, name: str | None = None, position: Vector3 = Vector3.ZERO) -> None:
        super().__init__(name)
        self.position = position
        self.rotation_y = 0.0
        self.scale = 1.0
        self.visible = True

    @property
    def global_position(self) -> Vector3:
        """Position accumulated through all :class:`Node3D` ancestors."""
        pos = self.position
        node = self._parent
        while node is not None:
            if isinstance(node, Node3D):
                pos = pos + node.position
            node = node._parent
        return pos


class Label3D(Node3D):
    """A floating text label (the axis-label signs on the warehouse floor)."""

    def __init__(self, name: str | None = None, text: str = "") -> None:
        super().__init__(name)
        self.text = text


class MeshInstance3D(Node3D):
    """A renderable mesh with an optional material override.

    ``mesh`` names a voxel asset (see :mod:`repro.voxel.assets`);
    ``material_override`` is what the paper's colour-toggle script assigns.
    """

    def __init__(
        self,
        name: str | None = None,
        mesh: str = "",
        material_override: Resource | None = None,
    ) -> None:
        super().__init__(name)
        self.mesh = mesh
        self.material_override = material_override
