"""Input events and the game's key map.

The paper defines exactly three controls: SPACE toggles between the 2-D
top-down and 3-D views, and Q / E rotate the 3-D view.  Events flow through
:meth:`repro.engine.tree.SceneTree.push_input`, which dispatches to every
node's ``_input`` hook the way Godot propagates unhandled input.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Key", "InputEventKey", "ACTIONS", "action_for_key"]


class Key(Enum):
    """Keys the game binds (plus navigation/answer keys for the CLI app)."""

    SPACE = "space"
    Q = "q"
    E = "e"
    ENTER = "enter"
    ONE = "1"
    TWO = "2"
    THREE = "3"
    N = "n"
    P = "p"
    H = "h"
    ESCAPE = "escape"


@dataclass(frozen=True)
class InputEventKey:
    """A key press (releases are not needed by any game behaviour)."""

    key: Key
    pressed: bool = True


#: The game's action map: action name → key.
ACTIONS: dict[str, Key] = {
    "toggle_view": Key.SPACE,
    "rotate_left": Key.Q,
    "rotate_right": Key.E,
    "confirm": Key.ENTER,
    "answer_1": Key.ONE,
    "answer_2": Key.TWO,
    "answer_3": Key.THREE,
    "next_module": Key.N,
    "prev_module": Key.P,
    "hint": Key.H,
    "quit": Key.ESCAPE,
}


def action_for_key(key: Key) -> str | None:
    """Reverse lookup: which action a key triggers (None if unbound)."""
    for action, bound in ACTIONS.items():
        if bound is key:
            return action
    return None
