"""Resources and the ``preload`` registry.

The paper's pallet-controller script preloads five ``StandardMaterial3D``
resources by ``res://`` path.  This module provides the same contract: a
global registry mapping resource paths to resource objects, a
:func:`preload` lookup that fails loudly on unknown paths, and the standard
material set pre-registered so the paper's script runs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core import colors as core_colors
from repro.errors import ResourceError

__all__ = [
    "Resource",
    "StandardMaterial3D",
    "register_resource",
    "preload",
    "resource_registry",
    "reset_registry",
    "PALLET_MATERIALS",
]


@dataclass(frozen=True)
class Resource:
    """Base class for shareable engine resources, identified by path."""

    path: str


@dataclass(frozen=True)
class StandardMaterial3D(Resource):
    """A material with an albedo colour name (all the renderer needs)."""

    albedo: str = "white"
    metadata: dict = field(default_factory=dict, compare=False)


_REGISTRY: Dict[str, Resource] = {}


def register_resource(resource: Resource, *, overwrite: bool = False) -> Resource:
    """Add a resource under its path; re-registering needs ``overwrite``."""
    if resource.path in _REGISTRY and not overwrite:
        raise ResourceError(f"resource {resource.path!r} already registered")
    _REGISTRY[resource.path] = resource
    return resource


def preload(path: str) -> Resource:
    """Fetch a registered resource, like GDScript's ``preload("res://...")``."""
    try:
        return _REGISTRY[path]
    except KeyError:
        raise ResourceError(f"unknown resource path {path!r}") from None


def resource_registry() -> dict[str, Resource]:
    """Snapshot of the registry (path → resource)."""
    return dict(_REGISTRY)


def _register_defaults() -> dict[str, StandardMaterial3D]:
    """The five pallet materials the paper's script preloads."""
    mats = {
        core_colors.DEFAULT_MATERIAL: StandardMaterial3D(core_colors.DEFAULT_MATERIAL, "wood"),
        core_colors.material_for_code(0): StandardMaterial3D(core_colors.material_for_code(0), "grey"),
        core_colors.material_for_code(1): StandardMaterial3D(core_colors.material_for_code(1), "blue"),
        core_colors.material_for_code(2): StandardMaterial3D(core_colors.material_for_code(2), "red"),
        # extended palette (paper future work): yellow / green pallet materials
        core_colors.material_for_code(3): StandardMaterial3D(core_colors.material_for_code(3), "yellow"),
        core_colors.material_for_code(4): StandardMaterial3D(core_colors.material_for_code(4), "green"),
        core_colors.FALLBACK_MATERIAL: StandardMaterial3D(core_colors.FALLBACK_MATERIAL, "black"),
    }
    for mat in mats.values():
        _REGISTRY.setdefault(mat.path, mat)
    return mats


def reset_registry() -> None:
    """Restore the registry to just the built-in materials (test isolation)."""
    _REGISTRY.clear()
    _register_defaults()


#: Material resources keyed by path, pre-registered at import time.
PALLET_MATERIALS = _register_defaults()
