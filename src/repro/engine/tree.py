"""The scene tree: root ownership, frame processing, input dispatch, groups.

Godot's ``SceneTree`` drives everything: nodes become "inside the tree" when
their subtree is attached under the root, ``_ready`` fires once per node
(children before parents), then the main loop repeatedly calls ``_process``
top-down and pushes input events.  This headless version reproduces those
semantics with a fixed-timestep :meth:`run`.
"""

from __future__ import annotations

from typing import Any

from repro.engine.input import InputEventKey
from repro.engine.node import Node
from repro.errors import EngineError

__all__ = ["SceneTree"]


class SceneTree:
    """Owns a root node and drives the frame/input lifecycle."""

    def __init__(self, root: Node | None = None) -> None:
        self._root: Node | None = None
        self._groups: dict[str, list[Node]] = {}
        self.frame = 0
        self.paused = False
        if root is not None:
            self.set_root(root)

    @property
    def root(self) -> Node | None:
        return self._root

    def set_root(self, root: Node) -> None:
        """Attach the scene; the whole subtree enters the tree and readies."""
        if self._root is not None:
            raise EngineError("scene tree already has a root; call change_scene")
        if root.parent is not None:
            raise EngineError("the root node must not have a parent")
        self._root = root
        root._propagate_enter_tree(self)

    def change_scene(self, new_root: Node) -> Node | None:
        """Swap the scene (old root exits the tree and is returned)."""
        old = self._root
        if old is not None:
            old._propagate_exit_tree()
        self._root = None
        self.set_root(new_root)
        return old

    # ------------------------------------------------------------------ #
    # group registry
    # ------------------------------------------------------------------ #

    def _register_node(self, node: Node) -> None:
        for group in node.groups:
            members = self._groups.setdefault(group, [])
            if node not in members:
                members.append(node)

    def _unregister_node(self, node: Node) -> None:
        for members in self._groups.values():
            if node in members:
                members.remove(node)

    def _refresh_groups(self, node: Node) -> None:
        self._unregister_node(node)
        self._register_node(node)

    def get_nodes_in_group(self, group: str) -> list[Node]:
        """Members of a group, in tree-entry order."""
        return list(self._groups.get(group, ()))

    def call_group(self, group: str, method: str, *args: Any) -> list[Any]:
        """Invoke a method on every group member (Godot's ``call_group``)."""
        return [node.call(method, *args) for node in self.get_nodes_in_group(group)]

    # ------------------------------------------------------------------ #
    # frame loop and input
    # ------------------------------------------------------------------ #

    def process(self, delta: float) -> None:
        """One frame: ``_process(delta)`` over the whole tree, pre-order."""
        if self._root is None:
            raise EngineError("cannot process an empty scene tree")
        if not self.paused:
            for node in list(self._root.iter_tree()):
                if node.is_inside_tree():
                    node._call_lifecycle("_process", delta)
        self.frame += 1

    def run(self, frames: int, *, fps: float = 60.0) -> None:
        """Fixed-timestep batch run (headless frames, no wall-clock sleep)."""
        if fps <= 0:
            raise EngineError(f"fps must be positive, got {fps}")
        delta = 1.0 / fps
        for _ in range(frames):
            self.process(delta)

    def push_input(self, event: InputEventKey) -> None:
        """Dispatch an input event to every node's ``_input`` hook, pre-order."""
        if self._root is None:
            raise EngineError("cannot push input into an empty scene tree")
        for node in list(self._root.iter_tree()):
            if node.is_inside_tree():
                node._call_lifecycle("_input", event)
