"""Headless Godot-like scene-tree engine."""

from repro.engine.input import ACTIONS, InputEventKey, Key, action_for_key
from repro.engine.inspector import dump_inspector, get_export, list_exports, set_export
from repro.engine.math3d import Basis, Vector3
from repro.engine.node import ExportVar, Label3D, MeshInstance3D, Node, Node3D
from repro.engine.resources import (
    PALLET_MATERIALS,
    Resource,
    StandardMaterial3D,
    preload,
    register_resource,
    reset_registry,
    resource_registry,
)
from repro.engine.signals import Signal
from repro.engine.tree import SceneTree

__all__ = [
    "Node",
    "Node3D",
    "Label3D",
    "MeshInstance3D",
    "ExportVar",
    "SceneTree",
    "Signal",
    "Vector3",
    "Basis",
    "Resource",
    "StandardMaterial3D",
    "preload",
    "register_resource",
    "reset_registry",
    "resource_registry",
    "PALLET_MATERIALS",
    "Key",
    "InputEventKey",
    "ACTIONS",
    "action_for_key",
    "list_exports",
    "get_export",
    "set_export",
    "dump_inspector",
]
