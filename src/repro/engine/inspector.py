"""The Inspector: viewing and editing a node's export variables (paper Fig. 3).

"Several export variables are created to allow these variables be dynamically
edited without having to edit the script as a whole."  The Inspector is how an
educator wires exported node references (``y_axis``, ``x_axis``, ``pallets``)
without touching code; :func:`dump_inspector` renders the same property sheet
the figure shows.
"""

from __future__ import annotations

from typing import Any

from repro.engine.node import Node
from repro.errors import EngineError

__all__ = ["list_exports", "set_export", "get_export", "dump_inspector"]


def list_exports(node: Node) -> dict[str, Any]:
    """Export-variable values by name."""
    return {name: var.value for name, var in node.exports.items()}


def get_export(node: Node, name: str) -> Any:
    try:
        return node.exports[name].value
    except KeyError:
        raise EngineError(f"node {node.name!r} has no export variable {name!r}") from None


def set_export(node: Node, name: str, value: Any) -> None:
    """Assign an export variable, enforcing its declared type hint.

    Node-typed exports (``Node3D`` etc.) accept any node of that class or a
    subclass — the Inspector's drag-a-node-here behaviour.  The new value is
    also visible to an attached GDScript instance under the same name.
    """
    exports = node._exports  # module-internal access: the inspector *is* the editor
    if name not in exports:
        raise EngineError(f"node {node.name!r} has no export variable {name!r}")
    var = exports[name]
    hint = var.type_hint
    if hint:
        expected = _HINT_TYPES.get(hint)
        if expected is not None and value is not None and not isinstance(value, expected):
            raise EngineError(
                f"export {name!r} expects {hint}, got {type(value).__name__}"
            )
    var.value = value
    script = node.script
    if script is not None and hasattr(script, "set_var"):
        script.set_var(name, value)


def dump_inspector(node: Node) -> str:
    """Property-sheet rendering of a node (name, type, exports) à la Fig. 3."""
    lines = [f"Inspector — {node.name} ({type(node).__name__})"]
    if not node.exports:
        lines.append("  (no export variables)")
        return "\n".join(lines)
    width = max(len(n) for n in node.exports)
    for name, var in node.exports.items():
        hint = f" ({var.type_hint})" if var.type_hint else ""
        value = var.value
        shown = f"[{value.name}]" if isinstance(value, Node) else repr(value)
        lines.append(f"  {name.ljust(width)}{hint} = {shown}")
    return "\n".join(lines)


def _node_types() -> dict[str, type]:
    from repro.engine.node import Label3D, MeshInstance3D, Node3D

    return {
        "Node": Node,
        "Node3D": Node3D,
        "Label3D": Label3D,
        "MeshInstance3D": MeshInstance3D,
        "bool": bool,
        "int": int,
        "float": (int, float),  # type: ignore[dict-item]
        "String": str,
        "Array": list,
        "Dictionary": dict,
    }


_HINT_TYPES: dict[str, Any] = _node_types()
