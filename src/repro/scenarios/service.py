"""Long-running asyncio scenario service: bounded queue, cache, delta rebuilds.

:class:`ScenarioService` promotes one-shot :func:`~repro.scenarios.
generate_batch` fan-out to a resident front end for scenario traffic:

* **Bounded intake.**  Batches of :class:`~repro.scenarios.ScenarioSpec`
  enter through an ``asyncio.Queue`` with a configurable depth — when the
  queue is full, ``await submit(...)`` *waits* (backpressure) instead of
  buffering unboundedly, and ``submit(..., wait=False)`` fails fast with
  :class:`~repro.errors.ScenarioServiceError`.
* **Bounded execution.**  A fixed pool of worker tasks (``concurrency``)
  drains the queue; each build runs on the existing :mod:`repro.runtime`
  executors through :func:`repro.runtime.executor.async_submit`
  (``run_in_executor`` on the cached thread/process pools, ``to_thread`` for
  a serial config), so the event loop never blocks on NumPy.
* **Content-addressed caching.**  Every build routes through a
  :class:`~repro.scenarios.ScenarioCache` keyed by ``spec.cache_key()``;
  repeated traffic is served bit-identically from memory, ``warm()``
  pre-populates, and ``stats()`` exposes the cache analytics alongside the
  service counters.
* **Incremental rebuilds.**  ``apply_delta`` extends a cached scenario by
  recomputing only the row blocks its delta overlays touch
  (:func:`repro.scenarios.delta.apply_delta`), bit-identical to the full
  rebuild.
* **Progress + cancellation.**  Per-batch ``on_progress(done, total)`` hooks
  fire from the event loop in completion order, and a
  :class:`BatchHandle` can cancel everything in a batch that has not
  finished (in-flight executor work runs to completion but its result is
  discarded — the cache still keeps it, so the work is not wasted).  Once
  cancellation is observed the hook never fires again, and a *raising* hook
  is contained to its batch — it cannot kill a worker task and strand the
  queue.
* **Shared-memory reuse.**  On a ``process`` runtime config the builds run
  on the same cached pool as the blocked kernels, so any operands the batch
  routes through :mod:`repro.runtime.shm` stay attached in the pool workers'
  per-process LRU across the whole batch — segments are mapped once per
  worker, not once per spec.

The synchronous :func:`repro.scenarios.generate_batch` is a thin façade over
:func:`run_batch_sync` here, so both fronts share one code path for
validation, realisation, seeding, provenance, caching, and progress.

Usage::

    async with ScenarioService(concurrency=4, max_entries=512) as service:
        await service.warm(common_specs)
        handle = await service.submit(specs, on_progress=print)
        matrices = await handle.results()
        extended = await service.apply_delta(specs[0], {"name": "ddos_attack"})
        print(service.stats()["cache"]["hit_rate"])
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import ReproError, ScenarioError, ScenarioServiceError
from repro.obs import metrics as _obs
from repro.runtime.config import RuntimeConfig, configured, get_config
from repro.runtime.executor import async_submit, parallel_map
from repro.scenarios.cache import ScenarioCache
from repro.scenarios.delta import DeltaResult, apply_delta
from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix
    from repro.store import ScenarioStore

__all__ = ["ProgressCallback", "BatchHandle", "ScenarioService", "run_batch_sync"]

#: Per-batch progress hook: ``on_progress(done, total)``, fired once per
#: finished spec in **completion** order (worker order, not spec order).
ProgressCallback = Callable[[int, int], None]


def _build_indexed(item: "tuple[int, ScenarioSpec]") -> "TrafficMatrix":
    """Build one ``(index, spec)`` pair, naming the spec on failure.

    The shared realisation step behind both fronts (the async service and the
    sync batch façade).  A generator can reject a spec that passed registry
    validation (body-level constraints the schema cannot express); failures
    must say *which* spec broke, and they must not take the executor pool
    down with them — a raised task leaves the cached pools reusable.
    """
    index, spec = item
    try:
        return spec.build()
    except ReproError as exc:
        raise ScenarioError(
            f"spec {index} ({spec.base!r}) failed to build: {exc}"
        ) from exc


def _validate_batch(specs: Iterable[ScenarioSpec], what: str) -> list[ScenarioSpec]:
    """Up-front validation shared by every intake path: fail fast, by name."""
    seq = list(specs)
    for k, spec in enumerate(seq):
        if not isinstance(spec, ScenarioSpec):
            raise ScenarioError(
                f"{what} expects ScenarioSpec items, got "
                f"{type(spec).__name__} at index {k}"
            )
        try:
            spec.validate()
        except ReproError as exc:
            raise ScenarioError(
                f"spec {k} ({spec.base!r}) failed validation: {exc}"
            ) from exc
    return seq


def run_batch_sync(
    specs: Iterable[ScenarioSpec],
    *,
    workers: int | None = None,
    backend: str | None = None,
    cache: ScenarioCache | None = None,
    on_progress: ProgressCallback | None = None,
    what: str = "generate_batch",
) -> "list[TrafficMatrix]":
    """The synchronous batch path (the body of ``generate_batch``).

    Cache hits resolve before the fan-out (their progress fires first, in
    spec order); misses fan out over the runtime executors and are stored on
    completion.  Results always come back in input order, bit-identical on
    every backend.
    """
    seq = _validate_batch(specs, what)
    total = len(seq)
    results: "list[TrafficMatrix | None]" = [None] * total
    done = 0
    pending: list[tuple[int, ScenarioSpec]] = []
    for k, spec in enumerate(seq):
        cached = cache.get(spec) if cache is not None else None
        if cached is not None:
            results[k] = cached
            done += 1
            if on_progress is not None:
                on_progress(done, total)
        else:
            pending.append((k, spec))
    if pending:
        hook = None
        if on_progress is not None:
            base_done = done

            def hook(finished: int, _pending_total: int) -> None:
                on_progress(base_done + finished, total)

        if workers is None and backend is None:
            built = parallel_map(_build_indexed, pending, on_progress=hook)
        else:
            with configured(workers=workers, backend=backend, min_parallel_work=1):
                built = parallel_map(_build_indexed, pending, on_progress=hook)
        for (k, spec), matrix in zip(pending, built):
            if cache is not None:
                cache.put(spec, matrix)
            results[k] = matrix
    return results  # type: ignore[return-value]


def _apply_delta_job(
    args: "tuple[ScenarioSpec, object, ScenarioCache, bool]",
) -> DeltaResult:
    base_spec, delta, cache, verify = args
    return apply_delta(base_spec, delta, cache=cache, verify=verify)


class BatchHandle:
    """One submitted batch: ordered result futures, progress, cancellation."""

    def __init__(
        self,
        specs: list[ScenarioSpec],
        futures: "list[asyncio.Future]",
        on_progress: ProgressCallback | None,
    ) -> None:
        self.specs = specs
        self._futures = futures
        self._on_progress = on_progress
        self._done = 0
        self._cancelled = False

    @property
    def total(self) -> int:
        return len(self._futures)

    @property
    def done(self) -> int:
        """Specs that have finished (result, failure, or cancellation)."""
        return self._done

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been observed for this batch."""
        return self._cancelled

    def _mark_done(self) -> None:
        """Count a finished spec and fire the progress hook (service-internal).

        Two containment rules keep the service workers alive:

        * after :meth:`cancel` is observed the hook never fires again — a
          build that was already in flight still completes and is counted,
          silently;
        * a hook that *raises* is swallowed here rather than propagating into
          the worker task's drain loop — a dead worker would strand every
          queued future and deadlock ``await handle``.
        """
        self._done += 1
        if self._on_progress is None or self._cancelled:
            return
        try:
            self._on_progress(self._done, len(self._futures))
        except Exception:
            pass

    def cancel(self) -> int:
        """Cancel every spec in the batch that has not finished.

        Returns the number of futures actually cancelled.  A build already
        running on an executor cannot be interrupted — it completes and its
        matrix still lands in the cache, but the future stays cancelled.
        From this point on ``on_progress`` is suppressed: late completions
        (including the task in flight during this call) are counted in
        :attr:`done` but never reported, so a hook cannot observe progress
        on a batch its owner already abandoned.
        """
        self._cancelled = True
        return sum(1 for future in self._futures if future.cancel())

    async def results(
        self, *, return_exceptions: bool = False
    ) -> "list[TrafficMatrix]":
        """All matrices, in submission order.

        Raises the first build failure (or ``CancelledError`` for cancelled
        specs) unless ``return_exceptions=True``, which returns exception
        objects in the failed slots instead.
        """
        return list(
            await asyncio.gather(*self._futures, return_exceptions=return_exceptions)
        )

    def __await__(self):
        return self.results().__await__()


class ScenarioService:
    """Asyncio front end over the spec machinery (see module docstring).

    Parameters
    ----------
    concurrency:
        Number of worker tasks draining the queue — the in-flight build bound.
    queue_size:
        Queue depth; the backpressure point for ``submit``.
    cache:
        A :class:`~repro.scenarios.ScenarioCache` to share (e.g. with a sync
        batch path or another service); by default the service owns a fresh
        one configured by ``max_entries``/``max_bytes``.
    store:
        A :class:`~repro.store.ScenarioStore` to mount as the cache's durable
        L2 tier, so the service's corpus survives restarts.  Mutually
        exclusive with ``cache`` — a shared cache already decided its own
        tiering; pass ``ScenarioCache(..., store=...)`` instead.
    workers / backend:
        Runtime override for the executor builds run on (default: the
        process-wide :func:`repro.runtime.configure` setting).  The
        ``process`` backend requires picklable specs — all are.
    """

    def __init__(
        self,
        *,
        concurrency: int = 4,
        queue_size: int = 64,
        cache: ScenarioCache | None = None,
        store: "ScenarioStore | None" = None,
        max_entries: int | None = 256,
        max_bytes: int | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> None:
        if int(concurrency) < 1:
            raise ScenarioServiceError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        if int(queue_size) < 1:
            raise ScenarioServiceError(f"queue_size must be >= 1, got {queue_size}")
        if cache is not None and store is not None:
            raise ScenarioServiceError(
                "pass either cache or store, not both — attach the store to "
                "the cache (ScenarioCache(..., store=...)) when sharing one"
            )
        self.cache = (
            cache
            if cache is not None
            else ScenarioCache(
                max_entries=max_entries, max_bytes=max_bytes, store=store
            )
        )
        self.concurrency = int(concurrency)
        self.queue_size = int(queue_size)
        self._workers = workers
        self._backend = backend
        self._queue: "asyncio.Queue | None" = None
        self._tasks: "list[asyncio.Task]" = []
        self._counters = {
            "batches_submitted": 0,
            "specs_submitted": 0,
            "specs_completed": 0,
            "specs_failed": 0,
            "specs_cancelled": 0,
            "delta_rebuilds": 0,
            "delta_rows_recomputed": 0,
            "delta_rows_reused": 0,
        }

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a service counter and its mirror in the process registry.

        The instance dict keeps per-service analytics for :meth:`stats`;
        the ``scenario.<name>`` counter folds the same event into the
        process-wide :mod:`repro.obs` registry so one metrics snapshot covers
        every service (and the sync batch path) at once.
        """
        self._counters[name] += amount
        _obs.counter(f"scenario.{name}").inc(amount)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        return self._queue is not None

    def _runtime_config(self) -> RuntimeConfig | None:
        """The executor config builds run under (None = process-wide default)."""
        if self._workers is None and self._backend is None:
            return None
        cfg = get_config()
        updates: dict[str, object] = {}
        if self._workers is not None:
            updates["workers"] = int(self._workers)
        if self._backend is not None:
            updates["backend"] = self._backend
        from dataclasses import replace

        return replace(cfg, **updates)

    async def start(self) -> "ScenarioService":
        """Create the queue and worker tasks; idempotent-unsafe by design."""
        if self.running:
            raise ScenarioServiceError("service is already running")
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"scenario-service-{k}")
            for k in range(self.concurrency)
        ]
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the workers.  ``drain=True`` finishes queued work first."""
        if not self.running:
            return
        assert self._queue is not None
        if drain:
            await self._queue.join()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._queue = None

    async def __aenter__(self) -> "ScenarioService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        # On a clean exit, finish what was accepted; on error, bail fast.
        await self.stop(drain=exc_type is None)

    def _require_running(self) -> asyncio.Queue:
        if self._queue is None:
            raise ScenarioServiceError(
                "service is not running; use 'async with ScenarioService(...)' "
                "or 'await service.start()' first"
            )
        return self._queue

    # ------------------------------------------------------------------ #
    # the worker loop
    # ------------------------------------------------------------------ #

    async def _worker(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            job = await queue.get()
            _obs.gauge("scenario.queue_depth").set(float(queue.qsize()))
            try:
                await self._run_job(job)
            finally:
                queue.task_done()

    async def _run_job(
        self, job: "tuple[int, ScenarioSpec, asyncio.Future, BatchHandle, int]"
    ) -> None:
        index, spec, future, handle, enq_ns = job
        _obs.histogram("scenario.queue_wait_ms").observe(
            (_obs.monotonic_ns() - enq_ns) / 1e6
        )
        try:
            if future.cancelled():
                self._count("specs_cancelled")
                return
            matrix = self.cache.get(spec)
            if matrix is None:
                t0 = _obs.monotonic_ns()
                try:
                    matrix = await async_submit(
                        _build_indexed,
                        (index, spec),
                        self._runtime_config(),
                        label=f"spec {index} ({spec.base!r})",
                    )
                except Exception as exc:  # build failure -> the spec's future
                    self._count("specs_failed")
                    if not future.cancelled():
                        future.set_exception(exc)
                    return
                _obs.histogram("scenario.build_ms").observe(
                    (_obs.monotonic_ns() - t0) / 1e6
                )
                # Cache even when the requester has gone: the work is done,
                # and the next request for this spec should be a pure hit.
                self.cache.put(spec, matrix)
            if future.cancelled():
                self._count("specs_cancelled")
            else:
                future.set_result(matrix)
                self._count("specs_completed")
        finally:
            handle._mark_done()

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #

    async def submit(
        self,
        specs: Iterable[ScenarioSpec],
        *,
        on_progress: ProgressCallback | None = None,
        wait: bool = True,
    ) -> BatchHandle:
        """Enqueue a batch and return its :class:`BatchHandle`.

        The queue is bounded: when it is full, ``wait=True`` (default) makes
        this coroutine *wait* for space — awaiting ``submit`` is the
        backpressure point — while ``wait=False`` raises
        :class:`~repro.errors.ScenarioServiceError` immediately (specs of
        this batch already enqueued keep running and still populate the
        cache; the rest are cancelled).

        ``on_progress(done, total)`` fires on the event loop once per
        finished spec, in completion order (worker order, not spec order) —
        the same hook contract as ``generate_batch``.
        """
        queue = self._require_running()
        seq = _validate_batch(specs, what="ScenarioService.submit")
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in seq]
        handle = BatchHandle(seq, futures, on_progress)
        self._count("batches_submitted")
        for k, (spec, future) in enumerate(zip(seq, futures)):
            job = (k, spec, future, handle, _obs.monotonic_ns())
            if wait:
                await queue.put(job)
            else:
                try:
                    queue.put_nowait(job)
                except asyncio.QueueFull:
                    for leftover in futures[k:]:
                        leftover.cancel()
                    raise ScenarioServiceError(
                        f"service queue is full ({self.queue_size} jobs); "
                        f"spec {k} of {len(seq)} did not fit — await "
                        f"submit(..., wait=True) for backpressure instead"
                    ) from None
            self._count("specs_submitted")
            _obs.gauge("scenario.queue_depth").set(float(queue.qsize()))
        return handle

    async def generate(
        self,
        specs: Iterable[ScenarioSpec],
        *,
        on_progress: ProgressCallback | None = None,
    ) -> "list[TrafficMatrix]":
        """Submit a batch and await its ordered results in one call."""
        handle = await self.submit(specs, on_progress=on_progress)
        return await handle.results()

    async def warm(self, specs: Iterable[ScenarioSpec]) -> int:
        """Pre-populate the cache; returns the number of specs actually built.

        Idempotent: already-resident specs are skipped with a counter-neutral
        presence peek, and duplicates within one call build once.  The builds
        go through the normal queue, so warming respects the same
        concurrency and backpressure bounds as live traffic.
        """
        self._require_running()
        seq = _validate_batch(specs, what="ScenarioService.warm")
        missing: list[ScenarioSpec] = []
        seen: set[str] = set()
        for spec in seq:
            key = spec.cache_key()
            if key in seen or spec in self.cache:
                continue
            seen.add(key)
            missing.append(spec)
        if not missing:
            return 0
        handle = await self.submit(missing)
        await handle.results()
        return len(missing)

    async def apply_delta(
        self,
        base_spec: ScenarioSpec,
        delta: object,
        *,
        verify: bool = False,
    ) -> DeltaResult:
        """Extend a scenario incrementally (see :func:`repro.scenarios.delta.apply_delta`).

        The pre-noise base composition is fetched from this service's cache
        (built and cached on first use), only the row blocks the delta
        touches are recomputed, and the combined result is cached under the
        extended spec's key — a later ``submit``/``generate`` of that spec is
        a pure hit.  Runs on a worker thread: the cache is in-process state,
        so the delta path never crosses a pickle boundary.
        """
        self._require_running()
        result = await asyncio.to_thread(
            _apply_delta_job, (base_spec, delta, self.cache, verify)
        )
        self._count("delta_rebuilds")
        self._count("delta_rows_recomputed", result.stats.rows_recomputed)
        self._count("delta_rows_reused", result.stats.rows_reused)
        return result

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, object]:
        """Service counters plus a cache analytics snapshot (JSON-able)."""
        out: dict[str, object] = dict(self._counters)
        out["running"] = self.running
        out["concurrency"] = self.concurrency
        out["queue_size"] = self.queue_size
        out["queue_depth"] = self._queue.qsize() if self._queue is not None else 0
        out["cache"] = self.cache.stats()
        if self.cache.store is not None:
            out["store"] = self.cache.store.stats()
        return out

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"ScenarioService({state}, concurrency={self.concurrency}, "
            f"queue_size={self.queue_size}, cache={self.cache!r})"
        )
