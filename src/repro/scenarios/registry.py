"""The scenario registry: one namespace over every traffic generator.

Every generator in :mod:`repro.graphs` registers itself here (via the
:func:`register_scenario` decorator applied at definition site), so callers
can enumerate, introspect, and invoke the whole zoo uniformly instead of
importing each free function by hand.  A registry entry records:

* the canonical **name** (``"star"``, ``"ddos_attack"``, ``"defense_pattern"``),
* the **family** the paper presents it in (``pattern`` / ``topology`` /
  ``attack`` / ``ddos`` / ``defense`` / ``noise``),
* free-form **tags** for cross-cutting selection,
* a human-readable **display** string (quiz answer text), and
* an introspected **parameter schema** (name, default, required, annotation)
  derived from the generator's signature — the contract a declarative
  :class:`~repro.scenarios.ScenarioSpec` is validated against.

The registry itself imports nothing from :mod:`repro.graphs`; population
happens when the generator modules are imported.  :func:`ensure_registered`
forces that import, so lookups work no matter which module was loaded first.
"""

from __future__ import annotations

import difflib
import importlib
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ScenarioError

__all__ = [
    "ParamInfo",
    "GeneratorInfo",
    "SCENARIO_REGISTRY",
    "SCENARIO_FAMILIES",
    "REGISTRY_ALIASES",
    "register_scenario",
    "get_generator",
    "scenario_names",
    "parameter_schema",
    "ensure_registered",
]

#: Families in paper presentation order (Figs. 10, 6, 7, 8, 9, + noise).
SCENARIO_FAMILIES = ("pattern", "topology", "attack", "defense", "ddos", "noise")

#: Historical / catalogue names → canonical registry names.  The one entry is
#: the ``defense`` function (its natural name belongs to the
#: ``repro.graphs.defense`` submodule, so it registers as ``defense_pattern``).
#: :func:`get_generator` resolves aliases transparently; this table is the
#: single place a rename lives, shared by the module library and classifier.
REGISTRY_ALIASES: dict[str, str] = {"defense": "defense_pattern"}

#: Sentinel distinguishing "no default" from "default is None".
_REQUIRED = inspect.Parameter.empty


@dataclass(frozen=True)
class ParamInfo:
    """One generator parameter, as introspected from the signature.

    ``minimum`` / ``maximum`` are the declared numeric bounds (inclusive,
    ``None`` = unbounded on that side).  They are part of the generator's
    public contract: the body must accept every in-bounds value and raise
    :class:`~repro.errors.ShapeError` for every out-of-bounds one — the
    agreement the spec-space fuzzer (:mod:`repro.verify`) samples against.
    """

    name: str
    required: bool
    default: Any = None
    annotation: str = ""
    keyword_only: bool = False
    minimum: float | int | None = None
    maximum: float | int | None = None

    @property
    def bounded(self) -> bool:
        return self.minimum is not None or self.maximum is not None

    def in_bounds(self, value: Any) -> bool:
        """Whether a numeric *value* satisfies the declared bounds."""
        try:
            v = float(value)
        except (TypeError, ValueError):
            return True  # non-numeric values are outside bounds' jurisdiction
        if self.minimum is not None and v < self.minimum:
            return False
        if self.maximum is not None and v > self.maximum:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "required": self.required,
            "annotation": self.annotation,
            "keyword_only": self.keyword_only,
        }
        if not self.required:
            doc["default"] = self.default
        if self.minimum is not None:
            doc["minimum"] = self.minimum
        if self.maximum is not None:
            doc["maximum"] = self.maximum
        return doc


@dataclass(frozen=True)
class GeneratorInfo:
    """Registry entry: a named, tagged, schema-introspected generator.

    ``min_n`` is the smallest matrix size the generator accepts when driven
    through the spec path (space-scaled template labels from
    :func:`repro.core.labels.space_labels`); space-dependent generators need
    enough endpoints in each network space.  ``n_multiple_of`` declares a
    divisibility constraint (the template matrix needs an even size).  Both
    feed :meth:`ScenarioSpec.validate` and the corpus sampler in
    :mod:`repro.verify`.
    """

    name: str
    func: Callable[..., Any]
    family: str
    tags: tuple[str, ...] = ()
    display: str = ""
    summary: str = ""
    params: tuple[ParamInfo, ...] = ()
    min_n: int = 1
    n_multiple_of: int = 1

    def valid_n(self, n: int) -> bool:
        """Whether matrix size *n* satisfies this generator's declared bounds."""
        return int(n) >= self.min_n and int(n) % self.n_multiple_of == 0

    def param(self, name: str) -> ParamInfo:
        for p in self.params:
            if p.name == name:
                return p
        raise ScenarioError(
            f"generator {self.name!r} has no parameter {name!r}; "
            f"accepted: {[p.name for p in self.params]}"
        )

    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def accepts(self, name: str) -> bool:
        return any(p.name == name for p in self.params)

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject unknown parameter names and out-of-bounds values."""
        unknown = [k for k in params if not self.accepts(k)]
        if unknown:
            raise ScenarioError(
                f"generator {self.name!r} does not accept parameter(s) "
                f"{sorted(unknown)}; accepted: {list(self.param_names())}"
            )
        for key, value in params.items():
            p = self.param(key)
            if p.bounded and not p.in_bounds(value):
                raise ScenarioError(
                    f"generator {self.name!r} parameter {key!r} = {value!r} is "
                    f"outside its declared bounds "
                    f"[{p.minimum if p.minimum is not None else '-inf'}, "
                    f"{p.maximum if p.maximum is not None else 'inf'}]"
                )

    def schema(self) -> dict[str, Any]:
        """JSON-able description of this generator (for tooling / serving)."""
        return {
            "name": self.name,
            "family": self.family,
            "tags": list(self.tags),
            "display": self.display,
            "summary": self.summary,
            "min_n": self.min_n,
            "n_multiple_of": self.n_multiple_of,
            "params": [p.to_dict() for p in self.params],
        }


#: The global name → :class:`GeneratorInfo` table.
SCENARIO_REGISTRY: dict[str, GeneratorInfo] = {}

_registered = False


def _introspect_params(
    func: Callable[..., Any],
    bounds: Mapping[str, tuple[float | int | None, float | int | None]],
) -> tuple[ParamInfo, ...]:
    out: list[ParamInfo] = []
    seen: set[str] = set()
    for p in inspect.signature(func).parameters.values():
        if p.kind in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD):
            continue
        annotation = "" if p.annotation is _REQUIRED else str(p.annotation)
        lo, hi = bounds.get(p.name, (None, None))
        seen.add(p.name)
        out.append(
            ParamInfo(
                name=p.name,
                required=p.default is _REQUIRED,
                default=None if p.default is _REQUIRED else p.default,
                annotation=annotation,
                keyword_only=p.kind is inspect.Parameter.KEYWORD_ONLY,
                minimum=lo,
                maximum=hi,
            )
        )
    stray = set(bounds) - seen
    if stray:
        raise ScenarioError(
            f"bounds declared for unknown parameter(s) {sorted(stray)} of "
            f"{func.__name__!r}"
        )
    return tuple(out)


def register_scenario(
    name: str | None = None,
    *,
    family: str,
    tags: Iterable[str] = (),
    display: str | None = None,
    summary: str | None = None,
    min_n: int = 1,
    n_multiple_of: int = 1,
    bounds: Mapping[str, tuple[float | int | None, float | int | None]] | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a generator in :data:`SCENARIO_REGISTRY`.

    The decorated function is returned unchanged — registration is a side
    table, not a wrapper, so direct calls stay zero-overhead.  ``name``
    defaults to the function name; ``summary`` to the first docstring line.

    ``min_n`` / ``n_multiple_of`` declare the sizes the generator supports on
    the spec path (space-scaled labels), and ``bounds`` maps numeric parameter
    names to inclusive ``(minimum, maximum)`` ranges (``None`` = open side).
    Declared bounds are a *contract*: the body must accept every in-bounds
    value, which is what the differential fuzzer in :mod:`repro.verify`
    samples and enforces.
    """
    if family not in SCENARIO_FAMILIES:
        raise ScenarioError(
            f"unknown scenario family {family!r}; expected one of {SCENARIO_FAMILIES}"
        )
    if min_n < 1:
        raise ScenarioError(f"min_n must be >= 1, got {min_n}")
    if n_multiple_of < 1:
        raise ScenarioError(f"n_multiple_of must be >= 1, got {n_multiple_of}")

    def deco(func: Callable[..., Any]) -> Callable[..., Any]:
        reg_name = name if name is not None else func.__name__
        if reg_name in SCENARIO_REGISTRY:
            raise ScenarioError(f"scenario name {reg_name!r} is already registered")
        doc_line = (func.__doc__ or "").strip().splitlines()
        SCENARIO_REGISTRY[reg_name] = GeneratorInfo(
            name=reg_name,
            func=func,
            family=family,
            tags=tuple(dict.fromkeys((family, *tags))),
            display=display if display is not None else reg_name.replace("_", " ").capitalize(),
            summary=summary if summary is not None else (doc_line[0] if doc_line else ""),
            params=_introspect_params(func, bounds or {}),
            min_n=int(min_n),
            n_multiple_of=int(n_multiple_of),
        )
        return func

    return deco


def ensure_registered() -> None:
    """Force registration of every built-in generator (idempotent)."""
    global _registered
    if not _registered:
        importlib.import_module("repro.graphs")
        _registered = True


def get_generator(name: str) -> GeneratorInfo:
    """Look up a registry entry (aliases resolved), with did-you-mean on
    unknown names."""
    ensure_registered()
    name = REGISTRY_ALIASES.get(name, name)
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(name, SCENARIO_REGISTRY, n=3)
        hint = f"; did you mean {close}?" if close else ""
        raise ScenarioError(
            f"unknown scenario generator {name!r}{hint} "
            f"(known: {sorted(SCENARIO_REGISTRY)})"
        ) from None


def scenario_names(
    *, family: str | None = None, tags: Iterable[str] = ()
) -> tuple[str, ...]:
    """Registered names, optionally filtered by family and/or tags (all must match)."""
    ensure_registered()
    want = set(tags)
    return tuple(
        info.name
        for info in SCENARIO_REGISTRY.values()
        if (family is None or info.family == family) and want <= set(info.tags)
    )


def parameter_schema(name: str) -> dict[str, Any]:
    """The JSON-able parameter schema of one registered generator."""
    return get_generator(name).schema()
