"""Content-addressed scenario result cache with LRU + byte-budget eviction.

A :class:`ScenarioCache` maps :meth:`ScenarioSpec.cache_key()
<repro.scenarios.ScenarioSpec.cache_key>` — the SHA-256 of a spec's canonical
JSON — to its built :class:`~repro.core.TrafficMatrix`.  Because a spec fully
determines its matrix (all randomness flows through the spec's seed, the
guarantee :mod:`repro.verify` fuzzes continuously), serving a cached result is
*bit-identical* to rebuilding: packets, colours, labels, and provenance
metadata all match.  That contract is what makes the cache safe to put in
front of every build path, and it is enforced by the ``cache_delta`` oracle in
:func:`repro.verify.default_oracles`, not assumed.

Entries are stored and served as **copies** — :class:`TrafficMatrix` is
mutable, and a caller scribbling on a result must never corrupt what the next
hit receives.  Eviction is plain LRU, bounded by entry count and/or resident
bytes; both bounds are deterministic, so a replayed workload evicts the same
keys in the same order on every backend.

**Tiers.**  With a :class:`~repro.store.ScenarioStore` attached the cache
becomes a two-level hierarchy: the in-memory LRU is **L1**, the durable store
is **L2**.  Reads fall through L1 → L2 → build (read-through: an L2 hit is
promoted back into L1); writes go to both (write-through: every ``put`` also
lands durably, so corpora survive restarts and are shared across processes).
Eviction from L1 costs nothing durable — the entry is still in L2, and the
next read quietly promotes it back.

:class:`CacheAnalytics` is the observability surface: hits, misses,
evictions, resident bytes, per-family hit rates, and — when a store is
attached — the per-tier split (``l1_hits``/``l2_hits``/``promotions``),
exposed through ``ScenarioService.stats()`` and :meth:`ScenarioCache.stats`.
``hits`` stays the *total* across tiers, so existing dashboards keep reading
the number they always did.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import ScenarioError
from repro.obs import metrics as _obs
from repro.scenarios.registry import get_generator
from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix
    from repro.store import ScenarioStore

__all__ = ["matrix_bytes", "CacheAnalytics", "ScenarioCache"]


def matrix_bytes(matrix: "TrafficMatrix") -> int:
    """Approximate resident size of one cached matrix.

    Counts the two dense grids (packets, colours) plus label text; the small
    per-object overheads are deliberately ignored — the byte budget exists to
    bound memory at the array level, where the real weight is.
    """
    return int(
        matrix.packets.nbytes
        + matrix.colors.nbytes
        + sum(len(label) for label in matrix.labels)
    )


@dataclass(frozen=True)
class CacheAnalytics:
    """Immutable snapshot of a cache's counters at one instant.

    ``family_hits``/``family_misses`` bucket traffic by the *base* generator's
    registry family (``pattern``, ``attack``, ``ddos``, …) — the per-workload
    view that tells an operator which scenario families actually benefit from
    warming.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    entries: int = 0
    bytes: int = 0
    max_entries: int | None = None
    max_bytes: int | None = None
    family_hits: Mapping[str, int] = field(default_factory=dict)
    family_misses: Mapping[str, int] = field(default_factory=dict)
    l1_hits: int = 0
    l2_hits: int = 0
    promotions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Overall hit fraction (0.0 on a cold, untouched cache)."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def l1_hit_rate(self) -> float:
        """Fraction of all requests served from memory."""
        return self.l1_hits / self.requests if self.requests else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """Fraction of all requests served from the durable store."""
        return self.l2_hits / self.requests if self.requests else 0.0

    def family_hit_rates(self) -> dict[str, float]:
        """Hit fraction per scenario family, for every family seen."""
        out: dict[str, float] = {}
        for family in sorted(set(self.family_hits) | set(self.family_misses)):
            h = self.family_hits.get(family, 0)
            m = self.family_misses.get(family, 0)
            out[family] = h / (h + m) if h + m else 0.0
        return out

    def to_dict(self) -> dict[str, object]:
        """JSON-able form (what ``ScenarioService.stats()`` embeds)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "entries": self.entries,
            "bytes": self.bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
            "family_hit_rates": self.family_hit_rates(),
            "tiers": {
                "l1_hits": self.l1_hits,
                "l2_hits": self.l2_hits,
                "l1_hit_rate": self.l1_hit_rate,
                "l2_hit_rate": self.l2_hit_rate,
                "promotions": self.promotions,
            },
        }


class ScenarioCache:
    """LRU result cache keyed by :meth:`ScenarioSpec.cache_key`.

    Parameters
    ----------
    max_entries:
        Entry-count bound (``None`` = unbounded).  The least-recently-used
        entry is evicted first.
    max_bytes:
        Resident-byte bound over all cached grids (``None`` = unbounded).
        A single matrix larger than the whole budget is simply not retained —
        admitting it would evict everything else for a entry that can never
        pay for itself.
    store:
        Optional durable L2 tier (a :class:`~repro.store.ScenarioStore` or
        anything with its ``get``/``put``/``contains`` surface).  Reads fall
        through to it on an L1 miss and promote hits back into memory;
        writes go through to it, oversized-for-L1 entries included — the
        byte budget bounds *memory*, not durability.

    All operations are thread-safe (one re-entrant lock): the asyncio service
    touches the cache from its event-loop thread and from ``to_thread`` delta
    rebuilds, while the sync batch path may use the same instance.  Store I/O
    runs *outside* the lock so a slow disk never blocks concurrent L1 hits.
    """

    def __init__(
        self,
        max_entries: int | None = 256,
        max_bytes: int | None = None,
        *,
        store: "ScenarioStore | None" = None,
    ) -> None:
        if max_entries is not None and int(max_entries) < 1:
            raise ScenarioError(
                f"cache max_entries must be >= 1 or None, got {max_entries}"
            )
        if max_bytes is not None and int(max_bytes) < 1:
            raise ScenarioError(
                f"cache max_bytes must be >= 1 or None, got {max_bytes}"
            )
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.store = store
        # key -> (family, matrix, bytes); insertion order doubles as LRU order
        self._entries: "OrderedDict[str, tuple[str, TrafficMatrix, int]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._puts = 0
        self._family_hits: dict[str, int] = {}
        self._family_misses: dict[str, int] = {}
        self._l1_hits = 0
        self._l2_hits = 0
        self._promotions = 0

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #

    @staticmethod
    def key_of(spec: "ScenarioSpec | str") -> str:
        """The cache key for *spec* (a raw key string passes through)."""
        if isinstance(spec, ScenarioSpec):
            return spec.cache_key()
        if isinstance(spec, str):
            return spec
        raise ScenarioError(
            f"cache keys come from ScenarioSpec or str, got {type(spec).__name__}"
        )

    @staticmethod
    def _family_of(spec: ScenarioSpec) -> str:
        try:
            return get_generator(spec.base).family
        except ScenarioError:
            return "unknown"

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, spec: "ScenarioSpec | str") -> bool:
        """Presence peek across both tiers — counter-neutral, no LRU touch."""
        with self._lock:
            if self.key_of(spec) in self._entries:
                return True
        return self.store is not None and self.store.contains(self.key_of(spec))

    def get(self, spec: ScenarioSpec) -> "TrafficMatrix | None":
        """The cached matrix for *spec* (a fresh copy), or ``None`` on a miss.

        Counts one hit or miss and refreshes the entry's LRU position.  With
        a store attached, an L1 miss falls through to L2; an L2 hit counts as
        a hit (tier-tagged) and is promoted back into memory.
        """
        matrix, tier = self._get_with_tier(spec)
        return matrix if tier is not None else None

    def _get_with_tier(
        self, spec: ScenarioSpec
    ) -> "tuple[TrafficMatrix | None, str | None]":
        """``(matrix, tier)`` with tier ``"l1"``, ``"l2"``, or ``None`` (miss)."""
        key = self.key_of(spec)
        family = self._family_of(spec)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                self._l1_hits += 1
                self._family_hits[family] = self._family_hits.get(family, 0) + 1
                _obs.counter("scenario.cache.hits").inc()
                _obs.counter("scenario.cache.hits.l1").inc()
                _obs.counter(f"scenario.cache.hits.{family}").inc()
                return entry[1].copy(), "l1"
        # L1 miss — consult the durable tier outside the lock (disk latency
        # must not serialise concurrent L1 readers).
        if self.store is not None:
            loaded = self.store.get(key)
            if loaded is not None:
                self._promote(key, family, loaded)
                with self._lock:
                    self._hits += 1
                    self._l2_hits += 1
                    self._family_hits[family] = self._family_hits.get(family, 0) + 1
                _obs.counter("scenario.cache.hits").inc()
                _obs.counter("scenario.cache.hits.l2").inc()
                _obs.counter(f"scenario.cache.hits.{family}").inc()
                return loaded, "l2"
        with self._lock:
            self._misses += 1
            self._family_misses[family] = self._family_misses.get(family, 0) + 1
        _obs.counter("scenario.cache.misses").inc()
        _obs.counter(f"scenario.cache.misses.{family}").inc()
        return None, None

    def _promote(self, key: str, family: str, matrix: "TrafficMatrix") -> None:
        """Copy an L2 hit into L1 (a promotion, not a put — counted apart)."""
        size = matrix_bytes(matrix)
        if self.max_bytes is not None and size > self.max_bytes:
            return  # oversized for memory; it stays served from L2
        stored = matrix.copy()
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[2]
            self._entries[key] = (family, stored, size)
            self._bytes += size
            self._promotions += 1
            _obs.counter("scenario.cache.promotions").inc()
            self._evict_over_budget()
            self._sync_gauges()

    def put(self, spec: ScenarioSpec, matrix: "TrafficMatrix") -> str:
        """Store a built matrix under the spec's content address.

        The cache keeps its own copy (callers may keep mutating theirs), then
        evicts least-recently-used entries until both bounds hold.  With a
        store attached the write also goes through to L2 — including entries
        too large for the memory budget, which L1 refuses but the durable
        tier happily keeps.  Returns the cache key.
        """
        key = self.key_of(spec)
        family = self._family_of(spec)
        size = matrix_bytes(matrix)
        if self.max_bytes is not None and size > self.max_bytes:
            # An entry larger than the whole budget can never pay for itself;
            # admitting it would flush every other entry first.  Refuse it
            # (and drop any stale entry under the same key) instead.
            with self._lock:
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old[2]
                    self._evictions += 1
                    _obs.counter("scenario.cache.evictions").inc()
                self._sync_gauges()
        else:
            stored = matrix.copy()
            with self._lock:
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old[2]
                self._entries[key] = (family, stored, size)
                self._bytes += size
                self._puts += 1
                _obs.counter("scenario.cache.puts").inc()
                self._evict_over_budget()
                self._sync_gauges()
        if self.store is not None:
            # Write-through, outside the lock: the store encodes its own
            # immutable frame, so later caller mutations can't leak in.
            self.store.put(spec, matrix)
        return key

    def _evict_over_budget(self) -> None:
        """Drop LRU entries until both bounds hold (call with the lock held)."""
        while self._entries and (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            _, (_, _, size) = self._entries.popitem(last=False)
            self._bytes -= size
            self._evictions += 1
            _obs.counter("scenario.cache.evictions").inc()

    def _sync_gauges(self) -> None:
        """Mirror residency into the process registry (call with the lock held).

        Counters above are per-event increments and so aggregate correctly
        across several cache instances; residency is a point-in-time level,
        so the gauges reflect the cache touched most recently — the common
        single-service deployment reads them as that cache's residency.
        """
        _obs.gauge("scenario.cache.entries").set(float(len(self._entries)))
        _obs.gauge("scenario.cache.bytes").set(float(self._bytes))

    def fetch(
        self, spec: ScenarioSpec
    ) -> "tuple[TrafficMatrix, bool]":
        """Get-or-build: ``(matrix, was_hit)``.  A miss builds and stores."""
        matrix, tier = self.fetch_tiered(spec)
        return matrix, tier != "build"

    def fetch_tiered(
        self, spec: ScenarioSpec
    ) -> "tuple[TrafficMatrix, str]":
        """Get-or-build with provenance: ``(matrix, tier)``.

        ``tier`` names where the matrix came from — ``"l1"`` (memory),
        ``"l2"`` (durable store), or ``"build"`` (freshly built, and stored
        through both tiers on the way out).
        """
        cached, tier = self._get_with_tier(spec)
        if cached is not None and tier is not None:
            return cached, tier
        built = spec.build()
        self.put(spec, built)
        return built, "build"

    def warm(
        self,
        specs: Iterable[ScenarioSpec],
        *,
        workers: int | None = None,
        backend: str | None = None,
    ) -> int:
        """Pre-populate the cache; returns the number of specs actually built.

        Idempotent: specs already resident are skipped with a counter-neutral
        presence peek (warming is maintenance, not traffic — it must not skew
        hit rates), and duplicate specs in one call build once.  The builds
        themselves run through :func:`repro.scenarios.generate_batch` with
        this cache attached, so they parallelise like any batch and their
        misses/puts are accounted normally.
        """
        from repro.scenarios.batch import generate_batch

        missing: list[ScenarioSpec] = []
        seen: set[str] = set()
        for spec in specs:
            if not isinstance(spec, ScenarioSpec):
                raise ScenarioError(
                    f"warm expects ScenarioSpec items, got {type(spec).__name__}"
                )
            key = spec.cache_key()
            if key in seen or spec in self:
                continue
            seen.add(key)
            missing.append(spec)
        if missing:
            generate_batch(missing, workers=workers, backend=backend, cache=self)
        return len(missing)

    def clear(self) -> None:
        """Drop every L1 entry (counters are kept — lifetime analytics survive).

        The durable tier is deliberately untouched: clearing memory is a
        residency decision, deleting from the store is data loss.
        """
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def keys(self) -> list[str]:
        """Cache keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def analytics(self) -> CacheAnalytics:
        """A consistent snapshot of every counter."""
        with self._lock:
            return CacheAnalytics(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                puts=self._puts,
                entries=len(self._entries),
                bytes=self._bytes,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
                family_hits=dict(self._family_hits),
                family_misses=dict(self._family_misses),
                l1_hits=self._l1_hits,
                l2_hits=self._l2_hits,
                promotions=self._promotions,
            )

    def stats(self) -> dict[str, object]:
        """JSON-able analytics (see :meth:`CacheAnalytics.to_dict`)."""
        return self.analytics().to_dict()

    def __repr__(self) -> str:
        a = self.analytics()
        return (
            f"ScenarioCache(entries={a.entries}, bytes={a.bytes}, "
            f"hits={a.hits}, misses={a.misses}, evictions={a.evictions})"
        )
