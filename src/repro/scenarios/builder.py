"""Fluent construction of :class:`~repro.scenarios.ScenarioSpec` documents.

The builder is sugar over the spec dataclass::

    matrix = (
        ScenarioBuilder()
        .base("star", n=12)
        .with_noise(density=0.05)
        .overlay("ddos_attack")
        .seed(7)
        .build()
    )

Every step validates eagerly against the registry, so a typo'd generator or
parameter name fails at the call site, not at batch-realisation time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ScenarioSpecError
from repro.scenarios.registry import get_generator
from repro.scenarios.spec import NoiseSpec, OverlaySpec, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix

__all__ = ["ScenarioBuilder"]


class ScenarioBuilder:
    """Step-by-step assembly of a :class:`ScenarioSpec`."""

    def __init__(self) -> None:
        self._base: str | None = None
        self._params: dict[str, Any] = {}
        self._n: int = 10
        self._seed: int = 0
        self._noise: NoiseSpec | None = None
        self._overlays: list[OverlaySpec] = []

    def base(self, name: str, *, n: int | None = None, **params: Any) -> "ScenarioBuilder":
        """Set the base generator; ``n`` here is shorthand for :meth:`size`."""
        info = get_generator(name)
        info.validate_params(params)
        self._base = name
        self._params = dict(params)
        if n is not None:
            self.size(n)
        return self

    def size(self, n: int) -> "ScenarioBuilder":
        """Set the matrix size (endpoint count)."""
        if int(n) < 1:
            raise ScenarioSpecError(f"scenario size n must be >= 1, got {n}")
        self._n = int(n)
        return self

    def seed(self, seed: int) -> "ScenarioBuilder":
        """Set the seed all derived randomness (noise layers) flows from."""
        self._seed = int(seed)
        return self

    def with_noise(
        self,
        *,
        density: float = 0.1,
        max_packets: int = 2,
        preserve_pattern: bool = True,
    ) -> "ScenarioBuilder":
        """Add seeded background chatter after all layers are composed."""
        self._noise = NoiseSpec(
            density=density, max_packets=max_packets, preserve_pattern=preserve_pattern
        )
        return self

    def overlay(self, name: str, **params: Any) -> "ScenarioBuilder":
        """Stack another registered generator on top of the base layer."""
        if "n" in params:
            raise ScenarioSpecError(
                "overlay layers inherit the spec's size; set it with .size(n) "
                "instead of passing n to an overlay"
            )
        info = get_generator(name)
        info.validate_params(params)
        self._overlays.append(OverlaySpec(name=name, params=dict(params)))
        return self

    def spec(self) -> ScenarioSpec:
        """The immutable spec described so far."""
        if self._base is None:
            raise ScenarioSpecError(
                "ScenarioBuilder needs a base generator; call .base(name, ...) first"
            )
        return ScenarioSpec(
            base=self._base,
            params=dict(self._params),
            n=self._n,
            seed=self._seed,
            noise=self._noise,
            overlays=tuple(self._overlays),
        )

    def build(self) -> "TrafficMatrix":
        """Realise the spec (see :meth:`ScenarioSpec.build`)."""
        return self.spec().build()
