"""Declarative scenario specifications — JSON-round-trippable build recipes.

A :class:`ScenarioSpec` is data, not code: the name of a registered base
generator plus its parameters, optional overlay layers, optional background
noise, a matrix size and a seed.  The same spec document produces the same
:class:`~repro.core.TrafficMatrix` on every machine and every executor —
all randomness flows through the spec's seed — which is what makes the
batch API (:func:`repro.scenarios.generate_batch`) safe to parallelize.

Specs serialise to plain JSON (``to_json`` / ``from_json``), so curricula,
fuzzing corpora, and service requests can all be stored and shipped as text.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ScenarioSpecError
from repro.scenarios.registry import GeneratorInfo, get_generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix

__all__ = ["SPEC_VERSION", "NoiseSpec", "OverlaySpec", "ScenarioSpec"]

#: Version stamp written into every serialised spec document.
SPEC_VERSION = 1


def _layer_seed(seed: int, index: int) -> int:
    """Deterministic per-layer seed derivation (stable across processes).

    A fixed odd multiplier keeps layer streams distinct without touching any
    global RNG state — ``hash()`` is unsuitable because string hashing is
    randomised per process.
    """
    return (int(seed) * 1_000_003 + 7919 * (index + 1)) % (2**31)


@dataclass(frozen=True)
class NoiseSpec:
    """Background-noise stage of a spec (see :func:`repro.graphs.with_noise`)."""

    density: float = 0.1
    max_packets: int = 2
    preserve_pattern: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "density": self.density,
            "max_packets": self.max_packets,
            "preserve_pattern": self.preserve_pattern,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "NoiseSpec":
        if not isinstance(doc, Mapping):
            raise ScenarioSpecError(f"noise must be an object, got {type(doc).__name__}")
        unknown = set(doc) - {"density", "max_packets", "preserve_pattern"}
        if unknown:
            raise ScenarioSpecError(f"unknown noise field(s) {sorted(unknown)}")
        return cls(
            density=float(doc.get("density", 0.1)),
            max_packets=int(doc.get("max_packets", 2)),
            preserve_pattern=bool(doc.get("preserve_pattern", True)),
        )


@dataclass(frozen=True)
class OverlaySpec:
    """One overlay layer: a registered generator name plus its parameters."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "OverlaySpec":
        if not isinstance(doc, Mapping) or "name" not in doc:
            raise ScenarioSpecError("overlay must be an object with a 'name' field")
        unknown = set(doc) - {"name", "params"}
        if unknown:
            raise ScenarioSpecError(f"unknown overlay field(s) {sorted(unknown)}")
        params = doc.get("params", {})
        if not isinstance(params, Mapping):
            raise ScenarioSpecError("overlay 'params' must be an object")
        return cls(name=str(doc["name"]), params=dict(params))


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serialisable description of one scenario matrix.

    ``base`` names a registered generator; ``params`` are its keyword
    arguments (JSON-able values only).  ``overlays`` are summed on top of the
    base layer via :func:`repro.graphs.compose.overlay`; ``noise`` adds
    seeded background chatter last, so planted signatures survive verbatim
    when ``preserve_pattern`` is on.
    """

    base: str
    params: dict[str, Any] = field(default_factory=dict)
    n: int = 10
    seed: int = 0
    noise: NoiseSpec | None = None
    overlays: tuple[OverlaySpec, ...] = ()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def validate(self) -> "ScenarioSpec":
        """Check the spec against the registry; returns self for chaining."""
        if int(self.n) < 1:
            raise ScenarioSpecError(f"scenario size n must be >= 1, got {self.n}")
        for where, name, params in (
            ("params", self.base, self.params),
            *(("overlay params", ov.name, ov.params) for ov in self.overlays),
        ):
            if "n" in params:
                raise ScenarioSpecError(
                    f"matrix size belongs in the spec's 'n' field, not in "
                    f"{name!r} {where}: every layer must share one size"
                )
            info = get_generator(name)
            if info.accepts("n") and not info.valid_n(self.n):
                constraint = f"needs n >= {info.min_n}"
                if info.n_multiple_of > 1:
                    constraint += f" and n divisible by {info.n_multiple_of}"
                raise ScenarioSpecError(
                    f"generator {name!r} {constraint} on the spec path, got n={self.n}"
                )
            info.validate_params(params)
        return self

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec_version": SPEC_VERSION,
            "base": self.base,
            "params": dict(self.params),
            "n": self.n,
            "seed": self.seed,
            "noise": None if self.noise is None else self.noise.to_dict(),
            "overlays": [ov.to_dict() for ov in self.overlays],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(doc, Mapping):
            raise ScenarioSpecError(f"spec must be an object, got {type(doc).__name__}")
        if "base" not in doc:
            raise ScenarioSpecError("spec needs a 'base' generator name")
        version = doc.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ScenarioSpecError(
                f"unsupported spec_version {version!r} (this library reads {SPEC_VERSION})"
            )
        known = {"spec_version", "base", "params", "n", "seed", "noise", "overlays"}
        unknown = set(doc) - known
        if unknown:
            raise ScenarioSpecError(f"unknown spec field(s) {sorted(unknown)}")
        params = doc.get("params", {})
        if not isinstance(params, Mapping):
            raise ScenarioSpecError("spec 'params' must be an object")
        noise = doc.get("noise")
        overlays = doc.get("overlays", ())
        if not isinstance(overlays, (list, tuple)):
            raise ScenarioSpecError("spec 'overlays' must be a list")
        return cls(
            base=str(doc["base"]),
            params=dict(params),
            n=int(doc.get("n", 10)),
            seed=int(doc.get("seed", 0)),
            noise=None if noise is None else NoiseSpec.from_dict(noise),
            overlays=tuple(OverlaySpec.from_dict(ov) for ov in overlays),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        try:
            return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        except TypeError as exc:
            raise ScenarioSpecError(
                f"spec for {self.base!r} holds non-JSON parameter values: {exc}"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError(f"spec is not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    # ------------------------------------------------------------------ #
    # content addressing
    # ------------------------------------------------------------------ #

    def canonical_json(self) -> str:
        """The canonical serialisation: sorted keys, no whitespace.

        Two specs produce the same canonical document iff they are equal, so
        this string (not the pretty ``to_json`` form) is what gets hashed for
        content addressing.
        """
        try:
            return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        except TypeError as exc:
            raise ScenarioSpecError(
                f"spec for {self.base!r} holds non-JSON parameter values: {exc}"
            ) from None

    def cache_key(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the spec's content address.

        This is the single content address in the codebase: the scenario
        result cache (:class:`~repro.scenarios.ScenarioCache`) keys entries
        by it and :func:`repro.verify.save_repro` names repro files with it.
        Because a spec fully determines its matrix (all randomness flows from
        ``seed``), equal keys imply bit-identical builds.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # realisation
    # ------------------------------------------------------------------ #

    def _materialize(
        self, info: GeneratorInfo, params: Mapping[str, Any], layer: int
    ) -> "TrafficMatrix":
        from repro.core.labels import space_labels

        kwargs = dict(params)
        # Deterministic seeding: a generator that accepts a seed gets one
        # derived from (spec seed, layer index) unless the spec pinned it.
        if info.accepts("seed") and "seed" not in kwargs:
            kwargs["seed"] = _layer_seed(self.seed, layer)
        # Space-aware labels at every size: the plain generators fall back to
        # generic (all-grey) ``N*`` labels outside the 6x6/10x10 templates,
        # which would break space-dependent layers for other spec sizes.
        if info.accepts("labels") and "labels" not in kwargs:
            kwargs["labels"] = space_labels(self.n)
        if info.accepts("n"):  # validate() bans 'n' in params, so no clash
            return info.func(self.n, **kwargs)
        return info.func(**kwargs)

    def layer_matrices(self) -> list["TrafficMatrix"]:
        """Every layer (base first, then overlays) materialised independently.

        These are exactly the matrices :meth:`build` sums via
        :func:`repro.graphs.compose.overlay` — exposed so differential tests
        (:mod:`repro.verify`) can recombine them in other orders and assert
        the composition is order-insensitive.
        """
        self.validate()
        layers = [self._materialize(get_generator(self.base), self.params, 0)]
        for k, ov in enumerate(self.overlays, start=1):
            layers.append(self._materialize(get_generator(ov.name), ov.params, k))
        return layers

    def build(self) -> "TrafficMatrix":
        """Realise the spec into a :class:`~repro.core.TrafficMatrix`.

        The result carries the full spec document as provenance metadata
        (``matrix.meta["scenario"]``), so any matrix produced by this API can
        be traced back to — and rebuilt from — its recipe.
        """
        from repro.graphs.compose import overlay
        from repro.graphs.noise import with_noise

        layers = self.layer_matrices()
        matrix = layers[0] if len(layers) == 1 else overlay(layers)
        if self.noise is not None:
            matrix = with_noise(
                matrix,
                density=self.noise.density,
                max_packets=self.noise.max_packets,
                seed=_layer_seed(self.seed, len(layers)),
                preserve_pattern=self.noise.preserve_pattern,
            )
        return matrix.with_meta(scenario=self.to_dict())
