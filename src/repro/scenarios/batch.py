"""Batch realisation of scenario specs on the parallel runtime.

:func:`generate_batch` fans a list of :class:`~repro.scenarios.ScenarioSpec`
documents out over :mod:`repro.runtime`'s executors.  Because every spec is
self-seeded (all randomness derives from ``spec.seed``), serial and parallel
realisation are **bit-identical** — the same guarantee the semiring kernels
make, asserted by ``benchmarks/bench_scenario_batch.py`` and the batch tests
rather than assumed.

Since the scenario service landed, this module is the *synchronous façade*:
validation, realisation, caching, and progress all live in
:func:`repro.scenarios.service.run_batch_sync`, the same code path the
asyncio :class:`~repro.scenarios.ScenarioService` drives.  Both fronts
therefore share one contract — identical error messages, identical cache
semantics, identical completion-order progress hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix
    from repro.scenarios.cache import ScenarioCache
    from repro.store import ScenarioStore

__all__ = ["realize_spec", "generate_batch"]


def realize_spec(spec: ScenarioSpec) -> "TrafficMatrix":
    """Build one spec (module-level, so it crosses process-pool pickling)."""
    return spec.build()


def generate_batch(
    specs: Iterable[ScenarioSpec],
    *,
    workers: int | None = None,
    backend: str | None = None,
    cache: "ScenarioCache | None" = None,
    store: "ScenarioStore | None" = None,
    on_progress: Callable[[int, int], None] | None = None,
) -> list["TrafficMatrix"]:
    """Realise *specs* in order, optionally in parallel and through a cache.

    ``workers=None`` uses the runtime's current configuration
    (:func:`repro.runtime.configure`), so batch generation inherits the same
    process-wide opt-in as the sparse kernels.  An explicit ``workers``/
    ``backend`` scopes a config to this call only.  Results come back in
    input order, and every spec is validated up front so a bad document
    fails fast instead of mid-fan-out.

    ``cache`` routes the batch through a content-addressed
    :class:`~repro.scenarios.ScenarioCache`: specs already resident are served
    (bit-identically) without building, and fresh builds are stored for next
    time.  Cache hits resolve before the fan-out starts.

    ``store`` routes the batch through a durable
    :class:`~repro.store.ScenarioStore` instead: specs already on disk are
    served (bit-identically) without building, and fresh builds are persisted
    — the warm-start path for corpora that outlive the process.  Pass either
    ``cache`` or ``store``, not both; to combine them, attach the store to
    your cache (``ScenarioCache(..., store=...)``) and pass that.

    ``on_progress(done, total)`` (when given) fires once per finished spec in
    **completion** order — worker order, not spec order — from the calling
    thread.  ``done`` is cumulative and reaches ``total`` exactly once.
    """
    from repro.errors import ScenarioError
    from repro.scenarios.service import run_batch_sync

    if store is not None:
        if cache is not None:
            raise ScenarioError(
                "pass either cache or store, not both — attach the store to "
                "the cache (ScenarioCache(..., store=...)) when combining them"
            )
        from repro.scenarios.cache import ScenarioCache

        # Ephemeral unbounded L1 in front of the store: hits resolve from
        # disk pre-fan-out, fresh builds write through durably.
        cache = ScenarioCache(max_entries=None, store=store)

    _obs.counter("scenario.batches").inc()
    seq = list(specs)
    with _trace.get_tracer().span(
        "scenario.generate_batch", specs=len(seq), cached=cache is not None
    ):
        return run_batch_sync(
            seq,
            workers=workers,
            backend=backend,
            cache=cache,
            on_progress=on_progress,
        )
