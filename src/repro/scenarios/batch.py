"""Batch realisation of scenario specs on the parallel runtime.

:func:`generate_batch` fans a list of :class:`~repro.scenarios.ScenarioSpec`
documents out over :mod:`repro.runtime`'s executors.  Because every spec is
self-seeded (all randomness derives from ``spec.seed``), serial and parallel
realisation are **bit-identical** — the same guarantee the semiring kernels
make, asserted by ``benchmarks/bench_scenario_batch.py`` and the batch tests
rather than assumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ReproError, ScenarioError
from repro.runtime.config import configured
from repro.runtime.executor import parallel_map
from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix

__all__ = ["realize_spec", "generate_batch"]


def realize_spec(spec: ScenarioSpec) -> "TrafficMatrix":
    """Build one spec (module-level, so it crosses process-pool pickling)."""
    return spec.build()


def _realize_indexed(item: "tuple[int, ScenarioSpec]") -> "TrafficMatrix":
    """Build one ``(index, spec)`` pair, naming the spec on failure.

    A generator can reject a spec that passed registry validation (body-level
    constraints the schema cannot express).  Mid-fan-out failures must say
    *which* spec broke — a batch of hundreds is unactionable otherwise — and
    they must not take the executor pool down with them: the pools cache per
    ``(backend, workers)`` and a raised task leaves the pool reusable.
    """
    index, spec = item
    try:
        return spec.build()
    except ReproError as exc:
        raise ScenarioError(
            f"spec {index} ({spec.base!r}) failed to build: {exc}"
        ) from exc


def generate_batch(
    specs: Iterable[ScenarioSpec],
    *,
    workers: int | None = None,
    backend: str | None = None,
) -> list["TrafficMatrix"]:
    """Realise *specs* in order, optionally in parallel.

    ``workers=None`` uses the runtime's current configuration
    (:func:`repro.runtime.configure`), so batch generation inherits the same
    process-wide opt-in as the sparse kernels.  An explicit ``workers``/
    ``backend`` scopes a config to this call only.  Results come back in
    input order, and every spec is validated up front so a bad document
    fails fast instead of mid-fan-out.
    """
    seq: Sequence[ScenarioSpec] = list(specs)
    for k, spec in enumerate(seq):
        if not isinstance(spec, ScenarioSpec):
            raise ScenarioError(
                f"generate_batch expects ScenarioSpec items, got "
                f"{type(spec).__name__} at index {k}"
            )
        try:
            spec.validate()
        except ReproError as exc:
            raise ScenarioError(
                f"spec {k} ({spec.base!r}) failed validation: {exc}"
            ) from exc
    items = list(enumerate(seq))
    if workers is None and backend is None:
        return parallel_map(_realize_indexed, items)
    with configured(workers=workers, backend=backend, min_parallel_work=1):
        return parallel_map(_realize_indexed, items)
