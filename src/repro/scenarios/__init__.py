"""Unified scenario API: registry, declarative specs, parallel batch generation.

This package turns the generator zoo of :mod:`repro.graphs` into one
extensible subsystem:

* :data:`SCENARIO_REGISTRY` — every generator, registered by name with a
  family, tags, and an introspectable parameter schema;
* :class:`ScenarioSpec` — a JSON-round-trippable recipe (base layer + noise
  + overlays + seed + size) and :class:`ScenarioBuilder`, its fluent front;
* :func:`generate_batch` — spec fan-out over :mod:`repro.runtime`'s
  executors with deterministic per-spec seeding (serial ≡ parallel, bit for
  bit), optional content-addressed caching, and completion-order progress;
* :class:`ScenarioService` — the long-running asyncio front: bounded intake
  queue with backpressure, fixed worker concurrency, a shared
  :class:`ScenarioCache` keyed by :meth:`ScenarioSpec.cache_key`, cache
  warming, per-batch cancellation, and :func:`apply_delta` incremental
  rebuilds that recompute only the row blocks a delta overlay touches —
  bit-identical to a full rebuild.

Quickstart::

    from repro.scenarios import ScenarioBuilder, ScenarioSpec, generate_batch

    matrix = (
        ScenarioBuilder()
        .base("star", n=12)
        .with_noise(density=0.05)
        .overlay("ddos_attack")
        .seed(7)
        .build()
    )
    print(matrix.meta["scenario"])          # full provenance, rebuildable

    specs = [ScenarioSpec("ring", seed=k) for k in range(100)]
    matrices = generate_batch(specs, workers=4)

    async with ScenarioService(concurrency=4) as service:   # resident front
        await service.warm(specs[:10])
        results = await service.generate(specs)
        print(service.stats()["cache"]["hit_rate"])
"""

from repro.scenarios.batch import generate_batch, realize_spec
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.cache import CacheAnalytics, ScenarioCache, matrix_bytes
from repro.scenarios.delta import (
    DeltaResult,
    DeltaStats,
    apply_delta,
    extend_spec,
)
from repro.scenarios.registry import (
    REGISTRY_ALIASES,
    SCENARIO_FAMILIES,
    SCENARIO_REGISTRY,
    GeneratorInfo,
    ParamInfo,
    ensure_registered,
    get_generator,
    parameter_schema,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    SPEC_VERSION,
    NoiseSpec,
    OverlaySpec,
    ScenarioSpec,
)
from repro.scenarios.service import BatchHandle, ScenarioService, run_batch_sync

# Populate the registry eagerly so ``SCENARIO_REGISTRY`` is complete the
# moment this package is imported (iterating the exported dict must never
# observe an empty table).  When the import *started* from ``repro.graphs``
# this call sees the partially-initialised module and returns immediately;
# the in-flight import finishes the registrations itself.
ensure_registered()

__all__ = [
    "SCENARIO_REGISTRY",
    "SCENARIO_FAMILIES",
    "REGISTRY_ALIASES",
    "GeneratorInfo",
    "ParamInfo",
    "register_scenario",
    "get_generator",
    "scenario_names",
    "parameter_schema",
    "ensure_registered",
    "SPEC_VERSION",
    "ScenarioSpec",
    "NoiseSpec",
    "OverlaySpec",
    "ScenarioBuilder",
    "generate_batch",
    "realize_spec",
    "run_batch_sync",
    "ScenarioCache",
    "CacheAnalytics",
    "matrix_bytes",
    "ScenarioService",
    "BatchHandle",
    "apply_delta",
    "extend_spec",
    "DeltaResult",
    "DeltaStats",
]
