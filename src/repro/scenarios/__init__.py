"""Unified scenario API: registry, declarative specs, parallel batch generation.

This package turns the generator zoo of :mod:`repro.graphs` into one
extensible subsystem:

* :data:`SCENARIO_REGISTRY` — every generator, registered by name with a
  family, tags, and an introspectable parameter schema;
* :class:`ScenarioSpec` — a JSON-round-trippable recipe (base layer + noise
  + overlays + seed + size) and :class:`ScenarioBuilder`, its fluent front;
* :func:`generate_batch` — spec fan-out over :mod:`repro.runtime`'s
  executors with deterministic per-spec seeding (serial ≡ parallel, bit for
  bit).

Quickstart::

    from repro.scenarios import ScenarioBuilder, ScenarioSpec, generate_batch

    matrix = (
        ScenarioBuilder()
        .base("star", n=12)
        .with_noise(density=0.05)
        .overlay("ddos_attack")
        .seed(7)
        .build()
    )
    print(matrix.meta["scenario"])          # full provenance, rebuildable

    specs = [ScenarioSpec("ring", seed=k) for k in range(100)]
    matrices = generate_batch(specs, workers=4)
"""

from repro.scenarios.batch import generate_batch, realize_spec
from repro.scenarios.builder import ScenarioBuilder
from repro.scenarios.registry import (
    REGISTRY_ALIASES,
    SCENARIO_FAMILIES,
    SCENARIO_REGISTRY,
    GeneratorInfo,
    ParamInfo,
    ensure_registered,
    get_generator,
    parameter_schema,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    SPEC_VERSION,
    NoiseSpec,
    OverlaySpec,
    ScenarioSpec,
)

# Populate the registry eagerly so ``SCENARIO_REGISTRY`` is complete the
# moment this package is imported (iterating the exported dict must never
# observe an empty table).  When the import *started* from ``repro.graphs``
# this call sees the partially-initialised module and returns immediately;
# the in-flight import finishes the registrations itself.
ensure_registered()

__all__ = [
    "SCENARIO_REGISTRY",
    "SCENARIO_FAMILIES",
    "REGISTRY_ALIASES",
    "GeneratorInfo",
    "ParamInfo",
    "register_scenario",
    "get_generator",
    "scenario_names",
    "parameter_schema",
    "ensure_registered",
    "SPEC_VERSION",
    "ScenarioSpec",
    "NoiseSpec",
    "OverlaySpec",
    "ScenarioBuilder",
    "generate_batch",
    "realize_spec",
]
