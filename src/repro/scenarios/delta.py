"""Incremental delta rebuilds: extend a cached scenario without regenerating it.

``apply_delta(base_spec, delta)`` answers "what does this scenario look like
with these overlay layers added?" without rebuilding the base.  The combined
matrix is assembled from the cached (or freshly built) *pre-noise* base
composition plus the delta layers, touching only the :class:`~repro.assoc.
blocked.BlockedCSR`-style row blocks where the delta's packets actually land:
per touched block, the base rows and delta rows merge through the expression
layer's fused n-ary union (``blk(accum=PLUS) << union_all(parts)``), while
untouched blocks carry their base packets over verbatim.  Colours merge
globally — the overlay colour rule is a cell-wise maximum over dense ``int8``
grids, far cheaper than the sparse packet union it would otherwise gate.

**Bit-identity.**  Overlay composition is a cell-wise integer sum with a
per-cell colour maximum — both associative — so regrouping the sum by row
block cannot change a single bit.  The noise stage is reapplied whole (its
seed depends on the *combined* layer count, so the base's noise, had it any,
would be the wrong stream): ``with_noise`` is a pure function of the pre-noise
matrix and the seed, and the pre-noise matrices agree bit-for-bit, so the
noisy results do too.  The contract ``apply_delta(...) == target.build()`` is
enforced by hypothesis tests, the ``cache_delta`` oracle in
:func:`repro.verify.default_oracles`, and the delta benchmark — not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.errors import ScenarioError
from repro.scenarios.registry import get_generator
from repro.scenarios.spec import OverlaySpec, ScenarioSpec, _layer_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix
    from repro.scenarios.cache import ScenarioCache

__all__ = ["DeltaStats", "DeltaResult", "extend_spec", "apply_delta"]

#: Accepted delta forms: one overlay, or an iterable of overlays, where each
#: overlay is an :class:`OverlaySpec` or its JSON-able dict form.
DeltaLike = "OverlaySpec | Mapping | Iterable[OverlaySpec | Mapping]"


@dataclass(frozen=True)
class DeltaStats:
    """How much work the incremental path actually did (and skipped)."""

    rows: int
    rows_recomputed: int
    blocks_total: int
    blocks_recomputed: int
    delta_nnz: int
    base_cache_hit: bool
    #: Where the base matrix came from: ``"l1"`` (cache memory), ``"l2"``
    #: (durable store), ``"given"`` (caller-supplied), or ``"build"``.
    base_tier: str = "build"

    @property
    def rows_reused(self) -> int:
        """Rows carried over from the cached base without recomputation."""
        return self.rows - self.rows_recomputed


@dataclass(frozen=True)
class DeltaResult:
    """An incremental rebuild: the combined spec, its matrix, and the work stats."""

    spec: ScenarioSpec
    matrix: "TrafficMatrix"
    stats: DeltaStats


def _as_overlays(delta: object) -> tuple[OverlaySpec, ...]:
    if isinstance(delta, (OverlaySpec, Mapping)):
        delta = [delta]
    if not isinstance(delta, Iterable):
        raise ScenarioError(
            f"delta must be an OverlaySpec, a dict, or an iterable of them, "
            f"got {type(delta).__name__}"
        )
    out: list[OverlaySpec] = []
    for item in delta:
        if isinstance(item, OverlaySpec):
            out.append(item)
        elif isinstance(item, Mapping):
            out.append(OverlaySpec.from_dict(item))
        else:
            raise ScenarioError(
                f"delta items must be OverlaySpec or dict, got {type(item).__name__}"
            )
    if not out:
        raise ScenarioError("delta needs at least one overlay layer")
    return tuple(out)


def extend_spec(base_spec: ScenarioSpec, delta: object) -> ScenarioSpec:
    """The combined spec: *base_spec* with the delta overlays appended.

    This is the document ``apply_delta`` must match bit-for-bit — build it
    from scratch and you get the same matrix, byte for byte.
    """
    if not isinstance(base_spec, ScenarioSpec):
        raise ScenarioError(
            f"apply_delta expects a ScenarioSpec base, got {type(base_spec).__name__}"
        )
    overlays = _as_overlays(delta)
    target = replace(base_spec, overlays=base_spec.overlays + overlays)
    target.validate()
    return target


def apply_delta(
    base_spec: ScenarioSpec,
    delta: object,
    *,
    cache: "ScenarioCache | None" = None,
    base_matrix: "TrafficMatrix | None" = None,
    block_rows: int | None = None,
    verify: bool = False,
) -> DeltaResult:
    """Rebuild ``base_spec + delta`` incrementally from the base composition.

    Parameters
    ----------
    base_spec:
        The already-built scenario being extended.
    delta:
        Overlay layer(s) to add — :class:`OverlaySpec` instances or their
        dict form, singly or in an iterable.  They are appended after the
        base's own overlays, exactly as ``extend_spec`` describes.
    cache:
        A :class:`~repro.scenarios.ScenarioCache`.  The *pre-noise* base
        composition (``base_spec`` with its noise stage stripped — that is
        the reusable part; noise must be re-rolled for the combined layer
        count) is fetched from / stored into it, and the combined result is
        stored too, so a later request for the extended spec is a pure hit.
    base_matrix:
        Short-circuit for callers that already hold the pre-noise base
        composition (``replace(base_spec, noise=None).build()``).  Passing
        the *noisy* build here would violate bit-identity — use ``verify=True``
        when unsure.
    block_rows:
        Row-block granularity for the touched/untouched split (default: the
        runtime heuristic, same as the blocked kernels).
    verify:
        Also run the full from-scratch build and assert bit-identity
        (packets, colours, labels, provenance).  Meant for tests and
        benchmarks; the differential oracle does this continuously.

    Returns a :class:`DeltaResult`; ``result.stats`` reports how many row
    blocks were recomputed versus carried over.
    """
    from repro.core.traffic_matrix import TrafficMatrix

    overlays = _as_overlays(delta)
    target = extend_spec(base_spec, overlays)
    prenoise_spec = replace(base_spec, noise=None)

    base_tier = "given"
    if base_matrix is None:
        if cache is not None:
            base_matrix, base_tier = cache.fetch_tiered(prenoise_spec)
        else:
            base_matrix = prenoise_spec.build()
            base_tier = "build"
    base_hit = base_tier in ("l1", "l2")

    # Materialise only the delta layers, at the layer indices they occupy in
    # the combined spec — per-layer seeds are positional, so a delta layer
    # built standalone must use the same index the full rebuild would.
    n_base_layers = 1 + len(base_spec.overlays)
    delta_mats: list[TrafficMatrix] = []
    for k, overlay_spec in enumerate(overlays):
        info = get_generator(overlay_spec.name)
        delta_mats.append(
            target._materialize(info, overlay_spec.params, n_base_layers + k)
        )
    for mat in delta_mats:
        base_matrix._check_compatible(mat)

    n = base_matrix.n
    delta_csrs = [mat.to_csr() for mat in delta_mats]
    delta_nnz = int(sum(csr.nnz for csr in delta_csrs))

    from repro.assoc.blocked import _row_starts, _slice_rows
    from repro.assoc.expr import Mat, union_all
    from repro.assoc.semiring import PLUS
    from repro.runtime.config import get_config
    from repro.runtime.executor import choose_block_rows

    cfg = get_config()
    requested = block_rows if block_rows is not None else cfg.block_rows
    block = choose_block_rows(
        n, base_matrix.nnz() + delta_nnz, cfg.workers, requested
    )
    starts = _row_starts(n, block)

    # A row is touched when any delta layer stores *packets* in it.  Colours
    # do not gate the split: the overlay colour rule is a cell-wise maximum
    # over full dense int8 grids (``TrafficMatrix.overlay_style``), which is
    # trivially cheap — it merges globally below, while the expensive sparse
    # packet union runs only on touched blocks.
    touched = np.zeros(n, dtype=bool)
    for csr in delta_csrs:
        touched |= np.diff(csr.indptr) > 0

    packets = np.array(base_matrix.packets, dtype=np.int64)
    colors = np.maximum.reduce(
        [np.asarray(base_matrix.colors)]
        + [np.asarray(mat.colors) for mat in delta_mats]
    )
    base_csr = base_matrix.to_csr()

    blocks_total = max(starts.size - 1, 0)
    blocks_recomputed = 0
    rows_recomputed = 0
    for b in range(blocks_total):
        r0, r1 = int(starts[b]), int(starts[b + 1])
        if r0 == r1 or not touched[r0:r1].any():
            continue  # untouched block: base rows carry over verbatim
        blocks_recomputed += 1
        rows_recomputed += r1 - r0
        block_mat = Mat.from_csr(_slice_rows(base_csr, r0, r1))
        block_mat(accum=PLUS) << union_all(
            [_slice_rows(csr, r0, r1) for csr in delta_csrs]
        )
        packets[r0:r1] = block_mat.to_dense(0)

    extended = base_matrix.extended_colors or any(
        mat.extended_colors for mat in delta_mats
    )
    matrix = TrafficMatrix(
        packets, base_matrix.labels, colors, extended_colors=extended
    )
    if target.noise is not None:
        from repro.graphs.noise import with_noise

        matrix = with_noise(
            matrix,
            density=target.noise.density,
            max_packets=target.noise.max_packets,
            seed=_layer_seed(target.seed, n_base_layers + len(overlays)),
            preserve_pattern=target.noise.preserve_pattern,
        )
    matrix = matrix.with_meta(scenario=target.to_dict())

    if cache is not None:
        cache.put(target, matrix)

    if verify:
        full = target.build()
        if matrix != full or matrix.meta != full.meta:
            raise ScenarioError(
                f"delta rebuild diverged from the full rebuild of "
                f"{target.base!r} (+{len(overlays)} overlay(s)) — "
                f"bit-identity violated"
            )

    stats = DeltaStats(
        rows=n,
        rows_recomputed=rows_recomputed,
        blocks_total=blocks_total,
        blocks_recomputed=blocks_recomputed,
        delta_nnz=delta_nnz,
        base_cache_hit=base_hit,
        base_tier=base_tier,
    )
    return DeltaResult(spec=target, matrix=matrix, stats=stats)
