"""Blue / grey / red network-space model.

The paper's modules partition network endpoints into three *spaces*:

* **blue space** — the defender's own network (work stations ``WS``, servers
  ``SRV``),
* **grey space** — neutral external networks (``EXT``),
* **adversary (red) space** — attacker-controlled hosts (``ADV``).

Every scenario generator (attack stages, DDoS components, security / defense /
deterrence) is expressed in terms of which spaces traffic flows between, so
this module is the vocabulary shared by :mod:`repro.graphs` and
:mod:`repro.modules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.colors import PalletColor
from repro.errors import LabelError

__all__ = ["NetworkSpace", "SpaceMap", "space_of_label", "DEFAULT_PREFIXES"]


class NetworkSpace(Enum):
    """The three endpoint spaces used throughout the paper's modules."""

    BLUE = "blue"
    GREY = "grey"
    RED = "red"

    @property
    def pallet_color(self) -> PalletColor:
        """Conventional pallet colour for traffic *within* this space.

        Blue space highlights as blue, adversary space as red, grey space is
        left grey — the convention visible in Figs 6–9 of the paper.
        """
        return _SPACE_COLOR[self]


_SPACE_COLOR = {
    NetworkSpace.BLUE: PalletColor.BLUE,
    NetworkSpace.GREY: PalletColor.GREY,
    NetworkSpace.RED: PalletColor.RED,
}

#: Label-prefix conventions used by the paper's 6x6 and 10x10 templates.
DEFAULT_PREFIXES: Mapping[str, NetworkSpace] = {
    "WS": NetworkSpace.BLUE,
    "SRV": NetworkSpace.BLUE,
    "EXT": NetworkSpace.GREY,
    "ADV": NetworkSpace.RED,
}


def space_of_label(label: str, prefixes: Mapping[str, NetworkSpace] = DEFAULT_PREFIXES) -> NetworkSpace:
    """Infer the network space of an axis label from its alphabetic prefix.

    ``"WS1"`` → blue, ``"EXT2"`` → grey, ``"ADV4"`` → red.  Longest matching
    prefix wins so custom maps may contain overlapping keys (``"S"`` and
    ``"SRV"``).  Unknown prefixes default to grey space: neutral until an
    educator says otherwise.
    """
    head = label.rstrip("0123456789").upper()
    best: NetworkSpace | None = None
    best_len = -1
    for prefix, space in prefixes.items():
        if head.startswith(prefix.upper()) and len(prefix) > best_len:
            best, best_len = space, len(prefix)
    return best if best is not None else NetworkSpace.GREY


@dataclass(frozen=True)
class SpaceMap:
    """Assignment of every axis label to a network space.

    A ``SpaceMap`` answers two questions the scenario generators keep asking:
    *which vertex indices belong to a space* and *what colour should the cell
    (i, j) get* given the spaces of its endpoints.
    """

    labels: tuple[str, ...]
    spaces: tuple[NetworkSpace, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.spaces):
            raise LabelError(
                f"{len(self.labels)} labels but {len(self.spaces)} space assignments"
            )
        object.__setattr__(self, "_index", {lb: i for i, lb in enumerate(self.labels)})
        if len(self._index) != len(self.labels):
            seen: set[str] = set()
            dup = next(lb for lb in self.labels if lb in seen or seen.add(lb))  # type: ignore[func-returns-value]
            raise LabelError(f"duplicate axis label {dup!r}")

    @classmethod
    def infer(
        cls,
        labels: Sequence[str],
        prefixes: Mapping[str, NetworkSpace] = DEFAULT_PREFIXES,
    ) -> "SpaceMap":
        """Build a map from labels using prefix conventions (``WS* → blue`` ...)."""
        labels = tuple(labels)
        return cls(labels, tuple(space_of_label(lb, prefixes) for lb in labels))

    def __len__(self) -> int:
        return len(self.labels)

    def space_of(self, label_or_index: str | int) -> NetworkSpace:
        """Space of a vertex, addressed by label or integer index."""
        if isinstance(label_or_index, str):
            try:
                return self.spaces[self._index[label_or_index]]
            except KeyError:
                raise LabelError(f"unknown axis label {label_or_index!r}") from None
        return self.spaces[int(label_or_index)]

    def indices(self, space: NetworkSpace) -> np.ndarray:
        """Sorted vertex indices belonging to *space*."""
        return np.asarray(
            [i for i, s in enumerate(self.spaces) if s is space], dtype=np.intp
        )

    def labels_in(self, space: NetworkSpace) -> tuple[str, ...]:
        """Axis labels belonging to *space*, in axis order."""
        return tuple(lb for lb, s in zip(self.labels, self.spaces) if s is space)

    def color_grid(self) -> np.ndarray:
        """Default colour grid for this space assignment.

        The convention, read off the paper's 10×10 template listing, is:

        * any cell whose source **or** destination is in red space → red,
        * cells entirely inside blue space → blue,
        * everything else (grey↔grey, blue↔grey) → grey.

        (The template colours blue→red *and* red→blue cells red, and colours
        the red→blue block blue on the lower-left — that lower-left blue block
        marks *defended* adversary→blue paths; generators that need the exact
        template colouring build it explicitly.)
        """
        n = len(self)
        is_red = np.asarray([s is NetworkSpace.RED for s in self.spaces])
        is_blue = np.asarray([s is NetworkSpace.BLUE for s in self.spaces])
        grid = np.zeros((n, n), dtype=np.int8)
        grid[np.ix_(is_blue, is_blue)] = int(PalletColor.BLUE)
        grid[is_red, :] = int(PalletColor.RED)
        grid[:, is_red] = int(PalletColor.RED)
        return grid

    def pair_space(self, i: int, j: int) -> tuple[NetworkSpace, NetworkSpace]:
        """(source space, destination space) of cell ``(i, j)``."""
        return self.spaces[i], self.spaces[j]


def spaces_from_counts(
    blue: int, grey: int, red: int, *, blue_servers: int = 0
) -> SpaceMap:
    """Construct the canonical template label set: ``WS… SRV… EXT… ADV…``.

    ``blue`` counts work stations; ``blue_servers`` appends that many ``SRV``
    labels (also blue space); then ``grey`` ``EXT`` labels and ``red`` ``ADV``
    labels.  ``spaces_from_counts(3, 2, 4, blue_servers=1)`` reproduces the
    paper's 10×10 template axis labels exactly.
    """
    labels: list[str] = []
    labels += [f"WS{k}" for k in range(1, blue + 1)]
    labels += [f"SRV{k}" for k in range(1, blue_servers + 1)]
    labels += [f"EXT{k}" for k in range(1, grey + 1)]
    labels += [f"ADV{k}" for k in range(1, red + 1)]
    return SpaceMap.infer(labels)


def iter_space_blocks(space_map: SpaceMap) -> Iterable[tuple[NetworkSpace, NetworkSpace, np.ndarray, np.ndarray]]:
    """Yield ``(src_space, dst_space, row_idx, col_idx)`` for all 9 space blocks."""
    for s_src in NetworkSpace:
        rows = space_map.indices(s_src)
        if rows.size == 0:
            continue
        for s_dst in NetworkSpace:
            cols = space_map.indices(s_dst)
            if cols.size == 0:
                continue
            yield s_src, s_dst, rows, cols
