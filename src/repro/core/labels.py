"""Axis-label handling for traffic matrices.

The paper uses a *single* list of axis labels applied to both the vertical and
horizontal axes (sources and destinations are the same endpoint population).
Labels are short, upper-case strings — "Shorter all caps labels are easier to
view in the game."  This module validates label lists and provides the two
template label sets shipped with the game (6×6 and 10×10).
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.errors import LabelError

__all__ = [
    "validate_labels",
    "normalize_label",
    "default_labels",
    "space_labels",
    "TEMPLATE_LABELS_6",
    "TEMPLATE_LABELS_10",
    "MAX_LABEL_LENGTH",
]

#: Labels longer than this render poorly on pallet-row signs in the game.
MAX_LABEL_LENGTH = 8

#: Axis labels of the shipped 6×6 template.
TEMPLATE_LABELS_6: tuple[str, ...] = ("WS1", "WS2", "SRV1", "EXT1", "ADV1", "ADV2")

#: Axis labels of the paper's 10×10 template (Section II listing).
TEMPLATE_LABELS_10: tuple[str, ...] = (
    "WS1", "WS2", "WS3", "SRV1",
    "EXT1", "EXT2",
    "ADV1", "ADV2", "ADV3", "ADV4",
)

_LABEL_RE = re.compile(r"^[A-Z][A-Z0-9_\-]*$")


def normalize_label(label: str) -> str:
    """Upper-case and strip a raw label, rejecting empty results."""
    norm = str(label).strip().upper()
    if not norm:
        raise LabelError("axis label may not be empty")
    return norm


def validate_labels(
    labels: Sequence[str],
    *,
    size: int | None = None,
    warn_length: bool = True,
) -> tuple[str, ...]:
    """Validate an axis-label list and return it as a tuple.

    Checks performed (mirroring the in-game loader's error paths):

    * labels are non-empty strings of ``[A-Z][A-Z0-9_-]*`` after normalisation,
    * no duplicates (each label names one endpoint),
    * when *size* is given, ``len(labels) == size`` — the game prints
      "Level data does not match number of labels!" for this case.

    ``warn_length`` keeps labels within :data:`MAX_LABEL_LENGTH` characters;
    it raises rather than warns because modules violating it render broken.
    """
    norm = tuple(normalize_label(lb) for lb in labels)
    seen: set[str] = set()
    for lb in norm:
        if not _LABEL_RE.match(lb):
            raise LabelError(
                f"axis label {lb!r} is invalid: labels must start with a letter "
                "and contain only A-Z, 0-9, '_' or '-'"
            )
        if warn_length and len(lb) > MAX_LABEL_LENGTH:
            raise LabelError(
                f"axis label {lb!r} is {len(lb)} characters long; labels longer "
                f"than {MAX_LABEL_LENGTH} do not display well in the game"
            )
        if lb in seen:
            raise LabelError(f"duplicate axis label {lb!r}")
        seen.add(lb)
    if size is not None and len(norm) != size:
        raise LabelError(
            f"level data does not match number of labels: matrix is {size}x{size} "
            f"but {len(norm)} axis labels were given"
        )
    return norm


def default_labels(n: int) -> tuple[str, ...]:
    """Template labels for an ``n``×``n`` matrix.

    Returns the shipped 6×6 / 10×10 template label sets when they fit, and
    generic ``N1..Nn`` endpoint labels otherwise (custom sizes are allowed by
    the schema even though the game only ships 6×6 and 10×10 templates).
    """
    if n == 6:
        return TEMPLATE_LABELS_6
    if n == 10:
        return TEMPLATE_LABELS_10
    if n < 1:
        raise LabelError(f"matrix size must be positive, got {n}")
    return tuple(f"N{k}" for k in range(1, n + 1))


def space_labels(n: int) -> tuple[str, ...]:
    """Template-style labels with blue/grey/red spaces at **any** size.

    ``default_labels`` falls back to generic ``N*`` names outside the shipped
    6×6 / 10×10 templates, which leaves every endpoint in grey space — so the
    space-dependent generators (attack stages, DDoS roles, defense postures)
    cannot run at other sizes.  This helper scales the template's proportions
    instead (roughly 40% blue / 20% grey / 40% red, matching the 10×10
    template's ``WS*``+``SRV1`` / ``EXT*`` / ``ADV*`` split), so declarative
    scenario specs can realise any generator at any ``n >= 3``; the shipped
    template label sets are returned verbatim at ``n == 6`` and ``n == 10``.
    """
    if n in (6, 10):
        return default_labels(n)
    if n < 1:
        raise LabelError(f"matrix size must be positive, got {n}")
    if n == 1:
        return ("WS1",)
    if n == 2:
        return ("WS1", "ADV1")
    grey = max(1, n // 5)
    red = max(1, (2 * n) // 5)
    blue = n - grey - red
    return (
        tuple(f"WS{k}" for k in range(1, blue))
        + ("SRV1",)
        + tuple(f"EXT{k}" for k in range(1, grey + 1))
        + tuple(f"ADV{k}" for k in range(1, red + 1))
    )


def label_indices(labels: Sequence[str], wanted: Iterable[str]) -> list[int]:
    """Map a list of labels to their axis indices, raising on unknown names."""
    index = {lb: i for i, lb in enumerate(labels)}
    out: list[int] = []
    for w in wanted:
        try:
            out.append(index[normalize_label(w)])
        except KeyError:
            raise LabelError(f"unknown axis label {w!r}") from None
    return out
