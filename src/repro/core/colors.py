"""Pallet colour palette used by learning modules.

The paper's JSON field ``traffic_matrix_colors`` assigns one of three codes to
every matrix cell: grey (``0``), blue (``1``) or red (``2``).  The in-game
GDScript ``match`` statement additionally falls back to a *black* material for
any unrecognised code; that fallback is preserved here so the engine layer can
reproduce the behaviour of the paper's ``change_pallet_color`` listing exactly.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.errors import ColorError

__all__ = [
    "PalletColor",
    "COLOR_CODES",
    "color_name",
    "material_for_code",
    "validate_color_grid",
    "ansi_for_code",
]


class PalletColor(IntEnum):
    """Colour code of a pallet (one matrix cell) on the warehouse floor.

    The integer values match the paper's JSON encoding, so
    ``PalletColor(grid[i][j])`` converts a raw JSON entry directly.
    """

    GREY = 0
    BLUE = 1
    RED = 2

    @property
    def material(self) -> str:
        """Name of the Godot material resource the paper preloads for this code."""
        return _MATERIALS[int(self)]

    @property
    def ansi(self) -> str:
        """ANSI SGR escape prefix used by the terminal renderer."""
        return _ANSI[int(self)]


#: All JSON colour codes accepted by the standard schema.
COLOR_CODES = tuple(int(c) for c in PalletColor)

#: Extended palette (paper future work: "expanding the range of colors and
#: materials").  Codes 3 (yellow — caution/quarantine) and 4 (green —
#: verified-benign) join the classic three.  Modules opt in with
#: ``"color_mode": "extended"``; the original in-game GDScript, which matches
#: only 0/1/2, renders them with its black fallback material — the documented
#: graceful degradation on an old client.
EXTENDED_COLOR_CODES = COLOR_CODES + (3, 4)

#: Names for the extended codes (classic codes come from :class:`PalletColor`).
EXTENDED_NAMES = {3: "yellow", 4: "green"}

_MATERIALS = {
    0: "res://Assets/Objects/pallet_material_g.tres",
    1: "res://Assets/Objects/pallet_material_b.tres",
    2: "res://Assets/Objects/pallet_material_r.tres",
    3: "res://Assets/Objects/pallet_material_yellow.tres",
    4: "res://Assets/Objects/pallet_material_green.tres",
}

#: Material used by the GDScript ``_:`` fallback arm for unknown codes.
FALLBACK_MATERIAL = "res://Assets/Objects/pallet_material_black.tres"

#: Material of an uncoloured (default) pallet.
DEFAULT_MATERIAL = "res://Assets/Objects/pallet_material.tres"

_ANSI = {
    0: "\x1b[90m",  # bright black / grey
    1: "\x1b[94m",  # bright blue
    2: "\x1b[91m",  # bright red
    3: "\x1b[93m",  # bright yellow (extended)
    4: "\x1b[92m",  # bright green (extended)
}

_ANSI_FALLBACK = "\x1b[30m"  # black


def color_name(code: int) -> str:
    """Human-readable name for a colour code (``"grey"``, ``"blue"``, ...).

    Covers the extended palette; genuinely unknown codes map to ``"black"``,
    mirroring the game's fallback material.
    """
    try:
        return PalletColor(code).name.lower()
    except ValueError:
        return EXTENDED_NAMES.get(int(code), "black")


def material_for_code(code: int) -> str:
    """Material resource path for *code*, with the game's black fallback."""
    return _MATERIALS.get(int(code), FALLBACK_MATERIAL)


def ansi_for_code(code: int) -> str:
    """ANSI escape prefix for *code*, with a black fallback."""
    return _ANSI.get(int(code), _ANSI_FALLBACK)


def validate_color_grid(
    grid: np.ndarray, *, strict: bool = True, extended: bool = False
) -> np.ndarray:
    """Validate a colour grid and return it as a C-contiguous ``int8`` array.

    Parameters
    ----------
    grid:
        2-D array of colour codes.
    strict:
        When true (the default, matching the module schema) any code outside
        the allowed set raises :class:`~repro.errors.ColorError`.  When false,
        out-of-range codes are kept as-is — the renderer will draw them black,
        matching the in-game fallback.
    extended:
        Allow the extended palette (:data:`EXTENDED_COLOR_CODES`) instead of
        the classic ``{0, 1, 2}``.
    """
    arr = np.ascontiguousarray(grid, dtype=np.int64)
    if arr.ndim != 2:
        raise ColorError(f"colour grid must be 2-D, got {arr.ndim}-D")
    allowed = EXTENDED_COLOR_CODES if extended else COLOR_CODES
    if strict:
        bad = ~np.isin(arr, allowed)
        if bad.any():
            i, j = np.argwhere(bad)[0]
            raise ColorError(
                f"colour grid contains invalid code {int(arr[i, j])} at "
                f"({int(i)}, {int(j)}); allowed codes are {sorted(allowed)}"
            )
    return arr.astype(np.int8)
