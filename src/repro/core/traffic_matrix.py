"""The labelled, coloured network traffic matrix — the paper's central object.

A :class:`TrafficMatrix` carries exactly the data of a learning-module JSON
file: a square grid of packet counts (``traffic_matrix``), one shared axis
label list (``axis_labels``), and a colour code per cell
(``traffic_matrix_colors``).  The class is deliberately **dense**: the paper's
matrices are at most tens of endpoints wide and every cell is drawn on the
warehouse floor whether or not it holds packets.  Large analytic matrices use
:mod:`repro.assoc` instead; :meth:`TrafficMatrix.to_assoc` bridges the two.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.core.colors import PalletColor, validate_color_grid
from repro.core.labels import default_labels, validate_labels
from repro.core.spaces import NetworkSpace, SpaceMap
from repro.errors import ColorError, LabelError, ShapeError, TrafficMatrixError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    import networkx as nx

    from repro.assoc.array import AssociativeArray
    from repro.assoc.semiring import Semiring
    from repro.assoc.sparse import CSRMatrix

__all__ = ["TrafficMatrix", "MAX_DISPLAY_PACKETS"]

#: "Through testing it has been found that fewer than 15 packets between any
#: source and destination displays well."
MAX_DISPLAY_PACKETS = 15


class TrafficMatrix:
    """A square traffic matrix with axis labels and per-cell colour codes.

    Parameters
    ----------
    packets:
        ``n × n`` array-like of non-negative integer packet counts.
        ``packets[i][j]`` is the number of packets sent from endpoint ``i``
        (row, source) to endpoint ``j`` (column, destination).
    labels:
        Axis labels, applied to both axes.  Defaults to the template label set
        for the matrix size (``WS1…ADV4`` for 10×10).
    colors:
        Optional ``n × n`` grid of colour codes (0 grey, 1 blue, 2 red).
        Defaults to all grey — the uncoloured state pallets start in.
    """

    __slots__ = ("_packets", "_labels", "_colors", "_space_map", "_extended", "_meta")

    def __init__(
        self,
        packets: Sequence[Sequence[int]] | np.ndarray,
        labels: Sequence[str] | None = None,
        colors: Sequence[Sequence[int]] | np.ndarray | None = None,
        *,
        extended_colors: bool = False,
        meta: dict | None = None,
    ) -> None:
        arr = np.asarray(packets)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ShapeError(f"traffic matrix must be square 2-D, got shape {arr.shape}")
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            if not np.issubdtype(arr.dtype, np.floating) or not np.all(arr == np.floor(arr)):
                raise TrafficMatrixError("packet counts must be integers")
        arr = arr.astype(np.int64, copy=True)
        if arr.size and arr.min() < 0:
            i, j = np.argwhere(arr < 0)[0]
            raise TrafficMatrixError(
                f"packet count at ({int(i)}, {int(j)}) is negative ({int(arr[i, j])})"
            )
        n = arr.shape[0]
        self._packets = arr
        self._labels = validate_labels(labels, size=n) if labels is not None else default_labels(n)
        self._extended = bool(extended_colors)
        if colors is None:
            self._colors = np.zeros((n, n), dtype=np.int8)
        else:
            grid = validate_color_grid(np.asarray(colors), extended=self._extended)
            if grid.shape != (n, n):
                raise ShapeError(
                    f"colour grid shape {grid.shape} does not match matrix shape {(n, n)}"
                )
            self._colors = grid
        self._space_map: SpaceMap | None = None
        self._meta: dict = dict(meta) if meta else {}

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zeros(cls, n: int, labels: Sequence[str] | None = None) -> "TrafficMatrix":
        """Empty ``n × n`` matrix (no packets, all-grey pallets)."""
        return cls(np.zeros((n, n), dtype=np.int64), labels)

    @classmethod
    def identity(cls, n: int, packets: int = 1, labels: Sequence[str] | None = None) -> "TrafficMatrix":
        """Self-loop traffic: every endpoint sends *packets* to itself."""
        return cls(np.eye(n, dtype=np.int64) * int(packets), labels)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[str | int, str | int, int]],
        labels: Sequence[str],
    ) -> "TrafficMatrix":
        """Build a matrix from ``(source, destination, packets)`` triples.

        Sources/destinations may be labels or integer indices.  Repeated edges
        accumulate, matching adjacency-matrix semantics where parallel edges
        sum their weights.
        """
        labels = validate_labels(labels)
        index = {lb: i for i, lb in enumerate(labels)}
        n = len(labels)
        arr = np.zeros((n, n), dtype=np.int64)
        for src, dst, v in edges:
            i = index[src.strip().upper()] if isinstance(src, str) else int(src)
            j = index[dst.strip().upper()] if isinstance(dst, str) else int(dst)
            if not (0 <= i < n and 0 <= j < n):
                raise ShapeError(f"edge ({src!r}, {dst!r}) is outside the {n}x{n} matrix")
            arr[i, j] += int(v)
        return cls(arr, labels)

    @classmethod
    def from_json_fields(
        cls,
        traffic_matrix: Sequence[Sequence[int]],
        axis_labels: Sequence[str],
        traffic_matrix_colors: Sequence[Sequence[int]] | None = None,
    ) -> "TrafficMatrix":
        """Construct directly from the three JSON fields of a learning module."""
        return cls(np.asarray(traffic_matrix), axis_labels, traffic_matrix_colors)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of endpoints (matrix is ``n × n``)."""
        return self._packets.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self._packets.shape  # type: ignore[return-value]

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def packets(self) -> np.ndarray:
        """Read-only view of the packet-count grid."""
        view = self._packets.view()
        view.flags.writeable = False
        return view

    @property
    def colors(self) -> np.ndarray:
        """Read-only view of the colour-code grid."""
        view = self._colors.view()
        view.flags.writeable = False
        return view

    @property
    def extended_colors(self) -> bool:
        """Whether this matrix opted into the extended colour palette."""
        return self._extended

    @property
    def space_map(self) -> SpaceMap:
        """Blue/grey/red space assignment inferred from label prefixes (cached)."""
        if self._space_map is None:
            self._space_map = SpaceMap.infer(self._labels)
        return self._space_map

    @property
    def meta(self) -> dict:
        """Provenance metadata attached by producers (e.g. the scenario API).

        Metadata is carried alongside the matrix but is *not* part of its
        value: ``__eq__`` ignores it, and derived matrices (sums, transposes)
        do not inherit it.  The scenario API stores the originating
        :class:`~repro.scenarios.ScenarioSpec` document under ``"scenario"``.
        """
        return dict(self._meta)

    def with_meta(self, **fields: object) -> "TrafficMatrix":
        """Copy of this matrix with *fields* merged into its metadata."""
        out = self.copy()
        out._meta.update(fields)
        return out

    # ------------------------------------------------------------------ #
    # element access
    # ------------------------------------------------------------------ #

    def _axis_index(self, key: str | int) -> int:
        if isinstance(key, str):
            try:
                return self._labels.index(key.strip().upper())
            except ValueError:
                raise LabelError(f"unknown axis label {key!r}") from None
        i = int(key)
        if not -self.n <= i < self.n:
            raise ShapeError(f"index {i} out of range for {self.n}x{self.n} matrix")
        return i % self.n

    def __getitem__(self, key: tuple[str | int, str | int]) -> int:
        src, dst = key
        return int(self._packets[self._axis_index(src), self._axis_index(dst)])

    def __setitem__(self, key: tuple[str | int, str | int], value: int) -> None:
        if int(value) < 0:
            raise TrafficMatrixError(f"packet count must be non-negative, got {value}")
        src, dst = key
        self._packets[self._axis_index(src), self._axis_index(dst)] = int(value)

    def add_packets(self, src: str | int, dst: str | int, count: int = 1) -> None:
        """Accumulate *count* packets on the ``src → dst`` cell."""
        i, j = self._axis_index(src), self._axis_index(dst)
        new = self._packets[i, j] + int(count)
        if new < 0:
            raise TrafficMatrixError(
                f"removing {-int(count)} packets from cell ({i}, {j}) holding "
                f"{int(self._packets[i, j])} would go negative"
            )
        self._packets[i, j] = new

    def color_of(self, src: str | int, dst: str | int) -> PalletColor:
        """Colour code of one cell (unknown codes already rejected at build)."""
        return PalletColor(int(self._colors[self._axis_index(src), self._axis_index(dst)]))

    def set_color(self, src: str | int, dst: str | int, color: int | PalletColor) -> None:
        code = int(color)
        allowed = (0, 1, 2, 3, 4) if self._extended else (0, 1, 2)
        if code not in allowed:
            raise ColorError(f"invalid colour code {code}; allowed: {allowed}")
        self._colors[self._axis_index(src), self._axis_index(dst)] = code

    # ------------------------------------------------------------------ #
    # derived views and statistics
    # ------------------------------------------------------------------ #

    def nnz(self) -> int:
        """Number of non-empty cells (source/destination pairs with traffic)."""
        return int(np.count_nonzero(self._packets))

    def total_packets(self) -> int:
        """Total packets across the whole matrix."""
        return int(self._packets.sum())

    def density(self) -> float:
        """Fraction of cells carrying traffic."""
        return self.nnz() / float(self.n * self.n) if self.n else 0.0

    def out_degrees(self) -> np.ndarray:
        """Packets sent per source (row sums)."""
        return self._packets.sum(axis=1)

    def in_degrees(self) -> np.ndarray:
        """Packets received per destination (column sums)."""
        return self._packets.sum(axis=0)

    def out_fan(self) -> np.ndarray:
        """Distinct destinations per source (row non-zero counts)."""
        return np.count_nonzero(self._packets, axis=1)

    def in_fan(self) -> np.ndarray:
        """Distinct sources per destination (column non-zero counts)."""
        return np.count_nonzero(self._packets, axis=0)

    def max_packets(self) -> int:
        """Largest single-cell packet count."""
        return int(self._packets.max()) if self.n else 0

    def cells_over_display_limit(self) -> list[tuple[str, str, int]]:
        """Cells exceeding the 15-packets-per-cell display guidance.

        The game imposes no hard limit in code; this reports the cells an
        educator should reconsider, as ``(source label, dest label, packets)``.
        """
        rows, cols = np.nonzero(self._packets >= MAX_DISPLAY_PACKETS)
        return [
            (self._labels[i], self._labels[j], int(self._packets[i, j]))
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    def iter_edges(self) -> Iterator[tuple[str, str, int]]:
        """Yield ``(source label, dest label, packets)`` for every non-empty cell."""
        rows, cols = np.nonzero(self._packets)
        for i, j in zip(rows.tolist(), cols.tolist()):
            yield self._labels[i], self._labels[j], int(self._packets[i, j])

    def space_traffic(self) -> dict[tuple[NetworkSpace, NetworkSpace], int]:
        """Total packets per (source space, destination space) block.

        This is the summary the security / defense / deterrence module reasons
        about: e.g. pure "security" traffic lives entirely in the
        ``(BLUE, BLUE)`` block.
        """
        sm = self.space_map
        out: dict[tuple[NetworkSpace, NetworkSpace], int] = {}
        for s_src in NetworkSpace:
            rows = sm.indices(s_src)
            for s_dst in NetworkSpace:
                cols = sm.indices(s_dst)
                if rows.size and cols.size:
                    out[(s_src, s_dst)] = int(self._packets[np.ix_(rows, cols)].sum())
                else:
                    out[(s_src, s_dst)] = 0
        return out

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def _check_compatible(self, other: "TrafficMatrix") -> None:
        if not isinstance(other, TrafficMatrix):
            raise TypeError(f"expected TrafficMatrix, got {type(other).__name__}")
        if other.n != self.n:
            raise ShapeError(f"size mismatch: {self.n}x{self.n} vs {other.n}x{other.n}")
        if other._labels != self._labels:
            raise LabelError("cannot combine matrices with different axis labels")

    @classmethod
    def overlay_style(
        cls, matrices: Sequence["TrafficMatrix"]
    ) -> tuple[np.ndarray, bool]:
        """``(colour grid, extended flag)`` for an overlay of *matrices*.

        Colour priority red(2) > blue(1) > grey(0) means an adversarial
        annotation survives composition — exactly what the paper's "combine
        the stages together" exercise needs.  This is the single definition
        of the rule; ``__add__`` and :func:`repro.graphs.compose.overlay`
        both use it.
        """
        colors = np.maximum.reduce([np.asarray(m.colors) for m in matrices])
        return colors, any(m.extended_colors for m in matrices)

    def __add__(self, other: "TrafficMatrix") -> "TrafficMatrix":
        """Overlay two patterns: packet counts add, colours take the maximum."""
        self._check_compatible(other)
        colors, extended = TrafficMatrix.overlay_style([self, other])
        return TrafficMatrix(
            self._packets + other._packets,
            self._labels,
            colors,
            extended_colors=extended,
        )

    def __mul__(self, scalar: int) -> "TrafficMatrix":
        """Scale every packet count by a non-negative integer."""
        k = int(scalar)
        if k < 0:
            raise TrafficMatrixError("packet scale factor must be non-negative")
        return TrafficMatrix(self._packets * k, self._labels, self._colors.copy(), extended_colors=self._extended)

    __rmul__ = __mul__

    def transpose(self) -> "TrafficMatrix":
        """Reverse every flow: the DDoS *backscatter* of an attack pattern."""
        return TrafficMatrix(self._packets.T.copy(), self._labels, self._colors.T.copy(), extended_colors=self._extended)

    @property
    def T(self) -> "TrafficMatrix":
        return self.transpose()

    def submatrix(self, labels: Sequence[str | int]) -> "TrafficMatrix":
        """Extract the induced sub-matrix on the given endpoints (order kept)."""
        idx = np.asarray([self._axis_index(lb) for lb in labels], dtype=np.intp)
        sel = np.ix_(idx, idx)
        return TrafficMatrix(
            self._packets[sel].copy(),
            tuple(self._labels[i] for i in idx.tolist()),
            self._colors[sel].copy(),
            extended_colors=self._extended,
        )

    def masked_where(
        self,
        mask: "TrafficMatrix | CSRMatrix | np.ndarray",
        *,
        complement: bool = False,
        color: int | None = None,
    ) -> "TrafficMatrix":
        """Keep only the cells a structural *mask* allows (sparse masked select).

        The filter runs on the expression layer (:mod:`repro.assoc.expr`), so
        only the stored flows are touched — no dense boolean scratch grids.
        *mask* may be another :class:`TrafficMatrix` (its non-empty cells form
        the pattern), a :class:`~repro.assoc.sparse.CSRMatrix`, or a dense
        boolean array; ``complement=True`` keeps the cells *outside* the
        pattern instead.  Kept cells keep their colour, or take *color* when
        given (the firewall panels paint violations red this way); dropped
        cells reset to grey.
        """
        from repro.assoc import expr

        if isinstance(mask, TrafficMatrix):
            mask = mask.to_csr()
        kept = expr.lazy(self.to_csr()).select(mask, complement=complement)
        rows, cols, vals = kept.triples()
        packets = np.zeros(self.shape, dtype=np.int64)
        packets[rows, cols] = vals
        colors = np.zeros(self.shape, dtype=np.int8)
        colors[rows, cols] = np.int8(color) if color is not None else self._colors[rows, cols]
        return TrafficMatrix(packets, self._labels, colors, extended_colors=self._extended)

    def with_colors(
        self,
        colors: np.ndarray | Sequence[Sequence[int]],
        *,
        extended_colors: bool | None = None,
    ) -> "TrafficMatrix":
        """Copy of this matrix with a replacement colour grid."""
        extended = self._extended if extended_colors is None else extended_colors
        return TrafficMatrix(self._packets.copy(), self._labels, colors, extended_colors=extended)

    def with_space_colors(self) -> "TrafficMatrix":
        """Copy coloured by the default space convention (see ``SpaceMap.color_grid``)."""
        return self.with_colors(self.space_map.color_grid())

    def copy(self) -> "TrafficMatrix":
        return TrafficMatrix(
            self._packets.copy(),
            self._labels,
            self._colors.copy(),
            extended_colors=self._extended,
            meta=self._meta,
        )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    def to_json_fields(self) -> dict[str, object]:
        """The three JSON learning-module fields for this matrix."""
        return {
            "size": f"{self.n}x{self.n}",
            "axis_labels": list(self._labels),
            "traffic_matrix": self._packets.tolist(),
            "traffic_matrix_colors": self._colors.astype(int).tolist(),
        }

    def to_assoc(self) -> "AssociativeArray":
        """Convert to a sparse, string-keyed associative array (D4M style)."""
        from repro.assoc.array import AssociativeArray

        rows, cols = np.nonzero(self._packets)
        return AssociativeArray.from_triples(
            [self._labels[i] for i in rows.tolist()],
            [self._labels[j] for j in cols.tolist()],
            self._packets[rows, cols],
            row_labels=self._labels,
            col_labels=self._labels,
        )

    def to_csr(self) -> "CSRMatrix":
        """Convert to the sparse engine's :class:`~repro.assoc.sparse.CSRMatrix`.

        This is the bridge onto the semiring kernels — and therefore onto the
        blocked-parallel runtime when :func:`repro.runtime.configure` has
        enabled workers.
        """
        from repro.assoc.sparse import CSRMatrix

        rows, cols = np.nonzero(self._packets)
        return CSRMatrix.from_triples(
            rows, cols, self._packets[rows, cols], self.shape
        )

    def compose(
        self,
        other: "TrafficMatrix",
        semiring: "str | Semiring" = "plus.times",
        *,
        mask: "TrafficMatrix | CSRMatrix | np.ndarray | None" = None,
        complement: bool = False,
    ) -> "TrafficMatrix":
        """Relayed traffic ``self → via → other``: the semiring matrix product.

        Over the default ``plus.times``, cell ``(i, j)`` counts the packets
        flowing ``i → k`` and then ``k → j`` summed over every relay ``k`` —
        the two-hop traffic picture used by the multi-stage exercises.  The
        product runs on the sparse engine, so large compositions parallelize
        under :func:`repro.runtime.configure`.  Colours are not composable and
        reset to grey.  The semiring must produce non-negative integer counts
        and its additive monoid must treat 0 as neutral on that domain
        (``plus.times``, ``plus.min``, ``max.times``, …); min-like monoids
        are rejected because absent cells would densify to 0 — the *best*
        min value — silently corrupting the result.  Use :meth:`to_csr` or
        :meth:`to_assoc` directly for tropical (``min.plus``) analysis.

        With a *mask*, only the allowed cells of the product are computed:
        the expression planner fuses the mask into the blocked product kernel
        (a sparse non-complemented mask never materialises the full product)
        — "which relayed flows would the firewall pass" in one call.
        """
        from repro.assoc.semiring import semiring_by_name

        self._check_compatible(other)
        if isinstance(semiring, str):
            semiring = semiring_by_name(semiring)
        # Absent cells densify to 0, which is only sound when 0 is neutral
        # for the additive monoid over non-negative counts: plus (identity
        # 0), lor (False == 0), and max (identity int64-min, and 0 is the
        # domain floor).  A min-like monoid's identity is int64-max; 0 would
        # annihilate instead.
        zero = semiring.zero(np.int64)
        if zero != 0 and zero != np.iinfo(np.int64).min:
            raise TrafficMatrixError(
                f"compose cannot densify semiring {semiring.name!r}: absent "
                f"cells would read 0, which is not neutral for its additive "
                f"monoid {semiring.add.name!r}; use to_csr()/to_assoc() for "
                f"sparse {semiring.name} analysis"
            )
        if mask is None:
            product = self.to_csr().mxm(other.to_csr(), semiring)
        else:
            from repro.assoc import expr

            if isinstance(mask, TrafficMatrix):
                mask = mask.to_csr()
            product = expr.lazy(self.to_csr()).mxm(other.to_csr(), semiring).new(
                mask=mask, complement=complement
            )
        return TrafficMatrix(product.to_dense(0), self._labels)

    def to_networkx(self) -> "nx.DiGraph":
        """Directed weighted graph view (for cross-checking with networkx)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self._labels)
        for src, dst, w in self.iter_edges():
            g.add_edge(src, dst, weight=w)
        return g

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return (
            self._labels == other._labels
            and np.array_equal(self._packets, other._packets)
            and np.array_equal(self._colors, other._colors)
        )

    def __hash__(self) -> int:  # matrices are mutable; identity hash like ndarray
        return id(self)

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(n={self.n}, nnz={self.nnz()}, "
            f"packets={self.total_packets()}, labels={self._labels[:3]}...)"
            if self.n > 3
            else f"TrafficMatrix(n={self.n}, nnz={self.nnz()}, labels={self._labels})"
        )

    def to_text(self, *, show_colors: bool = False) -> str:
        """Spreadsheet-style plain-text rendering (the 2-D top-down view's data).

        Colour display is handled by :mod:`repro.render`; with
        ``show_colors=True`` each cell is suffixed by ``g``/``b``/``r``.
        """
        width = max((len(lb) for lb in self._labels), default=1)
        width = max(width, len(str(self.max_packets())) + (1 if show_colors else 0))
        header = " " * (width + 1) + " ".join(lb.rjust(width) for lb in self._labels)
        lines = [header]
        suffix = {0: "g", 1: "b", 2: "r", 3: "y", 4: "n"}  # n = greeN (g is grey)
        for i, lb in enumerate(self._labels):
            cells = []
            for j in range(self.n):
                cell = str(int(self._packets[i, j]))
                if show_colors:
                    cell += suffix[int(self._colors[i, j])]
                cells.append(cell.rjust(width))
            lines.append(lb.rjust(width) + " " + " ".join(cells))
        return "\n".join(lines)
