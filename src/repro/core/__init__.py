"""Core traffic-matrix objects: labels, colours, network spaces, and the matrix."""

from repro.core.colors import PalletColor, color_name, material_for_code, validate_color_grid
from repro.core.labels import (
    MAX_LABEL_LENGTH,
    TEMPLATE_LABELS_6,
    TEMPLATE_LABELS_10,
    default_labels,
    validate_labels,
)
from repro.core.spaces import (
    DEFAULT_PREFIXES,
    NetworkSpace,
    SpaceMap,
    space_of_label,
    spaces_from_counts,
)
from repro.core.traffic_matrix import MAX_DISPLAY_PACKETS, TrafficMatrix

__all__ = [
    "PalletColor",
    "color_name",
    "material_for_code",
    "validate_color_grid",
    "MAX_LABEL_LENGTH",
    "TEMPLATE_LABELS_6",
    "TEMPLATE_LABELS_10",
    "default_labels",
    "validate_labels",
    "DEFAULT_PREFIXES",
    "NetworkSpace",
    "SpaceMap",
    "space_of_label",
    "spaces_from_counts",
    "MAX_DISPLAY_PACKETS",
    "TrafficMatrix",
]
