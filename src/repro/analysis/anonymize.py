"""Anonymized traffic analysis (the lineage of refs [16]-[19]).

The GraphBLAS deployments the paper cites analyse traffic *without* exposing
endpoint identities: labels are hashed before matrices leave the collection
point, and all analytics run on the hashed keys.  This module provides that
primitive for both :class:`~repro.core.TrafficMatrix` and
:class:`~repro.assoc.AssociativeArray`, with a deterministic keyed hash so
the same endpoint anonymises identically across matrices (joins still work)
while unkeyed rainbow lookups don't.
"""

from __future__ import annotations

import hashlib

from repro.assoc.array import AssociativeArray
from repro.core.traffic_matrix import TrafficMatrix

__all__ = ["anonymize_label", "anonymize_matrix", "anonymize_assoc"]


def anonymize_label(label: str, *, key: str = "", length: int = 7) -> str:
    """Keyed SHA-256 pseudonym for an endpoint label.

    The pseudonym starts with ``H`` so it is a valid axis label, and keeps
    *length* hex characters.  The default of 7 keeps pseudonyms within the
    8-character display guidance (28 bits — ample for classroom populations;
    use :func:`anonymize_assoc` with longer keys for large key spaces).
    """
    digest = hashlib.sha256(f"{key}|{label}".encode("utf-8")).hexdigest()
    return ("H" + digest[:length]).upper()


def anonymize_matrix(matrix: TrafficMatrix, *, key: str = "") -> TrafficMatrix:
    """The same traffic with hashed labels (pattern and colours unchanged).

    Label order follows the original axis, so cell positions — and therefore
    every pattern signature the modules teach — are preserved exactly.
    """
    new_labels = [anonymize_label(lb, key=key) for lb in matrix.labels]
    return TrafficMatrix(matrix.packets.copy(), new_labels, matrix.colors.copy())


def anonymize_assoc(array: AssociativeArray, *, key: str = "") -> AssociativeArray:
    """Hash every row/column key of an associative array.

    Values are untouched; collisions (astronomically unlikely at 40+ bits)
    would merge by summation, matching the streaming accumulators' semantics.
    """
    return array.relabel(
        row_map=lambda lb: anonymize_label(lb, key=key),
        col_map=lambda lb: anonymize_label(lb, key=key),
    )
