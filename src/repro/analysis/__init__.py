"""Anonymized and streaming traffic analytics (refs [16]-[19], [50])."""

from repro.analysis.anonymize import anonymize_assoc, anonymize_label, anonymize_matrix
from repro.analysis.stats import ScalingFit, scaling_relation, synthetic_traffic
from repro.analysis.streaming import (
    MergedWindowView,
    StreamAccumulator,
    WindowStats,
    merge_windows,
    scenario_stream,
    window_digest,
    window_stream,
)

__all__ = [
    "anonymize_label",
    "anonymize_matrix",
    "anonymize_assoc",
    "StreamAccumulator",
    "WindowStats",
    "window_stream",
    "scenario_stream",
    "merge_windows",
    "window_digest",
    "MergedWindowView",
    "ScalingFit",
    "scaling_relation",
    "synthetic_traffic",
]
