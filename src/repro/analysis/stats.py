"""Scaling-relation statistics over window streams (ref [50] style).

The hinted reference fits power-law-like scaling relations to per-window
traffic quantities (unique sources/links/destinations vs window size).
:func:`scaling_relation` reproduces the fit: run windows of increasing size
over a stream, regress ``log(quantity)`` on ``log(window packets)``, and
report the slope — a sub-linear slope is the heavy-tail signature real
traffic shows and uniform synthetic traffic does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.analysis.streaming import WindowStats, window_stream

__all__ = ["ScalingFit", "scaling_relation", "synthetic_traffic"]


@dataclass(frozen=True)
class ScalingFit:
    """One fitted scaling relation ``quantity ≈ c · packets^slope``."""

    quantity: str
    slope: float
    intercept: float
    r_squared: float
    points: tuple[tuple[int, float], ...]


def scaling_relation(
    events: Sequence[tuple[str, str, int]],
    quantity: Callable[[WindowStats], float],
    *,
    quantity_name: str = "quantity",
    window_sizes: Iterable[int] = (64, 128, 256, 512, 1024),
) -> ScalingFit:
    """Fit ``log(quantity)`` vs ``log(window total packets)`` across sizes.

    Each window size contributes the mean quantity over its full windows
    (partial trailing windows are excluded here — they would mix scales).
    """
    xs: list[float] = []
    ys: list[float] = []
    pts: list[tuple[int, float]] = []
    for size in window_sizes:
        values: list[float] = []
        packets: list[int] = []
        for _array, stats in window_stream(events, window_size=size):
            if stats.events == size:  # full windows only
                values.append(float(quantity(stats)))
                packets.append(stats.total_packets)
        if not values:
            continue
        mean_q = float(np.mean(values))
        mean_p = float(np.mean(packets))
        if mean_q > 0 and mean_p > 0:
            xs.append(np.log(mean_p))
            ys.append(np.log(mean_q))
            pts.append((int(mean_p), mean_q))
    if len(xs) < 2:
        raise ValueError("need at least two window sizes with full windows to fit")
    x = np.asarray(xs)
    y = np.asarray(ys)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ScalingFit(
        quantity=quantity_name,
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r2,
        points=tuple(pts),
    )


def synthetic_traffic(
    *,
    n_events: int,
    n_endpoints: int = 256,
    heavy_tail: bool = True,
    seed: int = 0,
) -> list[tuple[str, str, int]]:
    """A synthetic packet stream with (optionally) heavy-tailed endpoints.

    ``heavy_tail=True`` draws endpoints from a Zipf-like distribution — a few
    supernodes dominate, as real traffic shows; ``False`` draws uniformly.
    Substitutes for the proprietary traffic captures the references analyse;
    the code path (stream → windows → fits) is identical.
    """
    rng = np.random.default_rng(seed)
    if heavy_tail:
        ranks = np.arange(1, n_endpoints + 1, dtype=np.float64)
        probs = 1.0 / ranks
        probs /= probs.sum()
    else:
        probs = np.full(n_endpoints, 1.0 / n_endpoints)
    src_idx = rng.choice(n_endpoints, size=n_events, p=probs)
    dst_idx = rng.choice(n_endpoints, size=n_events, p=probs)
    counts = rng.integers(1, 4, size=n_events)
    return [
        (f"N{s}", f"N{d}", int(c))
        for s, d, c in zip(src_idx.tolist(), dst_idx.tolist(), counts.tolist())
    ]
