"""Streaming traffic-matrix construction (refs [16]-[19] made laptop-scale).

The cited deployments accumulate packet streams into hypersparse GraphBLAS
matrices in fixed-size windows, then analyse each window's matrix.
:class:`StreamAccumulator` reproduces that pipeline on associative arrays:
feed ``(src, dst, packets)`` events, get one
:class:`~repro.assoc.AssociativeArray` per window, plus the same summary
statistics the scaling-relations paper (ref [50]) tracks per window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.assoc.array import AssociativeArray
from repro.runtime.executor import parallel_map

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios import ScenarioSpec

__all__ = [
    "WindowStats",
    "StreamAccumulator",
    "window_stream",
    "scenario_stream",
    "merge_windows",
    "window_digest",
    "MergedWindowView",
]


@dataclass(frozen=True)
class WindowStats:
    """Per-window quantities from the multi-temporal analysis lineage."""

    window_index: int
    events: int
    total_packets: int
    unique_links: int
    unique_sources: int
    unique_destinations: int
    max_source_packets: int
    max_destination_packets: int

    @classmethod
    def from_array(cls, index: int, events: int, array: AssociativeArray) -> "WindowStats":
        out_deg = array.reduce_rows()
        in_deg = array.reduce_cols()
        return cls(
            window_index=index,
            events=events,
            total_packets=int(array.sum()),
            unique_links=array.nnz,
            unique_sources=sum(1 for v in out_deg.values() if v),
            unique_destinations=sum(1 for v in in_deg.values() if v),
            max_source_packets=int(max(out_deg.values(), default=0)),
            max_destination_packets=int(max(in_deg.values(), default=0)),
        )


class StreamAccumulator:
    """Accumulate packet events into fixed-size window matrices.

    ``window_size`` counts *events* (packet records), matching the
    2^k-packet windows of the reference pipeline.  Duplicate (src, dst)
    events within a window sum — the associative-array construction does the
    merging, which is the entire point of the abstraction.
    """

    def __init__(self, window_size: int = 1024) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.window_size = window_size
        self._srcs: list[str] = []
        self._dsts: list[str] = []
        self._vals: list[int] = []
        self._windows_done = 0

    def push(self, src: str, dst: str, packets: int = 1) -> AssociativeArray | None:
        """Add one event; returns the finished window's array when it closes."""
        self._srcs.append(src)
        self._dsts.append(dst)
        self._vals.append(int(packets))
        if len(self._srcs) >= self.window_size:
            return self.flush()
        return None

    def pending(self) -> int:
        return len(self._srcs)

    def flush(self) -> AssociativeArray | None:
        """Close the current window early (None if it holds no events)."""
        if not self._srcs:
            return None
        array = AssociativeArray.from_triples(
            self._srcs, self._dsts, np.asarray(self._vals, dtype=np.int64)
        )
        self._srcs, self._dsts, self._vals = [], [], []
        self._windows_done += 1
        return array

    @property
    def windows_completed(self) -> int:
        return self._windows_done


def window_stream(
    events: Iterable[tuple[str, str, int]],
    *,
    window_size: int = 1024,
) -> Iterator[tuple[AssociativeArray, WindowStats]]:
    """Run a whole event stream through an accumulator, yielding each window.

    The trailing partial window is flushed and yielded too — dropping tail
    traffic would bias every statistic downward.
    """
    acc = StreamAccumulator(window_size)
    count_in_window = 0
    index = 0
    for src, dst, packets in events:
        count_in_window += 1
        array = acc.push(src, dst, packets)
        if array is not None:
            yield array, WindowStats.from_array(index, count_in_window, array)
            index += 1
            count_in_window = 0
    array = acc.flush()
    if array is not None:
        yield array, WindowStats.from_array(index, count_in_window, array)


def scenario_stream(
    specs: Iterable["ScenarioSpec"],
    *,
    window_size: int = 1024,
    workers: int | None = None,
    service: object | None = None,
) -> Iterator[tuple[AssociativeArray, WindowStats]]:
    """Stream declaratively-specified scenarios through the window pipeline.

    Each :class:`~repro.scenarios.ScenarioSpec` is realised (in one
    :func:`~repro.scenarios.generate_batch` call, so ``workers`` parallelises
    generation) and its non-zero cells are replayed as ``(src, dst, packets)``
    events into :func:`window_stream` — the bridge from the scenario API to
    the streaming lineage: a synthetic "capture" of any mix of attack,
    defense and noise scenarios, windowed exactly like real packet data.

    ``service`` (a :class:`~repro.scenarios.ScenarioService`, a bare
    :class:`~repro.scenarios.ScenarioCache`, or a durable
    :class:`~repro.store.ScenarioStore`) routes realisation through that
    object's content-addressed tier(s): specs already resident stream without
    rebuilding — bit-identical, since both cache and store serve exactly what
    a fresh build would produce — and fresh builds are retained for the next
    stream.  A store passed directly is wrapped in an ephemeral in-memory
    cache, so a stream replayed after a restart warm-starts from disk.
    """
    from repro.errors import ScenarioError
    from repro.scenarios import ScenarioCache, ScenarioService, generate_batch
    from repro.store import ScenarioStore

    cache = None
    if isinstance(service, ScenarioService):
        cache = service.cache
    elif isinstance(service, ScenarioCache):
        cache = service
    elif isinstance(service, ScenarioStore):
        cache = ScenarioCache(max_entries=None, store=service)
    elif service is not None:
        raise ScenarioError(
            f"scenario_stream expects a ScenarioService, ScenarioCache, or "
            f"ScenarioStore for 'service', got {type(service).__name__}"
        )
    matrices = generate_batch(list(specs), workers=workers, cache=cache)
    events = (edge for matrix in matrices for edge in matrix.iter_edges())
    yield from window_stream(events, window_size=window_size)


def _reindex_task(args: tuple[AssociativeArray, tuple[str, ...], tuple[str, ...]]):
    array, r_axis, c_axis = args
    return array.reindex(r_axis, c_axis).csr


def merge_windows(arrays: Iterable[AssociativeArray]) -> AssociativeArray:
    """Combine per-window matrices into one aggregate by key-aligned addition.

    This is the long-horizon view of the streaming lineage: many 2^k-event
    window matrices collapse into a whole-capture traffic matrix.  Every
    window is reindexed once onto the union label axes (in parallel on the
    runtime's configured executor), then a single accumulator assignment —
    ``total(accum=PLUS) << union_all(windows)`` on the expression layer —
    collapses them with one fused concatenate + coalesce, itself row-blocked
    under :func:`repro.runtime.configure`.  One sort over all windows
    replaces the old ``log₂(windows)`` rounds of pairwise tree merges.
    """
    pending = list(arrays)
    if not pending:
        return AssociativeArray.empty()
    if len(pending) == 1:
        return pending[0]
    from repro.assoc.expr import Mat, union_all
    from repro.assoc.semiring import PLUS

    r_axis = tuple(sorted(set().union(*(a.row_labels for a in pending))))
    c_axis = tuple(sorted(set().union(*(a.col_labels for a in pending))))
    reindexed = parallel_map(
        _reindex_task, [(a, r_axis, c_axis) for a in pending]
    )
    total = Mat.from_csr(reindexed[0])
    total(accum=PLUS) << union_all(reindexed[1:])
    return AssociativeArray(r_axis, c_axis, total.csr)


def window_digest(array: AssociativeArray) -> str:
    """Content address of one window matrix (labels + CSR bytes, SHA-256).

    The same digest scheme the scenario store uses for specs, applied to
    window matrices: equal windows get equal keys, so a window replayed into
    a :class:`MergedWindowView` dedupes instead of double-counting.
    """
    csr = array.csr
    h = hashlib.sha256()
    h.update("\x1f".join(array.row_labels).encode("utf-8"))
    h.update(b"\x1e")
    h.update("\x1f".join(array.col_labels).encode("utf-8"))
    h.update(b"\x1e")
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    h.update(np.ascontiguousarray(np.asarray(csr.data)).tobytes())
    return h.hexdigest()


class MergedWindowView:
    """An incrementally materialized :func:`merge_windows` over live windows.

    The streaming pipeline yields windows one at a time; recomputing the
    whole-capture aggregate from scratch after each is ``O(total nnz)`` per
    window.  This view keeps the aggregate *materialized* and folds each new
    window in incrementally — sound because window merging is key-aligned
    **addition**, and addition over ``int64`` is associative and commutative,
    so ``merge(merged, w)`` is bit-identical to ``merge(w₁ … wₙ, w)``.

    **Invalidation rule.**  Additions refine the materialized aggregate in
    place; *removals invalidate it*.  Subtraction is not the inverse of this
    merge (a removed window's labels may vanish from the union axes, which
    no subtraction can shrink), so :meth:`remove` marks the view dirty and
    the next :meth:`merged` call recomputes from the retained windows — the
    classic incremental-view trade: cheap monotone updates, full rebuild on
    retraction.

    Windows are keyed by :func:`window_digest`, so re-adding an identical
    window is a no-op rather than a double count.
    """

    def __init__(self) -> None:
        self._windows: dict[str, AssociativeArray] = {}
        self._merged: AssociativeArray | None = None
        self._dirty = False
        self._recomputes = 0
        self._incremental_merges = 0

    def __len__(self) -> int:
        return len(self._windows)

    def __contains__(self, key: str) -> bool:
        return key in self._windows

    def keys(self) -> list[str]:
        """Window digests in insertion order."""
        return list(self._windows)

    def add(self, array: AssociativeArray) -> str:
        """Fold one window into the view; returns its digest key.

        A window already present (same digest ⇒ same content) is skipped —
        the aggregate must count each distinct window exactly once.
        """
        key = window_digest(array)
        if key in self._windows:
            return key
        self._windows[key] = array
        if self._dirty or self._merged is None:
            # The materialization is stale (or never built); don't refine a
            # value we're about to throw away.
            self._dirty = True
        else:
            self._merged = merge_windows([self._merged, array])
            self._incremental_merges += 1
        return key

    def remove(self, key: str) -> bool:
        """Retract one window by digest; returns whether it was present.

        Retraction invalidates the materialization (see the class docstring
        for why); the rebuild is deferred to the next :meth:`merged` call so
        a burst of removals pays for one recompute, not one each.
        """
        if self._windows.pop(key, None) is None:
            return False
        self._dirty = True
        self._merged = None
        return True

    def merged(self) -> AssociativeArray:
        """The current aggregate — served from the materialization when clean.

        Bit-identical to ``merge_windows(view.windows())`` by construction;
        the view's tests assert it rather than assume it.
        """
        if self._dirty or self._merged is None:
            if self._windows:
                self._merged = merge_windows(list(self._windows.values()))
                self._recomputes += 1
            else:
                self._merged = AssociativeArray.empty()
            self._dirty = False
        return self._merged

    def windows(self) -> list[AssociativeArray]:
        """The retained windows, in insertion order."""
        return list(self._windows.values())

    def stats(self) -> dict[str, int | bool]:
        """Materialization accounting: how often the fast path actually won."""
        return {
            "windows": len(self._windows),
            "dirty": self._dirty,
            "incremental_merges": self._incremental_merges,
            "recomputes": self._recomputes,
        }
