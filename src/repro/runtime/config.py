"""Process-wide runtime configuration for the parallel sparse engine.

One immutable :class:`RuntimeConfig` governs how the blocked kernels in
:mod:`repro.assoc.blocked` split and schedule work.  Callers opt in with::

    from repro import runtime
    runtime.configure(workers=4, block_rows=256)

and every semiring ``mxm`` / ``mxv`` / element-wise op / ``coalesce`` routed
through :class:`~repro.assoc.sparse.CSRMatrix` picks the setting up — no call
sites change.  ``configured(...)`` scopes a setting to a ``with`` block, which
is what the tests and benchmarks use.

A thread-local *serial region* flag prevents nested parallelism: tasks already
running inside one of our executors see a serial config, so a parallel
``mxm``'s per-block ``coalesce`` never tries to spawn a second pool.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import RuntimeConfigError
from repro.obs import trace as _trace

__all__ = [
    "DEFAULT_SHM_MIN_BYTES",
    "RuntimeConfig",
    "configure",
    "configured",
    "get_config",
    "reset",
    "parallel_config",
    "serial_region",
    "in_serial_region",
]

#: Backends accepted by :func:`configure`.  ``auto`` resolves to ``thread``
#: when ``workers > 1`` (NumPy kernels release the GIL) and ``serial`` otherwise.
BACKENDS = ("auto", "serial", "thread", "process")

#: Default operand-size floor for the shared-memory plane: below 1 MiB the
#: pickle copies are cheaper than the segment create/attach round trip.
DEFAULT_SHM_MIN_BYTES = 1 << 20


@dataclass(frozen=True)
class RuntimeConfig:
    """Immutable snapshot of the engine settings.

    Parameters
    ----------
    workers:
        Number of parallel workers.  ``1`` keeps every kernel on the classic
        serial path.
    block_rows:
        Rows per :class:`~repro.assoc.blocked.BlockedCSR` tile.  ``None``
        defers to the chunk-size heuristic
        (:func:`repro.runtime.executor.choose_block_rows`).
    backend:
        One of :data:`BACKENDS`.  ``process`` requires picklable semirings —
        all built-ins qualify.
    min_parallel_work:
        Work-item floor (expanded product terms, nnz, …) below which kernels
        stay serial; splitting tiny operands costs more than it saves.
    shm_min_bytes:
        Operand-size floor (bytes) above which the ``process`` backend ships
        operands through :mod:`multiprocessing.shared_memory` segments instead
        of pickling a copy into every row-block task (see
        :mod:`repro.runtime.shm`).  Small operands keep the pickle path — the
        segment round trip only pays for itself once the per-task copies
        dominate.  ``None`` disables the shared-memory plane entirely.
    tracing:
        Whether the :mod:`repro.obs` span tracer is live.  Off by default —
        the always-on metrics registry never depends on this flag; tracing
        records per-span ring entries and is the opt-in, heavier half.  The
        ``REPRO_TRACE`` environment variable pre-enables it at import.
    """

    workers: int = 1
    block_rows: int | None = None
    backend: str = "auto"
    min_parallel_work: int = 4096
    shm_min_bytes: int | None = DEFAULT_SHM_MIN_BYTES
    tracing: bool = False

    def __post_init__(self) -> None:
        if int(self.workers) < 1:
            raise RuntimeConfigError(f"workers must be >= 1, got {self.workers}")
        if self.block_rows is not None and int(self.block_rows) < 1:
            raise RuntimeConfigError(f"block_rows must be >= 1 or None, got {self.block_rows}")
        if self.backend not in BACKENDS:
            raise RuntimeConfigError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if int(self.min_parallel_work) < 0:
            raise RuntimeConfigError(
                f"min_parallel_work must be >= 0, got {self.min_parallel_work}"
            )
        if self.shm_min_bytes is not None and int(self.shm_min_bytes) < 0:
            raise RuntimeConfigError(
                f"shm_min_bytes must be >= 0 or None, got {self.shm_min_bytes}"
            )

    def resolved_backend(self) -> str:
        """The concrete backend after ``auto`` resolution."""
        if self.backend != "auto":
            return self.backend
        return "thread" if self.workers > 1 else "serial"

    @property
    def parallel(self) -> bool:
        """Whether this config can ever run kernels in parallel."""
        return self.workers > 1 and self.resolved_backend() != "serial"

    def should_parallelize(self, work_items: int) -> bool:
        """Parallel-worthiness of an operation with *work_items* units of work."""
        return self.parallel and work_items >= self.min_parallel_work

    def use_shm(self, operand_bytes: int) -> bool:
        """Whether process-backend operands of *operand_bytes* go zero-copy.

        True only when all three hold: the shared-memory plane is enabled
        (``shm_min_bytes is not None``), the resolved backend actually crosses
        a pickle boundary (``process`` with more than one worker), and the
        operands are heavy enough to amortise the segment round trip.
        """
        return (
            self.shm_min_bytes is not None
            and self.workers > 1
            and self.resolved_backend() == "process"
            and operand_bytes >= self.shm_min_bytes
        )


_DEFAULT = RuntimeConfig(tracing=_trace.is_enabled())
_lock = threading.Lock()
_config: RuntimeConfig = _DEFAULT
_tls = threading.local()


def get_config() -> RuntimeConfig:
    """The active process-wide configuration."""
    return _config


def _invalidate_stale_pools(old: RuntimeConfig, new: RuntimeConfig) -> None:
    """Drain cached pools the reconfigure made stale (no-op when unchanged).

    ``get_executor`` caches pools per ``(backend, workers)``; without this a
    ``configure(workers=...)`` mid-session would leave the previous pool's
    workers alive for the rest of the process.  Imported lazily — the executor
    module imports this one at its top level.
    """
    if (old.resolved_backend(), old.workers) == (new.resolved_backend(), new.workers):
        return
    if in_serial_region():
        # a worker task reconfiguring must not drain the pool running it
        return
    from repro.runtime import executor

    executor.invalidate_stale_pools(new)


def _sync_tracing(cfg: RuntimeConfig) -> None:
    """Align the process-global tracer with ``cfg.tracing``.

    Enabling is idempotent; disabling flushes the ring to the configured sink
    first (see :func:`repro.obs.trace.flush_active`) so buffered spans are
    never silently dropped by a reconfigure.
    """
    if cfg.tracing and not _trace.is_enabled():
        _trace.enable()
    elif not cfg.tracing and _trace.is_enabled():
        _trace.disable(flush=True)


def configure(
    workers: int | None = None,
    block_rows: int | None | str = "unchanged",
    backend: str | None = None,
    min_parallel_work: int | None = None,
    shm_min_bytes: int | None | str = "unchanged",
    tracing: bool | None = None,
) -> RuntimeConfig:
    """Update the process-wide config in place; unspecified fields persist.

    ``block_rows`` and ``shm_min_bytes`` accept ``None`` explicitly (meaning
    "use the heuristic" and "disable the shared-memory plane" respectively),
    so their unchanged sentinel is the string ``"unchanged"``.
    Returns the new active config.

    A reconfigure that changes the resolved ``(backend, workers)`` pair also
    drains the now-stale cached executor pool — ``get_executor`` never hands
    back a pool built for a superseded worker count, and the superseded
    workers do not linger for the rest of the process.
    """
    global _config
    with _lock:
        cfg = _config
        updates: dict[str, object] = {}
        if workers is not None:
            updates["workers"] = int(workers)
        if block_rows != "unchanged":
            updates["block_rows"] = None if block_rows is None else int(block_rows)
        if backend is not None:
            updates["backend"] = backend
        if min_parallel_work is not None:
            updates["min_parallel_work"] = int(min_parallel_work)
        if shm_min_bytes != "unchanged":
            updates["shm_min_bytes"] = None if shm_min_bytes is None else int(shm_min_bytes)
        if tracing is not None:
            updates["tracing"] = bool(tracing)
        _config = replace(cfg, **updates) if updates else cfg
        new = _config
    _invalidate_stale_pools(cfg, new)
    _sync_tracing(new)
    return new


def reset() -> RuntimeConfig:
    """Restore the default (serial) configuration."""
    global _config
    with _lock:
        previous = _config
        _config = _DEFAULT
    _invalidate_stale_pools(previous, _DEFAULT)
    _sync_tracing(_DEFAULT)
    return _config


@contextmanager
def configured(
    workers: int | None = None,
    block_rows: int | None | str = "unchanged",
    backend: str | None = None,
    min_parallel_work: int | None = None,
    shm_min_bytes: int | None | str = "unchanged",
    tracing: bool | None = None,
) -> Iterator[RuntimeConfig]:
    """Scope a configuration to a ``with`` block, restoring the previous one."""
    global _config
    with _lock:
        previous = _config
    try:
        yield configure(
            workers, block_rows, backend, min_parallel_work, shm_min_bytes, tracing
        )
    finally:
        with _lock:
            _config = previous
        _sync_tracing(previous)


def in_serial_region() -> bool:
    """True inside an executor task, where nested parallelism is forbidden."""
    return bool(getattr(_tls, "serial_depth", 0))


@contextmanager
def serial_region() -> Iterator[None]:
    """Mark the current thread as already-parallel (kernels stay serial)."""
    _tls.serial_depth = getattr(_tls, "serial_depth", 0) + 1
    try:
        yield
    finally:
        _tls.serial_depth -= 1


def parallel_config(work_items: int) -> RuntimeConfig | None:
    """The active config if *work_items* should run in parallel, else ``None``.

    This is the single gate every dispatching kernel calls: it folds together
    the opt-in (``workers > 1``), the work-size floor, and the nested-region
    guard.
    """
    cfg = _config
    if not cfg.parallel or work_items < cfg.min_parallel_work or in_serial_region():
        return None
    return cfg
