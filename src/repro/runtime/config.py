"""Process-wide runtime configuration for the parallel sparse engine.

One immutable :class:`RuntimeConfig` governs how the blocked kernels in
:mod:`repro.assoc.blocked` split and schedule work.  Callers opt in with::

    from repro import runtime
    runtime.configure(workers=4, block_rows=256)

and every semiring ``mxm`` / ``mxv`` / element-wise op / ``coalesce`` routed
through :class:`~repro.assoc.sparse.CSRMatrix` picks the setting up — no call
sites change.  ``configured(...)`` scopes a setting to a ``with`` block, which
is what the tests and benchmarks use.

A thread-local *serial region* flag prevents nested parallelism: tasks already
running inside one of our executors see a serial config, so a parallel
``mxm``'s per-block ``coalesce`` never tries to spawn a second pool.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import RuntimeConfigError

__all__ = [
    "RuntimeConfig",
    "configure",
    "configured",
    "get_config",
    "reset",
    "parallel_config",
    "serial_region",
    "in_serial_region",
]

#: Backends accepted by :func:`configure`.  ``auto`` resolves to ``thread``
#: when ``workers > 1`` (NumPy kernels release the GIL) and ``serial`` otherwise.
BACKENDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class RuntimeConfig:
    """Immutable snapshot of the engine settings.

    Parameters
    ----------
    workers:
        Number of parallel workers.  ``1`` keeps every kernel on the classic
        serial path.
    block_rows:
        Rows per :class:`~repro.assoc.blocked.BlockedCSR` tile.  ``None``
        defers to the chunk-size heuristic
        (:func:`repro.runtime.executor.choose_block_rows`).
    backend:
        One of :data:`BACKENDS`.  ``process`` requires picklable semirings —
        all built-ins qualify.
    min_parallel_work:
        Work-item floor (expanded product terms, nnz, …) below which kernels
        stay serial; splitting tiny operands costs more than it saves.
    """

    workers: int = 1
    block_rows: int | None = None
    backend: str = "auto"
    min_parallel_work: int = 4096

    def __post_init__(self) -> None:
        if int(self.workers) < 1:
            raise RuntimeConfigError(f"workers must be >= 1, got {self.workers}")
        if self.block_rows is not None and int(self.block_rows) < 1:
            raise RuntimeConfigError(f"block_rows must be >= 1 or None, got {self.block_rows}")
        if self.backend not in BACKENDS:
            raise RuntimeConfigError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if int(self.min_parallel_work) < 0:
            raise RuntimeConfigError(
                f"min_parallel_work must be >= 0, got {self.min_parallel_work}"
            )

    def resolved_backend(self) -> str:
        """The concrete backend after ``auto`` resolution."""
        if self.backend != "auto":
            return self.backend
        return "thread" if self.workers > 1 else "serial"

    @property
    def parallel(self) -> bool:
        """Whether this config can ever run kernels in parallel."""
        return self.workers > 1 and self.resolved_backend() != "serial"

    def should_parallelize(self, work_items: int) -> bool:
        """Parallel-worthiness of an operation with *work_items* units of work."""
        return self.parallel and work_items >= self.min_parallel_work


_DEFAULT = RuntimeConfig()
_lock = threading.Lock()
_config: RuntimeConfig = _DEFAULT
_tls = threading.local()


def get_config() -> RuntimeConfig:
    """The active process-wide configuration."""
    return _config


def configure(
    workers: int | None = None,
    block_rows: int | None | str = "unchanged",
    backend: str | None = None,
    min_parallel_work: int | None = None,
) -> RuntimeConfig:
    """Update the process-wide config in place; unspecified fields persist.

    ``block_rows`` accepts ``None`` explicitly (meaning "use the heuristic"),
    so its unchanged sentinel is the string ``"unchanged"``.
    Returns the new active config.
    """
    global _config
    with _lock:
        cfg = _config
        updates: dict[str, object] = {}
        if workers is not None:
            updates["workers"] = int(workers)
        if block_rows != "unchanged":
            updates["block_rows"] = None if block_rows is None else int(block_rows)
        if backend is not None:
            updates["backend"] = backend
        if min_parallel_work is not None:
            updates["min_parallel_work"] = int(min_parallel_work)
        _config = replace(cfg, **updates) if updates else cfg
        return _config


def reset() -> RuntimeConfig:
    """Restore the default (serial) configuration."""
    global _config
    with _lock:
        _config = _DEFAULT
    return _config


@contextmanager
def configured(
    workers: int | None = None,
    block_rows: int | None | str = "unchanged",
    backend: str | None = None,
    min_parallel_work: int | None = None,
) -> Iterator[RuntimeConfig]:
    """Scope a configuration to a ``with`` block, restoring the previous one."""
    global _config
    with _lock:
        previous = _config
    try:
        yield configure(workers, block_rows, backend, min_parallel_work)
    finally:
        with _lock:
            _config = previous


def in_serial_region() -> bool:
    """True inside an executor task, where nested parallelism is forbidden."""
    return bool(getattr(_tls, "serial_depth", 0))


@contextmanager
def serial_region() -> Iterator[None]:
    """Mark the current thread as already-parallel (kernels stay serial)."""
    _tls.serial_depth = getattr(_tls, "serial_depth", 0) + 1
    try:
        yield
    finally:
        _tls.serial_depth -= 1


def parallel_config(work_items: int) -> RuntimeConfig | None:
    """The active config if *work_items* should run in parallel, else ``None``.

    This is the single gate every dispatching kernel calls: it folds together
    the opt-in (``workers > 1``), the work-size floor, and the nested-region
    guard.
    """
    cfg = _config
    if not cfg.parallel or work_items < cfg.min_parallel_work or in_serial_region():
        return None
    return cfg
