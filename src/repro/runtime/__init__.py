"""Pluggable parallel runtime for the GraphBLAS-style sparse engine.

The runtime decouples *what* the semiring kernels compute from *how* the work
is scheduled.  :mod:`repro.assoc` stays the algebra layer; this package owns
worker pools, chunking heuristics and host detection, so scaling the engine is
a configuration change, not a rewrite::

    from repro import runtime

    runtime.configure(workers=4, block_rows=256)   # opt in, process-wide
    C = A.mxm(B, MIN_PLUS)                          # now runs blocked-parallel

    with runtime.configured(workers=1):             # scoped opt-out
        C_serial = A.mxm(B, MIN_PLUS)

Serial and parallel paths produce **bit-identical** results: row-blocked
execution preserves the exact per-row term order the serial ESC kernel uses,
so even non-associative float rounding matches.

On the ``process`` backend, operands above ``shm_min_bytes`` travel through
:mod:`multiprocessing.shared_memory` segments instead of being pickled into
every row-block task — see :mod:`repro.runtime.shm`.  Identity is unaffected:
the plane changes how bytes move, never what is computed.
"""

from repro.runtime import shm
from repro.runtime.backends import (
    EnvironmentInfo,
    cpu_count,
    detect,
    has_scipy,
    recommended_workers,
)
from repro.runtime.config import (
    BACKENDS,
    DEFAULT_SHM_MIN_BYTES,
    RuntimeConfig,
    configure,
    configured,
    get_config,
    in_serial_region,
    parallel_config,
    reset,
    serial_region,
)
from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    async_submit,
    choose_block_rows,
    get_executor,
    invalidate_stale_pools,
    parallel_map,
    shutdown_executors,
)
from repro.runtime.shm import (
    ArrayRef,
    CSRRef,
    OperandLease,
    attach_array,
    attach_csr,
    csr_nbytes,
    detach_all,
    live_segment_names,
    release_all,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_SHM_MIN_BYTES",
    "RuntimeConfig",
    "configure",
    "configured",
    "get_config",
    "reset",
    "parallel_config",
    "serial_region",
    "in_serial_region",
    "EnvironmentInfo",
    "detect",
    "cpu_count",
    "has_scipy",
    "recommended_workers",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "invalidate_stale_pools",
    "shutdown_executors",
    "parallel_map",
    "async_submit",
    "choose_block_rows",
    "shm",
    "ArrayRef",
    "CSRRef",
    "OperandLease",
    "attach_array",
    "attach_csr",
    "csr_nbytes",
    "detach_all",
    "live_segment_names",
    "release_all",
]
