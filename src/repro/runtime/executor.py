"""Pluggable executors and the chunk-size heuristic for blocked kernels.

Three interchangeable executors share one interface (ordered ``map``):

* :class:`SerialExecutor` — plain loop, zero overhead, the default;
* :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``.  The
  hot NumPy loops (sorting, ``reduceat``, fancy indexing) release the GIL, so
  row blocks genuinely overlap;
* :class:`ProcessExecutor` — ``ProcessPoolExecutor`` for workloads where the
  GIL-holding share matters.  Task payloads must pickle, which every built-in
  semiring does.

Pools are created lazily and cached per ``(backend, workers)`` so repeated
kernel calls reuse warm workers; :func:`shutdown_executors` tears them down
(registered with ``atexit``).

Every task runs inside :func:`repro.runtime.config.serial_region`, so kernels
invoked *from a worker* never try to re-enter a pool — nested parallelism is
structurally impossible rather than merely discouraged.
"""

from __future__ import annotations

import asyncio
import atexit
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.errors import RuntimeConfigError, WorkerCrashError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.runtime import shm
from repro.runtime.config import RuntimeConfig, get_config, in_serial_region, serial_region

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "invalidate_stale_pools",
    "shutdown_executors",
    "parallel_map",
    "async_submit",
    "choose_block_rows",
]

T = TypeVar("T")
R = TypeVar("R")

#: Progress hook signature: ``on_progress(done, total)``.  Hooks fire in task
#: *completion* order (not submission order), once per finished task.
ProgressCallback = Callable[[int, int], None]

#: Average stored-entry floor per row block: blocks thinner than this spend
#: more time in dispatch than in NumPy.
MIN_NNZ_PER_BLOCK = 1024

#: Blocks per worker the heuristic aims for — a few blocks of slack per
#: worker smooths out row-imbalance without shredding the matrix.
BLOCKS_PER_WORKER = 4


def _guarded_call(fn: Callable[[T], R], item: T) -> R:
    """Run one task with nested-parallelism disabled (picklable helper)."""
    with serial_region():
        return fn(item)


def _traced_call(
    fn: Callable[[T], R], item: T, label: str, index: int
) -> "tuple[R, list[_trace.SpanRecord]]":
    """Run one task under a worker-side span collector (picklable helper).

    The task's spans — its own ``runtime.task`` root plus anything the kernel
    opens beneath it — are captured into a private per-thread tracer and
    shipped back alongside the result; the dispatching side stitches them
    under the parent span with :meth:`~repro.obs.trace.Tracer.adopt`.  Works
    identically on the thread and process backends: the collector is
    thread-local state in whichever interpreter runs the task, and
    :class:`~repro.obs.trace.SpanRecord` pickles.
    """
    with _trace.collecting() as collector:
        with collector.span("runtime.task", label=label, index=index):
            with serial_region():
                result = fn(item)
    return result, collector.drain()


def _serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    on_progress: ProgressCallback | None,
) -> list[R]:
    out: list[R] = []
    total = len(items)
    tracer = _trace.get_tracer()
    for k, item in enumerate(items, start=1):
        if tracer.enabled:
            with tracer.span("runtime.task", label="", index=k - 1):
                out.append(_guarded_call(fn, item))
        else:
            out.append(_guarded_call(fn, item))
        if on_progress is not None:
            on_progress(k, total)
    return out


def _crash_error(
    executor: "ThreadExecutor | ProcessExecutor",
    exc: BrokenExecutor,
    *,
    label: str,
    task_index: int | None,
    total: int,
) -> WorkerCrashError:
    """Evict the broken pool and build the descriptive replacement error."""
    _evict(executor)
    where = (
        f"task {task_index + 1}/{total}" if task_index is not None else f"{total} pending task(s)"
    )
    what = f" of {label}" if label else ""
    _metrics.counter("runtime.worker_crashes").inc()
    return WorkerCrashError(
        f"{executor.name} pool worker died mid-run ({where}{what}): {exc}. "
        "The broken pool was evicted; the next dispatch gets a fresh one.",
        label=label,
        task_index=task_index,
    )


@contextmanager
def _map_obs(
    executor: "ThreadExecutor | ProcessExecutor",
    total: int,
    label: str,
) -> "Iterator[tuple[_trace.Tracer | _trace.NullTracer, _trace.Span | _trace.NullSpan]]":
    """Metrics + span scope around one pool map.

    Module-level and patchable on purpose: ``benchmarks/bench_obs_overhead.py``
    swaps this (and the kernel-side hook) for a transparent no-op to measure
    the bare hot path, which is how the ≤5% disabled-overhead gate separates
    instrumentation cost from kernel cost.
    """
    _metrics.counter("runtime.maps").inc()
    _metrics.counter("runtime.tasks_dispatched").inc(total)
    tracer = _trace.get_tracer()
    t0 = _metrics.monotonic_ns()
    with tracer.span(
        "runtime.map",
        label=label,
        backend=executor.name,
        workers=executor.workers,
        tasks=total,
    ) as span:
        yield tracer, span
    _metrics.histogram("runtime.map_ms").observe((_metrics.monotonic_ns() - t0) / 1e6)


def _pool_map(
    executor: "ThreadExecutor | ProcessExecutor",
    fn: Callable[[T], R],
    items: Sequence[T],
    on_progress: ProgressCallback | None,
    label: str = "",
) -> list[R]:
    """Ordered pool map; with a hook, progress fires in completion order.

    The hook runs in the *calling* thread (one ``as_completed`` loop), so
    callbacks never race each other.  A task that raised still counts as done
    — its exception surfaces afterwards, when results are collected in order,
    matching plain ``Executor.map`` semantics.

    A worker that dies mid-task (segfault, ``os._exit``, OOM kill) would
    surface as an opaque ``BrokenProcessPool``; it is re-raised here as
    :class:`~repro.errors.WorkerCrashError` naming the task that was in
    flight, and the broken pool is evicted from the cache so the next
    dispatch rebuilds a usable one.  A crashed task is **not** a finished
    task: the progress hook never counts it, so ``done == total`` fires only
    when every task genuinely completed — a crash-then-retry can no longer
    observe a full progress bar with work still in flight.  Each skipped
    future is recorded in the ``runtime.tasks_crashed`` counter instead.

    When tracing is live, tasks run under :func:`_traced_call`: worker-side
    spans come back with each result and are stitched under this map's
    ``runtime.map`` span, one tree across threads and processes.
    """
    total = len(items)
    with _map_obs(executor, total, label) as (tracer, span):
        traced = tracer.enabled
        parent_id = span.span_id if isinstance(span, _trace.Span) else None
        futures: list[Future[Any]]
        try:
            if traced:
                futures = [
                    executor._pool.submit(_traced_call, fn, item, label, k)
                    for k, item in enumerate(items)
                ]
            else:
                futures = [executor._pool.submit(_guarded_call, fn, item) for item in items]
        except BrokenExecutor as exc:  # pool already broken before this call
            raise _crash_error(
                executor, exc, label=label, task_index=None, total=total
            ) from exc
        if on_progress is not None:
            done = 0
            for future in as_completed(futures):
                if isinstance(future.exception(), BrokenExecutor):
                    # the worker died under this task; the caller will see a
                    # WorkerCrashError below and may retry — not progress
                    _metrics.counter("runtime.tasks_crashed").inc()
                    continue
                done += 1
                on_progress(done, total)
        out: list[R] = []
        for k, future in enumerate(futures):
            try:
                result = future.result()
            except BrokenExecutor as exc:
                raise _crash_error(
                    executor, exc, label=label, task_index=k, total=total
                ) from exc
            if traced:
                value, records = result
                tracer.adopt(records, parent_id=parent_id)
                out.append(value)
            else:
                out.append(result)
    return out


class SerialExecutor:
    """Ordered in-thread execution; the identity executor."""

    name = "serial"
    workers = 1

    @property
    def broken(self) -> bool:
        return False

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_progress: ProgressCallback | None = None,
        label: str = "",
    ) -> list[R]:
        return _serial_map(fn, items, on_progress)


class ThreadExecutor:
    """Thread-pool executor; best default because NumPy releases the GIL."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-runtime"
        )

    @property
    def broken(self) -> bool:
        # threads cannot segfault the pool the way child processes can
        return False

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_progress: ProgressCallback | None = None,
        label: str = "",
    ) -> list[R]:
        return _pool_map(self, fn, items, on_progress, label)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """Process-pool executor for fully GIL-free execution.

    Tasks and their arguments cross a pickle boundary; all built-in semirings
    and monoids are picklable (their operators are module-level functions).
    Large CSR operands skip that boundary entirely — see
    :mod:`repro.runtime.shm` and :meth:`RuntimeConfig.use_shm`.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    @property
    def broken(self) -> bool:
        """Whether a worker death has poisoned the underlying pool."""
        return getattr(self._pool, "_broken", False) is not False

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_progress: ProgressCallback | None = None,
        label: str = "",
    ) -> list[R]:
        return _pool_map(self, fn, items, on_progress, label)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


_SERIAL = SerialExecutor()
_pools: dict[tuple[str, int], ThreadExecutor | ProcessExecutor] = {}
_pool_lock = threading.Lock()


def _evict(executor: ThreadExecutor | ProcessExecutor) -> None:
    """Drop *executor* from the cache and shut it down (crash recovery)."""
    with _pool_lock:
        for key, pool in list(_pools.items()):
            if pool is executor:
                del _pools[key]
                _metrics.counter("runtime.pools_evicted").inc()
    try:
        executor.shutdown()
    except Exception:  # pragma: no cover - broken pools may refuse teardown
        pass


def get_executor(
    config: RuntimeConfig | None = None,
) -> SerialExecutor | ThreadExecutor | ProcessExecutor:
    """The executor for *config* (default: the active config), cached.

    A cached pool poisoned by a worker death is discarded here and rebuilt,
    so one crash never leaves the backend permanently unusable.
    """
    cfg = get_config() if config is None else config
    backend = cfg.resolved_backend()
    if backend == "serial" or cfg.workers == 1:
        return _SERIAL
    key = (backend, cfg.workers)
    stale: ThreadExecutor | ProcessExecutor | None = None
    with _pool_lock:
        pool = _pools.get(key)
        if pool is not None and pool.broken:
            stale = pool
            del _pools[key]
            pool = None
        if pool is None:
            if backend == "thread":
                pool = ThreadExecutor(cfg.workers)
            elif backend == "process":
                pool = ProcessExecutor(cfg.workers)
            else:  # pragma: no cover - BACKENDS validation makes this unreachable
                raise RuntimeConfigError(f"unknown backend {backend!r}")
            _pools[key] = pool
            _metrics.counter("runtime.pools_built").inc()
    if stale is not None:
        try:
            stale.shutdown()
        except Exception:  # pragma: no cover - broken pools may refuse teardown
            pass
    return pool


def invalidate_stale_pools(config: RuntimeConfig) -> None:
    """Drain cached pools that *config* superseded.

    Called by :func:`repro.runtime.config.configure` after the active config
    changes its resolved ``(backend, workers)`` pair: a pool cached for the
    same backend under a different worker count is now stale — without this,
    its workers would linger for the rest of the process and a later
    ``get_executor()`` for that key could hand it back.  Pools for *other*
    backends stay warm (switching ``thread`` → ``process`` and back should
    not cold-start the thread pool).
    """
    backend = config.resolved_backend()
    with _pool_lock:
        stale_keys = [
            key for key in _pools if key[0] == backend and key[1] != config.workers
        ]
        pools = [_pools.pop(key) for key in stale_keys]
    for pool in pools:
        _metrics.counter("runtime.pools_evicted").inc()
        pool.shutdown()


def shutdown_executors() -> None:
    """Tear down every cached pool (used by tests and process exit).

    Also sweeps the shared-memory operand plane: any lease a crashed caller
    abandoned is closed and unlinked with the pools, so teardown leaves no
    ``/dev/shm`` residue.  Finally the active trace ring is export-closed —
    spans buffered at teardown are flushed to the configured sink (see
    :func:`repro.obs.trace.flush_active`) rather than silently dropped.
    """
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()
    shm.release_all()
    _trace.flush_active()


atexit.register(shutdown_executors)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: RuntimeConfig | None = None,
    *,
    on_progress: ProgressCallback | None = None,
    label: str = "",
) -> list[R]:
    """Ordered map over *items* on the configured executor.

    Single-item (or serial-config) calls skip the pool entirely, and calls
    from inside a worker task stay serial rather than re-entering the
    fixed-size pool (which could deadlock), so this is safe to use
    unconditionally in fan-out helpers — nested composition included.

    ``on_progress(done, total)`` (when given) fires once per finished task,
    in **completion** order — not item order — from the calling thread.
    Results still come back in input order.

    ``label`` names the work in flight (e.g. ``"parallel_mxm (12 blocks)"``);
    it appears in the :class:`~repro.errors.WorkerCrashError` raised when a
    pool worker dies mid-run.
    """
    seq = list(items)
    if len(seq) <= 1 or in_serial_region():
        return _serial_map(fn, seq, on_progress)
    return get_executor(config).map(fn, seq, on_progress, label)


async def async_submit(
    fn: Callable[[T], R],
    item: T,
    config: RuntimeConfig | None = None,
    *,
    label: str = "",
) -> R:
    """Run one task on the configured executor without blocking the event loop.

    This is the asyncio bridge the scenario service builds on: thread and
    process configs reuse the same cached pools as :func:`parallel_map`
    (``loop.run_in_executor`` accepts a ``concurrent.futures`` pool directly),
    while a serial config runs the task on a transient thread
    (``asyncio.to_thread``) so a blocking build never stalls the loop.  The
    task runs inside :func:`~repro.runtime.config.serial_region` either way —
    nested parallelism stays structurally impossible.

    A worker death surfaces as :class:`~repro.errors.WorkerCrashError` naming
    *label*, and the broken pool is evicted so later submissions get a fresh
    one — same contract as :func:`parallel_map`.
    """
    executor = get_executor(config)
    _metrics.counter("runtime.async_submits").inc()
    tracer = _trace.get_tracer()
    if isinstance(tracer, _trace.Tracer):
        with tracer.span(
            "runtime.async_submit", label=label, backend=executor.name
        ) as span:
            if isinstance(executor, SerialExecutor):
                value, records = await asyncio.to_thread(_traced_call, fn, item, label, 0)
            else:
                loop = asyncio.get_running_loop()
                try:
                    value, records = await loop.run_in_executor(
                        executor._pool, _traced_call, fn, item, label, 0
                    )
                except BrokenExecutor as exc:
                    raise _crash_error(
                        executor, exc, label=label, task_index=None, total=1
                    ) from exc
            tracer.adopt(records, parent_id=span.span_id)
            return value
    if isinstance(executor, SerialExecutor):
        return await asyncio.to_thread(_guarded_call, fn, item)
    loop = asyncio.get_running_loop()
    try:
        return await loop.run_in_executor(executor._pool, _guarded_call, fn, item)
    except BrokenExecutor as exc:
        raise _crash_error(executor, exc, label=label, task_index=None, total=1) from exc


def choose_block_rows(
    n_rows: int,
    nnz: int,
    workers: int,
    requested: int | None = None,
) -> int:
    """Rows per block for an ``n_rows``-row operand with *nnz* stored entries.

    An explicit ``requested`` (``runtime.configure(block_rows=...)``) wins.
    Otherwise aim for :data:`BLOCKS_PER_WORKER` blocks per worker, then widen
    blocks until each carries at least :data:`MIN_NNZ_PER_BLOCK` entries on
    average — thin blocks spend their time in dispatch, not arithmetic.
    """
    if n_rows <= 0:
        return 1
    if requested is not None:
        return max(1, min(int(requested), n_rows))
    target_blocks = max(1, min(workers * BLOCKS_PER_WORKER, n_rows))
    block = -(-n_rows // target_blocks)  # ceil division
    if nnz > 0:
        rows_for_min_nnz = -(-MIN_NNZ_PER_BLOCK * n_rows // nnz)
        block = max(block, min(rows_for_min_nnz, n_rows))
    return max(1, min(block, n_rows))
