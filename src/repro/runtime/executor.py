"""Pluggable executors and the chunk-size heuristic for blocked kernels.

Three interchangeable executors share one interface (ordered ``map``):

* :class:`SerialExecutor` — plain loop, zero overhead, the default;
* :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``.  The
  hot NumPy loops (sorting, ``reduceat``, fancy indexing) release the GIL, so
  row blocks genuinely overlap;
* :class:`ProcessExecutor` — ``ProcessPoolExecutor`` for workloads where the
  GIL-holding share matters.  Task payloads must pickle, which every built-in
  semiring does.

Pools are created lazily and cached per ``(backend, workers)`` so repeated
kernel calls reuse warm workers; :func:`shutdown_executors` tears them down
(registered with ``atexit``).

Every task runs inside :func:`repro.runtime.config.serial_region`, so kernels
invoked *from a worker* never try to re-enter a pool — nested parallelism is
structurally impossible rather than merely discouraged.
"""

from __future__ import annotations

import asyncio
import atexit
import threading
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import RuntimeConfigError, WorkerCrashError
from repro.runtime import shm
from repro.runtime.config import RuntimeConfig, get_config, in_serial_region, serial_region

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "invalidate_stale_pools",
    "shutdown_executors",
    "parallel_map",
    "async_submit",
    "choose_block_rows",
]

T = TypeVar("T")
R = TypeVar("R")

#: Progress hook signature: ``on_progress(done, total)``.  Hooks fire in task
#: *completion* order (not submission order), once per finished task.
ProgressCallback = Callable[[int, int], None]

#: Average stored-entry floor per row block: blocks thinner than this spend
#: more time in dispatch than in NumPy.
MIN_NNZ_PER_BLOCK = 1024

#: Blocks per worker the heuristic aims for — a few blocks of slack per
#: worker smooths out row-imbalance without shredding the matrix.
BLOCKS_PER_WORKER = 4


def _guarded_call(fn: Callable[[T], R], item: T) -> R:
    """Run one task with nested-parallelism disabled (picklable helper)."""
    with serial_region():
        return fn(item)


def _serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    on_progress: ProgressCallback | None,
) -> list[R]:
    out: list[R] = []
    total = len(items)
    for k, item in enumerate(items, start=1):
        out.append(_guarded_call(fn, item))
        if on_progress is not None:
            on_progress(k, total)
    return out


def _crash_error(
    executor: "ThreadExecutor | ProcessExecutor",
    exc: BrokenExecutor,
    *,
    label: str,
    task_index: int | None,
    total: int,
) -> WorkerCrashError:
    """Evict the broken pool and build the descriptive replacement error."""
    _evict(executor)
    where = (
        f"task {task_index + 1}/{total}" if task_index is not None else f"{total} pending task(s)"
    )
    what = f" of {label}" if label else ""
    return WorkerCrashError(
        f"{executor.name} pool worker died mid-run ({where}{what}): {exc}. "
        "The broken pool was evicted; the next dispatch gets a fresh one.",
        label=label,
        task_index=task_index,
    )


def _pool_map(
    executor: "ThreadExecutor | ProcessExecutor",
    fn: Callable[[T], R],
    items: Sequence[T],
    on_progress: ProgressCallback | None,
    label: str = "",
) -> list[R]:
    """Ordered pool map; with a hook, progress fires in completion order.

    The hook runs in the *calling* thread (one ``as_completed`` loop), so
    callbacks never race each other.  A task that raised still counts as done
    — its exception surfaces afterwards, when results are collected in order,
    matching plain ``Executor.map`` semantics.

    A worker that dies mid-task (segfault, ``os._exit``, OOM kill) would
    surface as an opaque ``BrokenProcessPool``; it is re-raised here as
    :class:`~repro.errors.WorkerCrashError` naming the task that was in
    flight, and the broken pool is evicted from the cache so the next
    dispatch rebuilds a usable one.
    """
    total = len(items)
    try:
        futures = [executor._pool.submit(_guarded_call, fn, item) for item in items]
    except BrokenExecutor as exc:  # pool already broken before this call
        raise _crash_error(executor, exc, label=label, task_index=None, total=total) from exc
    if on_progress is not None:
        for done, _ in enumerate(as_completed(futures), start=1):
            on_progress(done, total)
    out: list[R] = []
    for k, future in enumerate(futures):
        try:
            out.append(future.result())
        except BrokenExecutor as exc:
            raise _crash_error(executor, exc, label=label, task_index=k, total=total) from exc
    return out


class SerialExecutor:
    """Ordered in-thread execution; the identity executor."""

    name = "serial"
    workers = 1

    @property
    def broken(self) -> bool:
        return False

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_progress: ProgressCallback | None = None,
        label: str = "",
    ) -> list[R]:
        return _serial_map(fn, items, on_progress)


class ThreadExecutor:
    """Thread-pool executor; best default because NumPy releases the GIL."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-runtime"
        )

    @property
    def broken(self) -> bool:
        # threads cannot segfault the pool the way child processes can
        return False

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_progress: ProgressCallback | None = None,
        label: str = "",
    ) -> list[R]:
        return _pool_map(self, fn, items, on_progress, label)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """Process-pool executor for fully GIL-free execution.

    Tasks and their arguments cross a pickle boundary; all built-in semirings
    and monoids are picklable (their operators are module-level functions).
    Large CSR operands skip that boundary entirely — see
    :mod:`repro.runtime.shm` and :meth:`RuntimeConfig.use_shm`.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    @property
    def broken(self) -> bool:
        """Whether a worker death has poisoned the underlying pool."""
        return getattr(self._pool, "_broken", False) is not False

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_progress: ProgressCallback | None = None,
        label: str = "",
    ) -> list[R]:
        return _pool_map(self, fn, items, on_progress, label)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


_SERIAL = SerialExecutor()
_pools: dict[tuple[str, int], ThreadExecutor | ProcessExecutor] = {}
_pool_lock = threading.Lock()


def _evict(executor: ThreadExecutor | ProcessExecutor) -> None:
    """Drop *executor* from the cache and shut it down (crash recovery)."""
    with _pool_lock:
        for key, pool in list(_pools.items()):
            if pool is executor:
                del _pools[key]
    try:
        executor.shutdown()
    except Exception:  # pragma: no cover - broken pools may refuse teardown
        pass


def get_executor(
    config: RuntimeConfig | None = None,
) -> SerialExecutor | ThreadExecutor | ProcessExecutor:
    """The executor for *config* (default: the active config), cached.

    A cached pool poisoned by a worker death is discarded here and rebuilt,
    so one crash never leaves the backend permanently unusable.
    """
    cfg = get_config() if config is None else config
    backend = cfg.resolved_backend()
    if backend == "serial" or cfg.workers == 1:
        return _SERIAL
    key = (backend, cfg.workers)
    stale: ThreadExecutor | ProcessExecutor | None = None
    with _pool_lock:
        pool = _pools.get(key)
        if pool is not None and pool.broken:
            stale = pool
            del _pools[key]
            pool = None
        if pool is None:
            if backend == "thread":
                pool = ThreadExecutor(cfg.workers)
            elif backend == "process":
                pool = ProcessExecutor(cfg.workers)
            else:  # pragma: no cover - BACKENDS validation makes this unreachable
                raise RuntimeConfigError(f"unknown backend {backend!r}")
            _pools[key] = pool
    if stale is not None:
        try:
            stale.shutdown()
        except Exception:  # pragma: no cover - broken pools may refuse teardown
            pass
    return pool


def invalidate_stale_pools(config: RuntimeConfig) -> None:
    """Drain cached pools that *config* superseded.

    Called by :func:`repro.runtime.config.configure` after the active config
    changes its resolved ``(backend, workers)`` pair: a pool cached for the
    same backend under a different worker count is now stale — without this,
    its workers would linger for the rest of the process and a later
    ``get_executor()`` for that key could hand it back.  Pools for *other*
    backends stay warm (switching ``thread`` → ``process`` and back should
    not cold-start the thread pool).
    """
    backend = config.resolved_backend()
    with _pool_lock:
        stale_keys = [
            key for key in _pools if key[0] == backend and key[1] != config.workers
        ]
        pools = [_pools.pop(key) for key in stale_keys]
    for pool in pools:
        pool.shutdown()


def shutdown_executors() -> None:
    """Tear down every cached pool (used by tests and process exit).

    Also sweeps the shared-memory operand plane: any lease a crashed caller
    abandoned is closed and unlinked with the pools, so teardown leaves no
    ``/dev/shm`` residue.
    """
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()
    shm.release_all()


atexit.register(shutdown_executors)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: RuntimeConfig | None = None,
    *,
    on_progress: ProgressCallback | None = None,
    label: str = "",
) -> list[R]:
    """Ordered map over *items* on the configured executor.

    Single-item (or serial-config) calls skip the pool entirely, and calls
    from inside a worker task stay serial rather than re-entering the
    fixed-size pool (which could deadlock), so this is safe to use
    unconditionally in fan-out helpers — nested composition included.

    ``on_progress(done, total)`` (when given) fires once per finished task,
    in **completion** order — not item order — from the calling thread.
    Results still come back in input order.

    ``label`` names the work in flight (e.g. ``"parallel_mxm (12 blocks)"``);
    it appears in the :class:`~repro.errors.WorkerCrashError` raised when a
    pool worker dies mid-run.
    """
    seq = list(items)
    if len(seq) <= 1 or in_serial_region():
        return _serial_map(fn, seq, on_progress)
    return get_executor(config).map(fn, seq, on_progress, label)


async def async_submit(
    fn: Callable[[T], R],
    item: T,
    config: RuntimeConfig | None = None,
    *,
    label: str = "",
) -> R:
    """Run one task on the configured executor without blocking the event loop.

    This is the asyncio bridge the scenario service builds on: thread and
    process configs reuse the same cached pools as :func:`parallel_map`
    (``loop.run_in_executor`` accepts a ``concurrent.futures`` pool directly),
    while a serial config runs the task on a transient thread
    (``asyncio.to_thread``) so a blocking build never stalls the loop.  The
    task runs inside :func:`~repro.runtime.config.serial_region` either way —
    nested parallelism stays structurally impossible.

    A worker death surfaces as :class:`~repro.errors.WorkerCrashError` naming
    *label*, and the broken pool is evicted so later submissions get a fresh
    one — same contract as :func:`parallel_map`.
    """
    executor = get_executor(config)
    if isinstance(executor, SerialExecutor):
        return await asyncio.to_thread(_guarded_call, fn, item)
    loop = asyncio.get_running_loop()
    try:
        return await loop.run_in_executor(executor._pool, _guarded_call, fn, item)
    except BrokenExecutor as exc:
        raise _crash_error(executor, exc, label=label, task_index=None, total=1) from exc


def choose_block_rows(
    n_rows: int,
    nnz: int,
    workers: int,
    requested: int | None = None,
) -> int:
    """Rows per block for an ``n_rows``-row operand with *nnz* stored entries.

    An explicit ``requested`` (``runtime.configure(block_rows=...)``) wins.
    Otherwise aim for :data:`BLOCKS_PER_WORKER` blocks per worker, then widen
    blocks until each carries at least :data:`MIN_NNZ_PER_BLOCK` entries on
    average — thin blocks spend their time in dispatch, not arithmetic.
    """
    if n_rows <= 0:
        return 1
    if requested is not None:
        return max(1, min(int(requested), n_rows))
    target_blocks = max(1, min(workers * BLOCKS_PER_WORKER, n_rows))
    block = -(-n_rows // target_blocks)  # ceil division
    if nnz > 0:
        rows_for_min_nnz = -(-MIN_NNZ_PER_BLOCK * n_rows // nnz)
        block = max(block, min(rows_for_min_nnz, n_rows))
    return max(1, min(block, n_rows))
