"""Shared-memory operand plane for the ``process`` backend (zero-copy reads).

The pickling process path copies every operand into every row-block task:
an ``mxm`` cut into 16 blocks ships 16 full pickles of ``B`` through the
executor queue.  This module replaces those copies with
:mod:`multiprocessing.shared_memory` segments: the dispatching process
exports each operand **once** (one memcpy into a segment), task payloads
carry only ``(segment names, dtype, shape, block range)``, and every worker
attaches to the same segment and reads its block zero-copy.  Results still
stream back per block and are assembled exactly as on the pickle path, so
the serial ≡ blocked bit-identity contract is untouched — the plane changes
how bytes travel, never what is computed.

Lifecycle is explicit and leak-proof:

* the parent side wraps every export in an :class:`OperandLease` — a small
  refcounted registry entry whose :meth:`~OperandLease.release` both
  ``close()``\\ s and ``unlink()``\\ s every segment, runs exactly once, and
  is guaranteed by ``with`` blocks at every kernel dispatch site (normal
  completion, raising tasks, and worker crashes all pass through the same
  ``finally``);
* :func:`release_all` sweeps any lease still live — it is wired into
  :func:`repro.runtime.executor.shutdown_executors` (pool teardown) and
  ``atexit``, so even an abandoned lease cannot outlive the process;
* workers keep a small per-process LRU of attachments
  (:data:`MAX_ATTACHED_SEGMENTS`), so the many block tasks of one kernel
  call — and consecutive calls in a batch — attach each segment once
  instead of once per task.  Attached arrays are marked read-only: a kernel
  scribbling on a shared operand raises instead of corrupting its siblings.

Only the dispatching side ever creates or unlinks; ownership is pinned to
the creating PID so a forked worker can never tear down its parent's
segments.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SharedMemoryError
from repro.obs import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.assoc.sparse import CSRMatrix

__all__ = [
    "SEGMENT_PREFIX",
    "MAX_ATTACHED_SEGMENTS",
    "ArrayRef",
    "CSRRef",
    "OperandLease",
    "csr_nbytes",
    "attach_array",
    "attach_csr",
    "detach_all",
    "live_segment_names",
    "release_all",
]

#: Every segment this plane creates is named ``repro-shm-<pid>-<seq>`` — the
#: prefix makes leak checks a directory listing (``/dev/shm/repro-shm-*``).
SEGMENT_PREFIX = "repro-shm"

#: Upper bound on cached worker-side attachments.  Eviction is LRU; one
#: kernel call references at most a handful of segments, so the cache spans
#: many consecutive calls before recycling a mapping.
MAX_ATTACHED_SEGMENTS = 64


def csr_nbytes(csr: "CSRMatrix") -> int:
    """Resident bytes of a CSR operand (the shm-threshold currency)."""
    return int(csr.indptr.nbytes + csr.indices.nbytes + csr.data.nbytes)


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to one ndarray living in a shared segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    nbytes: int


@dataclass(frozen=True)
class CSRRef:
    """A picklable handle to a full CSR matrix (three shared arrays)."""

    shape: tuple[int, int]
    indptr: ArrayRef
    indices: ArrayRef
    data: ArrayRef

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes


# ---------------------------------------------------------------------- #
# parent side: export + lease registry
# ---------------------------------------------------------------------- #

_registry_lock = threading.Lock()
_live_leases: "dict[int, OperandLease]" = {}
_segment_seq = 0


def _next_segment_name() -> str:
    global _segment_seq
    with _registry_lock:
        _segment_seq += 1
        return f"{SEGMENT_PREFIX}-{os.getpid()}-{_segment_seq}"


class OperandLease:
    """Parent-side owner of a set of exported segments.

    Use as a context manager around the executor fan-out::

        with OperandLease() as lease:
            a_ref = lease.export_csr(a)
            parts = executor.map(task, [(a_ref, r0, r1) for ...])
        # segments closed + unlinked here, success or not

    ``release()`` is idempotent and pinned to the creating process: a forked
    worker inheriting the object cannot unlink the parent's segments.
    """

    def __init__(self) -> None:
        self._owner_pid = os.getpid()
        self._segments: list[shared_memory.SharedMemory] = []
        self._released = False
        self._lock = threading.Lock()
        self._created_ns = _metrics.monotonic_ns()
        with _registry_lock:
            _live_leases[id(self)] = self

    # -- exports ------------------------------------------------------- #

    def export_array(self, arr: np.ndarray) -> ArrayRef:
        """Copy *arr* into a fresh segment and return its handle.

        The one copy here replaces a pickle copy **per task**; workers read
        the segment zero-copy.  Non-contiguous input is compacted first.
        """
        if self._released:
            raise SharedMemoryError("cannot export through a released lease")
        arr = np.ascontiguousarray(arr)
        nbytes = int(arr.nbytes)
        seg = self._create_segment(max(1, nbytes))
        if nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
        _metrics.counter("shm.bytes_exported").inc(nbytes)
        return ArrayRef(
            name=seg.name,
            shape=tuple(int(d) for d in arr.shape),
            dtype=arr.dtype.str,
            nbytes=nbytes,
        )

    def export_csr(self, csr: "CSRMatrix") -> CSRRef:
        """Export a CSR operand as three shared arrays."""
        return CSRRef(
            shape=(int(csr.shape[0]), int(csr.shape[1])),
            indptr=self.export_array(csr.indptr),
            indices=self.export_array(csr.indices),
            data=self.export_array(csr.data),
        )

    def _create_segment(self, size: int) -> shared_memory.SharedMemory:
        while True:
            name = _next_segment_name()
            try:
                seg = shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - stale name collision
                continue
            with self._lock:
                self._segments.append(seg)
            _metrics.counter("shm.segments_created").inc()
            _metrics.gauge("shm.live_segments").inc()
            return seg

    # -- lifecycle ------------------------------------------------------ #

    @property
    def released(self) -> bool:
        return self._released

    def segment_names(self) -> list[str]:
        with self._lock:
            return [seg.name for seg in self._segments]

    def release(self) -> None:
        """Close and unlink every segment; runs at most once, owner only."""
        with self._lock:
            if self._released:
                return
            self._released = True
            segments, self._segments = self._segments, []
        with _registry_lock:
            _live_leases.pop(id(self), None)
        if os.getpid() != self._owner_pid:
            # forked child inheriting the lease: the parent owns the names
            return
        for seg in segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - exported view still alive
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if segments:
            _metrics.counter("shm.segments_unlinked").inc(len(segments))
            _metrics.gauge("shm.live_segments").dec(len(segments))
            _metrics.histogram("shm.lease_ms").observe(
                (_metrics.monotonic_ns() - self._created_ns) / 1e6
            )

    def __enter__(self) -> "OperandLease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else f"{len(self._segments)} segment(s)"
        return f"OperandLease({state}, owner={self._owner_pid})"


def live_segment_names() -> list[str]:
    """Names of every segment still held by an unreleased lease of this
    process — the leak-check surface (empty after any well-behaved kernel)."""
    with _registry_lock:
        leases = [
            lease for lease in _live_leases.values() if lease._owner_pid == os.getpid()
        ]
    names: list[str] = []
    for lease in leases:
        names.extend(lease.segment_names())
    return names


def release_all() -> int:
    """Release every live lease owned by this process; returns segments freed.

    Wired into :func:`repro.runtime.executor.shutdown_executors` and
    ``atexit`` — the backstop that makes pool teardown (and interpreter exit)
    unlink anything a crashed caller abandoned.
    """
    with _registry_lock:
        leases = [
            lease for lease in _live_leases.values() if lease._owner_pid == os.getpid()
        ]
    freed = 0
    for lease in leases:
        freed += len(lease.segment_names())
        lease.release()
    return freed


atexit.register(release_all)


# ---------------------------------------------------------------------- #
# worker side: attach cache
# ---------------------------------------------------------------------- #

_attached: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_attach_lock = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    with _attach_lock:
        seg = _attached.get(name)
        if seg is not None:
            _attached.move_to_end(name)
            _metrics.counter("shm.attach_hits").inc()
            return seg
        _metrics.counter("shm.attach_misses").inc()
        # On CPython < 3.13 attaching ALSO registers the segment with the
        # multiprocessing resource tracker.  The exporting parent is the sole
        # owner (it registers on create and unregisters on unlink, both from
        # one process, so its ledger is always balanced) — a worker-side
        # registration can only corrupt that ledger: under a fork-shared
        # tracker an extra unregister makes the parent's unlink raise KeyError
        # in the tracker, and under a private per-worker tracker the stale
        # entry produces an ENOENT warning at shutdown.  Suppress the
        # registration at the source instead; ``_attach_lock`` is held, and
        # workers run tasks single-threaded, so the patch window is private.
        from multiprocessing import resource_tracker

        unpatched = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None  # type: ignore[assignment]
        try:
            seg = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError as exc:
            raise SharedMemoryError(
                f"shared segment {name!r} is gone (lease released early?)"
            ) from exc
        finally:
            resource_tracker.register = unpatched
        _attached[name] = seg
        while len(_attached) > MAX_ATTACHED_SEGMENTS:
            _, evicted = _attached.popitem(last=False)
            try:
                evicted.close()
            except BufferError:  # pragma: no cover - a view is still borrowed
                pass
        return seg


def attach_array(ref: ArrayRef) -> np.ndarray:
    """A read-only zero-copy view of the exported array *ref* names.

    Attachments are cached per process (LRU, :data:`MAX_ATTACHED_SEGMENTS`),
    so the block tasks of one kernel call — and consecutive calls in a batch
    — map each segment once.
    """
    seg = _attach_segment(ref.name)
    view: np.ndarray = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    view.flags.writeable = False
    return view


def attach_csr(ref: CSRRef) -> "CSRMatrix":
    """Reconstitute a :class:`~repro.assoc.sparse.CSRMatrix` over shared
    buffers (already-canonical arrays, so construction is trusted)."""
    from repro.assoc.sparse import CSRMatrix

    return CSRMatrix(
        ref.shape,
        attach_array(ref.indptr),
        attach_array(ref.indices),
        attach_array(ref.data),
        _trusted=True,
    )


def detach_all() -> int:
    """Close every cached attachment (worker teardown); returns the count."""
    with _attach_lock:
        segments = list(_attached.values())
        _attached.clear()
    closed = 0
    for seg in segments:
        try:
            seg.close()
            closed += 1
        except BufferError:  # pragma: no cover - a view is still borrowed
            pass
    return closed


atexit.register(detach_all)
