"""Environment detection for the runtime: cores, optional scipy, defaults.

Nothing here imports heavy modules at import time — scipy presence is probed
through ``importlib.util.find_spec`` so the engine configures itself correctly
on machines without it (the kernels are pure NumPy; scipy is only a
benchmarking baseline and interop target).
"""

from __future__ import annotations

import importlib.util
import os
from dataclasses import dataclass

__all__ = ["EnvironmentInfo", "cpu_count", "has_scipy", "detect", "recommended_workers"]

#: Cap on auto-detected workers: beyond this, per-block Python overhead
#: outweighs the extra cores for the matrix sizes this engine targets.
MAX_AUTO_WORKERS = 8


def cpu_count() -> int:
    """Usable CPU count (respects affinity masks where the OS exposes them)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def has_scipy() -> bool:
    """Whether ``scipy.sparse`` is importable (without importing it)."""
    try:
        return importlib.util.find_spec("scipy.sparse") is not None
    except (ImportError, ValueError):
        return False


def recommended_workers() -> int:
    """Default worker count for ``runtime.configure(workers=...)`` callers."""
    return max(1, min(cpu_count(), MAX_AUTO_WORKERS))


@dataclass(frozen=True)
class EnvironmentInfo:
    """One-call summary of what the host offers the engine."""

    cpu_count: int
    scipy_available: bool
    recommended_workers: int

    def describe(self) -> str:
        scipy = "scipy available" if self.scipy_available else "no scipy"
        return (
            f"{self.cpu_count} CPU(s), {scipy}, "
            f"recommended workers: {self.recommended_workers}"
        )


def detect() -> EnvironmentInfo:
    """Probe the host environment once and return the summary."""
    return EnvironmentInfo(
        cpu_count=cpu_count(),
        scipy_available=has_scipy(),
        recommended_workers=recommended_workers(),
    )
