"""Wavefront ``.obj`` export — the interchange format both tables require.

Table I's engine criterion "Can Import .obj" and Table II's "Can export to
.obj" meet here: every voxel asset exports as an OBJ mesh (one quad per
*visible* voxel face, hidden shared faces culled) plus a companion ``.mtl``
with one material per palette colour.  Vertices are deduplicated so meshes
load cleanly in any standard tool.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.voxel.model import VoxelModel

__all__ = ["to_obj", "write_obj"]

# Each face direction: (corner offsets of the quad, in CCW order seen from outside)
_FACE_CORNERS = {
    "+x": ((1, 0, 0), (1, 1, 0), (1, 1, 1), (1, 0, 1)),
    "-x": ((0, 0, 1), (0, 1, 1), (0, 1, 0), (0, 0, 0)),
    "+y": ((0, 1, 0), (0, 1, 1), (1, 1, 1), (1, 1, 0)),
    "-y": ((0, 0, 0), (1, 0, 0), (1, 0, 1), (0, 0, 1)),
    "+z": ((1, 0, 1), (1, 1, 1), (0, 1, 1), (0, 0, 1)),
    "-z": ((0, 0, 0), (0, 1, 0), (1, 1, 0), (1, 0, 0)),
}


def to_obj(model: VoxelModel, *, mtl_name: str | None = None) -> tuple[str, str]:
    """Render a voxel model to ``(obj_text, mtl_text)``.

    Faces are grouped by material (``usemtl color<i>``); vertices shared by
    multiple faces are emitted once.  Returns empty-geometry documents for an
    empty model rather than failing — an empty asset is a valid asset.
    """
    mtl_name = mtl_name or f"{model.name}.mtl"
    faces = model.exposed_faces()
    vert_index: dict[tuple[int, int, int], int] = {}
    vert_lines: list[str] = []
    by_material: dict[int, list[str]] = {}

    def vid(p: tuple[int, int, int]) -> int:
        if p not in vert_index:
            vert_index[p] = len(vert_index) + 1  # OBJ is 1-based
            vert_lines.append(f"v {p[0]} {p[1]} {p[2]}")
        return vert_index[p]

    for direction, mask in faces.items():
        xs, ys, zs = np.nonzero(mask)
        colors = model.grid[xs, ys, zs]
        corners = _FACE_CORNERS[direction]
        for x, y, z, c in zip(xs.tolist(), ys.tolist(), zs.tolist(), colors.tolist()):
            ids = [vid((x + dx, y + dy, z + dz)) for dx, dy, dz in corners]
            by_material.setdefault(int(c), []).append("f " + " ".join(map(str, ids)))

    obj_lines = [
        f"# {model.name}: voxel export, {model.count()} voxels",
        f"mtllib {mtl_name}",
        f"o {model.name}",
        *vert_lines,
    ]
    mtl_lines = [f"# materials for {model.name}"]
    for color in sorted(by_material):
        obj_lines.append(f"usemtl color{color}")
        obj_lines.extend(by_material[color])
        r, g, b = model.rgb(color)
        mtl_lines.append(f"newmtl color{color}")
        mtl_lines.append(f"Kd {r / 255:.4f} {g / 255:.4f} {b / 255:.4f}")
    return "\n".join(obj_lines) + "\n", "\n".join(mtl_lines) + "\n"


def write_obj(model: VoxelModel, path: str | Path) -> tuple[Path, Path]:
    """Write ``<path>`` and its sibling ``.mtl``; returns both paths."""
    path = Path(path)
    mtl_path = path.with_suffix(".mtl")
    obj_text, mtl_text = to_obj(model, mtl_name=mtl_path.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(obj_text, encoding="utf-8")
    mtl_path.write_text(mtl_text, encoding="utf-8")
    return path, mtl_path
