"""Procedural warehouse assets in MagicaVoxel's "simple yet appealing" style.

The paper's scene needs exactly the shapes a shipping warehouse metaphor
implies: wooden pallets, cardboard packet boxes, a concrete floor, and the
label stands along both axes.  Each asset is a small :class:`VoxelModel`
built deterministically, so exported ``.obj`` files are byte-stable.

Palette index map (see :data:`repro.voxel.model.DEFAULT_PALETTE`):
1 wood, 2 grey, 3 blue, 4 red, 5 black, 6 cardboard, 7 concrete, 8 white.
"""

from __future__ import annotations

from functools import lru_cache

from repro.voxel.model import VoxelModel

__all__ = [
    "make_pallet",
    "make_packet_box",
    "make_floor_tile",
    "make_label_stand",
    "asset",
    "ASSET_BUILDERS",
    "WOOD",
    "GREY",
    "BLUE",
    "RED",
    "BLACK",
    "CARDBOARD",
    "CONCRETE",
    "WHITE",
]

WOOD, GREY, BLUE, RED, BLACK, CARDBOARD, CONCRETE, WHITE = 1, 2, 3, 4, 5, 6, 7, 8


def make_pallet(*, color: int = WOOD) -> VoxelModel:
    """A classic two-layer shipping pallet: deck boards over three bearers.

    8×3×8 voxels.  ``color`` recolours the deck — the renderer uses this when
    a material override (grey/blue/red/black) is active on the pallet mesh.
    """
    m = VoxelModel((8, 3, 8), name="pallet")
    # three bearers along z
    for x0 in (0, 3, 6):
        m.fill_box((x0, 0, 0), (x0 + 1, 1, 7), color)
    # five deck boards along x, with one-voxel gaps
    for z0 in (0, 2, 4, 6):
        m.fill_box((0, 2, z0), (7, 2, min(z0 + 1, 7)), color)
    return m


def make_packet_box(*, size: int = 4, color: int = CARDBOARD) -> VoxelModel:
    """A packet: a cardboard cube with a black tape band across the top."""
    m = VoxelModel((size, size, size), name="packet_box")
    m.fill_box((0, 0, 0), (size - 1, size - 1, size - 1), color)
    mid = size // 2
    m.fill_box((mid - 1 if size > 2 else 0, size - 1, 0), (mid, size - 1, size - 1), BLACK)
    return m


def make_floor_tile(*, size: int = 10) -> VoxelModel:
    """One concrete floor tile with a grey edge line (the pallet-grid lines)."""
    m = VoxelModel((size, 1, size), name="floor_tile")
    m.fill_box((0, 0, 0), (size - 1, 0, size - 1), CONCRETE)
    for k in range(size):
        m.set(k, 0, 0, GREY)
        m.set(0, 0, k, GREY)
    return m


def make_label_stand(*, color: int = WHITE) -> VoxelModel:
    """An axis-label sign: a post with a white plate the Label3D text sits on."""
    m = VoxelModel((6, 8, 2), name="label_stand")
    m.fill_box((2, 0, 0), (3, 4, 0), GREY)       # post
    m.fill_box((0, 5, 0), (5, 7, 1), color)      # plate
    return m


#: Asset registry used by MeshInstance3D.mesh names.
ASSET_BUILDERS = {
    "pallet": make_pallet,
    "packet_box": make_packet_box,
    "floor_tile": make_floor_tile,
    "label_stand": make_label_stand,
}


@lru_cache(maxsize=64)
def _asset_cached(name: str, color: int | None) -> VoxelModel:
    builder = ASSET_BUILDERS[name]
    return builder(color=color) if color is not None else builder()


def asset(name: str, *, color: int | None = None) -> VoxelModel:
    """Fetch a built-in asset by mesh name, optionally recoloured.

    Models are cached; callers must treat them as immutable (copy before
    editing).  Unknown names raise ``KeyError`` with the available list.
    """
    if name not in ASSET_BUILDERS:
        raise KeyError(f"unknown asset {name!r}; available: {sorted(ASSET_BUILDERS)}")
    try:
        return _asset_cached(name, color)
    except TypeError:
        # builder without a color parameter (floor tile)
        return _asset_cached(name, None)
