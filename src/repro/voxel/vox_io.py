"""MagicaVoxel ``.vox`` file IO (the subset real assets round-trip through).

Implements the published VOX format: a ``VOX `` magic header, version int,
and a RIFF-style ``MAIN`` chunk containing ``SIZE`` (model dimensions),
``XYZI`` (voxel records ``x y z colorIndex``) and ``RGBA`` (256-entry
palette).  Files written here open in MagicaVoxel; single-model files saved
by MagicaVoxel load here.

Axis note: MagicaVoxel's z is up while the engine's y is up; the reader and
writer swap (y, z) so in-memory models keep the engine convention.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import VoxelError
from repro.voxel.model import DEFAULT_PALETTE, VoxelModel

__all__ = ["write_vox", "read_vox"]

_MAGIC = b"VOX "
_VERSION = 150


def _chunk(cid: bytes, content: bytes, children: bytes = b"") -> bytes:
    return cid + struct.pack("<ii", len(content), len(children)) + content + children


def write_vox(model: VoxelModel, path: str | Path) -> Path:
    """Write a single-model ``.vox`` file MagicaVoxel can open."""
    path = Path(path)
    xs, ys, zs, colors = model.filled()
    if xs.size > 0xFFFF_FFFF:  # pragma: no cover - format limit documentation
        raise VoxelError("too many voxels for the VOX format")
    if max(model.size) > 256:
        raise VoxelError(f"VOX models are limited to 256 per axis, got {model.size}")
    sx, sy, sz = model.size
    # engine (x, y-up, z) → vox (x, z-depth, y-up)
    size_content = struct.pack("<iii", sx, sz, sy)
    n = int(xs.size)
    xyzi = struct.pack("<i", n) + b"".join(
        struct.pack("<BBBB", int(x), int(z), int(y), int(c))
        for x, y, z, c in zip(xs.tolist(), ys.tolist(), zs.tolist(), colors.tolist())
    )
    palette = np.zeros((256, 4), dtype=np.uint8)
    palette[:, 3] = 255
    for i, (r, g, b) in enumerate(model.palette):
        palette[i] = (r, g, b, 255)
    rgba = palette.tobytes()
    children = _chunk(b"SIZE", size_content) + _chunk(b"XYZI", xyzi) + _chunk(b"RGBA", rgba)
    main = _chunk(b"MAIN", b"", children)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(_MAGIC + struct.pack("<i", _VERSION) + main)
    return path


def read_vox(path: str | Path) -> VoxelModel:
    """Read a single-model ``.vox`` file (SIZE + XYZI, optional RGBA)."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < 8 or data[:4] != _MAGIC:
        raise VoxelError(f"{path} is not a VOX file (bad magic)")
    pos = 8  # skip magic + version
    size: tuple[int, int, int] | None = None
    voxels: list[tuple[int, int, int, int]] = []
    palette: list[tuple[int, int, int]] | None = None

    def parse_chunks(start: int, end: int) -> None:
        nonlocal size, palette
        p = start
        while p + 12 <= end:
            cid = data[p : p + 4]
            content_len, children_len = struct.unpack_from("<ii", data, p + 4)
            content_start = p + 12
            content = data[content_start : content_start + content_len]
            if cid == b"SIZE":
                vx, vz, vy = struct.unpack("<iii", content[:12])
                size = (vx, vy, vz)  # vox (x, depth, up) → engine (x, up, depth)
            elif cid == b"XYZI":
                (n,) = struct.unpack_from("<i", content, 0)
                for k in range(n):
                    x, d, u, c = struct.unpack_from("<BBBB", content, 4 + 4 * k)
                    voxels.append((x, u, d, c))
            elif cid == b"RGBA":
                arr = np.frombuffer(content, dtype=np.uint8).reshape(-1, 4)
                palette = [tuple(int(v) for v in row[:3]) for row in arr]
            parse_chunks(content_start + content_len, content_start + content_len + children_len)
            p = content_start + content_len + children_len

    parse_chunks(pos, len(data))
    if size is None:
        raise VoxelError(f"{path} has no SIZE chunk")
    used = max((c for *_xyz, c in voxels), default=0)
    if palette is not None:
        pal = tuple(palette[: max(used, len(DEFAULT_PALETTE))])
    else:
        pal = DEFAULT_PALETTE
    model = VoxelModel(size, pal, name=path.stem)
    for x, y, z, c in voxels:
        if not (0 <= x < size[0] and 0 <= y < size[1] and 0 <= z < size[2]):
            raise VoxelError(f"voxel ({x}, {y}, {z}) outside model size {size}")
        model.set(x, y, z, c)
    return model
