"""Voxel asset substrate: models, procedural warehouse assets, VOX/OBJ IO."""

from repro.voxel.assets import (
    ASSET_BUILDERS,
    asset,
    make_floor_tile,
    make_label_stand,
    make_packet_box,
    make_pallet,
)
from repro.voxel.model import DEFAULT_PALETTE, VoxelModel
from repro.voxel.obj_export import to_obj, write_obj
from repro.voxel.vox_io import read_vox, write_vox

__all__ = [
    "VoxelModel",
    "DEFAULT_PALETTE",
    "asset",
    "ASSET_BUILDERS",
    "make_pallet",
    "make_packet_box",
    "make_floor_tile",
    "make_label_stand",
    "to_obj",
    "write_obj",
    "read_vox",
    "write_vox",
]
