"""Voxel models: the LEGO-like building blocks of all game assets.

MagicaVoxel's model is a dense grid of palette indices (0 = empty, 1-255
colours).  :class:`VoxelModel` reproduces exactly that, NumPy-backed so face
extraction and projection stay vectorized.  Axis convention matches the
engine: x right, y up, z toward the viewer.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import VoxelError

__all__ = ["VoxelModel", "DEFAULT_PALETTE"]

#: Palette used by all built-in assets: index → (r, g, b).  Index 0 is empty
#: and has no entry; indices here start at 1.
DEFAULT_PALETTE: tuple[tuple[int, int, int], ...] = (
    (168, 125, 75),   # 1 wood (pallet default)
    (128, 128, 128),  # 2 grey
    (58, 112, 224),   # 3 blue
    (224, 64, 56),    # 4 red
    (24, 24, 24),     # 5 black
    (208, 176, 120),  # 6 cardboard (packet boxes)
    (90, 90, 98),     # 7 concrete (floor)
    (240, 240, 240),  # 8 white (label text / signs)
    (255, 200, 40),   # 9 hazard yellow
    (40, 160, 90),    # 10 green
)


class VoxelModel:
    """A ``(sx, sy, sz)`` grid of palette indices with a shared RGB palette."""

    __slots__ = ("grid", "palette", "name")

    def __init__(
        self,
        size: tuple[int, int, int],
        palette: Sequence[tuple[int, int, int]] = DEFAULT_PALETTE,
        name: str = "model",
    ) -> None:
        sx, sy, sz = size
        if min(sx, sy, sz) < 1:
            raise VoxelError(f"voxel model dimensions must be positive, got {size}")
        if len(palette) > 255:
            raise VoxelError(f"palette may hold at most 255 colours, got {len(palette)}")
        self.grid = np.zeros((sx, sy, sz), dtype=np.uint8)
        self.palette = tuple((int(r), int(g), int(b)) for r, g, b in palette)
        self.name = name

    # ------------------------------------------------------------------ #
    # basic access
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> tuple[int, int, int]:
        return self.grid.shape  # type: ignore[return-value]

    def _check_color(self, color: int) -> int:
        color = int(color)
        if color < 0 or color > len(self.palette):
            raise VoxelError(
                f"colour index {color} outside palette (0..{len(self.palette)})"
            )
        return color

    def set(self, x: int, y: int, z: int, color: int) -> None:
        """Place (or clear, with colour 0) a single voxel."""
        self.grid[x, y, z] = self._check_color(color)

    def get(self, x: int, y: int, z: int) -> int:
        return int(self.grid[x, y, z])

    def fill_box(
        self,
        start: tuple[int, int, int],
        end: tuple[int, int, int],
        color: int,
    ) -> None:
        """Fill the inclusive box ``start..end`` with one colour."""
        color = self._check_color(color)
        (x0, y0, z0), (x1, y1, z1) = start, end
        if not (x0 <= x1 and y0 <= y1 and z0 <= z1):
            raise VoxelError(f"box corners must be ordered, got {start}..{end}")
        self.grid[x0 : x1 + 1, y0 : y1 + 1, z0 : z1 + 1] = color

    def hollow_box(
        self,
        start: tuple[int, int, int],
        end: tuple[int, int, int],
        color: int,
    ) -> None:
        """A box shell: filled box minus its interior."""
        self.fill_box(start, end, color)
        (x0, y0, z0), (x1, y1, z1) = start, end
        if x1 - x0 >= 2 and y1 - y0 >= 2 and z1 - z0 >= 2:
            self.grid[x0 + 1 : x1, y0 + 1 : y1, z0 + 1 : z1] = 0

    def count(self) -> int:
        """Number of filled voxels."""
        return int(np.count_nonzero(self.grid))

    def is_empty(self) -> bool:
        return self.count() == 0

    def filled(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(xs, ys, zs, colors)`` arrays of every filled voxel."""
        xs, ys, zs = np.nonzero(self.grid)
        return xs, ys, zs, self.grid[xs, ys, zs]

    def iter_voxels(self) -> Iterator[tuple[int, int, int, int]]:
        xs, ys, zs, cs = self.filled()
        for x, y, z, c in zip(xs.tolist(), ys.tolist(), zs.tolist(), cs.tolist()):
            yield x, y, z, c

    def bounds(self) -> tuple[tuple[int, int, int], tuple[int, int, int]] | None:
        """Tight inclusive bounding box of filled voxels, or None when empty."""
        xs, ys, zs, _ = self.filled()
        if xs.size == 0:
            return None
        return (
            (int(xs.min()), int(ys.min()), int(zs.min())),
            (int(xs.max()), int(ys.max()), int(zs.max())),
        )

    def rgb(self, color: int) -> tuple[int, int, int]:
        """Palette lookup (1-based; 0 raises — empty has no colour)."""
        if color < 1 or color > len(self.palette):
            raise VoxelError(f"no palette entry for colour index {color}")
        return self.palette[color - 1]

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #

    def copy(self) -> "VoxelModel":
        out = VoxelModel(self.size, self.palette, self.name)
        out.grid = self.grid.copy()
        return out

    def mirrored_x(self) -> "VoxelModel":
        out = self.copy()
        out.grid = out.grid[::-1, :, :].copy()
        return out

    def rotated_y90(self) -> "VoxelModel":
        """Quarter turn about the vertical axis (x, z) → (z, sx-1-x)."""
        out = VoxelModel((self.size[2], self.size[1], self.size[0]), self.palette, self.name)
        out.grid = np.transpose(self.grid, (2, 1, 0))[:, :, ::-1].copy()
        return out

    def exposed_faces(self) -> dict[str, np.ndarray]:
        """Boolean masks of faces not hidden by a neighbouring voxel.

        Keys ``+x -x +y -y +z -z`` map to masks over the full grid; a True
        cell means that voxel's face in that direction is visible.  Used by
        the OBJ exporter (face culling) and by the renderer.
        """
        solid = self.grid != 0
        out: dict[str, np.ndarray] = {}
        pad = np.zeros_like(solid)

        def shifted(axis: int, direction: int) -> np.ndarray:
            res = pad.copy()
            src = [slice(None)] * 3
            dst = [slice(None)] * 3
            if direction > 0:
                src[axis] = slice(1, None)
                dst[axis] = slice(None, -1)
            else:
                src[axis] = slice(None, -1)
                dst[axis] = slice(1, None)
            res[tuple(dst)] = solid[tuple(src)]
            return res

        out["+x"] = solid & ~shifted(0, 1)
        out["-x"] = solid & ~shifted(0, -1)
        out["+y"] = solid & ~shifted(1, 1)
        out["-y"] = solid & ~shifted(1, -1)
        out["+z"] = solid & ~shifted(2, 1)
        out["-z"] = solid & ~shifted(2, -1)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VoxelModel):
            return NotImplemented
        return (
            self.size == other.size
            and self.palette == other.palette
            and np.array_equal(self.grid, other.grid)
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"VoxelModel({self.name!r}, size={self.size}, voxels={self.count()})"
