"""Validation of learning-module JSON documents.

The paper's format is deliberately simple — "JSON is a plaintext file so the
template can be edited with a simple text editor... any security review can be
accomplished quickly" — which means hand-edited files arrive with hand-made
mistakes.  Every check here produces a :class:`~repro.errors.ModuleSchemaError`
carrying a JSON-path, so an educator can find the broken line without reading
the game's source.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

import numpy as np

from repro.core.labels import validate_labels
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import LabelError, ModuleSchemaError, ReproError
from repro.modules.module import LearningModule, Question

__all__ = [
    "validate_module_dict",
    "REQUIRED_FIELDS",
    "KNOWN_FIELDS",
    "SIZE_RE",
]

#: Fields every module JSON must carry.
REQUIRED_FIELDS = ("name", "size", "author", "axis_labels", "traffic_matrix")

#: Fields this version understands; anything else is preserved in ``extra``.
KNOWN_FIELDS = REQUIRED_FIELDS + (
    "traffic_matrix_colors",
    "color_mode",
    "has_question",
    "question",
    "answers",
    "correct_answer_element",
    "correct_answer_hash",
    "hint",
)

SIZE_RE = re.compile(r"^(\d+)x(\d+)$")


def _expect(condition: bool, message: str, path: str) -> None:
    if not condition:
        raise ModuleSchemaError(message, path=path)


def _int_grid(raw: Any, n: int, path: str) -> np.ndarray:
    """Parse a list-of-lists grid field, with row/cell-level error paths."""
    _expect(isinstance(raw, list), f"must be a list of {n} rows, got {type(raw).__name__}", path)
    _expect(len(raw) == n, f"must have {n} rows, got {len(raw)}", path)
    grid = np.zeros((n, n), dtype=np.int64)
    for i, row in enumerate(raw):
        row_path = f"{path}[{i}]"
        _expect(isinstance(row, list), f"row must be a list, got {type(row).__name__}", row_path)
        _expect(len(row) == n, f"row must have {n} entries, got {len(row)}", row_path)
        for j, cell in enumerate(row):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                raise ModuleSchemaError(
                    f"cell must be a number, got {cell!r}", path=f"{row_path}[{j}]"
                )
            if isinstance(cell, float) and (cell != int(cell) if abs(cell) < 2**53 else True):
                raise ModuleSchemaError(
                    f"cell must be an integer, got {cell!r}", path=f"{row_path}[{j}]"
                )
            value = int(cell)
            if not -(2**31) <= value <= 2**31:
                # packet/colour codes this large are data corruption, and would
                # overflow the int64 grid anyway
                raise ModuleSchemaError(
                    f"cell value {cell!r} is out of the supported range",
                    path=f"{row_path}[{j}]",
                )
            grid[i, j] = value
    return grid


def validate_module_dict(
    doc: Mapping[str, Any],
    *,
    require_three_answers: bool = True,
) -> LearningModule:
    """Validate a raw JSON document and build the :class:`LearningModule`.

    ``require_three_answers`` enforces the paper's deliberate three-option
    design; pass ``False`` to accept experimental modules with 2 or 4+
    options (the assessment-quality trade-off is then the educator's call).
    """
    _expect(isinstance(doc, Mapping), f"module must be a JSON object, got {type(doc).__name__}", "$")
    for fld in REQUIRED_FIELDS:
        _expect(fld in doc, f"missing required field {fld!r}", "$")

    name = doc["name"]
    _expect(isinstance(name, str) and name.strip() != "", "name must be a non-empty string", "$.name")
    author = doc["author"]
    _expect(isinstance(author, str) and author.strip() != "", "author must be a non-empty string", "$.author")

    size_raw = doc["size"]
    _expect(isinstance(size_raw, str), f"size must be a string like '10x10', got {type(size_raw).__name__}", "$.size")
    m = SIZE_RE.match(size_raw)
    _expect(m is not None, f"size must look like '10x10', got {size_raw!r}", "$.size")
    assert m is not None
    rows, cols = int(m.group(1)), int(m.group(2))
    _expect(rows == cols, f"traffic matrices are square; got size {size_raw!r}", "$.size")
    _expect(rows >= 1, "matrix size must be at least 1x1", "$.size")
    n = rows

    labels_raw = doc["axis_labels"]
    _expect(isinstance(labels_raw, list), "axis_labels must be a list", "$.axis_labels")
    try:
        labels = validate_labels(labels_raw, size=n)
    except LabelError as exc:
        raise ModuleSchemaError(str(exc), path="$.axis_labels") from None

    packets = _int_grid(doc["traffic_matrix"], n, "$.traffic_matrix")
    _expect(bool((packets >= 0).all()), "packet counts must be non-negative", "$.traffic_matrix")

    color_mode = doc.get("color_mode", "standard")
    _expect(
        color_mode in ("standard", "extended"),
        f"color_mode must be 'standard' or 'extended', got {color_mode!r}",
        "$.color_mode",
    )
    extended = color_mode == "extended"
    allowed_codes = (0, 1, 2, 3, 4) if extended else (0, 1, 2)

    colors = None
    if "traffic_matrix_colors" in doc and doc["traffic_matrix_colors"] is not None:
        colors = _int_grid(doc["traffic_matrix_colors"], n, "$.traffic_matrix_colors")
        bad = ~np.isin(colors, allowed_codes)
        if bad.any():
            i, j = np.argwhere(bad)[0]
            extra_hint = "" if extended else " (use \"color_mode\": \"extended\" for codes 3-4)"
            raise ModuleSchemaError(
                f"colour code {int(colors[i, j])} is not in {list(allowed_codes)}{extra_hint}",
                path=f"$.traffic_matrix_colors[{int(i)}][{int(j)}]",
            )

    try:
        matrix = TrafficMatrix(packets, labels, colors, extended_colors=extended)
    except ReproError as exc:  # belt and braces: construction re-checks invariants
        raise ModuleSchemaError(str(exc), path="$") from None

    has_question = doc.get("has_question", False)
    _expect(isinstance(has_question, bool), "has_question must be true or false", "$.has_question")

    question: Question | None = None
    if has_question:
        _expect("question" in doc, "has_question is true but 'question' is missing", "$")
        _expect("answers" in doc, "has_question is true but 'answers' is missing", "$")
        qtext = doc["question"]
        _expect(isinstance(qtext, str) and qtext.strip() != "", "question must be a non-empty string", "$.question")
        answers_raw = doc["answers"]
        _expect(isinstance(answers_raw, list), "answers must be a list", "$.answers")
        _expect(
            all(isinstance(a, str) for a in answers_raw),
            "answers must all be strings",
            "$.answers",
        )
        if require_three_answers:
            _expect(
                len(answers_raw) == 3,
                f"modules use exactly 3 answers (got {len(answers_raw)}); "
                "pass require_three_answers=False to allow others",
                "$.answers",
            )
        _expect(
            len(set(answers_raw)) == len(answers_raw),
            "answers must be distinct",
            "$.answers",
        )
        element = doc.get("correct_answer_element")
        answer_hash = doc.get("correct_answer_hash")
        _expect(
            (element is None) != (answer_hash is None),
            "exactly one of correct_answer_element / correct_answer_hash is required",
            "$.correct_answer_element",
        )
        if element is not None:
            _expect(
                isinstance(element, int) and not isinstance(element, bool),
                f"correct_answer_element must be an integer, got {element!r}",
                "$.correct_answer_element",
            )
            _expect(
                0 <= element < len(answers_raw),
                f"correct_answer_element {element} out of range for {len(answers_raw)} answers",
                "$.correct_answer_element",
            )
        else:
            _expect(
                isinstance(answer_hash, str) and re.fullmatch(r"[0-9a-f]{64}", answer_hash) is not None,
                "correct_answer_hash must be a 64-hex-digit SHA-256 string",
                "$.correct_answer_hash",
            )
        hint = doc.get("hint")
        if hint is not None:
            _expect(isinstance(hint, str), "hint must be a string", "$.hint")
        question = Question(
            text=qtext,
            answers=tuple(answers_raw),
            correct_answer_element=element,
            correct_answer_hash=answer_hash,
            hint=hint,
        )
    else:
        for fld in ("question", "answers", "correct_answer_element"):
            # tolerated but ignored, matching the game's toggle semantics
            pass

    extra = {k: v for k, v in doc.items() if k not in KNOWN_FIELDS}
    return LearningModule(
        name=name.strip(), author=author.strip(), matrix=matrix, question=question, extra=extra
    )
