"""The extensible JSON learning-module system (paper Section II)."""

from repro.modules.builder import ModuleBuilder, pattern_question
from repro.modules.curriculum import (
    Curriculum,
    Unit,
    load_curriculum_bundle,
    save_curriculum_bundle,
)
from repro.modules.library import (
    builtin_catalog,
    catalog_families,
    extended_catalog,
    family_modules,
)
from repro.modules.loader import (
    bundle_names,
    load_bundle,
    load_module,
    loads_module,
    save_bundle,
    save_module,
)
from repro.modules.module import (
    STANDARD_ANSWER_COUNT,
    STANDARD_QUESTION,
    LearningModule,
    Question,
)
from repro.modules.obfuscate import (
    deobfuscate_module,
    hash_answer,
    obfuscate_module,
    obfuscate_question,
    verify_answer,
)
from repro.modules.schema import validate_module_dict
from repro.modules.templates import (
    template_6x6,
    template_6x6_dict,
    template_10x10,
    template_10x10_dict,
)

__all__ = [
    "LearningModule",
    "Question",
    "STANDARD_QUESTION",
    "STANDARD_ANSWER_COUNT",
    "validate_module_dict",
    "ModuleBuilder",
    "pattern_question",
    "load_module",
    "loads_module",
    "save_module",
    "load_bundle",
    "save_bundle",
    "bundle_names",
    "builtin_catalog",
    "extended_catalog",
    "catalog_families",
    "family_modules",
    "Curriculum",
    "Unit",
    "save_curriculum_bundle",
    "load_curriculum_bundle",
    "template_6x6",
    "template_10x10",
    "template_6x6_dict",
    "template_10x10_dict",
    "hash_answer",
    "obfuscate_module",
    "obfuscate_question",
    "deobfuscate_module",
    "verify_answer",
]
