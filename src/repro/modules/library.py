"""The built-in learning-module catalogue.

"Using this facility an initial set of modules were rapidly created covering:
basic traffic matrices, traffic patterns, security/defense/deterrence, a
notional cyber attack, a distributed denial-of-service (DDoS) attack, and a
variety of graph theory concepts."

Every module here is generated from :mod:`repro.graphs`, carries the standard
three-choice question with in-family distractors, and cites the same external
hints the paper's figures do.  The catalogue is keyed ``"family/name"`` and
ordered the way the paper presents the material (Figs. 5–10).
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Callable, Mapping

import importlib

from repro.core.traffic_matrix import TrafficMatrix
from repro.graphs.compose import challenge
from repro.modules.builder import ModuleBuilder, pattern_question
from repro.modules.module import LearningModule, STANDARD_QUESTION
from repro.modules.templates import template_6x6, template_10x10
from repro.scenarios import ScenarioSpec, ensure_registered
from repro.scenarios.registry import REGISTRY_ALIASES, SCENARIO_REGISTRY

# ``repro.graphs`` re-exports a ``defense`` *function* that shadows the
# submodule on any attribute-based import; go through importlib for all the
# generator modules so they stay consistent with each other.
attack = importlib.import_module("repro.graphs.attack")
ddos = importlib.import_module("repro.graphs.ddos")
defense = importlib.import_module("repro.graphs.defense")
patterns = importlib.import_module("repro.graphs.patterns")
topologies = importlib.import_module("repro.graphs.topologies")

__all__ = [
    "builtin_catalog",
    "catalog_families",
    "family_modules",
    "HINT_SCALING",
    "HINT_ZERO_BOTNETS",
    "HINT_TEDX",
]

#: Ref [50]: the traffic-topology figures point at the scaling-relations paper.
HINT_SCALING = (
    "See: Kepner et al., 'Multi-temporal analysis and scaling relations of "
    "100,000,000,000 network packets', IEEE HPEC 2020."
)

#: Ref [52]: attack/defense figures point at the observe-pursue-counter report.
HINT_ZERO_BOTNETS = (
    "See: Kepner et al., 'Zero Botnets: An Observe-Pursue-Counter Approach', "
    "Belfer Center Reports, June 2021."
)

#: Ref [51]: the TEDx talk hint used alongside the Belfer report.
HINT_TEDX = (
    "See: Kepner, 'Beyond Zero Botnets: Web3 Enabled Observe-Pursue-Counter "
    "Approach', TEDxBoston, June 2022."
)

_AUTHOR = "Traffic Warehouse"


def _display_names() -> dict[str, str]:
    """Human-readable answer strings per generator name, from the registry.

    Catalogue aliases (``defense`` → ``defense_pattern``) appear under both
    names; the alias table lives in :mod:`repro.scenarios.registry`.
    """
    ensure_registered()
    names = {info.name: info.display for info in SCENARIO_REGISTRY.values()}
    for catalog_name, registry_name in REGISTRY_ALIASES.items():
        names[catalog_name] = names[registry_name]
    return names


#: Human-readable answer strings per generator name (registry-derived; kept
#: as a module attribute for backwards compatibility).
DISPLAY_NAMES: Mapping[str, str] = _display_names()


def _display_title(name: str) -> str:
    """The registry display string for *name* (the default module title)."""
    return DISPLAY_NAMES[name]


def _family(
    family: str,
    generators: Mapping[str, Callable[..., TrafficMatrix]],
    hint: str | None,
    title: Callable[[str], str] = _display_title,
) -> dict[str, LearningModule]:
    """Build one catalogue family through the declarative scenario API.

    ``generators`` supplies the catalogue names and ordering (the per-figure
    registries the paper presents); each matrix is realised from a
    :class:`~repro.scenarios.ScenarioSpec`, so every built-in module carries
    provenance and could be regenerated from its JSON recipe alone.
    """
    names = tuple(generators)
    out: dict[str, LearningModule] = {}
    for name in generators:
        spec = ScenarioSpec(base=REGISTRY_ALIASES.get(name, name), n=10)
        module = (
            ModuleBuilder(title(name))
            .author(_AUTHOR)
            .scenario(spec)
            .build()
        )
        question = pattern_question(name, names, dict(DISPLAY_NAMES), hint=hint)
        out[f"{family}/{name}"] = replace(module, question=question)
    return out


def _training_module() -> LearningModule:
    """The built-in training level's lesson content (Fig. 5).

    The training level "walks the player through what a traffic matrix is,
    how to read one... and how it will be represented in the game" — its
    matrix is the 10×10 template and its question is the template's
    read-one-cell exercise.
    """
    tpl = template_10x10()
    return replace(tpl, name="Training: Reading a Traffic Matrix", author=_AUTHOR)


def _challenge_modules() -> dict[str, LearningModule]:
    """Combined-stages and pattern-in-noise exercises the paper proposes."""
    out: dict[str, LearningModule] = {}

    full_attack = attack.full_attack(10)
    out["challenge/full_attack"] = (
        ModuleBuilder("Challenge: Full Attack Campaign")
        .author(_AUTHOR)
        .matrix(full_attack)
        .question(
            "All four attack stages are shown together. Which stage placed the "
            "traffic inside blue space?",
            answers=["Lateral movement", "Planning", "Staging"],
            correct=0,
            hint=HINT_ZERO_BOTNETS,
        )
        .build()
    )

    full_ddos = ddos.full_ddos(10)
    out["challenge/full_ddos"] = (
        ModuleBuilder("Challenge: Full DDoS")
        .author(_AUTHOR)
        .matrix(full_ddos)
        .question(
            "All DDoS components are shown together. Which component do the "
            "heaviest cells belong to?",
            answers=["DDoS attack", "Backscatter", "Command and control (C2)"],
            correct=0,
            hint=HINT_ZERO_BOTNETS,
        )
        .build()
    )

    noisy = challenge(topologies.external_supernode(10), noise_density=0.12, seed=7)
    out["challenge/supernode_in_noise"] = (
        ModuleBuilder("Challenge: Find the Supernode")
        .author(_AUTHOR)
        .matrix(noisy)
        .question(
            STANDARD_QUESTION,
            answers=["External supernode", "Isolated links", "Ring"],
            correct=0,
            hint=HINT_SCALING,
        )
        .build()
    )

    noisy_attack = challenge(attack.infiltration(10), noise_density=0.10, seed=11)
    out["challenge/infiltration_in_noise"] = (
        ModuleBuilder("Challenge: Infiltration in Background Traffic")
        .author(_AUTHOR)
        .matrix(noisy_attack)
        .question(
            "Background noise has been added. Which attack stage is hidden in "
            "this traffic?",
            answers=["Infiltration", "Planning", "Lateral movement"],
            correct=0,
            hint=HINT_ZERO_BOTNETS,
        )
        .build()
    )
    return out


@lru_cache(maxsize=1)
def _catalog() -> dict[str, LearningModule]:
    cat: dict[str, LearningModule] = {}
    cat["training/training"] = _training_module()
    cat["templates/6x6"] = template_6x6()
    cat["templates/10x10"] = template_10x10()
    cat.update(_family("topologies", topologies.TOPOLOGY_GENERATORS, HINT_SCALING))
    cat.update(_family("attack", attack.ATTACK_STAGES, HINT_ZERO_BOTNETS))
    cat.update(_family("defense", defense.DEFENSE_CONCEPTS, HINT_TEDX))
    cat.update(_family("ddos", ddos.DDOS_COMPONENTS, HINT_ZERO_BOTNETS))
    cat.update(_family("graph_theory", patterns.PATTERN_GENERATORS, None))
    cat.update(_challenge_modules())
    return cat


def _firewall_modules() -> dict[str, LearningModule]:
    """Firewall-configuration lessons (a paper future-work concept).

    Kept out of :func:`builtin_catalog` — they extend the paper's shipped
    content rather than reproduce it — and exposed via
    :func:`extended_catalog`.
    """
    from repro.graphs import ddos as ddos_mod
    from repro.graphs import firewall
    from repro.graphs.compose import overlay

    out: dict[str, LearningModule] = {}
    policy = firewall.default_policy()

    out["firewall/policy"] = (
        ModuleBuilder("Firewall: The Policy")
        .author(_AUTHOR)
        .matrix(policy.as_matrix())
        .question(
            "Blue cells are allowed flows, red cells are denied. Which space "
            "does the policy block entirely?",
            answers=["Adversary (red) space", "Blue space", "Grey space"],
            correct=0,
        )
        .build()
    )

    traffic = overlay(
        [
            defense.security(10),
            ddos_mod.ddos_attack(10),
        ]
    )
    viols = firewall.violations(traffic, policy)
    distract1 = str(len(viols) + 2)
    distract2 = str(max(0, len(viols) - 3))
    out["firewall/spot_violations"] = (
        ModuleBuilder("Firewall: Spot the Violations")
        .author(_AUTHOR)
        .matrix(firewall.violating_traffic(traffic, policy) + firewall.compliant_traffic(traffic, policy))
        .question(
            "How many source/destination flows violate the default perimeter "
            "policy?",
            answers=[str(len(viols)), distract1, distract2],
            correct=0,
        )
        .build()
    )

    out["firewall/clean_traffic"] = (
        ModuleBuilder("Firewall: Compliant Traffic")
        .author(_AUTHOR)
        .matrix(firewall.compliant_traffic(defense.security(10), policy))
        .question(
            "Every displayed flow passes the firewall. Which concept is this "
            "traffic most relevant to?",
            answers=["Security (walls-in)", "DDoS attack", "Planning"],
            correct=0,
            hint=HINT_ZERO_BOTNETS,
        )
        .build()
    )
    return out


def extended_catalog() -> dict[str, LearningModule]:
    """The built-in catalogue plus the future-work families (firewall)."""
    cat = builtin_catalog()
    cat.update(_firewall_modules())
    return cat


def builtin_catalog() -> dict[str, LearningModule]:
    """A fresh copy of the full catalogue, keyed ``"family/name"``.

    The returned dict is a copy, so callers may mutate it (e.g. drop
    questions for a discussion session) without affecting other callers.
    """
    return dict(_catalog())


def catalog_families() -> list[str]:
    """Family names in presentation order."""
    seen: list[str] = []
    for key in _catalog():
        fam = key.split("/", 1)[0]
        if fam not in seen:
            seen.append(fam)
    return seen


def family_modules(family: str) -> list[LearningModule]:
    """All modules of one family, in catalogue order."""
    return [m for key, m in _catalog().items() if key.split("/", 1)[0] == family]
