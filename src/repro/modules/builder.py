"""Fluent construction of learning modules.

The JSON format is the educator interface; :class:`ModuleBuilder` is the
*programmer* interface — the paper's module catalogue, the challenge
generators, and the classroom examples all assemble modules through it, then
serialise with :func:`repro.modules.loader.save_module` /
:func:`~repro.modules.loader.save_bundle`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ModuleSchemaError
from repro.modules.module import STANDARD_QUESTION, LearningModule, Question

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios import ScenarioBuilder, ScenarioSpec

__all__ = ["ModuleBuilder", "pattern_question", "scenario_module"]


class ModuleBuilder:
    """Step-by-step module assembly with validation at :meth:`build` time.

    Example::

        module = (
            ModuleBuilder("Star Pattern")
            .author("Ada Lovelace")
            .matrix(star(10))
            .question(
                "Which choice is the displayed traffic pattern most relevant to?",
                answers=["Star", "Ring", "Clique"],
                correct=0,
            )
            .hint("See Kepner et al., HPEC 2020")
            .build()
        )
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._author = "Traffic Warehouse"
        self._matrix: TrafficMatrix | None = None
        self._question: Question | None = None
        self._hint: str | None = None
        self._extra: dict[str, Any] = {}

    def author(self, author: str) -> "ModuleBuilder":
        """Set the ``author`` field."""
        self._author = author
        return self

    def matrix(self, matrix: TrafficMatrix) -> "ModuleBuilder":
        """Attach the traffic matrix (labels and colours come with it)."""
        self._matrix = matrix
        return self

    def grid(
        self,
        traffic_matrix: Sequence[Sequence[int]],
        axis_labels: Sequence[str] | None = None,
        traffic_matrix_colors: Sequence[Sequence[int]] | None = None,
    ) -> "ModuleBuilder":
        """Attach raw JSON-style grids instead of a built matrix."""
        self._matrix = TrafficMatrix(np.asarray(traffic_matrix), axis_labels, traffic_matrix_colors)
        return self

    def scenario(self, spec: "ScenarioSpec | ScenarioBuilder") -> "ModuleBuilder":
        """Attach a matrix built from a declarative scenario spec.

        Accepts a :class:`~repro.scenarios.ScenarioSpec` or a
        :class:`~repro.scenarios.ScenarioBuilder`; the realised matrix
        carries the spec as provenance, and the spec document is also stored
        in the module's forward-compatible ``extra`` fields so a saved module
        records exactly how its matrix was generated.
        """
        if hasattr(spec, "spec"):  # a ScenarioBuilder
            spec = spec.spec()
        self._matrix = spec.build()
        self._extra["scenario"] = spec.to_dict()
        return self

    def question(
        self,
        text: str,
        *,
        answers: Sequence[str],
        correct: int,
        hint: str | None = None,
    ) -> "ModuleBuilder":
        """Attach a multiple-choice question (``correct`` indexes *answers*)."""
        self._question = Question(
            text=text,
            answers=tuple(answers),
            correct_answer_element=correct,
            hint=hint if hint is not None else self._hint,
        )
        return self

    def no_question(self) -> "ModuleBuilder":
        """Explicitly make a discussion module (question toggled off)."""
        self._question = None
        return self

    def hint(self, hint: str) -> "ModuleBuilder":
        """Hint shown with the question ("directs the student to an external resource")."""
        self._hint = hint
        if self._question is not None and self._question.hint is None:
            self._question = Question(
                text=self._question.text,
                answers=self._question.answers,
                correct_answer_element=self._question.correct_answer_element,
                correct_answer_hash=self._question.correct_answer_hash,
                hint=hint,
            )
        return self

    def extra(self, **fields: Any) -> "ModuleBuilder":
        """Attach forward-compatible extra JSON fields (preserved verbatim)."""
        self._extra.update(fields)
        return self

    def build(self) -> LearningModule:
        """Validate and produce the module."""
        if self._matrix is None:
            raise ModuleSchemaError("a module needs a traffic matrix", path="$.traffic_matrix")
        return LearningModule(
            name=self._name,
            author=self._author,
            matrix=self._matrix,
            question=self._question,
            extra=dict(self._extra),
        )


def pattern_question(
    correct_name: str,
    family_names: Sequence[str] | None = None,
    display: dict[str, str] | None = None,
    *,
    hint: str | None = None,
) -> Question:
    """The standard "most relevant to?" question with in-family distractors.

    Distractors are the two family members following the correct one in
    catalogue order (cyclically), so every module's options are deterministic
    — reproducible bundles without an RNG — while staying plausible because
    they come from the same lesson family.

    With only ``correct_name`` given, the answer family and display strings
    come from the scenario registry (:mod:`repro.scenarios`): the family is
    every non-composite generator registered under the same family name.
    Explicit ``family_names`` / ``display`` still override, so bespoke answer
    sets keep working.
    """
    if family_names is None or display is None:
        from repro.scenarios import get_generator, scenario_names

        info = get_generator(correct_name)
        if family_names is None:
            family_names = [
                name
                for name in scenario_names(family=info.family)
                if "composite" not in get_generator(name).tags
            ]
        if display is None:
            display = {
                name: get_generator(name).display for name in (*family_names, correct_name)
            }
    if correct_name not in family_names:
        raise ModuleSchemaError(
            f"{correct_name!r} is not in the answer family {list(family_names)}"
        )
    pos = list(family_names).index(correct_name)
    distractors = [
        family_names[(pos + 1) % len(family_names)],
        family_names[(pos + 2) % len(family_names)],
    ]
    answers = [display[correct_name]] + [display[d] for d in distractors]
    return Question(
        text=STANDARD_QUESTION,
        answers=tuple(answers),
        correct_answer_element=0,
        hint=hint,
    )


def scenario_module(
    spec: "ScenarioSpec",
    *,
    name: str | None = None,
    author: str = "Traffic Warehouse",
    hint: str | None = None,
    matrix: TrafficMatrix | None = None,
) -> LearningModule:
    """A complete learning module from one declarative scenario spec.

    The matrix comes from ``spec.build()``, the question is the standard
    in-family :func:`pattern_question` for the spec's base generator, and the
    spec document rides along in the module's ``extra`` fields — the one-call
    path from "recipe" to "playable module" that curriculum generation and
    the batch examples use.  ``matrix`` lets callers that already realised
    the spec (e.g. through :func:`repro.scenarios.generate_batch`) reuse the
    result instead of building it twice.
    """
    from dataclasses import replace

    from repro.scenarios import get_generator

    info = get_generator(spec.base)
    builder = ModuleBuilder(name if name is not None else info.display).author(author)
    if matrix is None:
        builder.scenario(spec)
    else:
        builder.matrix(matrix).extra(scenario=spec.to_dict())
    module = builder.build()
    if "composite" in info.tags:
        return module  # combined stages have no single right answer
    return replace(module, question=pattern_question(spec.base, hint=hint))
