"""Hierarchical learning modules — a future-work feature from the paper.

The paper lists "hierarchical learning modules" among its planned
improvements.  A :class:`Curriculum` is a tree of units: each unit holds an
ordered list of modules and child units, with optional prerequisites between
sibling units.  It serialises to one JSON document (``curriculum.json``)
bundled alongside the module files, flattens to the sequential playlist the
game already presents, and gates progression on per-unit pass scores.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ModuleLoadError, ModuleSchemaError
from repro.modules.loader import loads_module
from repro.modules.module import LearningModule

__all__ = ["Unit", "Curriculum", "save_curriculum_bundle", "load_curriculum_bundle"]


@dataclass(frozen=True)
class Unit:
    """One curriculum node: a titled sequence of modules plus child units.

    ``requires`` names sibling units (by title) that must be *passed* before
    this unit unlocks; ``pass_score`` is the fraction of this unit's questions
    a student must answer correctly for the unit to count as passed.
    """

    title: str
    modules: tuple[LearningModule, ...] = ()
    children: tuple["Unit", ...] = ()
    requires: tuple[str, ...] = ()
    pass_score: float = 0.5

    def __post_init__(self) -> None:
        if not self.title.strip():
            raise ModuleSchemaError("unit title may not be empty", path="$.title")
        if not 0.0 <= self.pass_score <= 1.0:
            raise ModuleSchemaError(
                f"pass_score must be in [0, 1], got {self.pass_score}", path="$.pass_score"
            )

    def iter_units(self) -> Iterator["Unit"]:
        """Depth-first walk, self first."""
        yield self
        for child in self.children:
            yield from child.iter_units()

    def all_modules(self) -> list[LearningModule]:
        """Every module in this subtree, in presentation order."""
        out = list(self.modules)
        for child in self.children:
            out.extend(child.all_modules())
        return out

    def question_count(self) -> int:
        return sum(1 for m in self.all_modules() if m.has_question)


class Curriculum:
    """A rooted unit tree with prerequisite checking and progress gating."""

    def __init__(self, root: Unit) -> None:
        self.root = root
        titles = [u.title for u in root.iter_units()]
        dupes = {t for t in titles if titles.count(t) > 1}
        if dupes:
            raise ModuleSchemaError(
                f"unit titles must be unique within a curriculum; duplicated: {sorted(dupes)}"
            )
        by_title = {u.title: u for u in root.iter_units()}
        for unit in root.iter_units():
            for req in unit.requires:
                if req not in by_title:
                    raise ModuleSchemaError(
                        f"unit {unit.title!r} requires unknown unit {req!r}"
                    )
                if req == unit.title:
                    raise ModuleSchemaError(f"unit {unit.title!r} cannot require itself")
        self._by_title = by_title

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def unit(self, title: str) -> Unit:
        try:
            return self._by_title[title]
        except KeyError:
            raise ModuleSchemaError(f"no unit titled {title!r}") from None

    def flatten(self) -> list[LearningModule]:
        """The sequential playlist the game presents (prereq order respected).

        Units are emitted in depth-first order, but a unit whose prerequisites
        appear *later* in that order is deferred until after them (stable
        topological adjustment).
        """
        order = [u for u in self.root.iter_units()]
        emitted: list[Unit] = []
        pending = list(order)
        progress = True
        while pending and progress:
            progress = False
            for unit in list(pending):
                done_titles = {u.title for u in emitted}
                if all(req in done_titles for req in unit.requires):
                    emitted.append(unit)
                    pending.remove(unit)
                    progress = True
        if pending:
            cycle = [u.title for u in pending]
            raise ModuleSchemaError(f"prerequisite cycle among units: {cycle}")
        out: list[LearningModule] = []
        for unit in emitted:
            out.extend(unit.modules)
        return out

    def available_units(self, passed: Sequence[str]) -> list[Unit]:
        """Units unlocked given the set of already-passed unit titles."""
        done = set(passed)
        return [
            u
            for u in self.root.iter_units()
            if u.title not in done and all(req in done for req in u.requires)
        ]

    def unit_passed(self, title: str, correct: int) -> bool:
        """Did *correct* answered questions clear the unit's pass bar?"""
        unit = self.unit(title)
        total = unit.question_count()
        if total == 0:
            return True  # discussion-only units pass by completion
        return correct / total >= unit.pass_score

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_json_dict(self) -> dict[str, Any]:
        def unit_doc(unit: Unit) -> dict[str, Any]:
            return {
                "title": unit.title,
                "pass_score": unit.pass_score,
                "requires": list(unit.requires),
                "modules": [m.to_json_dict() for m in unit.modules],
                "children": [unit_doc(c) for c in unit.children],
            }

        return {"curriculum_version": 1, "root": unit_doc(self.root)}

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, Any]) -> "Curriculum":
        if not isinstance(doc, Mapping) or "root" not in doc:
            raise ModuleSchemaError("curriculum document needs a 'root' unit", path="$")

        def parse_unit(raw: Mapping[str, Any], path: str) -> Unit:
            if not isinstance(raw, Mapping):
                raise ModuleSchemaError("unit must be an object", path=path)
            title = raw.get("title", "")
            modules = []
            for k, mdoc in enumerate(raw.get("modules", ())):
                modules.append(loads_module(json.dumps(mdoc), source=f"{path}.modules[{k}]"))
            children = tuple(
                parse_unit(c, f"{path}.children[{k}]")
                for k, c in enumerate(raw.get("children", ()))
            )
            return Unit(
                title=str(title),
                modules=tuple(modules),
                children=children,
                requires=tuple(raw.get("requires", ())),
                pass_score=float(raw.get("pass_score", 0.5)),
            )

        return cls(parse_unit(doc["root"], "$.root"))


def save_curriculum_bundle(curriculum: Curriculum, path: str | Path) -> Path:
    """Write a curriculum zip: ``curriculum.json`` plus per-module files.

    The per-module files are redundant with the embedded curriculum document,
    but keep the bundle loadable by the plain sequential loader too — a
    curriculum bundle degrades gracefully to a playlist on an old client.
    """
    path = Path(path)
    modules = curriculum.flatten()
    if not modules:
        raise ModuleLoadError("refusing to write an empty curriculum bundle")
    width = max(2, len(str(len(modules))))
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        zf.writestr("curriculum.json", json.dumps(curriculum.to_json_dict(), indent=2))
        for k, module in enumerate(modules, start=1):
            slug = "".join(
                ch if ch.isalnum() or ch in "-_" else "_" for ch in module.name.lower()
            ).strip("_") or "module"
            zf.writestr(f"{k:0{width}d}_{slug}.json", module.to_json() + "\n")
    return path


def load_curriculum_bundle(path: str | Path) -> Curriculum:
    """Load the curriculum document from a bundle written by
    :func:`save_curriculum_bundle`."""
    try:
        with zipfile.ZipFile(path) as zf:
            if "curriculum.json" not in zf.namelist():
                raise ModuleLoadError(
                    f"{path} has no curriculum.json (plain playlist bundle? "
                    "use modules.loader.load_bundle)"
                )
            doc = json.loads(zf.read("curriculum.json").decode("utf-8"))
    except (zipfile.BadZipFile, OSError) as exc:
        raise ModuleLoadError(f"cannot open curriculum bundle {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ModuleLoadError(f"{path}: curriculum.json is not valid JSON: {exc}") from None
    return Curriculum.from_json_dict(doc)
