"""Answer obfuscation — one of the paper's named future-work items.

A plain module JSON stores ``correct_answer_element``, so any student who
opens the file sees the answer.  The paper lists "obfuscating question answers
in the module file" as future work; this implements it: the correct answer's
*text* is hashed (SHA-256 over a canonical form), the element index is
removed, and checking an answer re-hashes the chosen text.  The file stays
plaintext-reviewable — a security officer can still read every field — while
the answer needs deliberate effort (hashing each option) to recover.

This is classroom-grade deterrence, not cryptography: with three options an
attacker can hash all three.  The paper's threat model is a curious student,
not an adversary.
"""

from __future__ import annotations

import hashlib
import unicodedata
from dataclasses import replace

from repro.errors import QuizError
from repro.modules.module import LearningModule, Question

__all__ = ["hash_answer", "obfuscate_question", "obfuscate_module", "verify_answer"]


def hash_answer(answer_text: str) -> str:
    """Canonical SHA-256 of an answer's text.

    Canonicalisation (NFC normalise, strip, casefold) keeps a hand-retyped
    module — the paper's "printed on paper and hand typed back in" workflow —
    from failing on invisible whitespace or case differences.
    """
    canonical = unicodedata.normalize("NFC", answer_text).strip().casefold()
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def obfuscate_question(question: Question) -> Question:
    """Replace the answer index with the answer hash."""
    if question.is_obfuscated:
        return question
    return replace(
        question,
        correct_answer_element=None,
        correct_answer_hash=hash_answer(question.correct_answer),
    )


def obfuscate_module(module: LearningModule) -> LearningModule:
    """Copy of *module* with its question obfuscated (no-op without one)."""
    if module.question is None:
        return module
    return replace(module, question=obfuscate_question(module.question))


def verify_answer(question: Question, answer_text: str) -> bool:
    """Check an answer against a plain or obfuscated question."""
    if question.is_obfuscated:
        assert question.correct_answer_hash is not None
        return hash_answer(answer_text) == question.correct_answer_hash
    return answer_text == question.correct_answer


def deobfuscate_module(module: LearningModule) -> LearningModule:
    """Recover the answer index by hashing each option (the educator's tool).

    Raises :class:`~repro.errors.QuizError` if no option matches the stored
    hash — the module's answers were edited after obfuscation.
    """
    if module.question is None or not module.question.is_obfuscated:
        return module
    q = module.question
    for idx, option in enumerate(q.answers):
        if hash_answer(option) == q.correct_answer_hash:
            return replace(
                module,
                question=replace(q, correct_answer_element=idx, correct_answer_hash=None),
            )
    raise QuizError(
        f"no answer option of {module.name!r} matches the stored hash; "
        "the answers were edited after obfuscation"
    )
