"""The shipped module templates (paper Section II).

"To create a single matrix lesson there are example files that can be
duplicated and modified.  There are template JSON files for 6x6 or 10x10
matrices."  :func:`template_10x10` reproduces the paper's listing verbatim —
the same name, author, labels, matrix, colours and question.
"""

from __future__ import annotations

from typing import Any

from repro.modules.module import LearningModule
from repro.modules.schema import validate_module_dict

__all__ = ["template_10x10_dict", "template_6x6_dict", "template_10x10", "template_6x6"]


def template_10x10_dict() -> dict[str, Any]:
    """The exact JSON document shown in the paper's Section II listing."""
    return {
        "name": "10x10 Template",
        "size": "10x10",
        "author": "Chasen Milner",
        "axis_labels": [
            "WS1", "WS2", "WS3", "SRV1",
            "EXT1", "EXT2",
            "ADV1", "ADV2", "ADV3", "ADV4",
        ],
        "traffic_matrix": [
            [1, 0, 0, 0, 0, 0, 0, 0, 0, 2],
            [0, 1, 0, 0, 0, 0, 0, 0, 2, 0],
            [0, 0, 1, 0, 0, 0, 0, 2, 0, 0],
            [0, 0, 0, 1, 0, 0, 2, 0, 0, 0],
            [0, 0, 0, 0, 1, 2, 0, 0, 0, 0],
            [0, 0, 0, 0, 2, 1, 0, 0, 0, 0],
            [0, 0, 0, 2, 0, 0, 1, 0, 0, 0],
            [0, 0, 2, 0, 0, 0, 0, 1, 0, 0],
            [0, 2, 0, 0, 0, 0, 0, 0, 1, 0],
            [2, 0, 0, 0, 0, 0, 0, 0, 0, 1],
        ],
        "traffic_matrix_colors": [
            [0, 0, 0, 0, 0, 0, 2, 2, 2, 2],
            [0, 0, 0, 0, 0, 0, 2, 2, 2, 2],
            [0, 0, 0, 0, 0, 0, 2, 2, 2, 2],
            [0, 0, 0, 0, 0, 0, 2, 2, 2, 2],
            [0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            [1, 1, 1, 1, 0, 0, 0, 0, 0, 0],
            [1, 1, 1, 1, 0, 0, 0, 0, 0, 0],
            [1, 1, 1, 1, 0, 0, 0, 0, 0, 0],
            [1, 1, 1, 1, 0, 0, 0, 0, 0, 0],
        ],
        "has_question": True,
        "question": "How many packets did WS1 send to ADV4?",
        "answers": ["0", "1", "2"],
        "correct_answer_element": 2,
    }


def template_6x6_dict() -> dict[str, Any]:
    """The 6×6 starter template: same structure, smaller floor."""
    return {
        "name": "6x6 Template",
        "size": "6x6",
        "author": "Chasen Milner",
        "axis_labels": ["WS1", "WS2", "SRV1", "EXT1", "ADV1", "ADV2"],
        "traffic_matrix": [
            [1, 0, 0, 0, 0, 2],
            [0, 1, 0, 0, 2, 0],
            [0, 0, 1, 2, 0, 0],
            [0, 0, 2, 1, 0, 0],
            [0, 2, 0, 0, 1, 0],
            [2, 0, 0, 0, 0, 1],
        ],
        "traffic_matrix_colors": [
            [0, 0, 0, 0, 2, 2],
            [0, 0, 0, 0, 2, 2],
            [0, 0, 0, 0, 2, 2],
            [0, 0, 0, 0, 0, 0],
            [1, 1, 1, 0, 0, 0],
            [1, 1, 1, 0, 0, 0],
        ],
        "has_question": True,
        "question": "How many packets did WS1 send to ADV2?",
        "answers": ["0", "1", "2"],
        "correct_answer_element": 2,
    }


def template_10x10() -> LearningModule:
    """The 10×10 template as a validated :class:`LearningModule`."""
    return validate_module_dict(template_10x10_dict())


def template_6x6() -> LearningModule:
    """The 6×6 template as a validated :class:`LearningModule`."""
    return validate_module_dict(template_6x6_dict())
