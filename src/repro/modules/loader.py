"""Loading and saving learning modules: single JSON files and zip bundles.

"Learning modules consist of a zip file containing multiple JSON files that
the user can select and load into the game.  Traffic Warehouse will take the
zip file and load each of the JSON files contained in it and present them
sequentially one at a time."

File order inside a bundle follows the archive's name order (educators number
their files: ``01_intro.json``, ``02_star.json``, ...), which this loader
sorts explicitly so presentation order never depends on zip-tool internals.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ModuleLoadError, ModuleSchemaError
from repro.modules.module import LearningModule
from repro.modules.schema import validate_module_dict

__all__ = [
    "load_module",
    "loads_module",
    "save_module",
    "load_bundle",
    "save_bundle",
    "bundle_names",
]


def loads_module(text: str, *, source: str = "<string>") -> LearningModule:
    """Parse and validate a module from a JSON string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModuleLoadError(f"{source}: not valid JSON: {exc}") from None
    try:
        return validate_module_dict(doc)
    except ModuleSchemaError as exc:
        raise ModuleSchemaError(f"{source}: {exc.message}", path=exc.path) from None


def load_module(path: str | Path) -> LearningModule:
    """Load and validate one module JSON file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ModuleLoadError(f"cannot read module file {path}: {exc}") from None
    return loads_module(text, source=str(path))


def save_module(module: LearningModule, path: str | Path) -> Path:
    """Write a module to a JSON file (pretty-printed for hand editing)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(module.to_json() + "\n", encoding="utf-8")
    return path


def load_bundle(path: str | Path | io.BytesIO) -> list[LearningModule]:
    """Load every ``*.json`` member of a zip bundle, in sorted name order.

    Non-JSON members (READMEs, images) are ignored; a bundle with no JSON
    members is an error because the game would have nothing to present.
    Directory prefixes inside the archive are allowed — educators often zip a
    folder — and do not affect ordering within it.
    """
    try:
        zf = zipfile.ZipFile(path)
    except (zipfile.BadZipFile, OSError) as exc:
        raise ModuleLoadError(f"cannot open bundle {path}: {exc}") from None
    with zf:
        names = sorted(
            n
            for n in zf.namelist()
            if n.lower().endswith(".json")
            and not n.endswith("/")
            and n.rsplit("/", 1)[-1] != "curriculum.json"  # reserved manifest name
        )
        if not names:
            raise ModuleLoadError(f"bundle {path} contains no .json learning modules")
        modules: list[LearningModule] = []
        for name in names:
            with zf.open(name) as fh:
                text = fh.read().decode("utf-8")
            modules.append(loads_module(text, source=f"{path}!{name}"))
    return modules


def bundle_names(path: str | Path | io.BytesIO) -> list[str]:
    """JSON member names of a bundle in presentation order, without loading."""
    try:
        with zipfile.ZipFile(path) as zf:
            return sorted(
                n
                for n in zf.namelist()
                if n.lower().endswith(".json")
                and not n.endswith("/")
                and n.rsplit("/", 1)[-1] != "curriculum.json"
            )
    except (zipfile.BadZipFile, OSError) as exc:
        raise ModuleLoadError(f"cannot open bundle {path}: {exc}") from None


def save_bundle(
    modules: Sequence[LearningModule] | Iterable[LearningModule],
    path: str | Path | io.BytesIO,
    *,
    prefix_order: bool = True,
) -> list[str]:
    """Write modules into a zip bundle the game (and this loader) can present.

    With ``prefix_order`` (default) member names get a ``01_``, ``02_``...
    prefix so sorted-name order equals the given sequence order.  Returns the
    member names written.
    """
    modules = list(modules)
    if not modules:
        raise ModuleLoadError("refusing to write an empty bundle")
    width = max(2, len(str(len(modules))))
    names: list[str] = []
    seen: set[str] = set()
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        for k, module in enumerate(modules, start=1):
            slug = "".join(
                ch if ch.isalnum() or ch in "-_" else "_" for ch in module.name.lower()
            ).strip("_") or "module"
            name = f"{k:0{width}d}_{slug}.json" if prefix_order else f"{slug}.json"
            if name in seen:
                name = f"{k:0{width}d}_{slug}_{k}.json"
            seen.add(name)
            zf.writestr(name, module.to_json() + "\n")
            names.append(name)
    return names
