"""The learning module: one JSON file's worth of lesson.

A :class:`LearningModule` is the in-memory form of the paper's extensible JSON
format (Section II): a titled, attributed traffic matrix plus an optional
three-choice question.  The JSON field names round-trip exactly — an educator's
hand-written file loads, and :meth:`LearningModule.to_json_dict` emits a file
another copy of the game can load.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ModuleSchemaError, QuizError

__all__ = ["Question", "LearningModule", "STANDARD_QUESTION", "STANDARD_ANSWER_COUNT"]

#: The one question type every shipped module uses (paper Section V).
STANDARD_QUESTION = "Which choice is the displayed traffic pattern most relevant to?"

#: "Our choice to have three available multiple choice answers was deliberate."
STANDARD_ANSWER_COUNT = 3


@dataclass(frozen=True)
class Question:
    """A multiple-choice question attached to a module.

    ``correct_answer_element`` indexes into ``answers`` *as authored*; the
    game shuffles presentation order at display time (see
    :meth:`shuffled_answers`), so "the first element will not always be the
    first option given".

    Exactly one of ``correct_answer_element`` / ``correct_answer_hash`` is
    set; the hash form is the answer-obfuscation extension (paper future
    work, see :mod:`repro.modules.obfuscate`).
    """

    text: str
    answers: tuple[str, ...]
    correct_answer_element: int | None = None
    correct_answer_hash: str | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if len(self.answers) < 2:
            raise ModuleSchemaError("a question needs at least 2 answers", path="$.answers")
        if (self.correct_answer_element is None) == (self.correct_answer_hash is None):
            raise ModuleSchemaError(
                "exactly one of correct_answer_element / correct_answer_hash must be set",
                path="$.correct_answer_element",
            )
        if self.correct_answer_element is not None and not (
            0 <= self.correct_answer_element < len(self.answers)
        ):
            raise ModuleSchemaError(
                f"correct_answer_element {self.correct_answer_element} out of range "
                f"for {len(self.answers)} answers",
                path="$.correct_answer_element",
            )

    @property
    def is_obfuscated(self) -> bool:
        return self.correct_answer_hash is not None

    @property
    def correct_answer(self) -> str:
        """The correct answer text (plain-text questions only)."""
        if self.correct_answer_element is None:
            raise QuizError("question is obfuscated; check answers with modules.obfuscate.verify_answer")
        return self.answers[self.correct_answer_element]

    def shuffled_answers(self, seed: int | None = None) -> tuple[list[str], int | None]:
        """Presentation order for the answers and the correct option's position.

        "Traffic Warehouse will randomize the list that has the answers when
        they are displayed."  A fixed *seed* gives a reproducible shuffle
        (used by tests and scripted classroom sessions); ``None`` uses fresh
        entropy like the game.  For obfuscated questions the returned correct
        position is ``None``.
        """
        order = list(range(len(self.answers)))
        random.Random(seed).shuffle(order)
        shuffled = [self.answers[i] for i in order]
        if self.correct_answer_element is None:
            return shuffled, None
        return shuffled, order.index(self.correct_answer_element)

    def is_correct(self, answer_text: str) -> bool:
        """Check an answer by its text (presentation-order independent)."""
        if self.is_obfuscated:
            from repro.modules.obfuscate import hash_answer

            assert self.correct_answer_hash is not None
            return hash_answer(answer_text) == self.correct_answer_hash
        return answer_text == self.correct_answer


@dataclass(frozen=True)
class LearningModule:
    """One lesson: a named traffic matrix with an optional question.

    ``extra`` preserves unknown JSON fields verbatim, so modules written for
    a future version of the game survive a load/save round trip here.
    """

    name: str
    author: str
    matrix: TrafficMatrix
    question: Question | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> str:
        """The JSON ``size`` string, e.g. ``"10x10"``."""
        return f"{self.matrix.n}x{self.matrix.n}"

    @property
    def has_question(self) -> bool:
        """The JSON ``has_question`` toggle.

        "The ability to toggle a question on and off allows for a more
        interactive experience" — modules without questions are discussion
        slides.
        """
        return self.question is not None

    def without_question(self) -> "LearningModule":
        """Copy with the question toggled off (open-discussion presentation)."""
        return replace(self, question=None)

    def to_json_dict(self) -> dict[str, Any]:
        """Emit the paper's JSON field layout (stable field order)."""
        doc: dict[str, Any] = {
            "name": self.name,
            "size": self.size,
            "author": self.author,
            "axis_labels": list(self.matrix.labels),
            "traffic_matrix": self.matrix.packets.tolist(),
            "traffic_matrix_colors": self.matrix.colors.astype(int).tolist(),
            "has_question": self.has_question,
        }
        if self.matrix.extended_colors:
            # opt-in field for the extended palette (see modules.schema);
            # placed after the colour grid it qualifies
            doc["color_mode"] = "extended"
        if self.question is not None:
            doc["question"] = self.question.text
            doc["answers"] = list(self.question.answers)
            if self.question.correct_answer_element is not None:
                doc["correct_answer_element"] = self.question.correct_answer_element
            else:
                doc["correct_answer_hash"] = self.question.correct_answer_hash
            if self.question.hint:
                doc["hint"] = self.question.hint
        doc.update({k: v for k, v in self.extra.items() if k not in doc})
        return doc

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, Any]) -> "LearningModule":
        """Build from a raw JSON dict; validation lives in :mod:`repro.modules.schema`."""
        from repro.modules.schema import validate_module_dict

        return validate_module_dict(doc)

    def describe(self) -> str:
        """One-line catalogue description."""
        q = f"question: {self.question.text!r}" if self.question else "no question (discussion)"
        return f"{self.name} [{self.size}] by {self.author} — {q}"
