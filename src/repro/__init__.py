"""Traffic Warehouse — teaching network traffic matrices in an interactive game.

Reproduction of Milner et al., *Teaching Network Traffic Matrices in an
Interactive Game Environment* (IPPS 2024, arXiv:2404.14643), as a pure-Python
library.  The package is organised the way the paper presents the system:

* :mod:`repro.core` — labelled, coloured traffic matrices,
* :mod:`repro.assoc` — GraphBLAS-style semiring/sparse substrate,
* :mod:`repro.runtime` — pluggable serial/thread/process execution engine
  behind the sparse kernels (``runtime.configure(workers=N)`` to opt in),
* :mod:`repro.graphs` — the pattern generators behind every learning module,
* :mod:`repro.scenarios` — the unified scenario API: a registry over every
  generator, declarative JSON-round-trippable specs, and parallel batch
  generation on the runtime,
* :mod:`repro.verify` — differential verification: spec-space fuzzing with
  cross-path agreement oracles and minimized JSON repros,
* :mod:`repro.modules` — the extensible JSON learning-module format,
* :mod:`repro.engine` — a headless Godot-like scene-tree engine,
* :mod:`repro.gdscript` — an interpreter for the GDScript subset of the paper,
* :mod:`repro.voxel` — MagicaVoxel-like asset models and OBJ export,
* :mod:`repro.render` — software rasterizer for 2-D / 3-D warehouse views,
* :mod:`repro.game` — the Traffic Warehouse game itself,
* :mod:`repro.analysis` — anonymized / streaming traffic analytics.

Quickstart::

    from repro import TrafficMatrix, builtin_catalog
    module = builtin_catalog()["graph_theory/star"]
    print(module.matrix.to_text())
"""

from repro._version import __version__
from repro.core import (
    MAX_DISPLAY_PACKETS,
    NetworkSpace,
    PalletColor,
    SpaceMap,
    TrafficMatrix,
)
from repro.errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "TrafficMatrix",
    "PalletColor",
    "NetworkSpace",
    "SpaceMap",
    "MAX_DISPLAY_PACKETS",
    "load_module",
    "builtin_catalog",
    "TrafficWarehouse",
    "ScenarioSpec",
    "ScenarioBuilder",
    "generate_batch",
]


def __getattr__(name):  # noqa: ANN001, ANN202 - lazy re-exports
    """Lazy top-level access to the scenario API (keeps base import light)."""
    if name in ("ScenarioSpec", "ScenarioBuilder", "generate_batch"):
        import repro.scenarios as _scenarios

        return getattr(_scenarios, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def load_module(path):  # noqa: ANN001, ANN201 - thin convenience wrapper
    """Load a learning module from a JSON file path (see :mod:`repro.modules`)."""
    from repro.modules.loader import load_module as _load

    return _load(path)


def builtin_catalog():  # noqa: ANN201
    """The built-in learning-module catalogue keyed by ``"family/name"``."""
    from repro.modules.library import builtin_catalog as _catalog

    return _catalog()


def TrafficWarehouse(*args, **kwargs):  # noqa: ANN002, ANN003, ANN201, N802
    """Construct the Traffic Warehouse game (lazy import of :mod:`repro.game`)."""
    from repro.game.app import TrafficWarehouse as _TW

    return _TW(*args, **kwargs)
